//! Fixed-point exponential via the multiplication-free shift-and-add method
//! the paper cites \[46\] (quinapalus.com "Calculate exp() and log() Without
//! Multiplications").
//!
//! Values are unsigned fixed point Q(w−f).f. The algorithm factors
//! `e^x = 2^(m₄·16 + …) · Π (1 + 2^-k)^{d_k}` by repeatedly testing
//! `x ≥ ln(factor)` and, when predicated, subtracting the (immediate!)
//! constant and updating `y` with a shift-add — every constant is embedded
//! into the lookup tables (operand embedding, §V-B4c), and every shift is a
//! free layout rename.

use super::{bit, Microcode};
use crate::field::Field;

/// Round `v` to Qf fixed point.
fn to_fixed(v: f64, f: u32) -> u64 {
    (v * (1u64 << f) as f64).round() as u64
}

impl Microcode {
    /// `e^x` in unsigned Q(w−f).f fixed point (width preserved; saturating
    /// behaviour is the caller's concern — choose `w`, `f` so the result
    /// fits: `x < (w − f)·ln 2` roughly).
    ///
    /// # Panics
    ///
    /// Panics if `frac_bits >= a.width()`.
    pub fn exp_fixed(&mut self, a: &Field, frac_bits: u32) -> Field {
        let w = a.width();
        let f = frac_bits;
        assert!((f as usize) < w, "need at least one integer bit");
        let int_bits = w as u32 - f;

        // Work on an owned copy so per-stage recycling never touches the
        // caller's input columns.
        let mut x = self.copy(a);
        // y = 1.0
        let mut y = self.const_field(1u64 << f, w);

        // Stage 1: powers of two. For m from high to low:
        //   if x >= 2^m · ln2 { x -= 2^m ln2; y <<= 2^m }
        // 2^m ln2 must fit x's range; m up to log2(int_bits).
        let mut m = 31 - (int_bits.max(1)).leading_zeros(); // floor(log2(int_bits))
        loop {
            let c = to_fixed((1u64 << m) as f64 * std::f64::consts::LN_2, f);
            if c < (1u64 << w) {
                let pred = self.cmp_ge_imm(&x, c);
                let x_next = self.cond_sub_imm(&x, c, &pred);
                self.free(&x);
                x = x_next;
                let y_shifted = self.shl(&y, 1usize << m, w);
                let y_next = self.select(&pred, &y_shifted, &y);
                self.free(&y);
                y = y_next;
                self.free(&pred);
            }
            if m == 0 {
                break;
            }
            m -= 1;
        }

        // Stage 2: factors (1 + 2^-k), k = 1..f: if x >= ln(1+2^-k)
        //   { x -= ln(1+2^-k); y += y >> k }.
        for k in 1..=f {
            let c = to_fixed((1.0 + (0.5f64).powi(k as i32)).ln(), f);
            if c == 0 {
                break; // below Qf resolution; remaining x < 1 ulp of ln-space
            }
            let pred = self.cmp_ge_imm(&x, c);
            let x_next = self.cond_sub_imm(&x, c, &pred);
            self.free(&x);
            x = x_next;
            let y_next = self.add_shifted_predicated(&y, k as usize, &pred);
            self.free(&y);
            y = y_next;
            self.free(&pred);
        }
        Field::new(format!("exp({})", a.name), y.slots[..w].to_vec())
    }

    /// `pred ? y + (y >> k) : y`, wrapping at `y`'s width: the shift-add
    /// update fused into one LUT chain per bit (inputs: y_i, y_{i+k},
    /// carry, pred).
    fn add_shifted_predicated(&mut self, y: &Field, k: usize, pred: &Field) -> Field {
        let w = y.width();
        let p = pred.slot(0);
        let out = self.alloc_plain("y'", w);
        let mut carry: Option<crate::field::Slot> = None;
        for i in 0..w {
            let yi = y.slot(i);
            let shifted = (i + k < w).then(|| y.slot(i + k));
            let mut inputs = vec![p, yi];
            if let Some(s) = shifted {
                inputs.push(s);
            }
            let carry_idx = carry.map(|s| {
                inputs.push(s);
                inputs.len() - 1
            });
            let has_shift = shifted.is_some();
            let eval = move |m: u16| -> (bool, bool) {
                let pv = bit(m, 0);
                let yv = bit(m, 1);
                let sv = if has_shift { bit(m, 2) } else { false };
                let cv = carry_idx.map(|j| bit(m, j)).unwrap_or(false);
                if !pv {
                    (yv, false) // carry chain stays 0 when not predicated
                } else {
                    let t = yv as u32 + sv as u32 + cv as u32;
                    (t & 1 == 1, t >= 2)
                }
            };
            let need_carry = i + 1 < w;
            if need_carry {
                let c2 = self.alloc_plain("yc", 1).slot(0);
                self.lut2_into(
                    inputs,
                    move |m| eval(m).0,
                    out.slot(i).base_col(),
                    move |m| eval(m).1,
                    c2.base_col(),
                );
                if let Some(prev) = carry {
                    self.free_slot(prev);
                }
                carry = Some(c2);
            } else {
                self.lut1_into(inputs, move |m| eval(m).0, out.slot(i).base_col());
                if let Some(prev) = carry {
                    self.free_slot(prev);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::Microcode;
    use crate::machine::HyperPe;

    fn run_exp(width: usize, frac: u32, xs: &[f64]) -> Vec<f64> {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", width);
        let out = mc.exp_fixed(&a, frac);
        let mut pe = HyperPe::new(xs.len(), 256);
        for (row, &x) in xs.iter().enumerate() {
            a.store(&mut pe, row, super::to_fixed(x, frac));
        }
        mc.program().run(&mut pe);
        (0..xs.len())
            .map(|r| out.read(&pe, r) as f64 / (1u64 << frac) as f64)
            .collect()
    }

    #[test]
    fn exp_q8_matches_f64_within_tolerance() {
        let xs = [0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0];
        let outs = run_exp(16, 8, &xs);
        for (x, y) in xs.iter().zip(&outs) {
            let expect = x.exp();
            let rel = (y - expect).abs() / expect;
            assert!(rel < 0.02, "exp({x}) = {y}, expected {expect} (rel {rel})");
        }
    }

    #[test]
    fn exp_q16_is_more_accurate() {
        let xs = [0.0, 0.25, 1.0, 2.5, 5.0, 9.0];
        let outs = run_exp(32, 16, &xs);
        for (x, y) in xs.iter().zip(&outs) {
            let expect = x.exp();
            let rel = (y - expect).abs() / expect;
            assert!(rel < 1e-3, "exp({x}) = {y}, expected {expect} (rel {rel})");
        }
    }

    #[test]
    fn exp_zero_is_one() {
        let outs = run_exp(16, 8, &[0.0]);
        assert_eq!(outs[0], 1.0);
    }

    #[test]
    fn to_fixed_rounds() {
        assert_eq!(super::to_fixed(1.0, 8), 256);
        assert_eq!(super::to_fixed(0.5, 4), 8);
    }
}
