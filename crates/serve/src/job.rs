//! Job types: what tenants submit, what they get back, and every typed
//! way a submission can be refused or a job can fail.

use std::sync::{Arc, Condvar, Mutex};

use hyperap_arch::RunStats;
use hyperap_tcam::FaultError;

/// Tenant identifier. Tenants are an accounting and fairness boundary,
/// not a security one — the pool tracks per-tenant queue depth, stats,
/// and rejections under this id.
pub type TenantId = u32;

/// One host preload: set a plain bit in the job's *job-local* PE space
/// before the program runs (PE 0 is the first PE of the job's first
/// group, exactly as on an isolated machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellLoad {
    /// Job-local PE id.
    pub pe: usize,
    /// Row.
    pub row: usize,
    /// Column.
    pub col: usize,
    /// Bit value.
    pub value: bool,
}

/// A unit of submitted work: one instruction stream per requested group,
/// plus host preloads. The pool places the job on a contiguous group
/// range of some machine; results come back in job-local coordinates, so
/// a job never learns where (or with whom) it ran.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Owning tenant.
    pub tenant: TenantId,
    /// One instruction stream per group the job needs
    /// (`streams.len() <= machine groups`; programs that move data across
    /// the PE mesh must request the whole machine — see
    /// [`SubmitError::RemoteOpsNeedFullMachine`]).
    pub streams: Vec<Vec<hyperap_isa::Instruction>>,
    /// Host preloads applied after the scrub, before the run.
    pub loads: Vec<CellLoad>,
}

/// A completed job's results.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Run results in job-local coordinates: group 0 is the job's first
    /// group, PE 0 its first PE — bit-identical to running the job alone
    /// on a fresh machine of its own size.
    pub stats: RunStats,
    /// Pool machine the job ran on (diagnostic).
    pub machine: usize,
    /// Total jobs coalesced into the sweep that ran this job (1 = ran
    /// alone).
    pub batch_size: usize,
}

/// Why a job that was admitted did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The machine the job ran on hit a latched fault (the job's own
    /// write load may or may not have caused it — every job in the
    /// failing sweep gets the same error, and the machine is quarantined).
    Fault {
        /// Pool machine that failed.
        machine: usize,
        /// The latched fault.
        error: FaultError,
    },
    /// The worker thread panicked while running the sweep the job was in
    /// (an internal invariant violation, not a modeled fault). The machine
    /// is quarantined and every job in the sweep gets this error.
    WorkerPanic {
        /// Pool machine whose worker panicked.
        machine: usize,
    },
    /// The pool shut down (or lost its last healthy machine) before the
    /// job ran.
    PoolShutdown,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Fault { machine, error } => {
                write!(f, "machine {machine} quarantined: {error}")
            }
            JobError::WorkerPanic { machine } => {
                write!(
                    f,
                    "machine {machine} quarantined: worker panicked mid-sweep"
                )
            }
            JobError::PoolShutdown => write!(f, "pool shut down before the job ran"),
        }
    }
}

impl std::error::Error for JobError {}

/// Why a submission was refused at the door (the job never entered a
/// queue; nothing was charged to the tenant but a rejection count).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// Backpressure: the tenant already has its full admission budget of
    /// jobs queued. Retry after some complete.
    QueueFull {
        /// The tenant at its bound.
        tenant: TenantId,
        /// The per-tenant queue-depth bound that was hit.
        depth: usize,
    },
    /// The job wants more groups than a pool machine has.
    TooManyGroups {
        /// Groups requested.
        requested: usize,
        /// Groups per pool machine.
        machine_groups: usize,
    },
    /// The job has no streams.
    EmptyJob,
    /// A host preload addresses a cell outside the job's own span. Loads
    /// are job-local: `pe` must be below `streams.len() * pes_per_group`
    /// (the PEs the job's groups own), and `row`/`col` must fit the
    /// machine's array geometry. An out-of-span load on a batched job
    /// would land in a co-batched tenant's groups, so it is refused at
    /// the door instead.
    LoadOutOfRange {
        /// The offending preload.
        load: CellLoad,
        /// PEs the job's requested groups span (exclusive `pe` bound).
        job_pes: usize,
        /// Rows per PE array (exclusive `row` bound).
        rows: usize,
        /// Columns per PE array (exclusive `col` bound).
        cols: usize,
    },
    /// The program moves data across the PE mesh (`MovR`/`ReadR`/`WriteR`)
    /// but requests fewer groups than a whole machine. Mesh geometry
    /// derives from the full machine, so a partial-machine placement would
    /// not be bit-identical to an isolated run — submit with
    /// `streams.len() == machine_groups` instead.
    RemoteOpsNeedFullMachine {
        /// Groups requested.
        requested: usize,
        /// Groups per pool machine.
        machine_groups: usize,
    },
    /// Every machine in the pool has been quarantined.
    NoHealthyMachines,
    /// The pool is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { tenant, depth } => {
                write!(f, "tenant {tenant} queue full (depth bound {depth})")
            }
            SubmitError::TooManyGroups {
                requested,
                machine_groups,
            } => write!(
                f,
                "job wants {requested} groups, machines have {machine_groups}"
            ),
            SubmitError::EmptyJob => write!(f, "job has no streams"),
            SubmitError::LoadOutOfRange {
                load,
                job_pes,
                rows,
                cols,
            } => write!(
                f,
                "preload (pe {}, row {}, col {}) outside the job span \
                 ({job_pes} PEs of {rows}x{cols})",
                load.pe, load.row, load.col
            ),
            SubmitError::RemoteOpsNeedFullMachine {
                requested,
                machine_groups,
            } => write!(
                f,
                "program touches remote registers: needs all {machine_groups} groups, got {requested}"
            ),
            SubmitError::NoHealthyMachines => write!(f, "every pool machine is quarantined"),
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The completion slot a worker fills and a waiter blocks on.
#[derive(Debug)]
pub(crate) struct Slot {
    result: Mutex<Option<Result<JobOutput, JobError>>>,
    done: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    pub(crate) fn fulfill(&self, result: Result<JobOutput, JobError>) {
        let mut slot = self.result.lock().expect("slot lock");
        debug_assert!(slot.is_none(), "job fulfilled twice");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A ticket for one admitted job. [`wait`](Self::wait) blocks until a
/// worker fulfills it; dropping the handle abandons the result (the job
/// still runs and is still accounted to the tenant).
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) slot: Arc<Slot>,
    /// Owning tenant (mirrors the submitted spec).
    pub tenant: TenantId,
}

impl JobHandle {
    /// Block until the job completes or fails.
    pub fn wait(self) -> Result<JobOutput, JobError> {
        let mut slot = self.slot.result.lock().expect("slot lock");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.slot.done.wait(slot).expect("slot lock");
        }
    }

    /// Non-blocking poll: `None` while the job is in flight, `Some` once
    /// it has resolved. Polling never consumes the result — repeated
    /// calls keep returning it, and a later [`wait`](Self::wait) still
    /// resolves immediately.
    pub fn try_wait(&self) -> Option<Result<JobOutput, JobError>> {
        self.slot.result.lock().expect("slot lock").clone()
    }
}
