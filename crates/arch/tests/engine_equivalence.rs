//! Property tests for the execution-engine determinism guarantee: random
//! instruction streams produce bit-identical machine state and `RunStats`
//! whether the per-group PE fan-out runs sequentially or threaded, and
//! whether execution goes through the instruction-at-a-time interpreter
//! (`run_interpreted`) or the trace-compiled engine (`run`) — including
//! per-PE operation counts, `Count`/`Index` reduction results, per-column
//! wear, and key-register state carried across runs.

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode};
use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::KeyBit;
use proptest::prelude::*;

/// Geometry under test: `tiny()` is 2 groups x 4 PEs of 16x64.
const PES: usize = 8;
const ROWS: usize = 16;
const COLS: usize = 64;

fn inst_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        prop::collection::vec(0u8..4, COLS).prop_map(|bits| Instruction::SetKey {
            key: bits
                .iter()
                .map(|b| match b {
                    0 => KeyBit::Zero,
                    1 => KeyBit::One,
                    2 => KeyBit::Z,
                    _ => KeyBit::Masked,
                })
                .collect(),
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
        // `encode` needs two adjacent columns, so stop one short.
        (0u8..(COLS as u8 - 1), any::<bool>())
            .prop_map(|(col, encode)| Instruction::Write { col, encode }),
        Just(Instruction::Count),
        Just(Instruction::Index),
        (0u8..4).prop_map(|d| Instruction::MovR {
            dir: match d {
                0 => Direction::Up,
                1 => Direction::Down,
                2 => Direction::Left,
                _ => Direction::Right,
            },
        }),
        (0u32..PES as u32).prop_map(|addr| Instruction::ReadR { addr }),
        (0u32..=PES as u32, prop::collection::vec(any::<u8>(), 0..4)).prop_map(|(a, imm)| {
            Instruction::WriteR {
                addr: if a == PES as u32 { BROADCAST_ADDR } else { a },
                imm,
            }
        }),
        Just(Instruction::SetTag),
        Just(Instruction::ReadTag),
        any::<u8>().prop_map(|m| Instruction::Broadcast { group_mask: m }),
        (0u8..10).prop_map(|cycles| Instruction::Wait { cycles }),
    ]
}

type Load = (usize, usize, usize, bool);

fn loads_strategy() -> impl Strategy<Value = Vec<Load>> {
    prop::collection::vec(
        (0usize..PES, 0usize..ROWS, 0usize..COLS, any::<bool>()),
        0..64,
    )
}

fn build(mode: ExecMode, loads: &[Load]) -> ApMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    let mut m = ApMachine::new(cfg);
    for &(pe, row, col, v) in loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn assert_machines_identical(a: &ApMachine, b: &ApMachine) {
    for pe in 0..PES {
        assert_eq!(a.pe(pe), b.pe(pe), "PE {pe} state diverged");
        // PE equality already covers wear (it's part of `TcamArray`'s
        // `Eq`), but assert it separately so a wear divergence names
        // itself instead of surfacing as a generic state mismatch.
        assert_eq!(
            a.pe(pe).column_wear(),
            b.pe(pe).column_wear(),
            "PE {pe} wear accounting diverged"
        );
        assert_eq!(
            a.data_reg(pe),
            b.data_reg(pe),
            "PE {pe} data register diverged"
        );
    }
    assert_eq!(
        a.data_buffers, b.data_buffers,
        "controller data buffers diverged"
    );
}

proptest! {
    #[test]
    fn sequential_and_parallel_runs_are_bit_identical(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..40),
        s1 in prop::collection::vec(inst_strategy(), 0..40),
    ) {
        let streams = vec![s0, s1];
        let mut seq = build(ExecMode::Sequential, &loads);
        let mut par = build(ExecMode::Parallel, &loads);
        let mut auto = build(ExecMode::Auto, &loads);
        let seq_stats = seq.run(&streams);
        let par_stats = par.run(&streams);
        let auto_stats = auto.run(&streams);
        prop_assert_eq!(&seq_stats, &par_stats);
        prop_assert_eq!(&seq_stats, &auto_stats);
        assert_machines_identical(&seq, &par);
        assert_machines_identical(&seq, &auto);
    }

    #[test]
    fn interpreter_and_trace_engines_are_bit_identical(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..40),
        s1 in prop::collection::vec(inst_strategy(), 0..40),
    ) {
        // The instruction-at-a-time interpreter is the reference; the
        // trace-compiled engine must match it bit-for-bit under every
        // threading mode — machine state, wear, stats (op counts and
        // Count/Index reductions included).
        let streams = vec![s0, s1];
        let mut reference = build(ExecMode::Sequential, &loads);
        let ref_stats = reference.run_interpreted(&streams);
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::Auto] {
            let mut traced = build(mode, &loads);
            let trace_stats = traced.run(&streams);
            prop_assert_eq!(&ref_stats, &trace_stats, "stats diverged under {:?}", mode);
            assert_machines_identical(&reference, &traced);
        }
    }

    #[test]
    fn peephole_fusion_preserves_interpreter_semantics(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..40),
        s1 in prop::collection::vec(inst_strategy(), 0..40),
    ) {
        // Three-way pin: the instruction-at-a-time interpreter, the
        // unfused compiled trace, and the peephole-fused trace must agree
        // bit-for-bit — state, wear, per-PE op counts (fused ops bill their
        // unfused constituents), and Count/Index reductions.
        let streams = vec![s0, s1];
        let cfg = ArchConfig::tiny();
        let mut interp = build(ExecMode::Sequential, &loads);
        let interp_stats = interp.run_interpreted(&streams);
        let unfused = hyperap_arch::trace::compile_streams_unfused(&streams, &cfg);
        let mut raw = build(ExecMode::Sequential, &loads);
        let raw_stats = raw.run_compiled(&unfused);
        prop_assert_eq!(&interp_stats, &raw_stats, "unfused trace diverged from interpreter");
        assert_machines_identical(&interp, &raw);
        let fused = hyperap_arch::trace::compile_streams(&streams, &cfg);
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::Auto] {
            let mut m = build(mode, &loads);
            let s = m.run_compiled(&fused);
            prop_assert_eq!(&interp_stats, &s, "fused trace diverged under {:?}", mode);
            assert_machines_identical(&interp, &m);
        }
    }

    #[test]
    fn engines_agree_across_consecutive_runs(
        loads in loads_strategy(),
        first in prop::collection::vec(inst_strategy(), 0..25),
        second in prop::collection::vec(inst_strategy(), 0..25),
    ) {
        // Key-register state must carry across runs identically: a stream
        // that searches before its first SetKey picks up whatever key the
        // previous run left behind (the trace engine's entry-key snapshot
        // and final-key restore paths).
        let mut interp = build(ExecMode::Sequential, &loads);
        let mut traced = build(ExecMode::Sequential, &loads);
        let a0 = interp.run_interpreted(std::slice::from_ref(&first));
        let b0 = traced.run(std::slice::from_ref(&first));
        prop_assert_eq!(&a0, &b0);
        let a1 = interp.run_interpreted(std::slice::from_ref(&second));
        let b1 = traced.run(std::slice::from_ref(&second));
        prop_assert_eq!(&a1, &b1, "second run diverged: key state not carried");
        // Rerunning the first stream exercises the trace cache's
        // invalidate-then-refill path: `second` evicted `first`'s traces,
        // so this must recompile (not reuse stale traces) and still match
        // the uncached interpreter.
        let a2 = interp.run_interpreted(std::slice::from_ref(&first));
        let b2 = traced.run(std::slice::from_ref(&first));
        prop_assert_eq!(&a2, &b2, "rerun diverged: stale trace cache");
        assert_machines_identical(&interp, &traced);
    }

    #[test]
    fn broadcast_invalidation_matches_uncached_semantics(
        masks in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        // Interleave Broadcast instructions with Counts; the cached
        // active-PE set must track every mask change in both modes.
        let mut stream = Vec::new();
        for m in &masks {
            stream.push(Instruction::Broadcast { group_mask: *m });
            stream.push(Instruction::Count);
        }
        let streams = vec![stream];
        let mut seq = build(ExecMode::Sequential, &[]);
        let mut par = build(ExecMode::Parallel, &[]);
        let seq_stats = seq.run(&streams);
        let par_stats = par.run(&streams);
        // tiny() has one bank (bank 0) per group: mask bit 0 gates all PEs.
        let expected: usize = masks.iter().map(|m| if m & 1 == 1 { 4 } else { 0 }).sum();
        prop_assert_eq!(seq_stats.count_results[0].len(), expected);
        prop_assert_eq!(&seq_stats, &par_stats);
    }
}
