//! Abstract machine and execution models for traditional AP and Hyper-AP.
//!
//! This crate implements §II and §III of the paper:
//!
//! * [`machine`] — the two abstract machines. [`machine::HyperPe`] is the
//!   Fig 4a model: a TCAM array, a ternary key register (with the `Z` input),
//!   per-row tag registers with an **accumulation unit** (OR), an encoder
//!   latch for two-bit-encoded result writes, and the reduction tree
//!   (Count / Index). [`machine::TraditionalPe`] is the Fig 1a model: a
//!   binary CAM with plain key/mask and overwrite-only tags.
//! * [`field`] — logical-bit-to-physical-column data layout, including
//!   two-bit-encoded pair placement and column allocation/recycling.
//! * [`program`] — the low-level associative-operation IR ([`program::ApOp`])
//!   shared by the hand-written microcode and the compiler, with an
//!   interpreter and Table-I-faithful operation counting.
//! * [`lut`] — lookup tables and their lowering under both execution models:
//!   Single-Search-Single-Pattern/-Write (traditional, Fig 2c) and
//!   Single-Search-Multi-Pattern + Multi-Search-Single-Write (Hyper-AP,
//!   Fig 5d).
//! * [`microcode`] — the "RTL library developed by experts" (§V-B3):
//!   hand-optimized arithmetic routines (add, sub, mul, div, sqrt, exp,
//!   compare, logic, shift) built from planned LUT applications.
//!
//! # Example: the paper's 1-bit addition (Fig 2 vs Fig 5d)
//!
//! ```
//! use hyperap_core::lut::{full_adder_lut, ExecutionModel};
//!
//! let traditional = full_adder_lut().op_counts(ExecutionModel::Traditional);
//! let hyper = full_adder_lut().op_counts(ExecutionModel::Hyper);
//! assert_eq!(traditional.search_write_ops(), 14); // Fig 2c
//! assert_eq!(hyper.search_write_ops(), 6);        // Fig 5d
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod lut;
pub mod machine;
pub mod microcode;
pub mod program;

pub use field::{Field, FieldAllocator, Slot};
pub use lut::ExecutionModel;
pub use machine::{HyperPe, TraditionalPe};
pub use program::{ApOp, Program};
