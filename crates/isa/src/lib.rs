//! The Hyper-AP instruction set architecture (Table I).
//!
//! Twelve instructions in three categories:
//!
//! | Category | Instructions |
//! |---|---|
//! | Compute | `Search`, `Write`, `SetKey`, `Count`, `Index`, `MovR` |
//! | Data manipulate | `ReadR`, `WriteR`, `SetTag`, `ReadTag` |
//! | Control | `Broadcast`, `Wait` |
//!
//! This crate defines the instruction type ([`Instruction`]), its binary
//! encoding with the exact byte lengths of Table I ([`encode`]), the cycle
//! model ([`Instruction::cycles`]), a text assembler/disassembler
//! ([`asm`]), and the lowering from the portable associative-operation IR
//! of [`hyperap_core`] to instruction streams ([`lower`](mod@lower)).
//!
//! # Example
//!
//! ```
//! use hyperap_isa::{Instruction, encode, decode_stream};
//!
//! let prog = vec![Instruction::Search { acc: true, encode: false }, Instruction::Count];
//! let bytes = encode(&prog);
//! assert_eq!(bytes.len(), 2); // Table I: Search = 1 byte, Count = 1 byte
//! assert_eq!(decode_stream(&bytes).unwrap(), prog);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod encoding;
pub mod instruction;
pub mod lower;

pub use encoding::{decode_stream, encode};
pub use instruction::{Direction, Instruction, SyncClass, KEY_COLUMNS};
pub use lower::{lower, stream_cycles, stream_op_counts};
