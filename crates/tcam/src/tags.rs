//! Tag registers and the reduction tree (Fig 1a / Fig 4a / Fig 7).
//!
//! One tag bit per word row. The Hyper-AP accumulation unit ORs a new search
//! result into the existing tags (Fig 4c); the reduction tree provides the
//! population count (`Count` instruction, adder tree) and priority encoding
//! (`Index` instruction).

use serde::{Deserialize, Serialize};

/// A bit-vector of per-row tags.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TagVector {
    blocks: Vec<u64>,
    len: usize,
}

impl TagVector {
    /// All-zero tags for `len` rows.
    pub fn zeros(len: usize) -> Self {
        TagVector {
            blocks: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// All-one tags for `len` rows.
    pub fn ones(len: usize) -> Self {
        let mut t = Self::zeros(len);
        for (i, b) in t.blocks.iter_mut().enumerate() {
            let remaining = len - i * 64;
            *b = if remaining >= 64 {
                u64::MAX
            } else {
                (1u64 << remaining) - 1
            };
        }
        t
    }

    /// Build from an iterator of booleans, packing 64-row blocks directly
    /// as the iterator is drained (no intermediate `Vec<bool>`, no
    /// bit-at-a-time `set` calls).
    pub fn from_bools<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let (lo, _) = iter.size_hint();
        let mut blocks = Vec::with_capacity(lo.div_ceil(64));
        let mut len = 0usize;
        let mut cur = 0u64;
        for b in iter {
            if b {
                cur |= 1u64 << (len % 64);
            }
            len += 1;
            if len.is_multiple_of(64) {
                blocks.push(cur);
                cur = 0;
            }
        }
        if !len.is_multiple_of(64) {
            blocks.push(cur);
        }
        TagVector { blocks, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The tag for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len`.
    pub fn get(&self, row: usize) -> bool {
        assert!(row < self.len, "tag row {row} out of range {}", self.len);
        self.blocks[row / 64] >> (row % 64) & 1 == 1
    }

    /// Set the tag for `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len`.
    pub fn set(&mut self, row: usize, value: bool) {
        assert!(row < self.len, "tag row {row} out of range {}", self.len);
        let mask = 1u64 << (row % 64);
        if value {
            self.blocks[row / 64] |= mask;
        } else {
            self.blocks[row / 64] &= !mask;
        }
    }

    /// OR another tag vector into this one (the accumulation unit, Fig 4c).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn accumulate(&mut self, other: &TagVector) {
        assert_eq!(self.len, other.len, "tag length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// AND another tag vector into this one (used to combine the two
    /// crossbar-array sensing results of one PE, §IV-B).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn intersect(&mut self, other: &TagVector) {
        assert_eq!(self.len, other.len, "tag length mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Population count — the `Count` instruction (adder tree).
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Index of the first tagged row — the `Index` instruction (priority
    /// encoder). `None` if no row is tagged.
    pub fn first_index(&self) -> Option<usize> {
        for (i, b) in self.blocks.iter().enumerate() {
            if *b != 0 {
                return Some(i * 64 + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// True if any row is tagged.
    pub fn any(&self) -> bool {
        self.blocks.iter().any(|b| *b != 0)
    }

    /// Iterate over the indices of tagged rows.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// Overwrite this vector with the contents of `src` without allocating
    /// (the hot-path alternative to `*self = src.clone()`).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn copy_from(&mut self, src: &TagVector) {
        assert_eq!(self.len, src.len, "tag length mismatch");
        self.blocks.copy_from_slice(&src.blocks);
    }

    /// Clear all tags.
    pub fn clear(&mut self) {
        for b in &mut self.blocks {
            *b = 0;
        }
    }

    /// Raw 64-row blocks (LSB of block 0 = row 0).
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Mutable raw blocks, for bulk bit-parallel updates. Bits at positions
    /// `>= len` in the last block must be left zero.
    pub fn blocks_mut(&mut self) -> &mut [u64] {
        &mut self.blocks
    }
}

impl FromIterator<bool> for TagVector {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Self::from_bools(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = TagVector::zeros(70);
        assert_eq!(z.count(), 0);
        assert!(!z.any());
        let o = TagVector::ones(70);
        assert_eq!(o.count(), 70);
        assert_eq!(o.first_index(), Some(0));
    }

    #[test]
    fn ones_does_not_set_padding_bits() {
        let o = TagVector::ones(65);
        assert_eq!(o.blocks()[1], 1);
    }

    #[test]
    fn tail_block_semantics_for_non_multiple_of_64_rows() {
        // Row counts that leave a partial final 64-bit block: the reduction
        // tree (count), priority encoder (first_index), and ones() must all
        // treat the padding bits as nonexistent.
        for len in [1usize, 63, 65, 100, 127, 130] {
            let o = TagVector::ones(len);
            assert_eq!(o.count(), len, "ones({len}).count()");
            assert_eq!(o.first_index(), Some(0), "ones({len}).first_index()");
            let last = *o.blocks().last().unwrap();
            if len % 64 != 0 {
                assert_eq!(
                    last,
                    (1u64 << (len % 64)) - 1,
                    "ones({len}) padding bits must stay zero"
                );
            }
            // Priority-encode a tag in the tail block specifically.
            let mut t = TagVector::zeros(len);
            t.set(len - 1, true);
            assert_eq!(t.first_index(), Some(len - 1), "tail row of len {len}");
            assert_eq!(t.count(), 1);
            assert!(t.any());
            t.set(len - 1, false);
            assert_eq!(t.count(), 0, "clearing the tail row empties len {len}");
            assert_eq!(t.first_index(), None);
        }
    }

    #[test]
    fn tail_block_accumulate_and_intersect_preserve_padding() {
        let mut a = TagVector::ones(70);
        let b = TagVector::ones(70);
        a.accumulate(&b);
        assert_eq!(a.count(), 70);
        assert_eq!(a.blocks()[1], (1u64 << 6) - 1, "OR left padding zero");
        a.intersect(&b);
        assert_eq!(a.count(), 70);
        assert_eq!(a.iter_set().last(), Some(69));
    }

    #[test]
    fn from_bools_packs_blocks_directly() {
        let t = TagVector::from_bools((0..130).map(|i| i % 2 == 0));
        assert_eq!(t.len(), 130);
        assert_eq!(t.count(), 65);
        assert_eq!(t.blocks().len(), 3);
        assert_eq!(t.blocks()[0], 0x5555_5555_5555_5555);
        assert_eq!(t.blocks()[2] >> 2, 0, "padding bits stay zero");
        assert_eq!(t, (0..130).map(|i| i % 2 == 0).collect::<TagVector>());
        let empty = TagVector::from_bools(std::iter::empty());
        assert!(empty.is_empty());
        assert!(empty.blocks().is_empty());
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = TagVector::zeros(100);
        t.set(63, true);
        t.set(64, true);
        t.set(99, true);
        assert!(t.get(63) && t.get(64) && t.get(99));
        assert!(!t.get(0));
        assert_eq!(t.count(), 3);
        t.set(64, false);
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn accumulate_is_or() {
        let mut a = TagVector::from_bools([true, false, true, false]);
        let b = TagVector::from_bools([false, false, true, true]);
        a.accumulate(&b);
        assert_eq!(
            (0..4).map(|i| a.get(i)).collect::<Vec<_>>(),
            vec![true, false, true, true]
        );
    }

    #[test]
    fn intersect_is_and() {
        let mut a = TagVector::from_bools([true, true, false, true]);
        let b = TagVector::from_bools([true, false, false, true]);
        a.intersect(&b);
        assert_eq!(a.count(), 2);
        assert!(a.get(0) && a.get(3));
    }

    #[test]
    fn first_index_is_priority_encoder() {
        let mut t = TagVector::zeros(200);
        assert_eq!(t.first_index(), None);
        t.set(130, true);
        t.set(70, true);
        assert_eq!(t.first_index(), Some(70));
    }

    #[test]
    fn iter_set_yields_tagged_rows() {
        let t = TagVector::from_bools([false, true, false, true, true]);
        assert_eq!(t.iter_set().collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn copy_from_reuses_storage() {
        let mut dst = TagVector::ones(100);
        let src = TagVector::from_bools((0..100).map(|i| i % 3 == 0));
        let ptr = dst.blocks().as_ptr();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.blocks().as_ptr(), ptr, "no reallocation");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_length_mismatch_panics() {
        TagVector::zeros(4).copy_from(&TagVector::zeros(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        TagVector::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accumulate_length_mismatch_panics() {
        TagVector::zeros(4).accumulate(&TagVector::zeros(5));
    }
}
