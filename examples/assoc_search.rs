//! Classic associative-memory usage on the raw machine model: exact-match
//! and ternary search over stored records, plus the Count/Index reduction
//! tree (Fig 1 / Fig 4) and the Fig 5d multi-pattern search keys.

use hyper_ap::core::machine::HyperPe;
use hyper_ap::tcam::SearchKey;

fn main() {
    // Store a tiny "database" of 16-bit records: [id:8 | flags:8].
    let mut pe = HyperPe::new(8, 64);
    let records: [(u64, u64); 8] = [
        (0x11, 0b0001),
        (0x22, 0b0011),
        (0x33, 0b0100),
        (0x44, 0b0001),
        (0x55, 0b1011),
        (0x66, 0b0000),
        (0x77, 0b0111),
        (0x88, 0b0011),
    ];
    for (row, &(id, flags)) in records.iter().enumerate() {
        for b in 0..8 {
            pe.load_bit(row, b, id >> b & 1 == 1);
            pe.load_bit(row, 8 + b, flags >> b & 1 == 1);
        }
    }

    // Exact match: which record has id 0x55? One search, O(1).
    let mut key = SearchKey::masked(64);
    key.set_field(0, 8, 0x55);
    pe.search(&key, false);
    println!("id == 0x55      -> row {:?}", pe.index());

    // Ternary match: flags bit0 set, bit2 clear — bit selectivity via the
    // mask register (Fig 1b).
    let key = SearchKey::masked(64)
        .with_bit(8, hyperap_tcam::KeyBit::One)
        .with_bit(10, hyperap_tcam::KeyBit::Zero);
    pe.search(&key, false);
    println!("flag0 & !flag2  -> {} records match", pe.count());

    // Multi-pattern search (Single-Search-Multi-Pattern): accumulate two
    // patterns into the tags before acting — the Hyper-AP execution model.
    let mut k1 = SearchKey::masked(64);
    k1.set_field(0, 8, 0x11);
    let mut k2 = SearchKey::masked(64);
    k2.set_field(0, 8, 0x44);
    pe.search(&k1, false);
    pe.search(&k2, true); // OR into tags (accumulation unit, Fig 4c)
    println!(
        "id in {{0x11,0x44}} -> {} records (via accumulation unit)",
        pe.count()
    );
    let ops = pe.op_counts();
    println!(
        "total machine ops: {} searches, {} reductions",
        ops.searches,
        ops.counts + ops.indexes
    );
}
