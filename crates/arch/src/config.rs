//! Machine geometry configuration.

use hyperap_model::tech::TechParams;
use serde::{Deserialize, Serialize};

/// Geometry and technology of a simulated Hyper-AP machine.
///
/// The paper's full chip (131,072 PEs) is impractical to simulate
/// functionally; simulations use scaled-down geometries and chip-level
/// numbers are obtained by scaling per-PE results with
/// [`hyperap_model::AreaModel`] (the paper itself computes performance
/// analytically from compilation results, §VI-A3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Number of instruction-stream groups (the 8-bit group mask bounds
    /// banks-per-group gating, §IV-A11).
    pub groups: usize,
    /// Banks per group.
    pub banks_per_group: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// PEs per subarray.
    pub pes_per_subarray: usize,
    /// Word rows per PE (SIMD slots).
    pub rows: usize,
    /// Bit columns per PE.
    pub cols: usize,
    /// Memory technology parameters.
    pub tech: TechParams,
    /// Optional explicit PE-mesh shape for `MovR` (rows, cols); when unset
    /// the PEs form a near-square grid.
    pub mesh: Option<(usize, usize)>,
}

impl ArchConfig {
    /// A small geometry for tests and examples: 2 groups × 1 bank ×
    /// 2 subarrays × 2 PEs of 16×64.
    pub fn tiny() -> Self {
        ArchConfig {
            groups: 2,
            banks_per_group: 1,
            subarrays_per_bank: 2,
            pes_per_subarray: 2,
            rows: 16,
            cols: 64,
            tech: TechParams::rram(),
            mesh: None,
        }
    }

    /// A single-group, single-PE machine with full 256-column PEs — the
    /// geometry used for the peak-performance synthetic benchmarks (§VI-C:
    /// "arithmetic operations that are performed in one SIMD slot ... no
    /// inter-PE communication").
    pub fn single_pe(rows: usize) -> Self {
        ArchConfig {
            groups: 1,
            banks_per_group: 1,
            subarrays_per_bank: 1,
            pes_per_subarray: 1,
            rows,
            cols: 256,
            tech: TechParams::rram(),
            mesh: None,
        }
    }

    /// A scaled-down rendition of the paper's hierarchy (Fig 6): 8 groups,
    /// each with 1 bank of 8 subarrays × 8 PEs (the real chip has many more
    /// banks; the shape is preserved).
    pub fn paper_scaled(rows: usize) -> Self {
        ArchConfig {
            groups: 8,
            banks_per_group: 1,
            subarrays_per_bank: 8,
            pes_per_subarray: 8,
            rows,
            cols: 256,
            tech: TechParams::rram(),
            mesh: None,
        }
    }

    /// Total number of PEs.
    pub fn total_pes(&self) -> usize {
        self.groups * self.banks_per_group * self.subarrays_per_bank * self.pes_per_subarray
    }

    /// PEs per group.
    pub fn pes_per_group(&self) -> usize {
        self.banks_per_group * self.subarrays_per_bank * self.pes_per_subarray
    }

    /// PEs per bank.
    pub fn pes_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.pes_per_subarray
    }

    /// Total SIMD slots.
    pub fn total_slots(&self) -> usize {
        self.total_pes() * self.rows
    }

    /// The PE-mesh dimensions for `MovR`: PEs are arranged row-major,
    /// either in the explicitly configured shape or a near-square grid.
    pub fn mesh_dims(&self) -> (usize, usize) {
        if let Some(m) = self.mesh {
            return m;
        }
        let n = self.total_pes();
        let w = (n as f64).sqrt().ceil() as usize;
        let h = n.div_ceil(w);
        (h, w)
    }

    /// Group index owning a PE id.
    pub fn group_of(&self, pe: usize) -> usize {
        pe / self.pes_per_group()
    }

    /// Bank index (within its group) owning a PE id.
    pub fn bank_of(&self, pe: usize) -> usize {
        pe % self.pes_per_group() / self.pes_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_counts() {
        let c = ArchConfig::tiny();
        assert_eq!(c.total_pes(), 8);
        assert_eq!(c.pes_per_group(), 4);
        assert_eq!(c.total_slots(), 128);
    }

    #[test]
    fn mesh_covers_all_pes() {
        let c = ArchConfig::paper_scaled(16);
        let (h, w) = c.mesh_dims();
        assert!(h * w >= c.total_pes());
    }

    #[test]
    fn group_and_bank_indexing() {
        let c = ArchConfig::tiny();
        assert_eq!(c.group_of(0), 0);
        assert_eq!(c.group_of(3), 0);
        assert_eq!(c.group_of(4), 1);
        assert_eq!(c.bank_of(5), 0);
    }
}
