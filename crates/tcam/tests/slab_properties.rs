//! Property-based tests: the slab arena with its fused multi-PE kernels is
//! observationally equivalent to a `Vec` of per-PE [`TcamArray`]s driven one
//! at a time, and the conversion / byte-image paths round-trip losslessly.

use hyperap_tcam::array::TcamArray;
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::slab::{pe_range_mask, TagSlab, TcamSlab};
use hyperap_tcam::tags::TagVector;
use hyperap_tcam::FaultModel;
use proptest::prelude::*;

const PES: usize = 5;
const ROWS: usize = 70; // spans a partial tail block
const COLS: usize = 8;

fn ternary_bit() -> impl Strategy<Value = TernaryBit> {
    prop_oneof![
        Just(TernaryBit::Zero),
        Just(TernaryBit::One),
        Just(TernaryBit::X)
    ]
}

fn key_bit() -> impl Strategy<Value = KeyBit> {
    prop_oneof![
        Just(KeyBit::Zero),
        Just(KeyBit::One),
        Just(KeyBit::Z),
        Just(KeyBit::Masked)
    ]
}

/// One random kernel invocation against the slab.
#[derive(Debug, Clone)]
enum SlabOp {
    Search {
        bits: Vec<KeyBit>,
        lo: usize,
        hi: usize,
    },
    Write {
        col: usize,
        value: TernaryBit,
        tags: Vec<bool>,
        lo: usize,
        hi: usize,
    },
    Copy {
        src: usize,
        dst: usize,
        lo: usize,
        hi: usize,
    },
    Encoded {
        col: usize,
        latch: Vec<bool>,
        tags: Vec<bool>,
        lo: usize,
        hi: usize,
    },
    SetCell {
        pe: usize,
        row: usize,
        col: usize,
        value: TernaryBit,
    },
    /// Single-sweep fused search chain + conditional writes
    /// (`search_write_multi`), checked against the unfused per-array
    /// sequence: searches, OR-accumulation, then column writes.
    Fused {
        keys: Vec<Vec<KeyBit>>,
        acc: bool,
        writes: Vec<(usize, TernaryBit)>,
        tags: Vec<bool>,
        lo: usize,
        hi: usize,
    },
}

fn pe_range() -> impl Strategy<Value = (usize, usize)> {
    (0..PES, 0..PES).prop_map(|(a, b)| (a.min(b), a.max(b) + 1))
}

/// PE-selection mask for the range `lo..hi` — `None` when the range covers
/// every PE, mirroring how the architecture layer drives full chunks.
fn sel_for(lo: usize, hi: usize) -> Option<Vec<u64>> {
    if (lo, hi) == (0, PES) {
        None
    } else {
        Some(pe_range_mask(PES, lo, hi))
    }
}

fn slab_op() -> impl Strategy<Value = SlabOp> {
    prop_oneof![
        (prop::collection::vec(key_bit(), COLS), pe_range())
            .prop_map(|(bits, (lo, hi))| SlabOp::Search { bits, lo, hi }),
        (
            0..COLS,
            ternary_bit(),
            prop::collection::vec(any::<bool>(), ROWS),
            pe_range()
        )
            .prop_map(|(col, value, tags, (lo, hi))| SlabOp::Write {
                col,
                value,
                tags,
                lo,
                hi
            }),
        (0..COLS, 0..COLS, pe_range()).prop_map(|(src, dst, (lo, hi))| SlabOp::Copy {
            src,
            dst,
            lo,
            hi
        }),
        (
            0..COLS - 1,
            prop::collection::vec(any::<bool>(), ROWS),
            prop::collection::vec(any::<bool>(), ROWS),
            pe_range()
        )
            .prop_map(|(col, latch, tags, (lo, hi))| SlabOp::Encoded {
                col,
                latch,
                tags,
                lo,
                hi
            }),
        (0..PES, 0..ROWS, 0..COLS, ternary_bit()).prop_map(|(pe, row, col, value)| {
            SlabOp::SetCell {
                pe,
                row,
                col,
                value,
            }
        }),
        (
            prop::collection::vec(prop::collection::vec(key_bit(), COLS), 0..3),
            any::<bool>(),
            prop::collection::vec((0..COLS, ternary_bit()), 0..3),
            prop::collection::vec(any::<bool>(), ROWS),
            pe_range()
        )
            .prop_map(|(keys, acc, writes, tags, (lo, hi))| SlabOp::Fused {
                keys,
                acc,
                writes,
                tags,
                lo,
                hi
            }),
    ]
}

fn tag_slab_from(bools: &[bool], lo: usize, hi: usize) -> TagSlab {
    let mut t = TagSlab::zeros(PES, ROWS);
    for pe in lo..hi {
        let tv = bools
            .iter()
            .enumerate()
            .map(|(r, &b)| b ^ (pe % 2 == 0 && r % 5 == 0))
            .collect();
        t.set_pe(pe, &tv);
    }
    t
}

proptest! {
    /// Replay a random kernel stream against both the slab and a vector of
    /// per-PE reference arrays; state (cells and wear) must stay identical
    /// and every search must produce the per-array result for each PE.
    #[test]
    fn slab_kernels_equal_per_array_ops(
        ops in prop::collection::vec(slab_op(), 1..25),
    ) {
        let mut slab = TcamSlab::new(PES, ROWS, COLS);
        let mut arrays: Vec<TcamArray> = (0..PES).map(|_| TcamArray::new(ROWS, COLS)).collect();
        for op in &ops {
            match op {
                SlabOp::Search { bits, lo, hi } => {
                    let key = SearchKey::from_bits(bits.clone());
                    let plan = key.compile_plan();
                    let mut out = TagSlab::zeros(PES, ROWS);
                    let sel = sel_for(*lo, *hi);
                    slab.search_plan_multi_into(&plan, sel.as_deref(), out.words_mut());
                    for (pe, array) in arrays.iter().enumerate().take(*hi).skip(*lo) {
                        prop_assert_eq!(out.to_tagvector(pe), array.search(&key), "pe {}", pe);
                    }
                }
                SlabOp::Write { col, value, tags, lo, hi } => {
                    let t = tag_slab_from(tags, *lo, *hi);
                    let sel = sel_for(*lo, *hi);
                    slab.write_column_multi(*col, *value, t.words(), sel.as_deref());
                    for (pe, array) in arrays.iter_mut().enumerate().take(*hi).skip(*lo) {
                        array.write_column(*col, *value, &t.to_tagvector(pe));
                    }
                }
                SlabOp::Copy { src, dst, lo, hi } => {
                    let sel = sel_for(*lo, *hi);
                    slab.copy_column_multi(*src, *dst, sel.as_deref());
                    for array in arrays.iter_mut().take(*hi).skip(*lo) {
                        array.copy_column(*src, *dst);
                    }
                }
                SlabOp::Encoded { col, latch, tags, lo, hi } => {
                    let h = tag_slab_from(latch, *lo, *hi);
                    let t = tag_slab_from(tags, *lo, *hi);
                    let sel = sel_for(*lo, *hi);
                    slab.write_encoded_multi(*col, h.words(), t.words(), sel.as_deref());
                    for (pe, array) in arrays.iter_mut().enumerate().take(*hi).skip(*lo) {
                        let (hv, tv) = (h.to_tagvector(pe), t.to_tagvector(pe));
                        for row in 0..ROWS {
                            let cells =
                                hyperap_tcam::encoding::encode_pair(hv.get(row), tv.get(row));
                            array.set_cell(row, *col, cells[0]);
                            array.set_cell(row, *col + 1, cells[1]);
                        }
                        array.note_write(*col);
                        array.note_write(*col + 1);
                    }
                }
                SlabOp::SetCell { pe, row, col, value } => {
                    slab.set_cell(*pe, *row, *col, *value);
                    arrays[*pe].set_cell(*row, *col, *value);
                }
                SlabOp::Fused { keys, acc, writes, tags, lo, hi } => {
                    let plans: Vec<Vec<(usize, KeyBit)>> = keys
                        .iter()
                        .map(|bits| SearchKey::from_bits(bits.clone()).compile_plan())
                        .collect();
                    let refs: Vec<&[(usize, KeyBit)]> =
                        plans.iter().map(|p| p.as_slice()).collect();
                    let mut t = tag_slab_from(tags, *lo, *hi);
                    let sel = sel_for(*lo, *hi);
                    slab.search_write_multi(&refs, *acc, writes, t.words_mut(), sel.as_deref());
                    let init = tag_slab_from(tags, *lo, *hi);
                    for (pe, array) in arrays.iter_mut().enumerate().take(*hi).skip(*lo) {
                        // Unfused reference: search every plan, OR into the
                        // (kept or cleared) tags, then write the columns.
                        let mut expected = if *acc {
                            init.to_tagvector(pe)
                        } else {
                            TagVector::zeros(ROWS)
                        };
                        for bits in keys {
                            let m = array.search(&SearchKey::from_bits(bits.clone()));
                            for (a, b) in expected.blocks_mut().iter_mut().zip(m.blocks()) {
                                *a |= b;
                            }
                        }
                        for &(col, value) in writes {
                            array.write_column(col, value, &expected);
                        }
                        prop_assert_eq!(t.to_tagvector(pe), expected, "fused tags, pe {}", pe);
                    }
                }
            }
        }
        prop_assert_eq!(slab.to_arrays(), arrays.clone());
        prop_assert_eq!(TcamSlab::from_arrays(&arrays), slab);
    }

    /// `from_arrays` ⇄ `to_arrays` is lossless for arbitrary cell contents
    /// and wear profiles.
    #[test]
    fn conversion_round_trips(
        cells in prop::collection::vec(
            prop::collection::vec(ternary_bit(), ROWS * COLS), PES),
        wear_writes in prop::collection::vec((0..COLS, any::<bool>()), 0..12),
    ) {
        let mut arrays: Vec<TcamArray> = (0..PES).map(|_| TcamArray::new(ROWS, COLS)).collect();
        for (pe, flat) in cells.iter().enumerate() {
            for (i, v) in flat.iter().enumerate() {
                arrays[pe].set_cell(i / COLS, i % COLS, *v);
            }
        }
        for (col, upper_half) in &wear_writes {
            let lo = if *upper_half { PES / 2 } else { 0 };
            for array in &mut arrays[lo..] {
                array.note_write(*col);
            }
        }
        let slab = TcamSlab::from_arrays(&arrays);
        prop_assert_eq!(slab.to_arrays(), arrays);
    }

    /// The versioned byte image round-trips, including wear state.
    #[test]
    fn byte_image_round_trips(
        cells in prop::collection::vec(ternary_bit(), PES * ROWS),
        worn_col in 0..COLS,
    ) {
        let mut slab = TcamSlab::new(PES, ROWS, COLS);
        for (i, v) in cells.iter().enumerate() {
            slab.set_cell(i / ROWS, i % ROWS, (i * 3) % COLS, *v);
        }
        let tags = TagSlab::zeros(PES, ROWS);
        slab.write_column_multi(worn_col, TernaryBit::X, tags.words(), None);
        prop_assert_eq!(TcamSlab::from_bytes(&slab.to_bytes()), Ok(slab));
    }

    /// The tag-register byte image round-trips for arbitrary contents.
    /// Tags, the encoder latch, and the data registers all share the
    /// `TagSlab` format, so one register file is exercised directly and a
    /// second through the engine's latch path (`copy_from_masked`).
    #[test]
    fn tag_byte_image_round_trips(
        bits in prop::collection::vec(prop::collection::vec(any::<bool>(), ROWS), PES),
        salt in 0usize..7,
    ) {
        let mut tags = TagSlab::zeros(PES, ROWS);
        for (pe, bools) in bits.iter().enumerate() {
            let tv = bools
                .iter()
                .enumerate()
                .map(|(r, &b)| b ^ ((r + salt) % 3 == 0))
                .collect();
            tags.set_pe(pe, &tv);
        }
        let mut latch = TagSlab::zeros(PES, ROWS);
        latch.copy_from_masked(&tags, None);
        prop_assert_eq!(TagSlab::from_bytes(&tags.to_bytes()), Ok(tags));
        prop_assert_eq!(TagSlab::from_bytes(&latch.to_bytes()), Ok(latch));
    }
}

/// Wider-than-one-word geometry (67 PEs), ragged non-contiguous selection
/// masks, and an optional seeded fault model: the word-parallel kernels
/// must still match the per-PE reference arrays bit for bit.
mod wide {
    use super::*;

    const WPES: usize = 67; // spans a partial tail word
    const WROWS: usize = 70;
    const WCOLS: usize = 6;

    /// A ragged selection: PE `p` is active when bit `p % 8` of `pattern`
    /// is set. `pattern == 0xFF` means all PEs (kernel `sel = None`).
    fn ragged_sel(pattern: u8) -> Option<Vec<u64>> {
        if pattern == 0xFF {
            return None;
        }
        let mut m = vec![0u64; WPES.div_ceil(64)];
        for pe in 0..WPES {
            if pattern >> (pe % 8) & 1 != 0 {
                m[pe / 64] |= 1u64 << (pe % 64);
            }
        }
        Some(m)
    }

    fn selected(pattern: u8, pe: usize) -> bool {
        pattern == 0xFF || pattern >> (pe % 8) & 1 != 0
    }

    fn tag_slab_wide(bools: &[bool]) -> TagSlab {
        let mut t = TagSlab::zeros(WPES, WROWS);
        for pe in 0..WPES {
            let tv = bools
                .iter()
                .enumerate()
                .map(|(r, &b)| b ^ ((pe + r) % 3 == 0))
                .collect();
            t.set_pe(pe, &tv);
        }
        t
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn wide_slab_kernels_equal_per_array_ops(
            faulty in any::<bool>(),
            ops in prop::collection::vec(
                (
                    (
                        prop::collection::vec(key_bit(), WCOLS),
                        0..WCOLS,
                        ternary_bit(),
                    ),
                    (
                        prop::collection::vec(any::<bool>(), WROWS),
                        any::<u8>(),
                        any::<bool>(),
                    ),
                ),
                1..8,
            ),
        ) {
            let mut slab = TcamSlab::new(WPES, WROWS, WCOLS);
            let mut arrays: Vec<TcamArray> =
                (0..WPES).map(|_| TcamArray::new(WROWS, WCOLS)).collect();
            if faulty {
                let model = FaultModel {
                    seed: 0x5EED_1234,
                    stuck_per_million: 30_000,
                    miss_per_million: 20_000,
                    endurance_limit: None,
                };
                slab.attach_fault(model, 1, 0);
                for (pe, array) in arrays.iter_mut().enumerate() {
                    array.attach_fault(model, 1, pe);
                }
            }
            for ((bits, col, value), (tags, pattern, fused)) in &ops {
                let key = SearchKey::from_bits(bits.clone());
                let plan = key.compile_plan();
                let sel = ragged_sel(*pattern);
                let mut t = tag_slab_wide(tags);
                let init = t.clone();
                if *fused {
                    slab.search_write_multi(
                        &[&plan], false, &[(*col, *value)], t.words_mut(), sel.as_deref());
                } else {
                    slab.search_plan_multi_into(&plan, sel.as_deref(), t.words_mut());
                    slab.write_column_multi(*col, *value, t.words(), sel.as_deref());
                }
                for (pe, array) in arrays.iter_mut().enumerate() {
                    if !selected(*pattern, pe) {
                        prop_assert_eq!(
                            t.to_tagvector(pe), init.to_tagvector(pe),
                            "unselected pe {} tags changed", pe);
                        continue;
                    }
                    let expected = array.search(&key);
                    array.write_column(*col, *value, &expected);
                    prop_assert_eq!(t.to_tagvector(pe), expected, "pe {}", pe);
                }
            }
            prop_assert_eq!(slab.to_arrays(), arrays.clone());
            prop_assert_eq!(TcamSlab::from_arrays(&arrays), slab);
        }
    }
}
