//! Fused restoring division with two-bit-encoded state.
//!
//! The partial remainder is stored as encoded pairs `(r_i, b_i)` — each
//! position carries the divisor bit it will be compared against — and the
//! trial difference as pairs `(diff_i, borrow_i)`, so one iteration is two
//! passes of single encoded writes per bit:
//!
//! 1. **subtract pass** (ascending): `D = R2 − B` with the borrow chained
//!    through the scratch pairs' low halves;
//! 2. **select pass** (descending): `R' = pred ? D : R2` written back in
//!    place (descending order never re-reads an overwritten pair), with the
//!    divisor bit re-derived by one search so the pair code stays intact.
//!
//! The comparison itself costs a single search + write: `pred` is the
//! complement of the final borrow AND of the divisor bits above the
//! remainder's current width (the width grows by one per iteration).

use super::{bit, Microcode};
use crate::field::{Field, Slot};
use crate::program::ApOp;

impl Microcode {
    /// Restoring division `(a / b, a % b)` using the fused encoded-pair
    /// datapath (≈2 encoded writes per remainder bit per iteration).
    /// Division by zero saturates the quotient to all-ones.
    pub fn div_rem_fused(&mut self, a: &Field, b: &Field) -> (Field, Field) {
        let w = a.width();
        let bw = b.width();
        let cap = bw; // R < B after every select
                      // R pairs: (r_i, b_i); scratch pairs: (diff_i, borrow_i).
        let (r_hi, r_lo, _d) = self.alloc.alloc_paired("divf.r", "divf.b", cap);
        let (d_hi, d_lo, _d2) = self.alloc.alloc_paired("divf.d", "divf.brw", cap + 1);
        let mut q_slots: Vec<Slot> = vec![Slot::Single { col: usize::MAX }; w];
        let mut prev_w = 0usize; // meaningful R width before this iteration

        for step in 0..w {
            let i = w - 1 - step;
            let w2 = (prev_w + 1).min(cap + 1); // width of R2 = 2R | a_i
                                                // Logical R2 bit k: k = 0 -> a_i; else r_{k-1} (pair hi).
            let r2_bit = |k: usize| -> Slot {
                if k == 0 {
                    a.slot(i)
                } else {
                    r_hi.slot(k - 1)
                }
            };
            // Divisor bit k: from the R pair's low half when the pair is
            // initialized (k < prev_w), else from the original field.
            let b_bit = |k: usize| -> Option<Slot> {
                if k < bw {
                    Some(if k < prev_w { r_lo.slot(k) } else { b.slot(k) })
                } else {
                    None
                }
            };

            // --- subtract pass: D = R2 - B, ascending ---
            for k in 0..w2 {
                let mut inputs = vec![r2_bit(k)];
                let bk = b_bit(k);
                if let Some(s) = bk {
                    inputs.push(s);
                }
                let brw_idx = (k > 0).then(|| {
                    inputs.push(d_lo.slot(k - 1));
                    inputs.len() - 1
                });
                let has_b = bk.is_some();
                let eval = move |m: u16| -> (bool, bool) {
                    let r = bit(m, 0);
                    let bb = has_b && bit(m, 1);
                    let brw = brw_idx.map(|p| bit(m, p)).unwrap_or(false);
                    let t = r as i32 - bb as i32 - brw as i32;
                    (t & 1 == 1, t < 0)
                };
                // diff into the latch, borrow-out into the tags, one WE.
                self.lut_search_series(inputs.clone(), move |m| eval(m).0);
                self.prog.push(ApOp::Latch);
                self.lut_search_series(inputs, move |m| eval(m).1);
                self.prog.push(ApOp::WriteEncoded {
                    col: d_hi.slot(k).base_col(),
                });
            }

            // --- pred = no final borrow AND no divisor bits above w2 ---
            let mut constraints: Vec<(Slot, bool)> = vec![(d_lo.slot(w2 - 1), false)];
            for k in w2..bw {
                if let Some(s) = b_bit(k) {
                    constraints.push((s, false));
                }
            }
            let pred = self.alloc_plain("pred", 1);
            if let Some(key) = self.key_from_constraints(&constraints) {
                self.prog.search(key, false);
                self.prog.push(ApOp::Write {
                    col: pred.slot(0).base_col(),
                    value: hyperap_tcam::bit::KeyBit::One,
                });
            }
            q_slots[i] = pred.slot(0);

            // --- select pass: R' = pred ? D : R2, descending in place ---
            let new_w = w2.min(cap);
            for k in (0..new_w).rev() {
                let p = pred.slot(0);
                let inputs = vec![p, d_hi.slot(k), r2_bit(k)];
                self.lut_search_series(inputs, |m| if bit(m, 0) { bit(m, 1) } else { bit(m, 2) });
                self.prog.push(ApOp::Latch);
                // Re-derive the divisor bit for the pair's low half.
                if let Some(s) = b_bit(k) {
                    self.lut_search_series(vec![s], |m| bit(m, 0));
                } else {
                    self.prog.push(ApOp::TagNone);
                }
                self.prog.push(ApOp::WriteEncoded {
                    col: r_hi.slot(k).base_col(),
                });
            }
            prev_w = new_w;
        }

        // Remainder: the pair high halves (width grew to prev_w).
        let mut rem_slots: Vec<Slot> = (0..prev_w).map(|k| r_hi.slot(k)).collect();
        while rem_slots.len() < bw {
            rem_slots.push(self.zero_field(1).slot(0));
        }
        (
            Field::new(format!("{}/{}", a.name, b.name), q_slots),
            Field::new(format!("{}%{}", a.name, b.name), rem_slots),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::Microcode;
    use crate::machine::HyperPe;

    fn check(width: usize, cases: &[(u64, u64)]) {
        let mut mc = Microcode::new(256);
        let a = mc.alloc_plain_input("a", width);
        let b = mc.alloc_plain_input("b", width);
        let (q, r) = mc.div_rem_fused(&a, &b);
        let mut pe = HyperPe::new(cases.len(), 256);
        for (row, &(va, vb)) in cases.iter().enumerate() {
            a.store(&mut pe, row, va);
            b.store(&mut pe, row, vb);
        }
        mc.program().run(&mut pe);
        for (row, &(va, vb)) in cases.iter().enumerate() {
            if vb == 0 {
                assert_eq!(q.read(&pe, row), ((1u128 << width) - 1) as u64);
                continue;
            }
            assert_eq!(q.read(&pe, row), va / vb, "{va} / {vb}");
            assert_eq!(r.read(&pe, row), va % vb, "{va} % {vb}");
        }
    }

    #[test]
    fn fused_div_8bit_cases() {
        check(
            8,
            &[
                (100, 7),
                (255, 1),
                (255, 255),
                (0, 5),
                (13, 13),
                (250, 3),
                (7, 9),
                (9, 0),
            ],
        );
    }

    #[test]
    fn fused_div_4bit_exhaustive() {
        let cases: Vec<(u64, u64)> = (0..16).flat_map(|a| (0..16).map(move |b| (a, b))).collect();
        check(4, &cases);
    }

    #[test]
    fn fused_is_cheaper_than_plain_restoring() {
        let rram = hyperap_model::TechParams::rram();
        let fused = {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 32);
            let b = mc.alloc_plain_input("b", 32);
            mc.div_rem_fused(&a, &b);
            mc.program().op_counts().cycles(&rram)
        };
        let plain = {
            let mut mc = Microcode::new(256);
            let a = mc.alloc_plain_input("a", 32);
            let b = mc.alloc_plain_input("b", 32);
            mc.div_rem(&a, &b);
            mc.program().op_counts().cycles(&rram)
        };
        assert!(fused < plain, "fused {fused} vs plain {plain}");
        // Fig 15 "who wins": must beat IMP's 142,310 ns / 668 GOPS point,
        // i.e. land under ~50.2k cycles.
        assert!(fused < 50_000, "fused div32 = {fused}");
    }
}
