//! CAM-native similarity search: Hamming distance and progressive top-k.
//!
//! The search algebra of [`crate::key`] asks a *binary* question per row —
//! does every unmasked key bit match? — and the whole stack so far uses the
//! TCAM as a compute substrate for write-heavy arithmetic. This module asks
//! the *graded* question instead: **how many** unmasked key bits miss? That
//! count is the ternary generalization of Hamming distance (for fully
//! specified keys over {0,1} codes it is exactly Hamming distance), and it
//! is the primitive behind in-CAM similarity search and hyperdimensional
//! (HDC) associative memories.
//!
//! Two engine-shared definitions live here, so every implementation agrees
//! bit-for-bit:
//!
//! * **Distance.** For a compiled plan (see
//!   [`SearchKey::compile_plan`](crate::key::SearchKey::compile_plan)), the
//!   distance of row `r` is the number of in-range, unmasked plan entries
//!   `(col, bit)` whose key bit fails to match the stored cell
//!   ([`KeyBit::matches`]). Stored `X` matches every key bit and never
//!   contributes; `Masked` entries never contribute. A row matches a plain
//!   search exactly when its distance is zero.
//! * **Top-k schedule.** Hardware cannot sort; it *thresholds*. The top-k
//!   search runs rounds `r = 1, 2, …` with widening distance budgets
//!   `τ_r = 2^(r-1) − 1` (0, 1, 3, 7, …): each round evaluates one
//!   counter-threshold match across all rows in parallel and one global
//!   population count. The controller stops at the first round where the
//!   count reaches `k` — or where `τ_r` covers the maximum possible
//!   distance (every unmasked column missing). The winners are then read
//!   out of the final threshold mask only. [`topk_schedule`] is this rule
//!   as a pure function of the distance multiset, used by scalar engines
//!   and by tests to pin the word-parallel implementation.
//!
//! The word-parallel slab kernels implementing these semantics over 64 PEs
//! per machine word live on [`TcamSlab`](crate::TcamSlab)
//! ([`hamming_into`](crate::TcamSlab::hamming_into),
//! [`hamming_topk`](crate::TcamSlab::hamming_topk)); the scalar per-PE
//! reference over [`TcamArray`] is [`scalar_distances`].
//!
//! **Faults:** distance is a property of the *stored* state, which already
//! has stuck-at bits enforced on every write path — so stuck cells perturb
//! distances identically in every engine. Transient match-line misses are
//! *not* modeled here: the accumulation loop is a counting operation over
//! stored charge, not a tag-register search, and keeping it ideal is what
//! makes distances a pure function of storage (see `DESIGN.md` §11).

use crate::array::TcamArray;
use crate::bit::KeyBit;

/// Distance budget of top-k round `r` (1-based): `2^(r-1) − 1`.
///
/// Saturates at `u32::MAX` for absurdly deep rounds so callers never
/// overflow (real schedules stop after `log2(cols)` rounds).
pub fn round_tau(round: usize) -> u32 {
    if round == 0 {
        return 0;
    }
    ((1u64 << (round - 1).min(32)) - 1).min(u32::MAX as u64) as u32
}

/// Outcome of the engine-shared progressive widening rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopkSchedule {
    /// Threshold rounds executed (≥ 1).
    pub rounds: usize,
    /// Distance budget of the final round: every candidate with distance
    /// ≤ `tau` is in the readout mask.
    pub tau: u32,
}

/// Evaluate the progressive top-k widening rule on a distance multiset.
///
/// `active` is the maximum possible distance (the number of in-range,
/// unmasked plan entries); `k` is the number of winners requested. Runs
/// rounds with budgets [`round_tau`] and stops at the first round where at
/// least `k` candidates fall within budget, or where the budget reaches
/// `active` (nothing further can appear). With fewer than `k` candidates
/// total, the schedule runs to full coverage.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn topk_schedule(distances: &[u32], active: u32, k: usize) -> TopkSchedule {
    assert!(k > 0, "top-k requires k >= 1");
    let mut r = 1;
    loop {
        let tau = round_tau(r);
        let within = distances.iter().filter(|&&d| d <= tau).count();
        if within >= k || tau >= active {
            return TopkSchedule { rounds: r, tau };
        }
        r += 1;
    }
}

/// Scalar per-PE reference: the distance of each of the first `rows` rows
/// of `array` to the compiled plan, by walking every cell.
///
/// This is deliberately the naive per-row, per-column loop — the
/// word-parallel slab kernel is benchmarked against it.
///
/// # Panics
///
/// Panics if `rows` exceeds the array's row count.
pub fn scalar_distances(array: &TcamArray, plan: &[(usize, KeyBit)], rows: usize) -> Vec<u32> {
    assert!(rows <= array.rows(), "row limit exceeds array");
    let mut out = vec![0u32; rows];
    for (row, d) in out.iter_mut().enumerate() {
        let mut miss = 0u32;
        for &(col, bit) in plan {
            if col >= array.cols() || bit == KeyBit::Masked {
                continue;
            }
            if !bit.matches(array.cell(row, col)) {
                miss += 1;
            }
        }
        *d = miss;
    }
    out
}

/// Number of in-range, unmasked entries of a compiled plan — the maximum
/// possible distance for storage of `cols` columns.
pub fn active_entries(plan: &[(usize, KeyBit)], cols: usize) -> u32 {
    plan.iter()
        .filter(|&&(col, bit)| col < cols && bit != KeyBit::Masked)
        .count() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::TernaryBit;
    use crate::key::SearchKey;

    #[test]
    fn tau_schedule_doubles() {
        assert_eq!(round_tau(1), 0);
        assert_eq!(round_tau(2), 1);
        assert_eq!(round_tau(3), 3);
        assert_eq!(round_tau(4), 7);
        assert_eq!(round_tau(40), u32::MAX);
    }

    #[test]
    fn scalar_distance_counts_misses() {
        let mut a = TcamArray::new(4, 8);
        // Row 0: 0b0000_0000 (all cells 0). Row 1: cols 0..4 = 1.
        for col in 0..4 {
            a.set_cell(1, col, TernaryBit::One);
        }
        // Row 2: col 0 = X (matches anything).
        a.set_cell(2, 0, TernaryBit::X);
        let key = SearchKey::parse("1111----").unwrap();
        let plan = key.compile_plan();
        let d = scalar_distances(&a, &plan, 4);
        assert_eq!(d, vec![4, 0, 3, 4]);
        assert_eq!(active_entries(&plan, 8), 4);
    }

    #[test]
    fn masked_and_out_of_range_entries_are_free() {
        let a = TcamArray::new(2, 4);
        let plan = vec![(0, KeyBit::One), (9, KeyBit::One), (1, KeyBit::Masked)];
        assert_eq!(scalar_distances(&a, &plan, 2), vec![1, 1]);
        assert_eq!(active_entries(&plan, 4), 1);
    }

    #[test]
    fn schedule_stops_at_k_or_coverage() {
        // distances 0,0,2,5 with active 6.
        let d = [0, 0, 2, 5];
        assert_eq!(topk_schedule(&d, 6, 2), TopkSchedule { rounds: 1, tau: 0 });
        assert_eq!(topk_schedule(&d, 6, 3), TopkSchedule { rounds: 3, tau: 3 });
        // k=4 needs τ ≥ 5 → round 4 (τ=7 ≥ active… τ=7 also covers).
        assert_eq!(topk_schedule(&d, 6, 4), TopkSchedule { rounds: 4, tau: 7 });
        // More winners requested than candidates: run to coverage.
        assert_eq!(topk_schedule(&d, 6, 9), TopkSchedule { rounds: 4, tau: 7 });
        // Fully masked query: one round, everything within.
        assert_eq!(topk_schedule(&d, 0, 9), TopkSchedule { rounds: 1, tau: 0 });
    }
}
