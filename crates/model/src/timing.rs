//! Operation counting and latency/energy computation.
//!
//! The paper computes performance analytically from compilation results
//! (§VI-A3: "the performance can be accurately calculated based on the
//! compilation results"). [`OpCounts`] is the interchange type: the compiler
//! and the architecture simulator both produce it, and the benchmark harness
//! converts it to nanoseconds/picojoules with a [`TechParams`].

use crate::tech::TechParams;
use serde::{Deserialize, Serialize};

/// Instruction-level cycle costs from Table I that are independent of the
/// memory technology.
pub mod instruction_cycles {
    /// `Search` — 1 cycle.
    pub const SEARCH: u64 = 1;
    /// `SetKey` — 1 cycle.
    pub const SET_KEY: u64 = 1;
    /// `Count` — 4 cycles.
    pub const COUNT: u64 = 4;
    /// `Index` — 4 cycles.
    pub const INDEX: u64 = 4;
    /// `MovR` — 5 cycles.
    pub const MOV_R: u64 = 5;
    /// `SetTag` — 1 cycle.
    pub const SET_TAG: u64 = 1;
    /// `ReadTag` — 1 cycle.
    pub const READ_TAG: u64 = 1;
    /// `Broadcast` — 1 cycle.
    pub const BROADCAST: u64 = 1;
    /// Decode overhead of a `Write` instruction (1 cycle column-address
    /// decode, Table I discussion §IV-A2).
    pub const WRITE_DECODE: u64 = 1;
    /// Setting the key register once before driving write voltages.
    pub const WRITE_SETKEY: u64 = 1;
}

/// Counts of primitive operations performed by a program (per SIMD pass).
///
/// `writes_single` are `Write` instructions targeting one TCAM bit column
/// (12 cycles on RRAM: 1 decode + 1 key + 10 cell-write). `writes_encoded`
/// target two columns via the two-bit encoder (23 cycles: 1 + 2 + 20).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Number of `Search` operations.
    pub searches: u64,
    /// Number of single-column `Write` operations.
    pub writes_single: u64,
    /// Number of encoded two-column `Write` operations.
    pub writes_encoded: u64,
    /// Number of `SetKey` operations.
    pub set_keys: u64,
    /// Number of `Count` reductions.
    pub counts: u64,
    /// Number of `Index` (priority-encode) reductions.
    pub indexes: u64,
    /// Number of inter-PE `MovR` transfers.
    pub mov_rs: u64,
    /// Number of `SetTag`/`ReadTag` register transfers.
    pub tag_ops: u64,
    /// Number of `Broadcast` group-mask updates.
    pub broadcasts: u64,
    /// Cycles spent stalled in `Wait` for inter-group synchronization.
    pub wait_cycles: u64,
    /// Number of similarity-search column accumulations: one match-line
    /// evaluation plus a ripple-carry update of the per-row Hamming
    /// counter latches (CAM-native similarity search, DESIGN.md §11).
    #[serde(default)]
    pub sim_accums: u64,
    /// Number of similarity top-k threshold rounds: one bit-serial
    /// counter-compare search plus a global population count, repeated as
    /// the controller widens the distance threshold.
    #[serde(default)]
    pub sim_rounds: u64,
}

impl OpCounts {
    /// An empty count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of `Write` instructions of either kind.
    pub fn writes(&self) -> u64 {
        self.writes_single + self.writes_encoded
    }

    /// Total search-plus-write "operations" in the paper's Fig 2/Fig 5d sense
    /// (the 14-operation vs 6-operation comparison counts searches + writes).
    pub fn search_write_ops(&self) -> u64 {
        self.searches + self.writes()
    }

    /// Total latency in cycles under the given technology parameters.
    ///
    /// Cycle costs follow Table I: a single-column write is
    /// `1 (decode) + 1 (key) + t_bit_write` cycles; an encoded write is
    /// `1 + 2 + 2·t_bit_write` cycles (two columns written back-to-back).
    pub fn cycles(&self, tech: &TechParams) -> u64 {
        use instruction_cycles::*;
        let w_single = WRITE_DECODE + WRITE_SETKEY + tech.t_bit_write_cycles();
        let w_encoded = WRITE_DECODE + 2 * WRITE_SETKEY + 2 * tech.t_bit_write_cycles();
        self.searches * tech.t_search_cycles
            + self.writes_single * w_single
            + self.writes_encoded * w_encoded
            + self.set_keys * SET_KEY
            + self.counts * COUNT
            + self.indexes * INDEX
            + self.mov_rs * MOV_R
            + self.tag_ops * SET_TAG
            + self.broadcasts * BROADCAST
            + self.wait_cycles
            + self.sim_accums * (tech.t_search_cycles + 1)
            + self.sim_rounds * (tech.t_search_cycles + COUNT)
    }

    /// Total latency in nanoseconds.
    pub fn latency_ns(&self, tech: &TechParams) -> f64 {
        self.cycles(tech) as f64 * tech.clock_period_ns()
    }

    /// Dynamic energy in picojoules for **one PE** executing this stream.
    pub fn energy_pj_per_pe(&self, tech: &TechParams) -> f64 {
        self.searches as f64 * tech.e_search_pj
            + self.writes_single as f64 * tech.e_write_pj
            + self.writes_encoded as f64 * 2.0 * tech.e_write_pj
            + self.set_keys as f64 * tech.e_setkey_pj
            + (self.counts + self.indexes) as f64 * tech.e_reduce_pj
            + self.mov_rs as f64 * tech.e_movr_pj
            + self.tag_ops as f64 * 0.1
            + self.broadcasts as f64 * 0.1
            + self.sim_accums as f64 * (tech.e_search_pj + 0.1)
            + self.sim_rounds as f64 * (tech.e_search_pj + tech.e_reduce_pj)
    }

    /// Merge another count into this one.
    pub fn add(&mut self, other: &OpCounts) {
        self.searches += other.searches;
        self.writes_single += other.writes_single;
        self.writes_encoded += other.writes_encoded;
        self.set_keys += other.set_keys;
        self.counts += other.counts;
        self.indexes += other.indexes;
        self.mov_rs += other.mov_rs;
        self.tag_ops += other.tag_ops;
        self.broadcasts += other.broadcasts;
        self.wait_cycles += other.wait_cycles;
        self.sim_accums += other.sim_accums;
        self.sim_rounds += other.sim_rounds;
    }

    /// Byte length of one [`encode_into`](Self::encode_into) record: 12
    /// big-endian `u64` fields in declaration order.
    pub const ENCODED_LEN: usize = 96;

    /// Append this count to `out` as [`ENCODED_LEN`](Self::ENCODED_LEN)
    /// big-endian bytes — the fixed-width record checkpoint chunk payloads
    /// embed.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        for field in [
            self.searches,
            self.writes_single,
            self.writes_encoded,
            self.set_keys,
            self.counts,
            self.indexes,
            self.mov_rs,
            self.tag_ops,
            self.broadcasts,
            self.wait_cycles,
            self.sim_accums,
            self.sim_rounds,
        ] {
            out.extend_from_slice(&field.to_be_bytes());
        }
    }

    /// Decode one [`encode_into`](Self::encode_into) record. Returns `None`
    /// unless `bytes` is exactly [`ENCODED_LEN`](Self::ENCODED_LEN) long.
    pub fn decode(bytes: &[u8]) -> Option<OpCounts> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let mut f = [0u64; 12];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            f[i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Some(OpCounts {
            searches: f[0],
            writes_single: f[1],
            writes_encoded: f[2],
            set_keys: f[3],
            counts: f[4],
            indexes: f[5],
            mov_rs: f[6],
            tag_ops: f[7],
            broadcasts: f[8],
            wait_cycles: f[9],
            sim_accums: f[10],
            sim_rounds: f[11],
        })
    }

    /// This count scaled by `n` repetitions.
    pub fn repeated(&self, n: u64) -> OpCounts {
        OpCounts {
            searches: self.searches * n,
            writes_single: self.writes_single * n,
            writes_encoded: self.writes_encoded * n,
            set_keys: self.set_keys * n,
            counts: self.counts * n,
            indexes: self.indexes * n,
            mov_rs: self.mov_rs * n,
            tag_ops: self.tag_ops * n,
            broadcasts: self.broadcasts * n,
            wait_cycles: self.wait_cycles * n,
            sim_accums: self.sim_accums * n,
            sim_rounds: self.sim_rounds * n,
        }
    }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;
    fn add(mut self, rhs: OpCounts) -> OpCounts {
        OpCounts::add(&mut self, &rhs);
        self
    }
}

impl std::iter::Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> Self {
        iter.fold(OpCounts::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechParams;

    #[test]
    fn single_write_costs_12_cycles_on_rram() {
        // Table I: Write takes 12 cycles for a single TCAM cell.
        let ops = OpCounts {
            writes_single: 1,
            ..OpCounts::default()
        };
        assert_eq!(ops.cycles(&TechParams::rram()), 12);
    }

    #[test]
    fn encoded_write_costs_23_cycles_on_rram() {
        // Table I: Write takes 23 cycles when writing two TCAM cells.
        let ops = OpCounts {
            writes_encoded: 1,
            ..OpCounts::default()
        };
        assert_eq!(ops.cycles(&TechParams::rram()), 23);
    }

    #[test]
    fn search_costs_one_cycle() {
        let ops = OpCounts {
            searches: 5,
            ..OpCounts::default()
        };
        assert_eq!(ops.cycles(&TechParams::rram()), 5);
        assert_eq!(ops.cycles(&TechParams::cmos()), 5);
    }

    #[test]
    fn monolithic_write_is_22_cycles() {
        let ops = OpCounts {
            writes_single: 1,
            ..OpCounts::default()
        };
        assert_eq!(ops.cycles(&TechParams::rram_monolithic()), 22);
    }

    #[test]
    fn similarity_ops_price_through_tech_params() {
        let ops = OpCounts {
            sim_accums: 3,
            sim_rounds: 2,
            ..OpCounts::default()
        };
        // RRAM: an accumulate is one match-line search plus one counter-latch
        // cycle; a threshold round is one search plus a Count reduction.
        assert_eq!(ops.cycles(&TechParams::rram()), 3 * (1 + 1) + 2 * (1 + 4));
        let e = ops.energy_pj_per_pe(&TechParams::rram());
        assert!((e - (3.0 * (3.0 + 0.1) + 2.0 * (3.0 + 1.2))).abs() < 1e-9);
    }

    #[test]
    fn add_and_sum_accumulate() {
        let a = OpCounts {
            searches: 2,
            writes_single: 1,
            ..OpCounts::default()
        };
        let b = OpCounts {
            searches: 3,
            set_keys: 4,
            ..OpCounts::default()
        };
        let s: OpCounts = [a, b].into_iter().sum();
        assert_eq!(s.searches, 5);
        assert_eq!(s.writes_single, 1);
        assert_eq!(s.set_keys, 4);
    }

    #[test]
    fn repeated_scales_all_fields() {
        let a = OpCounts {
            searches: 2,
            writes_encoded: 3,
            wait_cycles: 7,
            ..OpCounts::default()
        };
        let r = a.repeated(4);
        assert_eq!(r.searches, 8);
        assert_eq!(r.writes_encoded, 12);
        assert_eq!(r.wait_cycles, 28);
    }

    #[test]
    fn search_write_ops_matches_fig2_style_counting() {
        // Traditional AP 1-bit add: 7 searches + 7 writes = 14 operations.
        let ops = OpCounts {
            searches: 7,
            writes_single: 7,
            ..OpCounts::default()
        };
        assert_eq!(ops.search_write_ops(), 14);
    }

    #[test]
    fn encode_decode_round_trips_and_rejects_bad_lengths() {
        let ops = OpCounts {
            searches: 1,
            writes_single: 2,
            writes_encoded: 3,
            set_keys: 4,
            counts: 5,
            indexes: 6,
            mov_rs: 7,
            tag_ops: 8,
            broadcasts: 9,
            wait_cycles: 10,
            sim_accums: 11,
            sim_rounds: u64::MAX,
        };
        let mut buf = Vec::new();
        ops.encode_into(&mut buf);
        assert_eq!(buf.len(), OpCounts::ENCODED_LEN);
        assert_eq!(OpCounts::decode(&buf), Some(ops));
        assert_eq!(OpCounts::decode(&buf[..buf.len() - 1]), None);
        buf.push(0);
        assert_eq!(OpCounts::decode(&buf), None);
    }

    #[test]
    fn energy_monotonic_in_ops() {
        let t = TechParams::rram();
        let small = OpCounts {
            searches: 1,
            ..OpCounts::default()
        };
        let big = OpCounts {
            searches: 10,
            writes_single: 2,
            ..OpCounts::default()
        };
        assert!(big.energy_pj_per_pe(&t) > small.energy_pj_per_pe(&t));
    }
}
