//! Text assembler and disassembler for instruction streams.
//!
//! One instruction per line; `#` starts a comment. Keys are written in the
//! `0`/`1`/`Z`/`-` notation of the paper's figures, trailing masked columns
//! omitted.
//!
//! ```text
//! setkey 010
//! search            # overwrite tags
//! search acc        # accumulate (Multi-Search-Single-Write)
//! write 3
//! write 4 encode
//! count
//! ```

use crate::instruction::{Direction, Instruction};
use hyperap_tcam::key::SearchKey;

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAsmError {}

/// Render an instruction stream as assembly text.
pub fn format(stream: &[Instruction]) -> String {
    let mut out = String::new();
    for inst in stream {
        match inst {
            Instruction::Search { acc, encode } => {
                out.push_str("search");
                if *acc {
                    out.push_str(" acc");
                }
                if *encode {
                    out.push_str(" encode");
                }
            }
            Instruction::Write { col, encode } => {
                out.push_str(&std::format!("write {col}"));
                if *encode {
                    out.push_str(" encode");
                }
            }
            Instruction::SetKey { key } => {
                let mut s = key.to_string();
                while s.ends_with('-') && s.len() > 1 {
                    s.pop();
                }
                out.push_str(&std::format!("setkey {s}"));
            }
            Instruction::Count => out.push_str("count"),
            Instruction::Index => out.push_str("index"),
            Instruction::MovR { dir } => {
                let d = match dir {
                    Direction::Up => "up",
                    Direction::Left => "left",
                    Direction::Right => "right",
                    Direction::Down => "down",
                };
                out.push_str(&std::format!("movr {d}"));
            }
            Instruction::ReadR { addr } => out.push_str(&std::format!("readr {addr:#x}")),
            Instruction::WriteR { addr, imm } => {
                let hex: String = imm.iter().map(|b| std::format!("{b:02x}")).collect();
                out.push_str(&std::format!("writer {addr:#x} {hex}"));
            }
            Instruction::SetTag => out.push_str("settag"),
            Instruction::ReadTag => out.push_str("readtag"),
            Instruction::Broadcast { group_mask } => {
                out.push_str(&std::format!("broadcast {group_mask:#010b}"))
            }
            Instruction::Wait { cycles } => out.push_str(&std::format!("wait {cycles}")),
        }
        out.push('\n');
    }
    out
}

/// Parse assembly text back into an instruction stream.
///
/// # Errors
///
/// Returns [`ParseAsmError`] with the offending line on malformed input.
pub fn parse(text: &str) -> Result<Vec<Instruction>, ParseAsmError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("non-empty line");
        let err = |m: &str| ParseAsmError {
            line: line_no,
            message: m.to_string(),
        };
        let parse_u = |s: Option<&str>, what: &str| -> Result<u64, ParseAsmError> {
            let s = s.ok_or_else(|| err(&std::format!("missing {what}")))?;
            let (digits, radix) = match s.strip_prefix("0x") {
                Some(rest) => (rest, 16),
                None => match s.strip_prefix("0b") {
                    Some(rest) => (rest, 2),
                    None => (s, 10),
                },
            };
            u64::from_str_radix(digits, radix).map_err(|e| err(&std::format!("bad {what}: {e}")))
        };
        let inst = match mnemonic {
            "search" => {
                let rest: Vec<&str> = parts.collect();
                for flag in &rest {
                    if !["acc", "encode"].contains(flag) {
                        return Err(err(&std::format!("unknown search flag `{flag}`")));
                    }
                }
                Instruction::Search {
                    acc: rest.contains(&"acc"),
                    encode: rest.contains(&"encode"),
                }
            }
            "write" => {
                let col = parse_u(parts.next(), "column")? as u8;
                let encode = matches!(parts.next(), Some("encode"));
                Instruction::Write { col, encode }
            }
            "setkey" => {
                let pattern = parts.next().ok_or_else(|| err("missing key pattern"))?;
                let key = SearchKey::parse(pattern)
                    .map_err(|c| err(&std::format!("bad key character `{c}`")))?;
                Instruction::SetKey { key }
            }
            "count" => Instruction::Count,
            "index" => Instruction::Index,
            "movr" => {
                let dir = match parts.next() {
                    Some("up") => Direction::Up,
                    Some("left") => Direction::Left,
                    Some("right") => Direction::Right,
                    Some("down") => Direction::Down,
                    other => {
                        return Err(err(&std::format!("bad direction {other:?}")));
                    }
                };
                Instruction::MovR { dir }
            }
            "readr" => Instruction::ReadR {
                addr: parse_u(parts.next(), "address")? as u32,
            },
            "writer" => {
                let addr = parse_u(parts.next(), "address")? as u32;
                let hex = parts.next().ok_or_else(|| err("missing immediate"))?;
                if hex.len() % 2 != 0 {
                    return Err(err("immediate must have an even number of hex digits"));
                }
                let imm: Result<Vec<u8>, _> = (0..hex.len() / 2)
                    .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
                    .collect();
                Instruction::WriteR {
                    addr,
                    imm: imm.map_err(|e| err(&std::format!("bad immediate: {e}")))?,
                }
            }
            "settag" => Instruction::SetTag,
            "readtag" => Instruction::ReadTag,
            "broadcast" => Instruction::Broadcast {
                group_mask: parse_u(parts.next(), "group mask")? as u8,
            },
            "wait" => Instruction::Wait {
                cycles: parse_u(parts.next(), "cycle count")? as u8,
            },
            other => return Err(err(&std::format!("unknown mnemonic `{other}`"))),
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5d_program_assembles() {
        // The paper's Fig 5d 6-operation 1-bit addition, as assembly.
        let text = "\
# Hyper-AP 1-bit addition (Fig 5d)
setkey 010
search              # patterns 100, 010
setkey 101
search acc          # patterns 001, 111
setkey ---1
write 3             # Sum = 1
setkey -11
search              # patterns 011, 101, 111
setkey 1Z0
search acc          # pattern 110
setkey ----1
write 4             # Cout = 1
";
        let prog = parse(text).unwrap();
        let searches = prog
            .iter()
            .filter(|i| matches!(i, Instruction::Search { .. }))
            .count();
        let writes = prog
            .iter()
            .filter(|i| matches!(i, Instruction::Write { .. }))
            .count();
        assert_eq!(searches + writes, 6, "Fig 5d: 6 operations");
    }

    #[test]
    fn format_parse_round_trip() {
        let stream = vec![
            Instruction::SetKey {
                key: SearchKey::parse("1Z0-").unwrap(),
            },
            Instruction::Search {
                acc: true,
                encode: false,
            },
            Instruction::Write {
                col: 9,
                encode: true,
            },
            Instruction::MovR {
                dir: Direction::Down,
            },
            Instruction::Broadcast { group_mask: 0xA5 },
            Instruction::Wait { cycles: 12 },
            Instruction::WriteR {
                addr: 0x1F,
                imm: vec![1, 2, 3],
            },
        ];
        let text = format(&stream);
        let parsed = parse(&text).unwrap();
        for (a, b) in parsed.iter().zip(&stream) {
            match (a, b) {
                (Instruction::SetKey { key: ka }, Instruction::SetKey { key: kb }) => {
                    for col in 0..8 {
                        assert_eq!(ka.bit(col), kb.bit(col));
                    }
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse("count\nbogus 1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let prog = parse("\n# nothing\n  count # inline\n\n").unwrap();
        assert_eq!(prog, vec![Instruction::Count]);
    }
}
