//! Machine geometry configuration.

use hyperap_model::tech::TechParams;
use hyperap_tcam::FaultModel;
use serde::{Deserialize, Serialize};

/// Engine threading policy: how the per-group PE fan-out executes.
///
/// Sequential and parallel execution are bit-identical by construction —
/// per-PE work is independent and reduction results are collected in
/// ascending PE order — so this knob trades wall-clock only, never results
/// (property-tested in `tests/engine_equivalence.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecMode {
    /// Thread a dispatch only when the host can profit from forking at all
    /// ([`crate::par::parallel_pays`] — false on a single-CPU host, where
    /// `Parallel`'s two-worker floor measures 0.71×/0.77× of sequential in
    /// `BENCH_SIM.json`) *and* the dispatch's estimated work clears a
    /// calibrated fork-join break-even point
    /// ([`crate::par::forkjoin_overhead_ns`] measures a short dispatch
    /// both ways once per process); otherwise run inline, so Auto never
    /// picks a losing mode on small dispatches or narrow hosts.
    #[default]
    Auto,
    /// Always run the fan-out inline on the calling thread.
    Sequential,
    /// Always thread, with at least two workers so the threaded path is
    /// exercised even on single-CPU hosts.
    Parallel,
}

/// Auto threads a dispatch only when its conservative work estimate is at
/// least this multiple of the fork-join cost of the extra workers — the
/// estimate prices a slot-op at ~1 ns, which undercounts real search/write
/// work, so the margin keeps Auto inline everywhere threading could lose.
const AUTO_BREAK_EVEN_MARGIN: u64 = 8;

/// The `HYPERAP_THREADS` override, when set to a positive integer.
fn env_threads() -> Option<usize> {
    std::env::var("HYPERAP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The host's worker width: `HYPERAP_THREADS` when set to a positive
/// integer, else [`std::thread::available_parallelism`]. Every
/// [`ExecMode`] resolves its fan-out against this, and the slab engine
/// aligns its default chunk count to it ([`crate::SlabMachine::new`]) so
/// threaded dispatches split into exactly one chunk per worker.
pub fn host_width() -> usize {
    env_threads().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Default slab chunk width for a group of `per` PEs: split the group into
/// (at most) [`host_width`] chunks, then round the width up to a whole
/// number of 64-PE words so every kernel sweep processes full `u64` PE
/// words with no tail masking inside a group's interior chunks.
pub fn default_chunk_pes(per: usize) -> usize {
    per.div_ceil(host_width()).max(1).next_multiple_of(64)
}

impl ExecMode {
    /// Number of OS threads the engine fans out to under this mode.
    ///
    /// Host width comes from [`host_width`]. `HYPERAP_THREADS=1` means
    /// "no worker threads, period": it forces 1 under *every* mode,
    /// including `Parallel`'s two-worker floor.
    pub fn threads(self) -> usize {
        if env_threads() == Some(1) || self == ExecMode::Sequential {
            return 1;
        }
        let host = host_width();
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Auto => host,
            ExecMode::Parallel => host.max(2),
        }
    }

    /// Fan-out width for one dispatch of `ops` per-PE micro-ops over
    /// `slots` active SIMD slots, given the `host` width resolved by
    /// [`threads`](Self::threads).
    ///
    /// `Sequential` and `Parallel` are unconditional; `Auto` applies the
    /// calibrated break-even rule
    /// ([`dispatch_threads_calibrated`](Self::dispatch_threads_calibrated)),
    /// deferring the (once-per-process) calibration until a dispatch could
    /// actually thread.
    pub fn dispatch_threads(self, host: usize, slots: u64, ops: u64) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Parallel => host,
            ExecMode::Auto => {
                // Two gates, cheapest first: a host that can't profit from
                // forking at all (one physical CPU, or an advertised width
                // the scheduler won't deliver) stays inline no matter how
                // large the dispatch is; otherwise the per-dispatch
                // break-even estimate decides.
                if host < 2 || !crate::par::parallel_pays() {
                    1
                } else {
                    Self::dispatch_threads_calibrated(
                        host,
                        slots,
                        ops,
                        crate::par::forkjoin_overhead_ns(),
                    )
                }
            }
        }
    }

    /// The pure decision rule behind `Auto`: thread to `host` workers only
    /// when the dispatch's conservative work estimate (`slots * ops`
    /// nanoseconds) is at least `AUTO_BREAK_EVEN_MARGIN`× the measured
    /// fork-join cost of the `host - 1` extra workers.
    ///
    /// Exposed separately from [`dispatch_threads`](Self::dispatch_threads)
    /// so tests can pin `forkjoin_ns` instead of depending on the host's
    /// calibration.
    pub fn dispatch_threads_calibrated(
        host: usize,
        slots: u64,
        ops: u64,
        forkjoin_ns: u64,
    ) -> usize {
        let work_ns = slots.saturating_mul(ops.max(1));
        let break_even =
            AUTO_BREAK_EVEN_MARGIN.saturating_mul(forkjoin_ns.saturating_mul(host as u64 - 1));
        if work_ns >= break_even {
            host
        } else {
            1
        }
    }
}

/// Fault-injection policy for a machine: the deterministic cell/search
/// fault model plus the column-sparing budget every PE reserves.
///
/// The default (no faults, no spares) compiles the engines down to
/// exactly the fault-free kernels — `bench_guard` holds the zero-fault
/// path to the fault-free baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seeded fault model shared by every PE (each PE derives its own
    /// faults from its global id).
    pub model: FaultModel,
    /// Spare columns each PE reserves for endurance-driven retirement.
    pub spare_cols: usize,
}

impl FaultConfig {
    /// True when any fault mechanism can fire; false means the machines
    /// skip fault bookkeeping entirely.
    pub fn is_active(&self) -> bool {
        self.model.is_active()
    }
}

/// The `HYPERAP_FAULTS` override: a comma-separated
/// `seed=42,stuck=100,miss=50,limit=1000,spares=4` list (all fields
/// optional; unknown keys and malformed values are ignored). Returns
/// `None` when the variable is unset or names no fault mechanism, so the
/// zero-fault fast path stays on by default.
pub fn env_faults() -> Option<FaultConfig> {
    let raw = std::env::var("HYPERAP_FAULTS").ok()?;
    let mut cfg = FaultConfig::default();
    for item in raw.split(',') {
        let Some((key, value)) = item.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "seed" => {
                if let Ok(v) = value.parse() {
                    cfg.model.seed = v;
                }
            }
            "stuck" => {
                if let Ok(v) = value.parse() {
                    cfg.model.stuck_per_million = v;
                }
            }
            "miss" => {
                if let Ok(v) = value.parse() {
                    cfg.model.miss_per_million = v;
                }
            }
            "limit" => {
                if let Ok(v) = value.parse() {
                    cfg.model.endurance_limit = Some(v);
                }
            }
            "spares" => {
                if let Ok(v) = value.parse() {
                    cfg.spare_cols = v;
                }
            }
            _ => {}
        }
    }
    cfg.is_active().then_some(cfg)
}

/// Geometry and technology of a simulated Hyper-AP machine.
///
/// The paper's full chip (131,072 PEs) is impractical to simulate
/// functionally; simulations use scaled-down geometries and chip-level
/// numbers are obtained by scaling per-PE results with
/// [`hyperap_model::AreaModel`] (the paper itself computes performance
/// analytically from compilation results, §VI-A3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// Number of instruction-stream groups (the 8-bit group mask bounds
    /// banks-per-group gating, §IV-A11).
    pub groups: usize,
    /// Banks per group.
    pub banks_per_group: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// PEs per subarray.
    pub pes_per_subarray: usize,
    /// Word rows per PE (SIMD slots).
    pub rows: usize,
    /// Bit columns per PE.
    pub cols: usize,
    /// Memory technology parameters.
    pub tech: TechParams,
    /// Optional explicit PE-mesh shape for `MovR` (rows, cols); when unset
    /// the PEs form a near-square grid.
    pub mesh: Option<(usize, usize)>,
    /// Execution-engine threading policy (results are identical under every
    /// mode; see [`ExecMode`]).
    pub exec: ExecMode,
    /// Fault-injection policy; the default injects nothing and keeps the
    /// engines on their fault-free kernels. The named constructors
    /// ([`tiny`](Self::tiny), [`single_pe`](Self::single_pe),
    /// [`paper_scaled`](Self::paper_scaled)) honor the `HYPERAP_FAULTS`
    /// override (see [`env_faults`]), so any example or benchmark binary
    /// can be rerun under a seeded fault model without code changes.
    pub faults: FaultConfig,
}

impl ArchConfig {
    /// A small geometry for tests and examples: 2 groups × 1 bank ×
    /// 2 subarrays × 2 PEs of 16×64.
    pub fn tiny() -> Self {
        ArchConfig {
            groups: 2,
            banks_per_group: 1,
            subarrays_per_bank: 2,
            pes_per_subarray: 2,
            rows: 16,
            cols: 64,
            tech: TechParams::rram(),
            mesh: None,
            exec: ExecMode::Auto,
            faults: env_faults().unwrap_or_default(),
        }
    }

    /// A single-group, single-PE machine with full 256-column PEs — the
    /// geometry used for the peak-performance synthetic benchmarks (§VI-C:
    /// "arithmetic operations that are performed in one SIMD slot ... no
    /// inter-PE communication").
    pub fn single_pe(rows: usize) -> Self {
        ArchConfig {
            groups: 1,
            banks_per_group: 1,
            subarrays_per_bank: 1,
            pes_per_subarray: 1,
            rows,
            cols: 256,
            tech: TechParams::rram(),
            mesh: None,
            exec: ExecMode::Auto,
            faults: env_faults().unwrap_or_default(),
        }
    }

    /// A scaled-down rendition of the paper's hierarchy (Fig 6): 8 groups,
    /// each with 1 bank of 8 subarrays × 8 PEs (the real chip has many more
    /// banks; the shape is preserved).
    pub fn paper_scaled(rows: usize) -> Self {
        ArchConfig {
            groups: 8,
            banks_per_group: 1,
            subarrays_per_bank: 8,
            pes_per_subarray: 8,
            rows,
            cols: 256,
            tech: TechParams::rram(),
            mesh: None,
            exec: ExecMode::Auto,
            faults: env_faults().unwrap_or_default(),
        }
    }

    /// Total number of PEs.
    pub fn total_pes(&self) -> usize {
        self.groups * self.banks_per_group * self.subarrays_per_bank * self.pes_per_subarray
    }

    /// PEs per group.
    pub fn pes_per_group(&self) -> usize {
        self.banks_per_group * self.subarrays_per_bank * self.pes_per_subarray
    }

    /// PEs per bank.
    pub fn pes_per_bank(&self) -> usize {
        self.subarrays_per_bank * self.pes_per_subarray
    }

    /// Total SIMD slots.
    pub fn total_slots(&self) -> usize {
        self.total_pes() * self.rows
    }

    /// The PE-mesh dimensions for `MovR`: PEs are arranged row-major,
    /// either in the explicitly configured shape or a near-square grid.
    pub fn mesh_dims(&self) -> (usize, usize) {
        if let Some(m) = self.mesh {
            return m;
        }
        let n = self.total_pes();
        let w = (n as f64).sqrt().ceil() as usize;
        let h = n.div_ceil(w);
        (h, w)
    }

    /// FNV-1a content hash of everything that shapes compiled code and
    /// results: the full PE hierarchy, array dimensions, the resolved mesh
    /// shape, and the tech timing constants the trace compiler bakes into
    /// step cycle counts ([`hyperap_isa::Instruction::cycles`]). Two
    /// configs with equal hashes compile any stream to interchangeable
    /// traces (modulo hash collisions — callers that cache by this hash
    /// must still validate candidates), so this is the geometry half of a
    /// shared program-cache key. Execution policy (`exec`) and fault
    /// seeding are deliberately excluded: neither changes what a compiled
    /// trace *is*.
    pub fn geometry_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        for v in self.geometry_fields() {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }

    /// The exact values [`geometry_hash`](Self::geometry_hash) digests, in
    /// digest order — the collision-proof witness for caches keyed by that
    /// hash: two configs compile any stream to interchangeable traces iff
    /// these arrays are equal.
    pub fn geometry_fields(&self) -> [u64; 10] {
        let (mh, mw) = self.mesh_dims();
        [
            self.groups as u64,
            self.banks_per_group as u64,
            self.subarrays_per_bank as u64,
            self.pes_per_subarray as u64,
            self.rows as u64,
            self.cols as u64,
            mh as u64,
            mw as u64,
            self.tech.t_search_cycles,
            self.tech.t_bit_write_cycles(),
        ]
    }

    /// Group index owning a PE id.
    pub fn group_of(&self, pe: usize) -> usize {
        pe / self.pes_per_group()
    }

    /// Bank index (within its group) owning a PE id.
    pub fn bank_of(&self, pe: usize) -> usize {
        pe % self.pes_per_group() / self.pes_per_bank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_counts() {
        let c = ArchConfig::tiny();
        assert_eq!(c.total_pes(), 8);
        assert_eq!(c.pes_per_group(), 4);
        assert_eq!(c.total_slots(), 128);
    }

    #[test]
    fn mesh_covers_all_pes() {
        let c = ArchConfig::paper_scaled(16);
        let (h, w) = c.mesh_dims();
        assert!(h * w >= c.total_pes());
    }

    #[test]
    fn hyperap_threads_one_forces_sequential_in_every_mode() {
        // Other tests in this binary only *read* the variable (thread
        // counts never change results), so the brief mutation is benign.
        std::env::set_var("HYPERAP_THREADS", "1");
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert_eq!(ExecMode::Auto.threads(), 1);
        assert_eq!(
            ExecMode::Parallel.threads(),
            1,
            "overrides the 2-worker floor"
        );
        std::env::set_var("HYPERAP_THREADS", "3");
        assert_eq!(host_width(), 3);
        assert_eq!(ExecMode::Sequential.threads(), 1);
        assert_eq!(ExecMode::Auto.threads(), 3);
        assert_eq!(ExecMode::Parallel.threads(), 3);
        std::env::remove_var("HYPERAP_THREADS");
        assert!(host_width() >= 1);
    }

    #[test]
    fn auto_break_even_rule() {
        let fj = 2_000; // the par::forkjoin_overhead_ns floor
                        // Tiny interpreter dispatch (tiny() geometry, one instruction):
                        // 64 slots × 1 op is far below break-even — Auto stays inline.
        assert_eq!(ExecMode::dispatch_threads_calibrated(2, 64, 1, fj), 1);
        // A full add32 segment on one paper-scaled group: 64 PEs × 256
        // rows × 380 micro-ops clears it easily.
        assert_eq!(
            ExecMode::dispatch_threads_calibrated(2, 64 * 256, 380, fj),
            2
        );
        // More workers raise the bar proportionally.
        assert_eq!(
            ExecMode::dispatch_threads_calibrated(16, 64 * 256, 380, fj),
            16
        );
        assert_eq!(ExecMode::dispatch_threads_calibrated(16, 4096, 4, fj), 1);
        // Sequential/Parallel ignore the estimate entirely.
        assert_eq!(ExecMode::Sequential.dispatch_threads(8, u64::MAX, 1), 1);
        assert_eq!(ExecMode::Parallel.dispatch_threads(8, 0, 0), 8);
        // Auto on a single-CPU host never forks.
        assert_eq!(ExecMode::Auto.dispatch_threads(1, u64::MAX, u64::MAX), 1);
        // And when the host-capability probe says forking can't win (one
        // physical CPU behind any HYPERAP_THREADS width), Auto stays
        // inline even for an arbitrarily large dispatch — the fix for the
        // 0.71×/0.77× forced-Parallel columns in BENCH_SIM.json.
        if !crate::par::parallel_pays() {
            assert_eq!(ExecMode::Auto.dispatch_threads(2, u64::MAX, u64::MAX), 1);
            assert_eq!(ExecMode::Auto.dispatch_threads(16, u64::MAX, u64::MAX), 1);
        }
    }

    #[test]
    fn group_and_bank_indexing() {
        let c = ArchConfig::tiny();
        assert_eq!(c.group_of(0), 0);
        assert_eq!(c.group_of(3), 0);
        assert_eq!(c.group_of(4), 1);
        assert_eq!(c.bank_of(5), 0);
    }
}
