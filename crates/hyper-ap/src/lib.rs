//! # Hyper-AP
//!
//! A from-scratch Rust reproduction of **"Hyper-AP: Enhancing Associative
//! Processing Through A Full-Stack Optimization"** (Zha & Li, ISCA 2020):
//! an RRAM-TCAM associative processor with an enhanced execution model
//! (Single-Search-Multi-Pattern + Multi-Search-Single-Write), its
//! architecture and ISA, and a compiler for a C-like language.
//!
//! This umbrella crate re-exports the subsystem crates:
//!
//! * [`tcam`] — ternary CAM arrays, device-level 2D2R model, the extended
//!   two-bit encoding, and multi-valued search minimization.
//! * [`core`] — abstract machines, execution models, and the expert
//!   arithmetic microcode.
//! * [`isa`] — the Table-I instruction set (encode/decode/assemble).
//! * [`arch`] — the hierarchical chip simulator (groups/banks/subarrays/PEs).
//! * [`compiler`] — the C-like language compiler with operation merging,
//!   operand embedding, and bit-pairing optimizations.
//! * [`model`] — technology/timing/energy/area models (Table II).
//! * [`baselines`] — traditional AP, IMP, and GPU comparison models.
//! * [`workloads`] — the synthetic and Rodinia-style benchmark sets.
//!
//! See `examples/` for runnable walkthroughs and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hyperap_arch as arch;
pub use hyperap_baselines as baselines;
pub use hyperap_compiler as compiler;
pub use hyperap_core as core;
pub use hyperap_isa as isa;
pub use hyperap_model as model;
pub use hyperap_tcam as tcam;
pub use hyperap_workloads as workloads;
