//! Flexible-precision vector arithmetic straight on the microcode API —
//! the expert RTL library of §V-B3 (add / multiply / divide / sqrt), with
//! the per-operation cost breakdown the paper's Figs 15-16 are built from.

use hyper_ap::core::machine::HyperPe;
use hyper_ap::core::microcode::Microcode;
use hyper_ap::model::TechParams;

fn main() {
    let rram = TechParams::rram();
    for width in [8usize, 16, 32] {
        let mut mc = Microcode::new(256);
        let (a, b) = mc.alloc_paired_inputs("a", "b", width);
        let _sum = mc.add(&a, &b);
        let ops = mc.program().op_counts();
        println!(
            "{width:>2}-bit add : {:>4} searches {:>3} writes {:>6} cycles",
            ops.searches,
            ops.writes(),
            ops.cycles(&rram)
        );
    }

    // Run a 16-bit pipeline end to end: d = sqrt(a*a + b*b) (vector norm).
    let mut mc = Microcode::new(256);
    let a = mc.alloc_plain_input("a", 16);
    let b = mc.alloc_plain_input("b", 16);
    let a2 = mc.mul_wrapping(&a, &a);
    let b2 = mc.mul_wrapping(&b, &b);
    let sum = mc.add(&a2, &b2);
    let norm = mc.isqrt(&sum.bits(0..17));

    let points: [(u64, u64); 4] = [(3, 4), (5, 12), (8, 15), (20, 21)];
    let mut pe = HyperPe::new(points.len(), 256);
    for (row, &(x, y)) in points.iter().enumerate() {
        a.store(&mut pe, row, x);
        b.store(&mut pe, row, y);
    }
    mc.program().run(&mut pe);
    println!("\nvector norms (computed in-memory, word-parallel):");
    for (row, &(x, y)) in points.iter().enumerate() {
        let n = norm.read(&pe, row);
        println!("  |({x:>2},{y:>2})| = {n}");
        assert_eq!(n, ((x * x + y * y) as f64).sqrt() as u64);
    }
}
