//! Offline shim for the `rand` crate.
//!
//! Provides a deterministic, seedable [`rngs::StdRng`] (SplitMix64) and the
//! small trait surface the workspace uses (`SeedableRng::seed_from_u64`,
//! `RngExt::random`, `RngExt::random_range`). Deliberately tiny: workloads
//! only need reproducible pseudo-random test vectors, not cryptographic or
//! statistically rigorous randomness.

/// Low-level word source, mirroring `rand_core::RngCore` narrowly.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG (the shim's `Standard` analogue).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Convenience draws, mirroring rand 0.10's `Rng`/`RngExt` method names.
pub trait RngExt: RngCore {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A value uniformly distributed in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// A uniformly distributed boolean.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64. Deterministic for a given
    /// seed, with 64-bit state and full-period output — entirely adequate
    /// for reproducible workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v = rng.random_range(5..17);
            assert!((5..17).contains(&v));
        }
    }
}
