//! Fig 11: bit-pairing sensitivity of the search count.

use hyperap_bench::header;
use hyperap_compiler::pairing::choose_pairing;

fn main() {
    header("Fig 11: pairing choice changes the number of searches");
    // The paper's example table (inputs A..D, minterm bit i = input i).
    let on = vec![0b1000u16, 0b0100, 0b1011, 0b0111];
    let choice = choose_pairing(4, &on);
    println!(
        "  best pairing   : {} searches (paper: 1, pairing A-B / C-D)",
        choice.best_searches
    );
    println!(
        "  worst pairing  : {} searches (paper: 4, pairing A-C / B-D)",
        choice.worst_searches
    );
    println!("  unpaired       : {} searches", choice.unpaired_searches);
    println!("  chosen pairs   : {:?}", choice.pairing.pairs);

    // Pairing quality on the full-adder outputs (Fig 5d layout).
    let sum = vec![0b001u16, 0b010, 0b100, 0b111];
    let c = choose_pairing(3, &sum);
    println!(
        "  full-adder Sum : best {} / unpaired {} (paper: 2 vs 4)",
        c.best_searches, c.unpaired_searches
    );
}
