//! Chip-level performance extraction and baseline comparison (Fig 18).

use crate::kernels::Kernel;
use crate::synthetic::{build, SyntheticOp};
use hyperap_baselines::gpu::GpuModel;
use hyperap_baselines::imp::ImpModel;
use hyperap_model::area::AreaModel;
use hyperap_model::metrics::Metrics;
use hyperap_model::tech::TechParams;
use serde::{Deserialize, Serialize};

/// Measured chip-level metrics for a synthetic operation (RRAM Hyper-AP).
pub fn synthetic_metrics(op: SyntheticOp, width: usize) -> Metrics {
    synthetic_metrics_tech(op, width, hyperap_model::tech::Technology::Rram)
}

/// Measured chip-level metrics for either implementation technology —
/// the §VI-E RRAM-vs-CMOS comparison applied to the whole operation set.
pub fn synthetic_metrics_tech(
    op: SyntheticOp,
    width: usize,
    tech: hyperap_model::tech::Technology,
) -> Metrics {
    use hyperap_model::tech::Technology;
    let bench = build(op, width);
    let ops = bench.op_counts();
    let (params, area) = match tech {
        Technology::Rram => (TechParams::rram(), AreaModel::rram()),
        Technology::Cmos => (TechParams::cmos(), AreaModel::cmos()),
    };
    let mut m = Metrics::compute(&ops, &params, &area);
    // Fig 17 convention: Multi_Add counts three additions per pass.
    m.throughput_gops *= bench.ops_per_pass as f64;
    m.power_eff_gops_w *= bench.ops_per_pass as f64;
    m.area_eff_gops_mm2 *= bench.ops_per_pass as f64;
    m
}

/// One kernel's cross-system comparison (the Fig 18 rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelComparison {
    /// Kernel name.
    pub name: &'static str,
    /// Elements processed.
    pub n: u64,
    /// Hyper-AP time (seconds) and energy (joules), measured from the
    /// compiled kernel's operation counts.
    pub hyper_time_s: f64,
    /// Hyper-AP energy in joules.
    pub hyper_energy_j: f64,
    /// IMP analytical time/energy.
    pub imp_time_s: f64,
    /// IMP energy.
    pub imp_energy_j: f64,
    /// GPU roofline time/energy.
    pub gpu_time_s: f64,
    /// GPU energy.
    pub gpu_energy_j: f64,
}

impl KernelComparison {
    /// Hyper-AP speedup over IMP.
    pub fn speedup_vs_imp(&self) -> f64 {
        self.imp_time_s / self.hyper_time_s
    }

    /// IMP energy over Hyper-AP energy (the Fig 18 "energy reduction").
    pub fn energy_reduction_vs_imp(&self) -> f64 {
        self.imp_energy_j / self.hyper_energy_j
    }

    /// Hyper-AP speedup over the GPU.
    pub fn speedup_vs_gpu(&self) -> f64 {
        self.gpu_time_s / self.hyper_time_s
    }
}

/// Compare one kernel across the three systems for `n` elements.
pub fn compare_kernel(kernel: &Kernel, n: u64) -> KernelComparison {
    let compiled = kernel.compile();
    let ops = compiled.op_counts();
    let tech = TechParams::rram();
    let area = AreaModel::rram();
    let slots = area.simd_slots();
    let passes = (n as f64 / slots as f64).ceil();

    // Per-pass latency plus local-interface transfer cost (the §IV-B
    // neighbor path: ~20 cycles per bit column; a word transfer moves the
    // element width in bit columns, conservatively 32).
    let transfer_cycles = kernel.transfers * 32.0 * 20.0;
    let pass_s = (ops.cycles(&tech) as f64 + transfer_cycles) * tech.clock_period_ns() * 1e-9;
    let hyper_time_s = passes * pass_s;
    // Only occupied PEs switch (dynamic energy); leakage is charged for the
    // whole chip for the run's duration.
    let active_pes = ((n as f64 / 256.0).ceil()).min(area.pe_count() as f64 * passes);
    let pe_energy_pj = ops.energy_pj_per_pe(&tech);
    let hyper_energy_j = pe_energy_pj * 1e-12 * active_pes
        + tech.p_static_mw * 1e-3 * area.pe_count() as f64 * hyper_time_s;

    let kops = kernel.kernel_ops(&compiled);
    let imp = ImpModel::default();
    let gpu = GpuModel::default();
    KernelComparison {
        name: kernel.name,
        n,
        hyper_time_s,
        hyper_energy_j,
        imp_time_s: imp.kernel_time_s(&kops, n),
        imp_energy_j: imp.kernel_energy_j(&kops, n),
        gpu_time_s: gpu.kernel_time_s(&kops, n),
        gpu_energy_j: gpu.kernel_energy_j(&kops, n),
    }
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        return 0.0;
    }
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::all_kernels;
    use hyperap_baselines::reference::{record, OpKind, FIG15_IMP};

    #[test]
    fn hyper_ap_beats_imp_on_every_synthetic_op() {
        // The Fig 15 "who wins": Hyper-AP must beat IMP on latency for all
        // five operations at 32 bits.
        for op in [
            OpKind::Add,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Sqrt,
            OpKind::Exp,
        ] {
            let m = synthetic_metrics(op, 32);
            let imp = record(&FIG15_IMP, op).unwrap();
            assert!(
                m.latency_ns < imp.latency_ns,
                "{op}: measured {} vs IMP {}",
                m.latency_ns,
                imp.latency_ns
            );
        }
    }

    #[test]
    fn kernels_beat_imp_on_average() {
        // Fig 18 headline: 3.3× speedup and 23.8× energy reduction on
        // average; the shape requirement is ≥ 1 on the geometric mean.
        let n = 1024 * 1024;
        let comps: Vec<KernelComparison> =
            all_kernels().iter().map(|k| compare_kernel(k, n)).collect();
        let speedup = geomean(comps.iter().map(|c| c.speedup_vs_imp()));
        let energy = geomean(comps.iter().map(|c| c.energy_reduction_vs_imp()));
        assert!(speedup > 1.0, "mean speedup {speedup:.2}");
        assert!(energy > 1.0, "mean energy reduction {energy:.2}");
    }

    #[test]
    fn cmos_hyper_ap_trades_latency_for_throughput() {
        // §VI-E / Fig 19a: CMOS Hyper-AP has lower latency (single-cycle
        // writes) but far lower throughput (TCAM density: fewer slots).
        use hyperap_model::tech::Technology;
        for op in [OpKind::Add, OpKind::Div] {
            let rram = synthetic_metrics_tech(op, 32, Technology::Rram);
            let cmos = synthetic_metrics_tech(op, 32, Technology::Cmos);
            assert!(cmos.latency_ns < rram.latency_ns, "{op} latency");
            assert!(
                cmos.throughput_gops < rram.throughput_gops,
                "{op} throughput"
            );
        }
    }

    #[test]
    fn precision_sweep_is_monotone() {
        // §VI-C: reducing precision monotonically increases throughput.
        for op in [OpKind::Add, OpKind::Mul] {
            let t8 = synthetic_metrics(op, 8).throughput_gops;
            let t16 = synthetic_metrics(op, 16).throughput_gops;
            let t32 = synthetic_metrics(op, 32).throughput_gops;
            assert!(t8 > t16 && t16 > t32, "{op}: {t8} {t16} {t32}");
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(Vec::<f64>::new()), 0.0);
    }

    #[test]
    fn multi_add_counts_three_ops_per_pass() {
        let single = synthetic_metrics(OpKind::Add, 32);
        let multi = synthetic_metrics(OpKind::MultiAdd, 32);
        // Throughput per pass ratio must reflect the 3-ops convention.
        assert!(multi.latency_ns > single.latency_ns);
        assert!(multi.throughput_gops > single.throughput_gops * 0.5);
    }
}
