//! Sparse conditional constant propagation, in two halves.
//!
//! [`fold_dfg`] is the classic Wegman–Zadeck half, run on the DFG before
//! codegen: a single forward pass over the (topologically ordered) graph
//! computes a constant lattice per node, folds all-constant nets through the
//! reference semantics ([`Dfg::eval_op`]), forwards `Select`s whose
//! predicate is known (the *conditional* part — the dead arm stops being
//! reachable), applies width-safe algebraic identities (`x*0`, `x&0`,
//! `x+0`, `x<<0`, …), and finally prunes every node unreachable from the
//! outputs. Codegen emits column programs for *every* node it is handed, so
//! pruning here is genuine dead-code elimination in the op stream.
//!
//! [`run`] is the stream half, applied to the emitted associative-op
//! program: abstract interpretation over per-column *cell-value sets* and a
//! three-point tag/latch lattice. Columns start all-zero (the machine
//! guarantee), host-loaded input columns start unknown ({0,1} plain,
//! {0,1,X} pair-encoded), and every op transfers the state forward. The
//! pass deletes searches that cannot match (a `Z` key bit over a plain
//! column, a `One` over a known-zero column), searches certain to match
//! everywhere, writes under known-empty tags, and writes that store a
//! column's known value back; key bits certain to match are *narrowed* to
//! `Masked`, shortening the keys the trace engine compares.

use std::collections::HashMap;

use hyperap_core::field::Field;
use hyperap_core::program::{ApOp, Program};
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::encoding::encode_pair;
use hyperap_tcam::key::SearchKey;

use crate::dfg::{width_mask, Dfg, DfgNode, DfgOp, NodeId};

// ---------------------------------------------------------------------------
// Stream half: abstract interpretation over column cell-value sets.
// ---------------------------------------------------------------------------

/// Cell may store `0`.
const Z: u8 = 1;
/// Cell may store `1`.
const O: u8 = 2;
/// Cell may store `X` (don't-care / pair-encoded half).
const X: u8 = 4;
/// Any cell value.
const ANY: u8 = Z | O | X;

/// Stored-cell values a key bit matches (TCAM match semantics: `X` cells
/// match any key bit; a `Z` key bit matches only stored `X`).
fn match_set(k: KeyBit) -> u8 {
    match k {
        KeyBit::Zero => Z | X,
        KeyBit::One => O | X,
        KeyBit::Z => X,
        KeyBit::Masked => ANY,
    }
}

/// The cell value a single-column write stores.
fn cell_of(k: KeyBit) -> u8 {
    match k {
        KeyBit::Zero => Z,
        KeyBit::One => O,
        KeyBit::Z => X,
        KeyBit::Masked => 0,
    }
}

/// Tag / latch vector lattice: all-ones, all-zeros, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Ones,
    Zeros,
    Top,
}

impl Tri {
    /// Possible per-row bit values as a 2-bit set (bit 0 = may be 0,
    /// bit 1 = may be 1).
    fn bit_set(self) -> u8 {
        match self {
            Tri::Zeros => 0b01,
            Tri::Ones => 0b10,
            Tri::Top => 0b11,
        }
    }
}

/// Seed the abstract column state: everything all-zero except host-loaded
/// input columns (unknown data; pair-encoded slots may also hold `X`).
fn seed_columns(inputs: &[Field], n_cols: usize) -> Vec<u8> {
    let mut cols = vec![Z; n_cols];
    for f in inputs {
        for slot in &f.slots {
            let v = if slot.is_paired() { ANY } else { Z | O };
            for c in slot.columns() {
                cols[c] = v;
            }
        }
    }
    cols
}

/// One constant-propagation sweep over `program`. Deletes provably
/// no-effect ops, narrows certain key bits to `Masked`, and rewrites the
/// program in place. Returns `(ops deleted, key bits narrowed)`.
pub fn run(program: &mut Program, inputs: &[Field], n_cols: usize) -> (usize, usize) {
    let ops = program.ops();
    let mut cols = seed_columns(inputs, n_cols);
    let mut tags = Tri::Zeros;
    let mut latch = Tri::Zeros;
    let mut delete = vec![false; ops.len()];
    let mut rewrites: HashMap<usize, SearchKey> = HashMap::new();
    let mut narrowed = 0usize;
    // Previous *kept* search (index + effective key) for duplicate removal.
    let mut prev_search: Option<(usize, SearchKey, bool)> = None;

    for (i, op) in ops.iter().enumerate() {
        match op {
            ApOp::Search { key, accumulate } => {
                let mut impossible = false;
                let mut all_certain = true;
                let mut certain: Vec<usize> = Vec::new();
                for (c, k) in key.active_bits() {
                    let v = cols[c];
                    let m = match_set(k);
                    if v & m == 0 {
                        impossible = true;
                    }
                    if v & !m & ANY == 0 {
                        certain.push(c);
                    } else {
                        all_certain = false;
                    }
                }
                if impossible {
                    // No row can match: accumulate is a no-op; overwrite
                    // clears the tags.
                    if *accumulate || tags == Tri::Zeros {
                        delete[i] = true;
                    } else {
                        tags = Tri::Zeros;
                    }
                    continue;
                }
                if all_certain {
                    // Every row matches (this includes fully masked keys).
                    if tags == Tri::Ones {
                        delete[i] = true;
                    } else {
                        tags = Tri::Ones;
                    }
                    continue;
                }
                let eff = if certain.is_empty() {
                    key.clone()
                } else {
                    let mut k = key.clone();
                    for &c in &certain {
                        k.set_bit(c, KeyBit::Masked);
                    }
                    k
                };
                // Duplicate of the immediately preceding search: an
                // accumulate re-ORs an already-present match set; two
                // identical overwrites leave the same tags.
                if let Some((p, pk, pacc)) = &prev_search {
                    // Re-ORing the same match set is idempotent whatever
                    // the previous search did; a repeated overwrite is
                    // redundant only after another overwrite.
                    if p + 1 == i && *pk == eff && (*accumulate || !*pacc) {
                        delete[i] = true;
                        continue;
                    }
                }
                if !certain.is_empty() {
                    narrowed += certain.len();
                    rewrites.insert(i, eff.clone());
                }
                tags = if *accumulate && tags == Tri::Ones {
                    Tri::Ones
                } else {
                    Tri::Top
                };
                prev_search = Some((i, eff, *accumulate));
                continue; // skip the prev_search reset below
            }
            ApOp::Latch => latch = tags,
            ApOp::Write { col, value } => {
                let cv = cell_of(*value);
                if tags == Tri::Zeros || (cols[*col] == cv && cv != 0) {
                    // No row tagged, or every row already stores the value.
                    delete[i] = true;
                } else if tags == Tri::Ones {
                    cols[*col] = cv; // strong update: every row written
                } else {
                    cols[*col] |= cv; // weak: untagged rows keep old value
                }
            }
            ApOp::WriteEncoded { col } => {
                // Strong update: every row stores encode_pair(latch, tag).
                let (mut hi, mut lo) = (0u8, 0u8);
                for lb in 0..2u8 {
                    if latch.bit_set() & (1 << lb) == 0 {
                        continue;
                    }
                    for tb in 0..2u8 {
                        if tags.bit_set() & (1 << tb) == 0 {
                            continue;
                        }
                        let cells = encode_pair(lb == 1, tb == 1);
                        let as_set = |t: TernaryBit| match t {
                            TernaryBit::Zero => Z,
                            TernaryBit::One => O,
                            TernaryBit::X => X,
                        };
                        hi |= as_set(cells[0]);
                        lo |= as_set(cells[1]);
                    }
                }
                cols[*col] = hi;
                cols[*col + 1] = lo;
            }
            ApOp::TagAll => {
                if tags == Tri::Ones {
                    delete[i] = true;
                } else {
                    tags = Tri::Ones;
                }
            }
            ApOp::TagNone => {
                if tags == Tri::Zeros {
                    delete[i] = true;
                } else {
                    tags = Tri::Zeros;
                }
            }
            ApOp::Count | ApOp::Index => {}
        }
        prev_search = None;
    }

    let deleted = delete.iter().filter(|&&d| d).count();
    if deleted == 0 && rewrites.is_empty() {
        return (0, 0);
    }
    let mut out = Program::new();
    for (i, op) in program.ops().iter().enumerate() {
        if delete[i] {
            continue;
        }
        match (rewrites.remove(&i), op) {
            (Some(k), ApOp::Search { accumulate, .. }) => out.search(k, *accumulate),
            (_, op) => out.push(op.clone()),
        }
    }
    *program = out;
    (deleted, narrowed)
}

// ---------------------------------------------------------------------------
// DFG half: Wegman–Zadeck constant folding + reachability pruning.
// ---------------------------------------------------------------------------

/// What [`fold_dfg`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfgFoldReport {
    /// Non-constant nodes replaced by `Const`.
    pub folded: usize,
    /// Nodes forwarded to an operand (identities, known `Select`s).
    pub forwarded: usize,
    /// Nodes dropped as unreachable from the outputs.
    pub pruned: usize,
}

impl DfgFoldReport {
    /// True if the graph was changed at all.
    pub fn changed(&self) -> bool {
        self.folded + self.forwarded + self.pruned > 0
    }
}

/// Per-node resolution decided by the forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Res {
    /// Keep the node (operands remapped through aliases).
    Keep,
    /// Replace with a constant of the node's width/signedness.
    Const(u64),
    /// The node *is* another node (identical width and signedness).
    Alias(NodeId),
    /// The node reduces to a width change of another node.
    Resize(NodeId),
}

/// Fold constants through the DFG, forward known `Select`s and algebraic
/// identities, and prune nodes unreachable from the outputs. Returns the
/// rewritten graph (input widths unchanged — the kernel signature is not
/// ours to edit) and a report.
pub fn fold_dfg(dfg: &Dfg) -> (Dfg, DfgFoldReport) {
    let n = dfg.len();
    let mut konst: Vec<Option<u64>> = vec![None; n];
    let mut res: Vec<Res> = vec![Res::Keep; n];

    // Chase alias chains down to a real node.
    let resolve = |res: &[Res], mut id: NodeId| -> NodeId {
        while let Res::Alias(next) = res[id] {
            id = next;
        }
        id
    };

    // Forward a node to operand `src`, but only where the rewrite is
    // width/sign exact: an alias must present the same width and
    // signedness to consumers (comparison and shift semantics peek at the
    // operand node), and a `Resize` only matches the original op's
    // mask-to-width behavior when it doesn't sign-extend.
    let forward =
        |dfg: &Dfg, konst: &mut [Option<u64>], res: &mut [Res], id: NodeId, src: NodeId| -> bool {
            let node = &dfg.nodes[id];
            let s = &dfg.nodes[src];
            if s.width == node.width && s.signed == node.signed {
                res[id] = Res::Alias(src);
                konst[id] = konst[src];
                true
            } else if !s.signed || node.width <= s.width {
                res[id] = Res::Resize(src);
                konst[id] = konst[src].map(|v| v & width_mask(node.width));
                true
            } else {
                false
            }
        };

    for id in 0..n {
        let node = &dfg.nodes[id];
        let args: Vec<NodeId> = node.inputs.iter().map(|&i| resolve(&res, i)).collect();
        let vals: Vec<Option<u64>> = args.iter().map(|&a| konst[a]).collect();
        match node.op {
            DfgOp::Input { .. } => {}
            DfgOp::Const { value } => {
                konst[id] = Some(value & width_mask(node.width));
                res[id] = Res::Const(konst[id].unwrap());
            }
            _ if !vals.is_empty() && vals.iter().all(Option::is_some) => {
                let cargs: Vec<u64> = vals.iter().map(|v| v.unwrap()).collect();
                let v = dfg.eval_op(id, &cargs);
                konst[id] = Some(v);
                res[id] = Res::Const(v);
            }
            DfgOp::Select if vals[0].is_some() => {
                let arm = if vals[0].unwrap() & 1 == 1 {
                    args[1]
                } else {
                    args[2]
                };
                forward(dfg, &mut konst, &mut res, id, arm);
            }
            DfgOp::Mul | DfgOp::And => {
                // x·0 and x&0 are zero regardless of x.
                if vals.contains(&Some(0)) {
                    konst[id] = Some(0);
                    res[id] = Res::Const(0);
                } else if node.op == DfgOp::Mul {
                    if let Some(k) = (0..2).find(|&k| vals[k] == Some(1)) {
                        forward(dfg, &mut konst, &mut res, id, args[1 - k]);
                    }
                }
            }
            DfgOp::Add | DfgOp::Or | DfgOp::Xor => {
                if let Some(k) = (0..2).find(|&k| vals[k] == Some(0)) {
                    forward(dfg, &mut konst, &mut res, id, args[1 - k]);
                }
            }
            DfgOp::Sub if vals[1] == Some(0) => {
                forward(dfg, &mut konst, &mut res, id, args[0]);
            }
            DfgOp::Shl { amount: 0 } => {
                forward(dfg, &mut konst, &mut res, id, args[0]);
            }
            DfgOp::Shr { amount: 0 } if !dfg.nodes[args[0]].signed => {
                forward(dfg, &mut konst, &mut res, id, args[0]);
            }
            _ => {}
        }
    }

    // Reachability from the (alias-resolved) outputs.
    let mut reachable = vec![false; n];
    let mut stack: Vec<NodeId> = dfg.outputs.iter().map(|&o| resolve(&res, o)).collect();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut reachable[id], true) {
            continue;
        }
        match res[id] {
            Res::Const(_) => {}
            Res::Resize(src) => stack.push(resolve(&res, src)),
            Res::Keep => {
                for &i in &dfg.nodes[id].inputs {
                    stack.push(resolve(&res, i));
                }
            }
            Res::Alias(_) => unreachable!("aliases are resolved before marking"),
        }
    }

    // Rebuild in the original (still topological) order.
    let mut out = Dfg {
        input_widths: dfg.input_widths.clone(),
        ..Dfg::default()
    };
    let mut map: Vec<Option<NodeId>> = vec![None; n];
    let mut report = DfgFoldReport::default();
    for id in 0..n {
        if !reachable[id] {
            match res[id] {
                Res::Alias(_) => report.forwarded += 1,
                _ => report.pruned += 1,
            }
            continue;
        }
        let node = &dfg.nodes[id];
        let new = match res[id] {
            Res::Const(value) => {
                if !matches!(node.op, DfgOp::Const { .. }) {
                    report.folded += 1;
                }
                DfgNode {
                    op: DfgOp::Const { value },
                    inputs: vec![],
                    width: node.width,
                    signed: node.signed,
                }
            }
            Res::Resize(src) => {
                report.forwarded += 1;
                DfgNode {
                    op: DfgOp::Resize,
                    inputs: vec![map[resolve(&res, src)].expect("operand emitted")],
                    width: node.width,
                    signed: node.signed,
                }
            }
            Res::Keep => DfgNode {
                op: node.op,
                inputs: node
                    .inputs
                    .iter()
                    .map(|&i| map[resolve(&res, i)].expect("operand emitted"))
                    .collect(),
                width: node.width,
                signed: node.signed,
            },
            Res::Alias(_) => unreachable!("aliases are never reachable"),
        };
        map[id] = Some(out.push(new));
    }
    out.outputs = dfg
        .outputs
        .iter()
        .map(|&o| map[resolve(&res, o)].expect("output emitted"))
        .collect();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_core::field::Slot;

    fn single(col: usize) -> Field {
        Field::new(format!("c{col}"), vec![Slot::Single { col }])
    }

    fn node(op: DfgOp, inputs: Vec<NodeId>, width: usize) -> DfgNode {
        DfgNode {
            op,
            inputs,
            width,
            signed: false,
        }
    }

    #[test]
    fn folds_constant_nets() {
        let mut g = Dfg {
            input_widths: vec![8],
            ..Dfg::default()
        };
        let a = g.push(node(DfgOp::Const { value: 5 }, vec![], 8));
        let b = g.push(node(DfgOp::Const { value: 7 }, vec![], 8));
        let s = g.push(node(DfgOp::Add, vec![a, b], 8));
        let x = g.push(node(DfgOp::Input { index: 0 }, vec![], 8));
        let r = g.push(node(DfgOp::Add, vec![s, x], 8));
        g.outputs = vec![r];
        let (f, rep) = fold_dfg(&g);
        assert_eq!(rep.folded, 1);
        assert!(f.nodes.iter().any(|n| n.op == DfgOp::Const { value: 12 }));
        // The two source constants fold away.
        assert!(f.len() < g.len());
        assert_eq!(f.eval(&[100]), g.eval(&[100]));
    }

    #[test]
    fn select_with_known_predicate_forwards_the_live_arm() {
        let mut g = Dfg {
            input_widths: vec![8, 8],
            ..Dfg::default()
        };
        let p = g.push(node(DfgOp::Const { value: 1 }, vec![], 1));
        let a = g.push(node(DfgOp::Input { index: 0 }, vec![], 8));
        let b = g.push(node(DfgOp::Input { index: 1 }, vec![], 8));
        let dead = g.push(node(DfgOp::Mul, vec![b, b], 8));
        let s = g.push(node(DfgOp::Select, vec![p, a, dead], 8));
        g.outputs = vec![s];
        let (f, rep) = fold_dfg(&g);
        assert!(rep.changed());
        // The dead multiply (microcode — expensive!) is pruned.
        assert!(!f.nodes.iter().any(|n| n.op == DfgOp::Mul));
        assert_eq!(f.eval(&[42, 9]), g.eval(&[42, 9]));
    }

    #[test]
    fn multiply_by_zero_and_one_simplify() {
        let mut g = Dfg {
            input_widths: vec![8],
            ..Dfg::default()
        };
        let x = g.push(node(DfgOp::Input { index: 0 }, vec![], 8));
        let zero = g.push(node(DfgOp::Const { value: 0 }, vec![], 8));
        let one = g.push(node(DfgOp::Const { value: 1 }, vec![], 8));
        let m0 = g.push(node(DfgOp::Mul, vec![x, zero], 8));
        let m1 = g.push(node(DfgOp::Mul, vec![x, one], 8));
        let r = g.push(node(DfgOp::Or, vec![m0, m1], 8));
        g.outputs = vec![r];
        let (f, _) = fold_dfg(&g);
        assert!(!f.nodes.iter().any(|n| n.op == DfgOp::Mul));
        for v in [0u64, 1, 77, 255] {
            assert_eq!(f.eval(&[v]), g.eval(&[v]));
        }
    }

    #[test]
    fn forwarding_respects_signed_widening() {
        // Add(x, 0) widening a *signed* source must NOT become Resize
        // (Resize sign-extends; Add masks).
        let mut g = Dfg {
            input_widths: vec![4],
            ..Dfg::default()
        };
        let x = g.push(DfgNode {
            op: DfgOp::Input { index: 0 },
            inputs: vec![],
            width: 4,
            signed: true,
        });
        let zero = g.push(node(DfgOp::Const { value: 0 }, vec![], 8));
        let r = g.push(node(DfgOp::Add, vec![x, zero], 8));
        g.outputs = vec![r];
        let (f, _) = fold_dfg(&g);
        // 0b1000 (-8 as 4-bit) must stay 0x8, not sign-extend to 0xF8.
        assert_eq!(f.eval(&[0b1000]), g.eval(&[0b1000]));
        assert_eq!(f.eval(&[0b1000]), vec![0b1000]);
    }

    #[test]
    fn stream_deletes_impossible_and_narrows_certain_bits() {
        // Col 0: plain input. Col 1: virgin zero.
        let mut p = Program::new();
        // Certain bit (col 1 is known zero) + real bit (col 0): narrowed.
        p.search(
            SearchKey::masked(4)
                .with_bit(0, KeyBit::One)
                .with_bit(1, KeyBit::Zero),
            false,
        );
        p.write(2, KeyBit::One);
        // Impossible: Z over a plain column.
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::Z), true);
        p.write(3, KeyBit::One);
        let (deleted, narrowed) = run(&mut p, &[single(0)], 4);
        assert_eq!((deleted, narrowed), (1, 1));
        let ApOp::Search { key, .. } = &p.ops()[0] else {
            panic!("first op stays a search");
        };
        assert_eq!(key.bit(1), KeyBit::Masked, "certain bit narrowed");
        assert_eq!(key.bit(0), KeyBit::One, "real bit kept");
    }

    #[test]
    fn stream_deletes_writes_under_empty_tags_and_value_nops() {
        let mut p = Program::new();
        p.write(1, KeyBit::One); // tags start all-clear: dead
        p.push(ApOp::TagAll);
        p.write(2, KeyBit::Zero); // col 2 already stores 0 everywhere: no-op
        p.write(3, KeyBit::One); // live
        let (deleted, _) = run(&mut p, &[], 4);
        assert_eq!(deleted, 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn stream_drops_duplicate_adjacent_accumulate() {
        let mut p = Program::new();
        let k = SearchKey::masked(2).with_bit(0, KeyBit::One);
        p.search(k.clone(), false);
        p.search(k.clone(), true); // re-ORs its own result: no-op
        p.write(1, KeyBit::One);
        let (deleted, _) = run(&mut p, &[single(0)], 2);
        assert_eq!(deleted, 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn stream_keeps_live_programs_intact() {
        let mut p = Program::new();
        p.search(SearchKey::masked(2).with_bit(0, KeyBit::Zero), false);
        p.write(1, KeyBit::One);
        let before = p.clone();
        assert_eq!(run(&mut p, &[single(0)], 2), (0, 0));
        assert_eq!(p, before);
    }
}
