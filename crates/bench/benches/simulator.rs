//! Criterion micro-benchmarks for the simulator substrate and the compiler.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperap_compiler::{compile, CompileOptions};
use hyperap_core::machine::HyperPe;
use hyperap_core::microcode::Microcode;
use hyperap_tcam::array::TcamArray;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::mvsop::{minimize, Cover, PosKind};
use std::hint::black_box;

fn bench_tcam_search(c: &mut Criterion) {
    let mut array = TcamArray::pe_sized();
    for row in 0..256 {
        array.store_field(row, 0, 64, row as u64 * 0x9E37_79B9);
    }
    let mut key = SearchKey::masked(256);
    key.set_field(0, 12, 0xABC);
    c.bench_function("tcam_search_256x256", |b| {
        b.iter(|| black_box(array.search(black_box(&key))))
    });
}

fn bench_mvsop(c: &mut Criterion) {
    // The 1-bit full-adder Sum cover (Fig 5d).
    let cover = Cover::new(
        vec![PosKind::Pair, PosKind::Single],
        vec![vec![0b10, 0], vec![0b01, 0], vec![0b00, 1], vec![0b11, 1]],
    );
    c.bench_function("mvsop_minimize_full_adder", |b| {
        b.iter(|| black_box(minimize(black_box(&cover))))
    });
}

fn bench_microcode_add(c: &mut Criterion) {
    c.bench_function("microcode_build_add32", |b| {
        b.iter(|| {
            let mut mc = Microcode::new(256);
            let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
            black_box(mc.add(&x, &y));
        })
    });
}

fn bench_machine_run(c: &mut Criterion) {
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let prog = mc.into_program();
    c.bench_function("pe_run_add32_256rows", |b| {
        b.iter(|| {
            let mut pe = HyperPe::new(256, 256);
            black_box(prog.run(&mut pe));
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let src = "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) {
        return (a & b) + (a ^ b);
    }";
    c.bench_function("compile_merge_8bit", |b| {
        b.iter(|| black_box(compile(black_box(src), &CompileOptions::default()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_tcam_search,
    bench_mvsop,
    bench_microcode_add,
    bench_machine_run,
    bench_compile
);
criterion_main!(benches);
