//! One-shot generator for the frozen slab byte-image fixtures in
//! `tests/golden/` (run manually; the golden test rebuilds the same state
//! through the public API and asserts byte identity in both directions).

use hyperap_tcam::bit::TernaryBit;
use hyperap_tcam::slab::{TagSlab, TcamSlab};
use hyperap_tcam::tags::TagVector;
use hyperap_tcam::FaultModel;

fn cell_pattern(pe: usize, row: usize, col: usize) -> TernaryBit {
    match (pe + 3 * row + 7 * col) % 3 {
        0 => TernaryBit::Zero,
        1 => TernaryBit::One,
        _ => TernaryBit::X,
    }
}

fn tag_pattern(pes: usize, rows: usize, salt: usize) -> TagSlab {
    let mut t = TagSlab::zeros(pes, rows);
    for pe in 0..pes {
        let tv = TagVector::from_bools((0..rows).map(|r| (r + pe + salt).is_multiple_of(3)));
        t.set_pe(pe, &tv);
    }
    t
}

fn main() {
    let dir = std::path::Path::new("crates/tcam/tests/golden");
    std::fs::create_dir_all(dir).unwrap();

    // v1 (fault-free) image: odd geometry so row tails are exercised.
    let mut plain = TcamSlab::new(4, 66, 7);
    for pe in 0..4 {
        for row in 0..66 {
            for col in 0..7 {
                plain.set_cell(pe, row, col, cell_pattern(pe, row, col));
            }
        }
    }
    let tags = tag_pattern(4, 66, 1);
    plain.write_column_multi(2, TernaryBit::One, tags.words(), None);
    plain.write_column_multi(5, TernaryBit::Zero, tags.words(), None);
    std::fs::write(dir.join("slab_v1.bin"), plain.to_bytes()).unwrap();

    // v2 (fault-attached) image: seeded stuck/miss model, endurance limit
    // low enough that serviced wear retires a column onto a spare per PE.
    let model = FaultModel {
        seed: 0x60_1D_F1_5E,
        stuck_per_million: 60_000,
        miss_per_million: 30_000,
        endurance_limit: Some(3),
    };
    let mut slab = TcamSlab::new(5, 70, 9);
    for pe in 0..5 {
        for row in 0..70 {
            for col in 0..9 {
                slab.set_cell(pe, row, col, cell_pattern(pe, row, col));
            }
        }
    }
    slab.attach_fault(model, 2, 3);
    let tags = tag_pattern(5, 70, 2);
    slab.write_column_multi(2, TernaryBit::One, tags.words(), None);
    slab.write_column_multi(2, TernaryBit::Zero, tags.words(), None);
    slab.write_column_multi(2, TernaryBit::One, tags.words(), None);
    slab.write_column_multi(4, TernaryBit::X, tags.words(), None);
    slab.advance_epoch();
    slab.service_endurance().unwrap();
    std::fs::write(dir.join("slab_v2.bin"), slab.to_bytes()).unwrap();

    // TagSlab image.
    std::fs::write(dir.join("tags_v1.bin"), tag_pattern(5, 70, 2).to_bytes()).unwrap();

    println!("fixtures written to {}", dir.display());
}
