//! Property tests: binary encoding and assembly round-trips for arbitrary
//! instruction streams.

use hyperap_isa::{asm, decode_stream, encode, Direction, Instruction, KEY_COLUMNS};
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;
use proptest::prelude::*;

fn key_bit() -> impl Strategy<Value = KeyBit> {
    prop_oneof![
        Just(KeyBit::Zero),
        Just(KeyBit::One),
        Just(KeyBit::Z),
        Just(KeyBit::Masked)
    ]
}

fn instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (any::<bool>(), any::<bool>())
            .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
        (any::<u8>(), any::<bool>()).prop_map(|(col, encode)| Instruction::Write { col, encode }),
        prop::collection::vec(key_bit(), 1..40).prop_map(|bits| Instruction::SetKey {
            key: SearchKey::from_bits(bits),
        }),
        Just(Instruction::Count),
        Just(Instruction::Index),
        (0u8..4).prop_map(|d| Instruction::MovR {
            dir: Direction::from_code(d),
        }),
        (0u32..1 << 17).prop_map(|addr| Instruction::ReadR { addr }),
        (0u32..1 << 17, prop::collection::vec(any::<u8>(), 64))
            .prop_map(|(addr, imm)| Instruction::WriteR { addr, imm }),
        Just(Instruction::SetTag),
        Just(Instruction::ReadTag),
        any::<u8>().prop_map(|m| Instruction::Broadcast { group_mask: m }),
        any::<u8>().prop_map(|c| Instruction::Wait { cycles: c }),
    ]
}

fn keys_equal(a: &SearchKey, b: &SearchKey) -> bool {
    (0..KEY_COLUMNS).all(|c| a.bit(c) == b.bit(c))
}

fn instructions_equal(a: &Instruction, b: &Instruction) -> bool {
    match (a, b) {
        (Instruction::SetKey { key: ka }, Instruction::SetKey { key: kb }) => keys_equal(ka, kb),
        _ => a == b,
    }
}

proptest! {
    #[test]
    fn binary_round_trip(stream in prop::collection::vec(instruction(), 0..24)) {
        let bytes = encode(&stream);
        let expected: usize = stream.iter().map(|i| i.length()).sum();
        prop_assert_eq!(bytes.len(), expected, "Table I lengths");
        let decoded = decode_stream(&bytes).unwrap();
        prop_assert_eq!(decoded.len(), stream.len());
        for (d, s) in decoded.iter().zip(&stream) {
            prop_assert!(instructions_equal(d, s), "{:?} vs {:?}", d, s);
        }
    }

    #[test]
    fn assembly_round_trip(stream in prop::collection::vec(instruction(), 0..16)) {
        let text = asm::format(&stream);
        let parsed = asm::parse(&text).unwrap();
        prop_assert_eq!(parsed.len(), stream.len());
        for (p, s) in parsed.iter().zip(&stream) {
            // WriteR immediates shorter than 64 bytes re-parse exactly;
            // binary encoding pads — assembly must not.
            prop_assert!(instructions_equal(p, s), "{:?} vs {:?}", p, s);
        }
    }
}
