//! Post-codegen program optimization (the `opt_level` pipeline).
//!
//! Three passes run over the emitted associative-operation stream, in the
//! order constant propagation → liveness → loop summarization, iterated to
//! a fixpoint (each pass exposes opportunities for the others: a constant-
//! folded search orphans its write, a dead write orphans its search series,
//! and a compacted stream pairs up adjacent write blocks):
//!
//! 1. [`sccp`] — sparse conditional constant propagation. Abstract
//!    interpretation over per-column cell-value sets ({0}, {1}, {X} and
//!    unions) plus a tag/latch lattice {all-ones, all-zeros, ⊤}. Searches
//!    whose key can never match are deleted (accumulating) or pin the tags
//!    to all-zeros (overwriting); searches certain to match everywhere pin
//!    the tags to all-ones; writes under all-zero tags, writes that store a
//!    column's known value back, and redundant tag ops are deleted; key
//!    bits certain to match are masked off (narrowing). The companion
//!    [`sccp::fold_dfg`] runs the classic Wegman–Zadeck half of the story
//!    *before* codegen: constant nets fold, `Select` on a known predicate
//!    keeps one arm, and nodes unreachable from the outputs are pruned.
//! 2. [`liveness`] — backward live-variable analysis over columns, tags,
//!    and the encoder latch. Writes to columns that are never read again
//!    (and overwritten pair writes), search series whose tags nobody
//!    consumes, and orphaned `Latch`/tag ops are deleted.
//! 3. [`summarize`] — detects the codegen's unrolled per-bit repetition and
//!    re-emits adjacent single-column write blocks as one closed-form
//!    encoded-pair write (`Latch` + `WriteEncoded`), remapping the output
//!    field layout to the pair encoding. This shortens the stream the
//!    downstream trace peephole fuses over.
//!
//! Correctness contract: an optimized program must produce bit-identical
//! *machine-visible* results — output field values and the
//! [`Outcome`](hyperap_core::program::Outcome) of `Count`/`Index` ops —
//! for every input. Dead scratch columns and the physical encoding of
//! output bits may legitimately differ from level 0.

pub mod liveness;
pub mod sccp;
pub mod summarize;

use hyperap_core::field::Field;
use hyperap_core::program::Program;

/// What the optimizer did to one program (for reports and benches).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Ops deleted by constant propagation.
    pub sccp_deleted: usize,
    /// Key bits narrowed to `Masked` by constant propagation.
    pub narrowed_bits: usize,
    /// Ops deleted by liveness analysis.
    pub dead_deleted: usize,
    /// Unrolled repetition blocks detected by the summarizer.
    pub loops_found: usize,
    /// Write-block pairs re-emitted as encoded-pair writes.
    pub fused_pairs: usize,
    /// Fixpoint rounds run.
    pub rounds: usize,
}

impl OptReport {
    /// Total ops removed from the stream.
    pub fn deleted(&self) -> usize {
        // Each fusion nets one op (two writes become latch + encoded write,
        // and the latch is free in the op accounting).
        self.sccp_deleted + self.dead_deleted + self.fused_pairs
    }
}

/// Optimize `program` in place at the given level.
///
/// `inputs` seed the abstract cell values (host-loaded columns hold unknown
/// data); `outputs` are the live-out columns and may be *remapped* by the
/// summarizer (single columns becoming encoded-pair halves). `n_cols` is
/// the PE geometry.
pub fn optimize(
    program: &mut Program,
    inputs: &[Field],
    outputs: &mut [Field],
    n_cols: usize,
    level: u8,
) -> OptReport {
    let mut report = OptReport::default();
    if level == 0 || program.is_empty() {
        return report;
    }
    loop {
        report.rounds += 1;
        let (deleted, narrowed) = sccp::run(program, inputs, n_cols);
        report.sccp_deleted += deleted;
        report.narrowed_bits += narrowed;
        let dead = liveness::run(program, outputs);
        report.dead_deleted += dead;
        if deleted == 0 && dead == 0 {
            break;
        }
        // The passes strictly shrink the program, so this terminates.
        if report.rounds > 64 {
            break;
        }
    }
    let (loops_found, fused) = summarize::run(program, inputs, outputs);
    report.loops_found = loops_found;
    report.fused_pairs = fused;
    if fused > 0 {
        // Fusion rewrites write blocks; one more cleanup round.
        report.rounds += 1;
        let (deleted, narrowed) = sccp::run(program, inputs, n_cols);
        report.sccp_deleted += deleted;
        report.narrowed_bits += narrowed;
        report.dead_deleted += liveness::run(program, outputs);
    }
    report
}

/// Counted (cycle-bearing) operations of a program — the metric the
/// op-reduction targets are stated in.
pub fn counted_ops(program: &Program) -> u64 {
    let c = program.op_counts();
    c.searches + c.writes_single + c.writes_encoded + c.tag_ops + c.counts + c.indexes
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_core::field::Slot;
    use hyperap_core::machine::HyperPe;
    use hyperap_core::program::ApOp;
    use hyperap_tcam::bit::KeyBit;
    use hyperap_tcam::key::SearchKey;

    fn single(col: usize) -> Field {
        Field::new(format!("c{col}"), vec![Slot::Single { col }])
    }

    #[test]
    fn level_zero_is_identity() {
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.write(3, KeyBit::One);
        let before = p.clone();
        let r = optimize(&mut p, &[single(0)], &mut [single(3)], 4, 0);
        assert_eq!(p, before);
        assert_eq!(r, OptReport::default());
    }

    #[test]
    fn fixpoint_cascades_across_passes() {
        // A search series feeding a write to a column nobody reads: the
        // liveness pass kills the write, then the search series.
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.write(2, KeyBit::One); // dead: col 2 is not an output
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::Zero), false);
        p.write(3, KeyBit::One);
        let mut outs = [single(3)];
        let r = optimize(&mut p, &[single(0)], &mut outs, 4, 1);
        assert_eq!(p.len(), 2, "only the live series remains: {:?}", p.ops());
        assert!(r.dead_deleted >= 2);
    }

    #[test]
    fn optimized_equals_reference_on_a_small_program() {
        // not(a) into col 3 via an impossible-term-padded series.
        let build = |opt: bool| -> (Program, Field) {
            let mut p = Program::new();
            p.search(SearchKey::masked(4).with_bit(0, KeyBit::Zero), false);
            // Impossible term: Z only matches stored X; col 0 is a plain bit.
            p.search(SearchKey::masked(4).with_bit(0, KeyBit::Z), true);
            p.write(3, KeyBit::One);
            let mut outs = [single(3)];
            if opt {
                optimize(&mut p, &[single(0)], &mut outs, 4, 1);
            }
            let [out] = outs;
            (p, out)
        };
        for a in [0u64, 1] {
            let mut results = Vec::new();
            for opt in [false, true] {
                let (p, out) = build(opt);
                let mut pe = HyperPe::new(1, 4);
                single(0).store(&mut pe, 0, a);
                p.run(&mut pe);
                results.push(out.read(&pe, 0));
            }
            assert_eq!(results[0], results[1], "a={a}");
            assert_eq!(results[0], 1 - a);
        }
        let (p, _) = build(true);
        assert_eq!(p.len(), 2, "impossible term deleted");
    }

    #[test]
    fn counted_ops_ignores_free_ops() {
        let mut p = Program::new();
        p.push(ApOp::Latch);
        p.search(SearchKey::masked(2).with_bit(0, KeyBit::One), false);
        assert_eq!(counted_ops(&p), 1);
    }
}
