//! Offline shim for the `serde` crate.
//!
//! The workspace must build with no registry access, and the real `serde` is
//! only used for `#[derive(Serialize, Deserialize)]` markers — nothing in the
//! repo serializes anything yet. This shim provides the two trait names and
//! re-exports no-op derive macros so the annotations compile unchanged. When
//! a future PR needs real serialization, swap the path dependency back to the
//! registry crate; the source code will not need to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; never implemented by
/// the no-op derive).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; never implemented by
/// the no-op derive).
pub trait Deserialize<'de> {}
