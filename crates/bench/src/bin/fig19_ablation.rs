//! Fig 19: Hyper-AP vs traditional AP on RRAM and CMOS, with the
//! contribution breakdown.

use hyperap_baselines::reference::fig19;
use hyperap_baselines::traditional::{ablation_ladder, breakdown};
use hyperap_bench::header;
use hyperap_model::tech::Technology;

fn main() {
    header("Fig 19a: 32-bit addition, traditional AP vs Hyper-AP");
    for tech in [Technology::Rram, Technology::Cmos] {
        let ladder = ablation_ladder(32, tech);
        println!("  [{tech}]");
        for (variant, cost) in &ladder {
            println!(
                "    {:<36} {:>9.0} ns  {:>12.0} GOPS  ({} searches, {} writes)",
                variant.to_string(),
                cost.latency_ns,
                cost.throughput_gops,
                cost.ops.searches,
                cost.ops.writes()
            );
        }
        let gain = ladder[0].1.latency_ns / ladder[3].1.latency_ns;
        let paper_gain = match tech {
            Technology::Rram => fig19::R_AP_LATENCY_FACTOR,
            Technology::Cmos => fig19::C_AP_LATENCY_FACTOR,
        };
        println!("    total improvement {gain:.1}x (paper {paper_gain:.0}x)");
    }
    println!(
        "\n  RRAM benefits more than CMOS (paper: 36x vs 13x) because the write\n  \
         reduction exceeds the search reduction and RRAM writes are 10x slower."
    );

    header("Fig 19b: throughput-improvement breakdown");
    for (tech, paper) in [
        (Technology::Rram, fig19::R_BREAKDOWN),
        (Technology::Cmos, fig19::C_BREAKDOWN),
    ] {
        let b = breakdown(32, tech);
        // `paper` is ordered [search keys, array design, accumulation
        // unit]; our measured `b` is [accumulation, array, keys].
        println!(
            "  [{tech}] accumulation unit {:.0}% | array design {:.0}% | search keys {:.0}%   (paper: {:.0}% / {:.0}% / {:.0}%)",
            b[0] * 100.0,
            b[1] * 100.0,
            b[2] * 100.0,
            paper[2] * 100.0,
            paper[1] * 100.0,
            paper[0] * 100.0,
        );
    }
    println!(
        "\n  NOTE: our traditional baseline already cube-minimizes lookup tables\n  \
         (7 searches per full adder, exactly Fig 2b), so less of the gain is\n  \
         attributed to the extended search keys than the paper reports; see\n  \
         EXPERIMENTS.md."
    );
}
