//! Paper-reported evaluation data (Figs 15-17).
//!
//! Provenance: the Hyper-AP columns are read directly from the figures of
//! Zha & Li, ISCA 2020; the IMP columns are derived from the same figures
//! (each Hyper-AP bar is annotated with its improvement over IMP, so
//! `IMP = Hyper-AP ∘ factor`). These constants exist so the benchmark
//! harness can print *paper vs measured* rows; all measured Hyper-AP values
//! are produced by this repository's simulator and compiler.

use serde::{Deserialize, Serialize};

/// The evaluated arithmetic operations of Figs 15-17.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// 32/16-bit addition.
    Add,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Integer square root.
    Sqrt,
    /// Fixed-point exponential.
    Exp,
    /// Three consecutive additions (Fig 17 `Multi_Add`).
    MultiAdd,
    /// Addition with immediate operand (Fig 17 `Add_i`).
    AddImm,
    /// Multiplication with immediate operand (Fig 17 `Mul_i`).
    MulImm,
    /// Division with immediate operand (Fig 17 `Div_i`).
    DivImm,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Add => "Add",
            OpKind::Mul => "Mul",
            OpKind::Div => "Div",
            OpKind::Sqrt => "Sqrt",
            OpKind::Exp => "Exp",
            OpKind::MultiAdd => "Multi_Add",
            OpKind::AddImm => "Add_i",
            OpKind::MulImm => "Mul_i",
            OpKind::DivImm => "Div_i",
        };
        write!(f, "{s}")
    }
}

/// One operation's performance record (the four y-axes of Figs 15-17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpRecord {
    /// Operation.
    pub op: OpKind,
    /// Latency in nanoseconds.
    pub latency_ns: f64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// Power efficiency in GOPS/W.
    pub power_eff: f64,
    /// Area efficiency in GOPS/mm².
    pub area_eff: f64,
}

/// Fig 15: Hyper-AP on 32-bit unsigned integers (paper-reported).
pub const FIG15_HYPER_AP: [OpRecord; 5] = [
    OpRecord {
        op: OpKind::Add,
        latency_ns: 592.0,
        throughput_gops: 56_680.0,
        power_eff: 233.0,
        area_eff: 126.0,
    },
    OpRecord {
        op: OpKind::Mul,
        latency_ns: 7_196.0,
        throughput_gops: 4_663.0,
        power_eff: 14.0,
        area_eff: 10.0,
    },
    OpRecord {
        op: OpKind::Div,
        latency_ns: 20_928.0,
        throughput_gops: 1_603.0,
        power_eff: 4.8,
        area_eff: 3.5,
    },
    OpRecord {
        op: OpKind::Sqrt,
        latency_ns: 58_661.0,
        throughput_gops: 572.0,
        power_eff: 1.7,
        area_eff: 1.3,
    },
    OpRecord {
        op: OpKind::Exp,
        latency_ns: 25_760.0,
        throughput_gops: 1_303.0,
        power_eff: 3.8,
        area_eff: 2.9,
    },
];

/// Fig 15: IMP (derived: Hyper-AP value ∘ reported improvement factor —
/// latency ×, others ÷).
pub const FIG15_IMP: [OpRecord; 5] = [
    OpRecord {
        op: OpKind::Add,
        latency_ns: 2_309.0,
        throughput_gops: 13_824.0,
        power_eff: 97.0,
        area_eff: 28.6,
    },
    OpRecord {
        op: OpKind::Mul,
        latency_ns: 57_568.0,
        throughput_gops: 2_332.0,
        power_eff: 10.0,
        area_eff: 4.5,
    },
    OpRecord {
        op: OpKind::Div,
        latency_ns: 142_310.0,
        throughput_gops: 668.0,
        power_eff: 0.089,
        area_eff: 1.4,
    },
    OpRecord {
        op: OpKind::Sqrt,
        latency_ns: 586_610.0,
        throughput_gops: 358.0,
        power_eff: 0.089,
        area_eff: 0.76,
    },
    OpRecord {
        op: OpKind::Exp,
        latency_ns: 115_920.0,
        throughput_gops: 383.0,
        power_eff: 0.070,
        area_eff: 0.78,
    },
];

/// Fig 16: Hyper-AP on 16-bit unsigned integers (paper-reported).
pub const FIG16_HYPER_AP: [OpRecord; 5] = [
    OpRecord {
        op: OpKind::Add,
        latency_ns: 292.0,
        throughput_gops: 114_910.0,
        power_eff: 473.0,
        area_eff: 254.0,
    },
    OpRecord {
        op: OpKind::Mul,
        latency_ns: 1_698.0,
        throughput_gops: 19_761.0,
        power_eff: 58.0,
        area_eff: 44.0,
    },
    OpRecord {
        op: OpKind::Div,
        latency_ns: 5_264.0,
        throughput_gops: 6_374.0,
        power_eff: 19.0,
        area_eff: 14.0,
    },
    OpRecord {
        op: OpKind::Sqrt,
        latency_ns: 13_689.0,
        throughput_gops: 2_451.0,
        power_eff: 7.3,
        area_eff: 5.4,
    },
    OpRecord {
        op: OpKind::Exp,
        latency_ns: 6_416.0,
        throughput_gops: 5_230.0,
        power_eff: 15.6,
        area_eff: 11.6,
    },
];

/// Fig 17: Hyper-AP on merged additions and immediate-operand operations
/// (32-bit, paper-reported). `Multi_Add` throughput counts three additions
/// per pass.
pub const FIG17_HYPER_AP: [OpRecord; 4] = [
    OpRecord {
        op: OpKind::MultiAdd,
        latency_ns: 1_322.0,
        throughput_gops: 76_145.0,
        power_eff: 422.0,
        area_eff: 168.0,
    },
    OpRecord {
        op: OpKind::AddImm,
        latency_ns: 493.0,
        throughput_gops: 68_062.0,
        power_eff: 291.0,
        area_eff: 151.0,
    },
    OpRecord {
        op: OpKind::MulImm,
        latency_ns: 3_324.0,
        throughput_gops: 10_095.0,
        power_eff: 30.0,
        area_eff: 22.0,
    },
    OpRecord {
        op: OpKind::DivImm,
        latency_ns: 17_248.0,
        throughput_gops: 1_945.0,
        power_eff: 5.8,
        area_eff: 4.3,
    },
];

/// Fig 17: IMP (derived from the reported factors).
pub const FIG17_IMP: [OpRecord; 4] = [
    OpRecord {
        op: OpKind::MultiAdd,
        latency_ns: 11_634.0,
        throughput_gops: 42_303.0,
        power_eff: 146.0,
        area_eff: 84.0,
    },
    OpRecord {
        op: OpKind::AddImm,
        latency_ns: 1_627.0,
        throughput_gops: 13_890.0,
        power_eff: 97.0,
        area_eff: 28.5,
    },
    OpRecord {
        op: OpKind::MulImm,
        latency_ns: 12_299.0,
        throughput_gops: 2_348.0,
        power_eff: 10.0,
        area_eff: 4.7,
    },
    OpRecord {
        op: OpKind::DivImm,
        latency_ns: 96_589.0,
        throughput_gops: 671.0,
        power_eff: 0.089,
        area_eff: 1.4,
    },
];

/// Fig 19a paper values for the 32-bit-addition AP comparison.
pub mod fig19 {
    /// RRAM Hyper-AP latency (ns).
    pub const R_HYPER_LATENCY_NS: f64 = 592.0;
    /// RRAM traditional-AP latency = 36× worse (§VI-E).
    pub const R_AP_LATENCY_FACTOR: f64 = 36.0;
    /// CMOS Hyper-AP latency (ns).
    pub const C_HYPER_LATENCY_NS: f64 = 232.0;
    /// CMOS traditional-AP latency = 13× worse.
    pub const C_AP_LATENCY_FACTOR: f64 = 13.0;
    /// Search-count reduction for 32-bit add (§III).
    pub const SEARCH_REDUCTION: f64 = 5.3;
    /// Write-count reduction for 32-bit add (§III).
    pub const WRITE_REDUCTION: f64 = 25.5;
    /// Fig 19b RRAM breakdown: share of the throughput gain from the
    /// additional search keys / TCAM array design / accumulation unit.
    pub const R_BREAKDOWN: [f64; 3] = [0.83, 0.15, 0.02];
    /// Fig 19b CMOS breakdown.
    pub const C_BREAKDOWN: [f64; 3] = [0.88, 0.11, 0.01];
}

/// Look up a record by op in a table.
pub fn record(table: &[OpRecord], op: OpKind) -> Option<OpRecord> {
    table.iter().copied().find(|r| r.op == op)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_slots_over_latency() {
        // Internal consistency of the paper data: throughput ≈
        // 33,554,432 slots / latency (ns) for the single-op figures.
        for r in FIG15_HYPER_AP.iter().chain(&FIG16_HYPER_AP) {
            let derived = 33_554_432.0 / r.latency_ns;
            let rel = (derived - r.throughput_gops).abs() / r.throughput_gops;
            assert!(
                rel < 0.02,
                "{}: derived {derived} vs {}",
                r.op,
                r.throughput_gops
            );
        }
    }

    #[test]
    fn multi_add_counts_three_ops() {
        let r = record(&FIG17_HYPER_AP, OpKind::MultiAdd).unwrap();
        let derived = 3.0 * 33_554_432.0 / r.latency_ns;
        assert!((derived - r.throughput_gops).abs() / r.throughput_gops < 0.02);
    }

    #[test]
    fn headline_fig15_factors() {
        // "up to 4.1×, 54× and 4.4× improvement in throughput, power
        // efficiency and area efficiency" (§VI headline).
        let tput_max = FIG15_HYPER_AP
            .iter()
            .zip(&FIG15_IMP)
            .map(|(h, i)| h.throughput_gops / i.throughput_gops)
            .fold(0.0f64, f64::max);
        let peff_max = FIG15_HYPER_AP
            .iter()
            .zip(&FIG15_IMP)
            .map(|(h, i)| h.power_eff / i.power_eff)
            .fold(0.0f64, f64::max);
        let aeff_max = FIG15_HYPER_AP
            .iter()
            .zip(&FIG15_IMP)
            .map(|(h, i)| h.area_eff / i.area_eff)
            .fold(0.0f64, f64::max);
        assert!((tput_max - 4.1).abs() < 0.15, "{tput_max}");
        assert!((peff_max - 54.0).abs() < 2.0, "{peff_max}");
        assert!((aeff_max - 4.4).abs() < 0.15, "{aeff_max}");
    }

    #[test]
    fn sixteen_bit_add_scales_linearly() {
        // §VI-C: halving precision doubles addition throughput...
        let r32 = record(&FIG15_HYPER_AP, OpKind::Add).unwrap();
        let r16 = record(&FIG16_HYPER_AP, OpKind::Add).unwrap();
        let ratio = r16.throughput_gops / r32.throughput_gops;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
        // …and complex ops scale roughly quadratically.
        let m32 = record(&FIG15_HYPER_AP, OpKind::Mul).unwrap();
        let m16 = record(&FIG16_HYPER_AP, OpKind::Mul).unwrap();
        let mratio = m16.throughput_gops / m32.throughput_gops;
        assert!(mratio > 3.5 && mratio < 5.0, "ratio {mratio}");
    }
}
