//! Ternary content-addressable memory (TCAM) models for Hyper-AP.
//!
//! This crate implements the storage substrate of the paper at two levels of
//! abstraction, plus the search-key algebra that makes
//! *Single-Search-Multi-Pattern* possible:
//!
//! * [`bit`] / [`key`] / [`tags`] — the ternary state space of Fig 4: stored
//!   bits in {0, 1, X}, key bits in {0, 1, Z, masked}, and the tag bit-vector
//!   with its accumulation (OR) mode.
//! * [`array`](mod@array) — a fast, bit-parallel functional TCAM array (column-major
//!   bitmask representation; a 256-row search is a handful of 64-bit ops per
//!   active column).
//! * [`device`] — a device-level 2D2R crossbar model (Fig 3/7): 1D1R cells
//!   with explicit resistance states, match-line discharge evaluation, and
//!   the V/3 write scheme. Property tests prove it equivalent to [`array`](mod@array).
//! * [`encoding`] — the extended two-bit encoding of Fig 5: the pair encoding
//!   00/01/10/11 ↦ X0/X1/0X/1X and the complete coverage algebra showing
//!   every non-empty subset of original pair values is reachable by exactly
//!   one encoded search key.
//! * [`slab`] — slab-backed multi-PE storage: one contiguous
//!   column-major-across-PEs arena per chunk of PEs with fused search/write
//!   kernels, bit-identical to a `Vec` of per-PE [`array`](mod@array)s but swept
//!   linearly like the banked hardware.
//! * [`similarity`] — CAM-native similarity search: the graded "how many
//!   key bits miss?" question (ternary Hamming distance), the progressive
//!   top-k threshold schedule, and the scalar per-PE reference that pins
//!   the slab's word-parallel distance kernels.
//!
//! # Example
//!
//! ```
//! use hyperap_tcam::{TcamArray, key::SearchKey};
//!
//! let mut array = TcamArray::new(4, 8);
//! array.store_word(0, &hyperap_tcam::bit::word_from_str("11010000").unwrap());
//! array.store_word(1, &hyperap_tcam::bit::word_from_str("1X010000").unwrap());
//! let key = SearchKey::parse("11-1----").unwrap();
//! let tags = array.search(&key);
//! assert!(tags.get(0));
//! assert!(tags.get(1)); // stored X matches key bit 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bit;
pub mod device;
pub mod encoding;
pub mod fault;
pub mod key;
pub mod mvsop;
mod plane;
pub mod similarity;
pub mod slab;
mod sweep;
pub mod tags;

pub use array::TcamArray;
pub use bit::{KeyBit, TernaryBit};
pub use fault::{FaultError, FaultModel};
pub use key::SearchKey;
pub use slab::{TagSlab, TcamSlab};
pub use tags::TagVector;
