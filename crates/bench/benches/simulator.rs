//! Criterion micro-benchmarks for the simulator substrate and the compiler.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperap_arch::{ApMachine, ArchConfig, ExecMode};
use hyperap_compiler::{compile, CompileOptions};
use hyperap_core::machine::HyperPe;
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use hyperap_tcam::array::TcamArray;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::mvsop::{minimize, Cover, PosKind};
use hyperap_tcam::tags::TagVector;
use std::hint::black_box;

fn bench_tcam_search(c: &mut Criterion) {
    let mut array = TcamArray::pe_sized();
    for row in 0..256 {
        array.store_field(row, 0, 64, row as u64 * 0x9E37_79B9);
    }
    let mut key = SearchKey::masked(256);
    key.set_field(0, 12, 0xABC);
    c.bench_function("tcam_search_256x256", |b| {
        b.iter(|| black_box(array.search(black_box(&key))))
    });
}

fn bench_tcam_search_into(c: &mut Criterion) {
    // Same workload as `tcam_search_256x256`, but through the
    // buffer-reusing API — the steady-state engine path.
    let mut array = TcamArray::pe_sized();
    for row in 0..256 {
        array.store_field(row, 0, 64, row as u64 * 0x9E37_79B9);
    }
    let mut key = SearchKey::masked(256);
    key.set_field(0, 12, 0xABC);
    let mut tags = TagVector::zeros(256);
    c.bench_function("tcam_search_into_256x256", |b| {
        b.iter(|| {
            array.search_into(black_box(&key), &mut tags);
            black_box(tags.blocks()[0])
        })
    });
}

fn bench_group_run(c: &mut Criterion) {
    // Group-level engine fan-out: add32 on every PE of a 4-group machine,
    // sequential vs threaded dispatch.
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let stream = lower(&mc.into_program());
    for (id, mode) in [
        ("group_run_add32_seq", ExecMode::Sequential),
        ("group_run_add32_par", ExecMode::Parallel),
    ] {
        let mut cfg = ArchConfig::paper_scaled(64);
        cfg.groups = 4;
        cfg.exec = mode;
        let streams: Vec<_> = (0..cfg.groups).map(|_| stream.clone()).collect();
        let mut m = ApMachine::new(cfg);
        c.bench_function(id, |b| b.iter(|| black_box(m.run(&streams))));
    }
}

fn bench_mvsop(c: &mut Criterion) {
    // The 1-bit full-adder Sum cover (Fig 5d).
    let cover = Cover::new(
        vec![PosKind::Pair, PosKind::Single],
        vec![vec![0b10, 0], vec![0b01, 0], vec![0b00, 1], vec![0b11, 1]],
    );
    c.bench_function("mvsop_minimize_full_adder", |b| {
        b.iter(|| black_box(minimize(black_box(&cover))))
    });
}

fn bench_microcode_add(c: &mut Criterion) {
    c.bench_function("microcode_build_add32", |b| {
        b.iter(|| {
            let mut mc = Microcode::new(256);
            let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
            black_box(mc.add(&x, &y));
        })
    });
}

fn bench_machine_run(c: &mut Criterion) {
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let prog = mc.into_program();
    c.bench_function("pe_run_add32_256rows", |b| {
        b.iter(|| {
            let mut pe = HyperPe::new(256, 256);
            black_box(prog.run(&mut pe));
        })
    });
}

fn bench_compile(c: &mut Criterion) {
    let src = "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) {
        return (a & b) + (a ^ b);
    }";
    c.bench_function("compile_merge_8bit", |b| {
        b.iter(|| black_box(compile(black_box(src), &CompileOptions::default()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_tcam_search,
    bench_tcam_search_into,
    bench_mvsop,
    bench_microcode_add,
    bench_machine_run,
    bench_group_run,
    bench_compile
);
criterion_main!(benches);
