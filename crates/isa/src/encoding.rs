//! Binary instruction encoding with Table I byte lengths.
//!
//! Layout: the high nibble of byte 0 is the opcode; low-nibble bits carry
//! small flags (`<acc>`, `<encode>`, `<dir>`, the high address bit).
//! `SetKey`/`WriteR` carry a 512-bit immediate — for `SetKey` it encodes the
//! key+mask registers at 2 bits per column (§IV-A3): `00` = masked,
//! `01` = key 1 (mask 1), `10` = key 0 (mask 1), `11` = the `Z` input.

use crate::instruction::{Direction, Instruction, KEY_COLUMNS};
use bytes::{Buf, BufMut, BytesMut};
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;

const OP_SEARCH: u8 = 0x1;
const OP_WRITE: u8 = 0x2;
const OP_SETKEY: u8 = 0x3;
const OP_COUNT: u8 = 0x4;
const OP_INDEX: u8 = 0x5;
const OP_MOVR: u8 = 0x6;
const OP_READR: u8 = 0x7;
const OP_WRITER: u8 = 0x8;
const OP_SETTAG: u8 = 0x9;
const OP_READTAG: u8 = 0xA;
const OP_BROADCAST: u8 = 0xB;
const OP_WAIT: u8 = 0xC;

/// Errors from [`decode_stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode nibble at the given byte offset.
    UnknownOpcode {
        /// Offending opcode nibble.
        opcode: u8,
        /// Byte offset.
        offset: usize,
    },
    /// The stream ended inside an instruction.
    Truncated {
        /// Byte offset of the truncated instruction.
        offset: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnknownOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#x} at byte {offset}")
            }
            DecodeError::Truncated { offset } => {
                write!(f, "truncated instruction at byte {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Pack a key into the 512-bit `SetKey` immediate (2 bits per column).
pub fn pack_key(key: &SearchKey) -> [u8; 64] {
    let mut out = [0u8; 64];
    for col in 0..KEY_COLUMNS {
        let code: u8 = match key.bit(col) {
            KeyBit::Masked => 0b00,
            KeyBit::One => 0b01,
            KeyBit::Zero => 0b10,
            KeyBit::Z => 0b11,
        };
        out[col / 4] |= code << (2 * (col % 4));
    }
    out
}

/// Unpack a 512-bit `SetKey` immediate back into a key.
pub fn unpack_key(imm: &[u8; 64]) -> SearchKey {
    let mut key = SearchKey::masked(KEY_COLUMNS);
    for col in 0..KEY_COLUMNS {
        let code = imm[col / 4] >> (2 * (col % 4)) & 0b11;
        let bit = match code {
            0b00 => KeyBit::Masked,
            0b01 => KeyBit::One,
            0b10 => KeyBit::Zero,
            _ => KeyBit::Z,
        };
        key.set_bit(col, bit);
    }
    key
}

/// Encode an instruction stream to bytes.
pub fn encode(instructions: &[Instruction]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    for inst in instructions {
        encode_one(inst, &mut buf);
    }
    buf.to_vec()
}

fn encode_one(inst: &Instruction, buf: &mut BytesMut) {
    match inst {
        Instruction::Search { acc, encode } => {
            buf.put_u8(OP_SEARCH << 4 | (*acc as u8) | (*encode as u8) << 1);
        }
        Instruction::Write { col, encode } => {
            buf.put_u8(OP_WRITE << 4 | (*encode as u8));
            buf.put_u8(*col);
        }
        Instruction::SetKey { key } => {
            buf.put_u8(OP_SETKEY << 4);
            buf.put_slice(&pack_key(key));
        }
        Instruction::Count => buf.put_u8(OP_COUNT << 4),
        Instruction::Index => buf.put_u8(OP_INDEX << 4),
        Instruction::MovR { dir } => buf.put_u8(OP_MOVR << 4 | dir.code()),
        Instruction::ReadR { addr } => {
            buf.put_u8(OP_READR << 4 | (addr >> 16 & 1) as u8);
            buf.put_u16(*addr as u16);
        }
        Instruction::WriteR { addr, imm } => {
            buf.put_u8(OP_WRITER << 4 | (addr >> 16 & 1) as u8);
            buf.put_u16(*addr as u16);
            let mut padded = imm.clone();
            padded.resize(64, 0);
            buf.put_slice(&padded);
        }
        Instruction::SetTag => buf.put_u8(OP_SETTAG << 4),
        Instruction::ReadTag => buf.put_u8(OP_READTAG << 4),
        Instruction::Broadcast { group_mask } => {
            buf.put_u8(OP_BROADCAST << 4);
            buf.put_u8(*group_mask);
        }
        Instruction::Wait { cycles } => {
            buf.put_u8(OP_WAIT << 4);
            buf.put_u8(*cycles);
        }
    }
}

/// Decode a full instruction stream.
///
/// # Errors
///
/// Returns [`DecodeError`] on unknown opcodes or truncation.
pub fn decode_stream(mut bytes: &[u8]) -> Result<Vec<Instruction>, DecodeError> {
    let total = bytes.len();
    let mut out = Vec::new();
    while bytes.has_remaining() {
        let offset = total - bytes.remaining();
        let b0 = bytes.get_u8();
        let opcode = b0 >> 4;
        let need = |n: usize, bytes: &&[u8]| -> Result<(), DecodeError> {
            if bytes.remaining() < n {
                Err(DecodeError::Truncated { offset })
            } else {
                Ok(())
            }
        };
        let inst = match opcode {
            OP_SEARCH => Instruction::Search {
                acc: b0 & 1 != 0,
                encode: b0 & 2 != 0,
            },
            OP_WRITE => {
                need(1, &bytes)?;
                Instruction::Write {
                    col: bytes.get_u8(),
                    encode: b0 & 1 != 0,
                }
            }
            OP_SETKEY => {
                need(64, &bytes)?;
                let mut imm = [0u8; 64];
                bytes.copy_to_slice(&mut imm);
                Instruction::SetKey {
                    key: unpack_key(&imm),
                }
            }
            OP_COUNT => Instruction::Count,
            OP_INDEX => Instruction::Index,
            OP_MOVR => Instruction::MovR {
                dir: Direction::from_code(b0),
            },
            OP_READR => {
                need(2, &bytes)?;
                let lo = bytes.get_u16() as u32;
                Instruction::ReadR {
                    addr: (b0 as u32 & 1) << 16 | lo,
                }
            }
            OP_WRITER => {
                need(66, &bytes)?;
                let lo = bytes.get_u16() as u32;
                let mut imm = vec![0u8; 64];
                bytes.copy_to_slice(&mut imm);
                Instruction::WriteR {
                    addr: (b0 as u32 & 1) << 16 | lo,
                    imm,
                }
            }
            OP_SETTAG => Instruction::SetTag,
            OP_READTAG => Instruction::ReadTag,
            OP_BROADCAST => {
                need(1, &bytes)?;
                Instruction::Broadcast {
                    group_mask: bytes.get_u8(),
                }
            }
            OP_WAIT => {
                need(1, &bytes)?;
                Instruction::Wait {
                    cycles: bytes.get_u8(),
                }
            }
            other => {
                return Err(DecodeError::UnknownOpcode {
                    opcode: other,
                    offset,
                })
            }
        };
        out.push(inst);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Instruction> {
        let key = SearchKey::parse("10Z-").unwrap();
        vec![
            Instruction::SetKey { key },
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Search {
                acc: true,
                encode: true,
            },
            Instruction::Write {
                col: 200,
                encode: false,
            },
            Instruction::Write {
                col: 7,
                encode: true,
            },
            Instruction::Count,
            Instruction::Index,
            Instruction::MovR {
                dir: Direction::Right,
            },
            Instruction::ReadR { addr: 0x1ABCD },
            Instruction::WriteR {
                addr: 0x0FF00,
                imm: (0..64).collect(),
            },
            Instruction::SetTag,
            Instruction::ReadTag,
            Instruction::Broadcast {
                group_mask: 0b1010_0101,
            },
            Instruction::Wait { cycles: 99 },
        ]
    }

    #[test]
    fn round_trip_all_instructions() {
        let prog = sample_instructions();
        let bytes = encode(&prog);
        let decoded = decode_stream(&bytes).unwrap();
        // SetKey keys normalize to the 256-column register width.
        assert_eq!(decoded.len(), prog.len());
        for (a, b) in decoded.iter().zip(&prog) {
            match (a, b) {
                (Instruction::SetKey { key: ka }, Instruction::SetKey { key: kb }) => {
                    for col in 0..KEY_COLUMNS {
                        assert_eq!(ka.bit(col), kb.bit(col), "column {col}");
                    }
                }
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn encoded_length_matches_table1() {
        let prog = sample_instructions();
        let bytes = encode(&prog);
        let expected: usize = prog.iter().map(|i| i.length()).sum();
        assert_eq!(bytes.len(), expected);
    }

    #[test]
    fn key_pack_unpack_round_trip() {
        let mut key = SearchKey::masked(KEY_COLUMNS);
        key.set_bit(0, KeyBit::One);
        key.set_bit(1, KeyBit::Zero);
        key.set_bit(100, KeyBit::Z);
        key.set_bit(255, KeyBit::One);
        let unpacked = unpack_key(&pack_key(&key));
        for col in 0..KEY_COLUMNS {
            assert_eq!(unpacked.bit(col), key.bit(col), "column {col}");
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let bytes = encode(&[Instruction::Write {
            col: 3,
            encode: false,
        }]);
        let err = decode_stream(&bytes[..1]).unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { offset: 0 }));
    }

    #[test]
    fn unknown_opcode_errors() {
        let err = decode_stream(&[0xF0]).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::UnknownOpcode { opcode: 0xF, .. }
        ));
        assert!(err.to_string().contains("unknown opcode"));
    }

    #[test]
    fn addr_17_bits_survive() {
        let bytes = encode(&[Instruction::ReadR { addr: 0x1FFFF }]);
        let decoded = decode_stream(&bytes).unwrap();
        assert_eq!(decoded, vec![Instruction::ReadR { addr: 0x1FFFF }]);
    }
}
