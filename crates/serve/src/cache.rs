//! The shared cross-tenant program cache.
//!
//! PR 4 gave every machine a private content-addressed trace cache — the
//! right shape for one long-lived machine rerunning one kernel, and the
//! wrong one for a pool: N tenants submitting the same kernel through N
//! machines would compile it N times and cache it N times. This module
//! hoists that cache above the pool: one concurrent, capacity-bounded LRU
//! shared by every submitter, keyed by content
//! ([`hyperap_arch::stream_set_hash`] of the instruction streams +
//! [`hyperap_arch::ArchConfig::geometry_hash`]).
//!
//! Correctness over the hash is never assumed: a key hit is validated by
//! comparing the full stream set (cheap — the vectorized `SearchKey`
//! equality from the slab work) *and* the geometry witness
//! ([`ArchConfig::geometry_fields`], the exact values the geometry hash
//! digests), and a collision on either half recompiles and replaces the
//! entry rather than serving the wrong program.
//!
//! Compilation happens *outside* the cache lock, so a miss never stalls
//! concurrent hits; two threads racing to compile the same cold program do
//! duplicate work once, and the second insert wins harmlessly (both values
//! are bit-identical by construction).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hyperap_arch::{stream_set_hash, ArchConfig, CompiledTrace};
use hyperap_isa::Instruction;

/// A compiled program as the cache stores it: the source streams (the
/// validation witness) plus their compiled traces, shared read-only behind
/// an `Arc` by every job that runs it.
#[derive(Debug)]
pub struct CachedProgram {
    /// Cache key: `(stream-set hash, geometry hash)`.
    pub key: (u64, u64),
    /// The instruction streams exactly as submitted, one per group.
    pub streams: Vec<Vec<Instruction>>,
    /// The geometry witness ([`ArchConfig::geometry_fields`]) the program
    /// was compiled for — the exact values the key's geometry hash
    /// digests, validated on every hit alongside stream equality so a
    /// geometry-hash collision can never serve a trace compiled for a
    /// different machine shape.
    pub geometry: [u64; 10],
    /// One compiled trace per stream.
    pub traces: Vec<CompiledTrace>,
}

impl CachedProgram {
    /// Whether any stream can touch data registers outside its own PE
    /// (`MovR`/`ReadR`/`WriteR`) — the property that rules out batching
    /// with neighbors and pins the program to a full machine.
    pub fn touches_remote_regs(&self) -> bool {
        self.streams
            .iter()
            .any(|s| s.iter().any(Instruction::touches_remote_regs))
    }
}

/// Monotonic counters describing cache behavior since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered by a validated resident entry.
    pub hits: u64,
    /// Lookups that compiled (entry absent).
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Hash collisions caught by stream validation (entry replaced).
    pub collisions: u64,
}

impl CacheStats {
    /// Hit fraction of all lookups (`0.0` when none happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.collisions;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    program: Arc<CachedProgram>,
    /// Logical LRU clock value of the last touch.
    last_used: u64,
}

struct Inner {
    entries: HashMap<(u64, u64), Entry>,
    clock: u64,
}

/// A concurrent, capacity-bounded (LRU) program cache shared across
/// tenants and machines. See the [module docs](self).
pub struct ProgramCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    collisions: AtomicU64,
}

impl std::fmt::Debug for ProgramCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramCache")
            .field("capacity", &self.capacity)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ProgramCache {
    /// An empty cache holding at most `capacity` compiled programs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a cacheless pool would silently
    /// recompile every submission, which is never what a serving layer
    /// wants; make the bound explicit instead.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "program cache capacity must be non-zero");
        ProgramCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }

    /// Look up `streams` for the given geometry, compiling on a miss.
    ///
    /// The returned program is shared: repeated calls with equal streams
    /// return clones of one `Arc` until the entry is evicted. Hits are
    /// validated by full stream equality; a hash collision (different
    /// streams, same key) is counted, recompiled, and replaces the
    /// resident entry.
    pub fn get_or_compile(
        &self,
        streams: &[Vec<Instruction>],
        config: &ArchConfig,
    ) -> Arc<CachedProgram> {
        let geometry = config.geometry_fields();
        let key = (stream_set_hash(streams), config.geometry_hash());
        let mut collision = false;
        {
            let mut inner = self.inner.lock().expect("cache lock");
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(entry) = inner.entries.get_mut(&key) {
                if entry.program.streams == streams && entry.program.geometry == geometry {
                    entry.last_used = clock;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(&entry.program);
                }
                collision = true;
            }
        }
        // Compile outside the lock: a cold kernel must not stall hits.
        if collision {
            self.collisions.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let program = Arc::new(CachedProgram {
            key,
            streams: streams.to_vec(),
            geometry,
            traces: hyperap_arch::trace::compile_streams(streams, config),
        });
        let mut inner = self.inner.lock().expect("cache lock");
        inner.clock += 1;
        let clock = inner.clock;
        // A racing thread may have inserted the same program while we
        // compiled; reuse its Arc so batch coalescing (which compares by
        // pointer first) sees one shared value.
        if let Some(entry) = inner.entries.get_mut(&key) {
            if entry.program.streams == streams && entry.program.geometry == geometry {
                entry.last_used = clock;
                return Arc::clone(&entry.program);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                program: Arc::clone(&program),
                last_used: clock,
            },
        );
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty over-capacity cache");
            inner.entries.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_tcam::SearchKey;

    fn stream(pattern: &str) -> Vec<Vec<Instruction>> {
        vec![vec![
            Instruction::SetKey {
                key: SearchKey::parse(pattern).unwrap(),
            },
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Count,
        ]]
    }

    #[test]
    fn hit_shares_one_arc() {
        let cfg = ArchConfig::tiny();
        let cache = ProgramCache::new(4);
        let a = cache.get_or_compile(&stream("1-"), &cfg);
        let b = cache.get_or_compile(&stream("1-"), &cfg);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_geometry_is_a_distinct_entry() {
        let cache = ProgramCache::new(4);
        let mut wide = ArchConfig::tiny();
        wide.cols *= 2;
        let a = cache.get_or_compile(&stream("1-"), &ArchConfig::tiny());
        let b = cache.get_or_compile(&stream("1-"), &wide);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cfg = ArchConfig::tiny();
        let cache = ProgramCache::new(2);
        cache.get_or_compile(&stream("1-"), &cfg);
        cache.get_or_compile(&stream("0-"), &cfg);
        cache.get_or_compile(&stream("1-"), &cfg); // touch: "0-" is now LRU
        cache.get_or_compile(&stream("-1"), &cfg); // evicts "0-"
        assert_eq!(cache.stats().evictions, 1);
        cache.get_or_compile(&stream("1-"), &cfg);
        assert_eq!(cache.stats().hits, 2, "the touched entry survived");
        cache.get_or_compile(&stream("0-"), &cfg);
        assert_eq!(cache.stats().misses, 4, "the evicted entry recompiled");
    }
}
