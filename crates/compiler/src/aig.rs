//! And-inverter graphs (§V-B3): the netlist representation produced by the
//! RTL library and consumed by LUT generation.
//!
//! Literals carry a complement bit (`node << 1 | inverted`). Construction
//! performs constant propagation and structural hashing — binding a constant
//! to an RTL input therefore *erases* the corresponding logic, which is
//! exactly how immediate operands get embedded into the lookup tables
//! (§V-B4c).

use std::collections::HashMap;

/// A literal: node id with complement bit.
pub type Lit = u32;

/// The constant-false literal.
pub const FALSE: Lit = 0;
/// The constant-true literal.
pub const TRUE: Lit = 1;

/// Make a literal from node id and inversion flag.
pub fn lit(node: u32, inverted: bool) -> Lit {
    node << 1 | inverted as u32
}

/// Node id of a literal.
pub fn lit_node(l: Lit) -> u32 {
    l >> 1
}

/// Inversion flag of a literal.
pub fn lit_inverted(l: Lit) -> bool {
    l & 1 == 1
}

/// Complement a literal.
pub fn lit_not(l: Lit) -> Lit {
    l ^ 1
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AigNode {
    /// The constant-false node (id 0).
    Const0,
    /// Primary input.
    Input {
        /// Input index.
        index: u32,
    },
    /// Two-input AND of literals.
    And(Lit, Lit),
}

/// An and-inverter graph.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(Lit, Lit), u32>,
    n_inputs: u32,
}

impl Aig {
    /// Empty AIG (node 0 is the constant).
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const0],
            strash: HashMap::new(),
            n_inputs: 0,
        }
    }

    /// Number of nodes (including the constant).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the constant node exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Number of AND nodes.
    pub fn and_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> u32 {
        self.n_inputs
    }

    /// Node accessor.
    pub fn node(&self, id: u32) -> AigNode {
        self.nodes[id as usize]
    }

    /// Create a new primary input; returns its (positive) literal.
    pub fn input(&mut self) -> Lit {
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input {
            index: self.n_inputs,
        });
        self.n_inputs += 1;
        lit(id, false)
    }

    /// Constant literal.
    pub fn constant(&self, value: bool) -> Lit {
        if value {
            TRUE
        } else {
            FALSE
        }
    }

    /// AND with constant folding and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding.
        if a == FALSE || b == FALSE {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == lit_not(b) {
            return FALSE;
        }
        // Canonical order.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return lit(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        lit(id, false)
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let n = self.and(lit_not(a), lit_not(b));
        lit_not(n)
    }

    /// XOR.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let n1 = self.and(a, lit_not(b));
        let n2 = self.and(lit_not(a), b);
        self.or(n1, n2)
    }

    /// XNOR.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        let x = self.xor(a, b);
        lit_not(x)
    }

    /// 2:1 multiplexer: `sel ? t : f`.
    pub fn mux(&mut self, sel: Lit, t: Lit, f: Lit) -> Lit {
        let a = self.and(sel, t);
        let b = self.and(lit_not(sel), f);
        self.or(a, b)
    }

    /// Majority of three (full-adder carry).
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let t = self.or(ab, ac);
        self.or(t, bc)
    }

    /// Evaluate a literal under an input assignment.
    pub fn eval(&self, l: Lit, inputs: &[bool]) -> bool {
        let v = self.eval_node(lit_node(l), inputs);
        v ^ lit_inverted(l)
    }

    fn eval_node(&self, id: u32, inputs: &[bool]) -> bool {
        match self.nodes[id as usize] {
            AigNode::Const0 => false,
            AigNode::Input { index } => inputs[index as usize],
            AigNode::And(a, b) => self.eval(a, inputs) && self.eval(b, inputs),
        }
    }

    /// The transitive-fanin cone of `roots` (node ids, topologically
    /// sorted, constants/inputs included).
    pub fn cone(&self, roots: &[Lit]) -> Vec<u32> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut stack: Vec<(u32, bool)> = roots.iter().map(|&l| (lit_node(l), false)).collect();
        while let Some((id, expanded)) = stack.pop() {
            if expanded {
                order.push(id);
                continue;
            }
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            stack.push((id, true));
            if let AigNode::And(a, b) = self.nodes[id as usize] {
                stack.push((lit_node(a), false));
                stack.push((lit_node(b), false));
            }
        }
        order
    }

    /// Which polarity of each AND node do `bits` reference? Returns the
    /// `(positive, negative)` node-id sets. An AND node appearing *only*
    /// in the negative set is a candidate for inverted-literal absorption:
    /// its root LUT can store the complemented function directly instead
    /// of paying a separate inverter LUT per use.
    pub fn polarity_uses(
        &self,
        bits: &[Lit],
    ) -> (
        std::collections::HashSet<u32>,
        std::collections::HashSet<u32>,
    ) {
        let mut pos = std::collections::HashSet::new();
        let mut neg = std::collections::HashSet::new();
        for &l in bits {
            let n = lit_node(l);
            if matches!(self.node(n), AigNode::And(..)) {
                if lit_inverted(l) {
                    neg.insert(n);
                } else {
                    pos.insert(n);
                }
            }
        }
        (pos, neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, FALSE), FALSE);
        assert_eq!(g.and(a, TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, lit_not(a)), FALSE);
        assert_eq!(g.and_count(), 0, "no gates were materialized");
    }

    #[test]
    fn structural_hashing_dedupes() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.and_count(), 1);
    }

    #[test]
    fn polarity_uses_splits_and_nodes_by_inversion() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.and(a, b); // used both ways
        let y = g.or(a, b); // = ¬(¬a·¬b): the AND node is used inverted
        let (pos, neg) = g.polarity_uses(&[x, lit_not(x), y, a]);
        assert!(pos.contains(&lit_node(x)) && neg.contains(&lit_node(x)));
        assert!(neg.contains(&lit_node(y)) && !pos.contains(&lit_node(y)));
        // Inputs are not AND nodes and never appear.
        assert!(!pos.contains(&lit_node(a)) && !neg.contains(&lit_node(a)));
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            assert_eq!(g.eval(x, &[va, vb]), va ^ vb);
        }
    }

    #[test]
    fn mux_and_maj() {
        let mut g = Aig::new();
        let s = g.input();
        let t = g.input();
        let f = g.input();
        let m = g.mux(s, t, f);
        let j = g.maj(s, t, f);
        for v in 0..8u32 {
            let ins = [(v & 1) != 0, (v & 2) != 0, (v & 4) != 0];
            assert_eq!(g.eval(m, &ins), if ins[0] { ins[1] } else { ins[2] });
            assert_eq!(
                g.eval(j, &ins),
                (ins[0] as u8 + ins[1] as u8 + ins[2] as u8) >= 2
            );
        }
    }

    #[test]
    fn cone_is_topological() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.and(a, b);
        let y = g.xor(x, a);
        let cone = g.cone(&[y]);
        let pos: HashMap<u32, usize> = cone.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &id in &cone {
            if let AigNode::And(p, q) = g.node(id) {
                assert!(pos[&lit_node(p)] < pos[&id]);
                assert!(pos[&lit_node(q)] < pos[&id]);
            }
        }
    }
}
