//! Fig 16: the same operations on 16-bit unsigned integers — the flexible
//! data-precision advantage (IMP is fixed at 32 bits).

use hyperap_baselines::reference::{record, OpKind, FIG15_IMP, FIG16_HYPER_AP};
use hyperap_bench::{header, metric_block, ratio};
use hyperap_workloads::perf::synthetic_metrics;

fn main() {
    header("Fig 16: representative arithmetic operations, 16-bit unsigned");
    for op in [
        OpKind::Add,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Sqrt,
        OpKind::Exp,
    ] {
        let m16 = synthetic_metrics(op, 16);
        let m32 = synthetic_metrics(op, 32);
        let paper = record(&FIG16_HYPER_AP, op).unwrap();
        metric_block(&op.to_string(), &m16, &paper);
        let imp = record(&FIG15_IMP, op).unwrap(); // IMP cannot narrow
        println!(
            "     precision scaling 32->16: {} (paper expects ~2x add, ~4x complex) | vs IMP throughput {:.1}x",
            ratio(m16.throughput_gops, m32.throughput_gops),
            m16.throughput_gops / imp.throughput_gops,
        );
    }
}
