//! Property-based tests: the device-level 2D2R crossbar model is
//! observationally equivalent to the fast functional TCAM model, and the
//! encoding algebra is consistent with brute-force evaluation.

use hyperap_tcam::array::TcamArray;
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::device::DeviceTcam;
use hyperap_tcam::encoding::{encode_pair, key_coverage, key_for_subset, PairSubset};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::tags::TagVector;
use proptest::prelude::*;

fn ternary_bit() -> impl Strategy<Value = TernaryBit> {
    prop_oneof![
        Just(TernaryBit::Zero),
        Just(TernaryBit::One),
        Just(TernaryBit::X)
    ]
}

fn key_bit() -> impl Strategy<Value = KeyBit> {
    prop_oneof![
        Just(KeyBit::Zero),
        Just(KeyBit::One),
        Just(KeyBit::Z),
        Just(KeyBit::Masked)
    ]
}

proptest! {
    #[test]
    fn device_equals_functional_search(
        words in prop::collection::vec(prop::collection::vec(ternary_bit(), 6), 1..20),
        key_bits in prop::collection::vec(key_bit(), 6),
    ) {
        let rows = words.len();
        let mut dev = DeviceTcam::new(rows, 6);
        let mut fun = TcamArray::new(rows, 6);
        for (r, w) in words.iter().enumerate() {
            dev.store_word(r, w);
            fun.store_word(r, w);
        }
        let key = SearchKey::from_bits(key_bits);
        let dt = dev.search(&key);
        let ft = fun.search(&key);
        for r in 0..rows {
            prop_assert_eq!(dt.get(r), ft.get(r), "row {}", r);
        }
    }

    #[test]
    fn device_equals_functional_after_write(
        words in prop::collection::vec(prop::collection::vec(ternary_bit(), 5), 1..12),
        write_bits in prop::collection::vec(key_bit(), 5),
        tag_bools in prop::collection::vec(any::<bool>(), 12),
        probe_bits in prop::collection::vec(key_bit(), 5),
    ) {
        let rows = words.len();
        let mut dev = DeviceTcam::new(rows, 5);
        let mut fun = TcamArray::new(rows, 5);
        for (r, w) in words.iter().enumerate() {
            dev.store_word(r, w);
            fun.store_word(r, w);
        }
        let tags = TagVector::from_bools(tag_bools[..rows].iter().copied());
        let wkey = SearchKey::from_bits(write_bits);
        dev.write(&wkey, &tags);
        fun.write(&wkey, &tags);
        // States must agree cell by cell...
        for r in 0..rows {
            for c in 0..5 {
                prop_assert_eq!(dev.read_bit(r, c), fun.cell(r, c));
            }
        }
        // ...and observationally under an arbitrary probe search.
        let probe = SearchKey::from_bits(probe_bits);
        let dt = dev.search(&probe);
        let ft = fun.search(&probe);
        for r in 0..rows {
            prop_assert_eq!(dt.get(r), ft.get(r));
        }
    }

    #[test]
    fn search_never_tags_nonmatching_word(
        word in prop::collection::vec(ternary_bit(), 8),
        key_bits in prop::collection::vec(key_bit(), 8),
    ) {
        let mut a = TcamArray::new(1, 8);
        a.store_word(0, &word);
        let key = SearchKey::from_bits(key_bits.clone());
        let tagged = a.search(&key).get(0);
        let expected = key_bits.iter().zip(&word).all(|(k, w)| k.matches(*w));
        prop_assert_eq!(tagged, expected);
    }

    #[test]
    fn key_for_subset_round_trips(mask in 1u8..16) {
        let subset = PairSubset(mask);
        let key = key_for_subset(subset).unwrap();
        prop_assert_eq!(key_coverage(key), subset);
    }

    #[test]
    fn coverage_matches_bruteforce(k1 in key_bit(), k0 in key_bit()) {
        let cov = key_coverage([k1, k0]);
        for v in 0u8..4 {
            let enc = encode_pair(v & 2 != 0, v & 1 != 0);
            let matched = k1.matches(enc[0]) && k0.matches(enc[1]);
            prop_assert_eq!(cov.contains(v), matched);
        }
    }

    #[test]
    fn write_then_exact_search_tags_written_rows(
        rows in 2usize..40,
        value in 0u64..32,
    ) {
        let mut a = TcamArray::new(rows, 5);
        // Write `value` into even rows via the associative write path.
        let tags = TagVector::from_bools((0..rows).map(|r| r % 2 == 0));
        let mut key = SearchKey::masked(5);
        key.set_field(0, 5, value);
        a.write(&key, &tags);
        let result = a.search(&key);
        for r in (0..rows).step_by(2) {
            prop_assert!(result.get(r));
        }
        // Odd rows hold the initial all-zero word; they match iff value == 0.
        if value != 0 {
            for r in (1..rows).step_by(2) {
                prop_assert!(!result.get(r));
            }
        }
    }
}

mod mvsop_properties {
    use hyperap_tcam::mvsop::{minimize, traditional_searches, Cover, PosKind};
    use proptest::prelude::*;

    fn random_cover() -> impl Strategy<Value = Cover> {
        // Two pairs + one single: 32-minterm space.
        prop::collection::vec(any::<bool>(), 32).prop_map(|bits| {
            let mut on = Vec::new();
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    let p0 = (i & 0b11) as u8;
                    let p1 = (i >> 2 & 0b11) as u8;
                    let s = (i >> 4 & 1) as u8;
                    on.push(vec![p0, p1, s]);
                }
            }
            Cover::new(vec![PosKind::Pair, PosKind::Pair, PosKind::Single], on)
        })
    }

    proptest! {
        #[test]
        fn minimized_cover_is_exact(cover in random_cover()) {
            let sol = minimize(&cover);
            let off = cover.off_set();
            for m in &cover.on_set {
                prop_assert!(sol.terms.iter().any(|t| t.covers(m)),
                             "ON minterm {:?} uncovered", m);
            }
            for m in &off {
                prop_assert!(!sol.terms.iter().any(|t| t.covers(m)),
                             "OFF minterm {:?} covered", m);
            }
        }

        #[test]
        fn minimized_never_exceeds_traditional(cover in random_cover()) {
            let sol = minimize(&cover);
            if !cover.on_set.is_empty() {
                prop_assert!(sol.num_searches() <= traditional_searches(&cover));
                prop_assert!(sol.num_searches() >= 1);
            } else {
                prop_assert_eq!(sol.num_searches(), 0);
            }
        }
    }
}
