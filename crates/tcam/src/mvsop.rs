//! Multi-valued sum-of-products minimization over encoded search keys.
//!
//! With the extended two-bit encoding (Fig 5c), one Hyper-AP search over an
//! encoded bit pair can match an *arbitrary subset* of the four original pair
//! values ([`crate::encoding`]). Minimizing the number of search operations
//! for a lookup-table output is therefore exactly the problem of covering its
//! ON-set with a minimum number of *multi-valued product terms*, where each
//! input position (an encoded pair, or an unencoded single bit) contributes
//! an arbitrary per-position value subset.
//!
//! The minimizer here is an espresso-MV-lite: minterm seeding, per-position
//! expansion against the OFF-set, prime deduplication, and greedy set cover
//! with an exact branch-and-bound fallback for small instances. It is used by
//! both the hand-optimized arithmetic microcode (the paper's "RTL library
//! developed by experts") and the compiler's LUT-generation step (§V-B4).

use crate::encoding::PairSubset;
use serde::{Deserialize, Serialize};

/// The kind of one input position of a lookup table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PosKind {
    /// An encoded pair of data bits: values 0..=3, arbitrary subsets allowed.
    Pair,
    /// An unencoded single data bit: values 0..=1, arbitrary subsets allowed.
    Single,
}

impl PosKind {
    /// Number of distinct values at this position.
    pub fn arity(self) -> u8 {
        match self {
            PosKind::Pair => 4,
            PosKind::Single => 2,
        }
    }

    /// The full subset for this position (all values allowed).
    pub fn full(self) -> PairSubset {
        match self {
            PosKind::Pair => PairSubset(0b1111),
            PosKind::Single => PairSubset(0b11),
        }
    }
}

/// One multi-valued product term: for each position, the subset of values it
/// admits. A term covers a minterm iff every position's value is in the
/// term's subset. One term = one Hyper-AP search operation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Term {
    /// Per-position admitted value subsets.
    pub subsets: Vec<PairSubset>,
}

impl Term {
    /// The term admitting exactly one minterm.
    pub fn from_minterm(values: &[u8]) -> Self {
        Term {
            subsets: values.iter().map(|&v| PairSubset::singleton(v)).collect(),
        }
    }

    /// Does this term cover the minterm `values`?
    pub fn covers(&self, values: &[u8]) -> bool {
        self.subsets.iter().zip(values).all(|(s, &v)| s.contains(v))
    }

    /// Is `self` contained in `other` (every minterm of self covered by
    /// other)?
    pub fn is_contained_in(&self, other: &Term) -> bool {
        self.subsets
            .iter()
            .zip(&other.subsets)
            .all(|(a, b)| a.is_subset_of(*b))
    }
}

/// A minimization problem: positions, ON-set minterms, and (implicitly)
/// everything else is the OFF-set unless listed as don't-care.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cover {
    /// Kinds of the input positions.
    pub positions: Vec<PosKind>,
    /// Minterms (one value per position) where the output is 1.
    pub on_set: Vec<Vec<u8>>,
    /// Minterms where the output value is irrelevant (may be freely covered).
    pub dc_set: Vec<Vec<u8>>,
}

impl Cover {
    /// New cover with an empty don't-care set.
    pub fn new(positions: Vec<PosKind>, on_set: Vec<Vec<u8>>) -> Self {
        Cover {
            positions,
            on_set,
            dc_set: Vec::new(),
        }
    }

    /// Total number of minterms in the input space.
    pub fn space_size(&self) -> usize {
        self.positions.iter().map(|p| p.arity() as usize).product()
    }

    /// Enumerate the OFF-set: all minterms not in ON ∪ DC.
    pub fn off_set(&self) -> Vec<Vec<u8>> {
        let mut off = Vec::new();
        let mut current = vec![0u8; self.positions.len()];
        loop {
            if !self.on_set.contains(&current) && !self.dc_set.contains(&current) {
                off.push(current.clone());
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == self.positions.len() {
                    return off;
                }
                current[i] += 1;
                if current[i] < self.positions[i].arity() {
                    break;
                }
                current[i] = 0;
                i += 1;
            }
        }
    }
}

/// Result of a minimization: the covering terms (search operations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Solution {
    /// Product terms; one per required search operation.
    pub terms: Vec<Term>,
}

impl Solution {
    /// Number of search operations.
    pub fn num_searches(&self) -> usize {
        self.terms.len()
    }
}

/// Minimize the cover: return a small set of terms covering every ON minterm
/// and no OFF minterm.
///
/// Complexity is bounded by the paper's 12-input LUT limit (§V-B4): the input
/// space has at most 2^12 minterms.
///
/// # Panics
///
/// Panics if any minterm's length differs from the number of positions.
pub fn minimize(cover: &Cover) -> Solution {
    for m in cover.on_set.iter().chain(&cover.dc_set) {
        assert_eq!(m.len(), cover.positions.len(), "minterm arity mismatch");
    }
    if cover.on_set.is_empty() {
        return Solution { terms: Vec::new() };
    }
    let off = cover.off_set();

    // 1. Expand each ON minterm into a prime: greedily raise each position to
    //    the maximal subset that avoids the OFF-set. Doing two passes with
    //    different position orders yields a richer prime pool.
    let mut primes: Vec<Term> = Vec::new();
    let n = cover.positions.len();
    let orders: Vec<Vec<usize>> = vec![(0..n).collect(), (0..n).rev().collect()];
    for minterm in &cover.on_set {
        for order in &orders {
            let mut term = Term::from_minterm(minterm);
            for &pos in order {
                let mut best = term.subsets[pos];
                for v in 0..cover.positions[pos].arity() {
                    if best.contains(v) {
                        continue;
                    }
                    let trial = best.union(PairSubset::singleton(v));
                    let mut t2 = term.clone();
                    t2.subsets[pos] = trial;
                    if !off.iter().any(|m| t2.covers(m)) {
                        best = trial;
                    }
                }
                term.subsets[pos] = best;
            }
            if !primes.contains(&term) {
                primes.push(term);
            }
        }
    }

    // Drop primes contained in other primes.
    let mut keep = vec![true; primes.len()];
    for i in 0..primes.len() {
        for j in 0..primes.len() {
            if i != j
                && keep[i]
                && keep[j]
                && primes[i].is_contained_in(&primes[j])
                && !(primes[j].is_contained_in(&primes[i]) && j > i)
            {
                keep[i] = false;
            }
        }
    }
    let primes: Vec<Term> = primes
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| k.then_some(p))
        .collect();

    // 2. Cover: exact branch-and-bound for small instances, greedy otherwise.
    let coverage: Vec<Vec<usize>> = primes
        .iter()
        .map(|p| {
            cover
                .on_set
                .iter()
                .enumerate()
                .filter_map(|(i, m)| p.covers(m).then_some(i))
                .collect()
        })
        .collect();
    let greedy = greedy_cover(cover.on_set.len(), &coverage);
    let chosen = if primes.len() <= 24 && cover.on_set.len() <= 64 {
        exact_cover(cover.on_set.len(), &coverage, greedy.len()).unwrap_or(greedy)
    } else {
        greedy
    };
    Solution {
        terms: chosen.into_iter().map(|i| primes[i].clone()).collect(),
    }
}

fn greedy_cover(n_minterms: usize, coverage: &[Vec<usize>]) -> Vec<usize> {
    let mut uncovered: Vec<bool> = vec![true; n_minterms];
    let mut remaining = n_minterms;
    let mut chosen = Vec::new();
    while remaining > 0 {
        let (best, gain) = coverage
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.iter().filter(|&&m| uncovered[m]).count()))
            .max_by_key(|&(_, g)| g)
            .expect("primes cover all ON minterms");
        assert!(gain > 0, "prime pool fails to cover the ON-set");
        chosen.push(best);
        for &m in &coverage[best] {
            if uncovered[m] {
                uncovered[m] = false;
                remaining -= 1;
            }
        }
    }
    chosen
}

fn exact_cover(n_minterms: usize, coverage: &[Vec<usize>], upper: usize) -> Option<Vec<usize>> {
    // Branch and bound on the first uncovered minterm.
    fn recurse(
        n_minterms: usize,
        coverage: &[Vec<usize>],
        covered: &mut Vec<u32>,
        chosen: &mut Vec<usize>,
        best: &mut Option<Vec<usize>>,
        budget: usize,
    ) {
        let first = (0..n_minterms).find(|&m| covered[m] == 0);
        let Some(first) = first else {
            if best.as_ref().is_none_or(|b| chosen.len() < b.len()) {
                *best = Some(chosen.clone());
            }
            return;
        };
        if chosen.len() + 1 > budget {
            return;
        }
        let candidates: Vec<usize> = coverage
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.contains(&first).then_some(i))
            .collect();
        for i in candidates {
            chosen.push(i);
            for &m in &coverage[i] {
                covered[m] += 1;
            }
            let budget = best.as_ref().map_or(budget, |b| b.len() - 1);
            recurse(n_minterms, coverage, covered, chosen, best, budget);
            for &m in &coverage[i] {
                covered[m] -= 1;
            }
            chosen.pop();
        }
    }
    let mut best = None;
    recurse(
        n_minterms,
        coverage,
        &mut vec![0; n_minterms],
        &mut Vec::new(),
        &mut best,
        upper,
    );
    best
}

/// Count the searches a *traditional* AP needs for the same ON-set: one
/// search per minterm (Single-Search-Single-Pattern, §II-D).
pub fn traditional_searches(cover: &Cover) -> usize {
    cover.on_set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(cover: &Cover, sol: &Solution) {
        let off = cover.off_set();
        for m in &cover.on_set {
            assert!(
                sol.terms.iter().any(|t| t.covers(m)),
                "ON minterm {m:?} uncovered"
            );
        }
        for m in &off {
            assert!(
                !sol.terms.iter().any(|t| t.covers(m)),
                "OFF minterm {m:?} covered"
            );
        }
    }

    /// The 1-bit full adder's Sum output with (A,B) paired and Cin single:
    /// ON-set {100, 010, 001, 111} → exactly 2 searches (Fig 5d).
    #[test]
    fn full_adder_sum_needs_two_searches() {
        // Position 0: pair (A,B) with value = A*2 + B; position 1: Cin.
        let on = vec![
            vec![0b10, 0], // A=1,B=0,Cin=0
            vec![0b01, 0], // A=0,B=1,Cin=0
            vec![0b00, 1], // A=0,B=0,Cin=1
            vec![0b11, 1], // A=1,B=1,Cin=1
        ];
        let cover = Cover::new(vec![PosKind::Pair, PosKind::Single], on);
        let sol = minimize(&cover);
        verify(&cover, &sol);
        assert_eq!(sol.num_searches(), 2);
        assert_eq!(traditional_searches(&cover), 4);
    }

    /// The Cout output: ON-set {110, 101, 011, 111} → 2 searches (Fig 5d).
    #[test]
    fn full_adder_cout_needs_two_searches() {
        let on = vec![
            vec![0b11, 0], // A=1,B=1,Cin=0
            vec![0b10, 1], // A=1,Cin=1 (B=0)
            vec![0b01, 1], // B=1,Cin=1 (A=0)
            vec![0b11, 1], // A=1,B=1,Cin=1
        ];
        let cover = Cover::new(vec![PosKind::Pair, PosKind::Single], on);
        let sol = minimize(&cover);
        verify(&cover, &sol);
        assert_eq!(sol.num_searches(), 2);
    }

    /// Fig 11: with (A,B) and (C,D) paired, ON-set
    /// {1000, 0100, 1011, 0111} needs one search; with the bad pairing
    /// (A,C),(B,D) it needs four.
    #[test]
    fn fig11_pairing_sensitivity() {
        // Good pairing: pos0 = (A,B), pos1 = (C,D).
        let good = Cover::new(
            vec![PosKind::Pair, PosKind::Pair],
            vec![
                vec![0b10, 0b00],
                vec![0b01, 0b00],
                vec![0b10, 0b11],
                vec![0b01, 0b11],
            ],
        );
        let sol = minimize(&good);
        verify(&good, &sol);
        assert_eq!(sol.num_searches(), 1);

        // Bad pairing: pos0 = (A,C), pos1 = (B,D).
        // Minterm ABCD: A=a,B=b,C=c,D=d -> pos0 = a*2+c, pos1 = b*2+d.
        let bad = Cover::new(
            vec![PosKind::Pair, PosKind::Pair],
            vec![
                vec![0b10, 0b00], // 1000
                vec![0b00, 0b10], // 0100
                vec![0b11, 0b01], // 1011
                vec![0b01, 0b11], // 0111
            ],
        );
        let sol = minimize(&bad);
        verify(&bad, &sol);
        assert_eq!(sol.num_searches(), 4);
    }

    #[test]
    fn empty_on_set_needs_no_searches() {
        let cover = Cover::new(vec![PosKind::Pair], vec![]);
        assert_eq!(minimize(&cover).num_searches(), 0);
    }

    #[test]
    fn full_space_is_one_masked_search() {
        let on: Vec<Vec<u8>> = (0..4)
            .flat_map(|p| (0..2).map(move |s| vec![p, s]))
            .collect();
        let cover = Cover::new(vec![PosKind::Pair, PosKind::Single], on);
        let sol = minimize(&cover);
        verify(&cover, &sol);
        assert_eq!(sol.num_searches(), 1);
        assert_eq!(sol.terms[0].subsets[0], PosKind::Pair.full());
    }

    #[test]
    fn dc_set_can_shrink_cover() {
        // ON = {0}, DC = {1,2,3} over one pair: a single full-subset term.
        let mut cover = Cover::new(vec![PosKind::Pair], vec![vec![0]]);
        cover.dc_set = vec![vec![1], vec![2], vec![3]];
        let sol = minimize(&cover);
        assert_eq!(sol.num_searches(), 1);
        assert_eq!(sol.terms[0].subsets[0], PairSubset(0b1111));
    }

    #[test]
    fn xor_of_two_pairs() {
        // Output = (pair0 value parity) XOR (pair1 value parity):
        // a worst-case-ish function still solvable with few MV terms.
        let mut on = Vec::new();
        for p0 in 0u8..4 {
            for p1 in 0u8..4 {
                let parity = (p0.count_ones() + p1.count_ones()) % 2;
                if parity == 1 {
                    on.push(vec![p0, p1]);
                }
            }
        }
        let cover = Cover::new(vec![PosKind::Pair, PosKind::Pair], on);
        let sol = minimize(&cover);
        verify(&cover, &sol);
        // Subsets {odd values} × {even values} and vice versa: 2 terms.
        assert_eq!(sol.num_searches(), 2);
    }

    #[test]
    fn single_bit_positions_behave_like_binary_sop() {
        // Majority of three single bits: classic 3-term SOP... but MV subsets
        // over single bits are just {0},{1},{0,1}, so the result matches
        // binary prime implicants: ab + ac + bc -> 3 terms.
        let on = vec![vec![1, 1, 0], vec![1, 0, 1], vec![0, 1, 1], vec![1, 1, 1]];
        let cover = Cover::new(vec![PosKind::Single; 3], on);
        let sol = minimize(&cover);
        verify(&cover, &sol);
        assert_eq!(sol.num_searches(), 3);
    }

    #[test]
    fn minimized_never_worse_than_traditional() {
        // Pseudo-random ON-sets over (pair, pair, single).
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        for _ in 0..20 {
            let mut on = Vec::new();
            for p0 in 0u8..4 {
                for p1 in 0u8..4 {
                    for s in 0u8..2 {
                        if next() % 3 == 0 {
                            on.push(vec![p0, p1, s]);
                        }
                    }
                }
            }
            let cover = Cover::new(vec![PosKind::Pair, PosKind::Pair, PosKind::Single], on);
            let sol = minimize(&cover);
            verify(&cover, &sol);
            assert!(sol.num_searches() <= traditional_searches(&cover).max(1));
        }
    }
}
