//! Addition and subtraction: ripple LUT chains over (optionally paired)
//! operands, plus the operand-embedded immediate variants (§V-B4c).

use super::{bit, Microcode};
use crate::field::{Field, Slot};

/// Carry/borrow state threaded through a ripple chain. Constant folding of
/// known carries and slot aliasing ("the carry *is* that stored bit") are
/// what make operand embedding (Fig 12b) profitable.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Chain {
    /// Known constant.
    Known(bool),
    /// Lives in a stored bit slot.
    Slot(Slot),
}

impl Microcode {
    /// `a + b`, width `max(wa, wb) + 1` (full carry out).
    ///
    /// Works for any operand placement; when `a` and `b` are stored as
    /// encoded pairs (bit `i` of both in one pair), each sum/carry LUT needs
    /// only 2 searches instead of 4/3 — the Fig 5d effect.
    pub fn add(&mut self, a: &Field, b: &Field) -> Field {
        let w = a.width().max(b.width());
        let out = self.alloc_plain(format!("{}+{}", a.name, b.name), w + 1);
        let mut carry = Chain::Known(false);
        for i in 0..w {
            let mut inputs: Vec<Slot> = Vec::new();
            let ai = (i < a.width()).then(|| a.slot(i));
            let bi = (i < b.width()).then(|| b.slot(i));
            if let Some(s) = ai {
                inputs.push(s);
            }
            if let Some(s) = bi {
                inputs.push(s);
            }
            let carry_idx = match carry {
                Chain::Slot(s) => {
                    inputs.push(s);
                    Some(inputs.len() - 1)
                }
                Chain::Known(false) => None,
                Chain::Known(true) => None,
            };
            let known_carry = matches!(carry, Chain::Known(true)) as u32;
            let na = ai.is_some() as usize;
            let nb = bi.is_some() as usize;
            let count = move |m: u16| -> u32 {
                let mut c = known_carry;
                let mut idx = 0;
                if na == 1 {
                    c += bit(m, idx) as u32;
                    idx += 1;
                }
                if nb == 1 {
                    c += bit(m, idx) as u32;
                    idx += 1;
                }
                if let Some(ci) = carry_idx {
                    debug_assert_eq!(ci, idx);
                    c += bit(m, ci) as u32;
                }
                c
            };
            let sum_col = out.slot(i).base_col();
            let is_last = i == w - 1;
            let old_carry = carry;
            if is_last {
                let cout_col = out.slot(w).base_col();
                self.lut2_into(
                    inputs,
                    move |m| count(m) & 1 == 1,
                    sum_col,
                    move |m| count(m) >= 2,
                    cout_col,
                );
                carry = Chain::Known(false);
            } else {
                let c_slot = self.alloc_plain(format!("c{i}"), 1).slot(0);
                self.lut2_into(
                    inputs,
                    move |m| count(m) & 1 == 1,
                    sum_col,
                    move |m| count(m) >= 2,
                    c_slot.base_col(),
                );
                carry = Chain::Slot(c_slot);
            }
            if let Chain::Slot(s) = old_carry {
                self.free_slot(s); // the consumed ripple carry is dead
            }
        }
        out
    }

    /// `a + imm` with the immediate embedded into the lookup tables via
    /// constant propagation (operand embedding, Fig 12b): bits where the
    /// carry is statically known cost zero or one search instead of a full
    /// adder stage, and the result/carry may simply *alias* a stored bit.
    pub fn add_imm(&mut self, a: &Field, imm: u64) -> Field {
        let w = a.width() + 1;
        let mut slots: Vec<Slot> = Vec::with_capacity(w);
        let mut carry = Chain::Known(false);
        for i in 0..a.width() {
            let k = imm >> i & 1 == 1;
            let ai = a.slot(i);
            match carry {
                Chain::Known(c) => {
                    match (k, c) {
                        (false, false) => {
                            // sum = a, carry' = 0: pure aliasing, zero ops.
                            slots.push(ai);
                        }
                        (true, false) | (false, true) => {
                            // sum = NOT a (one search); carry' = a (alias).
                            let s = self.lut1(vec![ai], |m| !bit(m, 0), "s");
                            slots.push(s);
                            carry = Chain::Slot(ai);
                        }
                        (true, true) => {
                            // sum = a (alias), carry' = 1.
                            slots.push(ai);
                            carry = Chain::Known(true);
                        }
                    }
                }
                Chain::Slot(cs) => {
                    if !k {
                        // sum = a XOR c; carry' = a AND c.
                        let sum = self.alloc_plain("s", 1).slot(0);
                        let c2 = self.alloc_plain("c", 1).slot(0);
                        self.lut2_into(
                            vec![ai, cs],
                            |m| bit(m, 0) != bit(m, 1),
                            sum.base_col(),
                            |m| bit(m, 0) && bit(m, 1),
                            c2.base_col(),
                        );
                        slots.push(sum);
                        carry = Chain::Slot(c2);
                    } else {
                        // sum = NOT (a XOR c); carry' = a OR c.
                        let sum = self.alloc_plain("s", 1).slot(0);
                        let c2 = self.alloc_plain("c", 1).slot(0);
                        self.lut2_into(
                            vec![ai, cs],
                            |m| bit(m, 0) == bit(m, 1),
                            sum.base_col(),
                            |m| bit(m, 0) || bit(m, 1),
                            c2.base_col(),
                        );
                        slots.push(sum);
                        carry = Chain::Slot(c2);
                    }
                }
            }
        }
        // Carry-out bit.
        match carry {
            Chain::Known(c) => {
                if c {
                    let one = self.const_bit(true);
                    slots.push(one);
                } else {
                    let z = self.zero_field(1).slot(0);
                    slots.push(z);
                }
            }
            Chain::Slot(s) => slots.push(s),
        }
        Field::new(format!("{}+{imm:#x}", a.name), slots)
    }

    /// `a - b` (wrapping, width of `a`); `b` is zero-extended.
    ///
    /// # Panics
    ///
    /// Panics if `b` is wider than `a`.
    pub fn sub(&mut self, a: &Field, b: &Field) -> Field {
        assert!(b.width() <= a.width(), "subtrahend wider than minuend");
        let (diff, _borrow) = self.sub_with_borrow(a, b);
        diff
    }

    /// `a - b` plus the final borrow bit (1 ⇔ `a < b`).
    pub fn sub_with_borrow(&mut self, a: &Field, b: &Field) -> (Field, Slot) {
        let w = a.width();
        let out = self.alloc_plain(format!("{}-{}", a.name, b.name), w);
        let mut borrow = Chain::Known(false);
        for i in 0..w {
            let ai = a.slot(i);
            let bi = (i < b.width()).then(|| b.slot(i));
            let mut inputs = vec![ai];
            if let Some(s) = bi {
                inputs.push(s);
            }
            let borrow_idx = match borrow {
                Chain::Slot(s) => {
                    inputs.push(s);
                    Some(inputs.len() - 1)
                }
                Chain::Known(_) => None,
            };
            let known_borrow = matches!(borrow, Chain::Known(true));
            let has_b = bi.is_some();
            let eval = move |m: u16| -> (bool, bool) {
                let av = bit(m, 0);
                let bv = if has_b { bit(m, 1) } else { false };
                let brw = match borrow_idx {
                    Some(idx) => bit(m, idx),
                    None => known_borrow,
                };
                let total = av as i32 - bv as i32 - brw as i32;
                (total & 1 == 1, total < 0)
            };
            let diff_col = out.slot(i).base_col();
            let brw_slot = self.alloc_plain(format!("b{i}"), 1).slot(0);
            self.lut2_into(
                inputs,
                move |m| eval(m).0,
                diff_col,
                move |m| eval(m).1,
                brw_slot.base_col(),
            );
            if let Chain::Slot(s) = borrow {
                self.free_slot(s);
            }
            borrow = Chain::Slot(brw_slot);
        }
        let b_out = match borrow {
            Chain::Slot(s) => s,
            Chain::Known(_) => unreachable!("loop always sets a slot for w >= 1"),
        };
        (out, b_out)
    }

    /// `a - imm` (wrapping) with the immediate embedded (constant-folded
    /// borrow chain).
    pub fn sub_imm(&mut self, a: &Field, imm: u64) -> Field {
        let w = a.width();
        let mut slots = Vec::with_capacity(w);
        let mut borrow = Chain::Known(false);
        for i in 0..w {
            let k = imm >> i & 1 == 1;
            let ai = a.slot(i);
            match borrow {
                Chain::Known(brw) => match (k, brw) {
                    (false, false) => slots.push(ai),
                    (true, false) | (false, true) => {
                        let d = self.lut1(vec![ai], |m| !bit(m, 0), "d");
                        slots.push(d);
                        // borrow' = !a ... alias with inversion is not
                        // representable, so materialize it.
                        let nb = self.lut1(vec![ai], |m| !bit(m, 0), "nb");
                        borrow = Chain::Slot(nb);
                    }
                    (true, true) => {
                        slots.push(ai);
                        borrow = Chain::Known(true);
                    }
                },
                Chain::Slot(bs) => {
                    let d = self.alloc_plain("d", 1).slot(0);
                    let nb = self.alloc_plain("nb", 1).slot(0);
                    let kk = k;
                    self.lut2_into(
                        vec![ai, bs],
                        move |m| {
                            let t = bit(m, 0) as i32 - kk as i32 - bit(m, 1) as i32;
                            t & 1 == 1
                        },
                        d.base_col(),
                        move |m| (bit(m, 0) as i32 - kk as i32 - bit(m, 1) as i32) < 0,
                        nb.base_col(),
                    );
                    self.free_slot(bs);
                    slots.push(d);
                    borrow = Chain::Slot(nb);
                }
            }
        }
        Field::new(format!("{}-{imm:#x}", a.name), slots)
    }

    /// A single constant-1 bit column (written once for all rows).
    pub(crate) fn const_bit(&mut self, value: bool) -> Slot {
        if !value {
            return self.zero_field(1).slot(0);
        }
        let f = self.alloc_plain("one", 1);
        let col = f.slot(0).base_col();
        self.prog.push(crate::program::ApOp::TagAll);
        self.prog.push(crate::program::ApOp::Write {
            col,
            value: hyperap_tcam::bit::KeyBit::One,
        });
        f.slot(0)
    }

    /// A field holding the constant `value` in every row.
    pub fn const_field(&mut self, value: u64, width: usize) -> Field {
        let ones: Vec<usize> = (0..width).filter(|&i| value >> i & 1 == 1).collect();
        if ones.is_empty() {
            return self.zero_field(width);
        }
        let f = self.alloc_plain(format!("const{value:#x}"), width);
        self.prog.push(crate::program::ApOp::TagAll);
        for &i in &ones {
            self.prog.push(crate::program::ApOp::Write {
                col: f.slot(i).base_col(),
                value: hyperap_tcam::bit::KeyBit::One,
            });
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::lut::ExecutionModel;
    use crate::machine::HyperPe;

    #[test]
    fn add_paired_is_correct() {
        let cases: Vec<(u64, u64)> = vec![(0, 0), (1, 1), (255, 1), (200, 99), (170, 85)];
        let sums = run_binary_paired(8, &cases, |mc, a, b| mc.add(a, b));
        for ((a, b), s) in cases.iter().zip(&sums) {
            assert_eq!(*s, a + b, "{a} + {b}");
        }
    }

    #[test]
    fn add_plain_is_correct() {
        let cases: Vec<(u64, u64)> = vec![(0, 1), (127, 128), (255, 255), (37, 66)];
        let sums = run_binary_plain(8, &cases, |mc, a, b| mc.add(a, b));
        for ((a, b), s) in cases.iter().zip(&sums) {
            assert_eq!(*s, a + b, "{a} + {b}");
        }
    }

    #[test]
    fn add_mixed_widths() {
        let mut mc = Microcode::new(64);
        let a = mc.alloc_plain_input("a", 8);
        let b = mc.alloc_plain_input("b", 4);
        let out = mc.add(&a, &b);
        assert_eq!(out.width(), 9);
        let mut pe = HyperPe::new(1, 64);
        a.store(&mut pe, 0, 250);
        b.store(&mut pe, 0, 15);
        mc.program().run(&mut pe);
        assert_eq!(out.read(&pe, 0), 265);
    }

    #[test]
    fn paired_add_uses_fewer_searches_than_plain() {
        let mut mc_pair = Microcode::new(128);
        let (a, b) = mc_pair.alloc_paired_inputs("a", "b", 8);
        mc_pair.add(&a, &b);
        let paired = mc_pair.program().op_counts();

        let mut mc_plain = Microcode::new(128);
        let a = mc_plain.alloc_plain_input("a", 8);
        let b = mc_plain.alloc_plain_input("b", 8);
        mc_plain.add(&a, &b);
        let plain = mc_plain.program().op_counts();

        assert!(paired.searches < plain.searches, "{paired:?} vs {plain:?}");
        assert_eq!(paired.writes(), plain.writes());
    }

    #[test]
    fn add_imm_is_correct_and_cheap() {
        for imm in [0u64, 1, 2, 5, 0x80, 0xFF] {
            let values: Vec<u64> = vec![0, 1, 100, 255];
            let outs = run_unary(8, &values, |mc, a| mc.add_imm(a, imm));
            for (v, o) in values.iter().zip(&outs) {
                assert_eq!(*o, v + imm, "{v} + {imm}");
            }
        }
        // imm = 0 is free.
        let mut mc = Microcode::new(64);
        let a = mc.alloc_plain_input("a", 8);
        mc.add_imm(&a, 0);
        assert_eq!(mc.program().op_counts().searches, 0);
    }

    #[test]
    fn fig12b_embedding_reduces_searches() {
        // 2-bit a + immediate 2 -> 3 searches (Fig 12b right), versus the
        // general 2-bit add (Fig 12b left needs 5; ours differs slightly in
        // schedule but must be strictly larger).
        let mut mc = Microcode::new(64);
        let a = mc.alloc_plain_input("a", 2);
        mc.add_imm(&a, 2);
        let embedded = mc.program().op_counts();
        // Fig 12b's embedded sequence uses 3 searches (it materializes all
        // three result bits); our chain additionally aliases the unchanged
        // bits, so it is bounded by the paper's count.
        assert!(embedded.searches <= 3, "got {}", embedded.searches);

        let mut mc2 = Microcode::new(64);
        let a = mc2.alloc_plain_input("a", 2);
        let b = mc2.const_field(2, 2);
        mc2.add(&a, &b);
        let general = mc2.program().op_counts();
        assert!(general.searches > embedded.searches);
    }

    #[test]
    fn sub_is_correct() {
        let cases: Vec<(u64, u64)> = vec![(5, 3), (3, 5), (255, 255), (0, 1), (200, 13)];
        let outs = run_binary_paired(8, &cases, |mc, a, b| mc.sub(a, b));
        for ((a, b), o) in cases.iter().zip(&outs) {
            assert_eq!(*o, a.wrapping_sub(*b) & 0xFF, "{a} - {b}");
        }
    }

    #[test]
    fn sub_with_borrow_flags_underflow() {
        let mut mc = Microcode::new(128);
        let (a, b) = mc.alloc_paired_inputs("a", "b", 8);
        let (_, borrow) = mc.sub_with_borrow(&a, &b);
        let mut pe = HyperPe::new(2, 128);
        a.store(&mut pe, 0, 9);
        b.store(&mut pe, 0, 10);
        a.store(&mut pe, 1, 10);
        b.store(&mut pe, 1, 9);
        mc.program().run(&mut pe);
        let read = |pe: &HyperPe, row: usize| Field::new("brw", vec![borrow]).read(pe, row);
        assert_eq!(read(&pe, 0), 1, "9 - 10 borrows");
        assert_eq!(read(&pe, 1), 0, "10 - 9 does not");
    }

    #[test]
    fn sub_imm_is_correct() {
        for imm in [0u64, 1, 7, 0x42, 0xFF] {
            let values: Vec<u64> = vec![0, 1, 0x42, 200, 255];
            let outs = run_unary(8, &values, |mc, a| mc.sub_imm(a, imm));
            for (v, o) in values.iter().zip(&outs) {
                assert_eq!(*o, v.wrapping_sub(imm) & 0xFF, "{v} - {imm}");
            }
        }
    }

    #[test]
    fn const_field_holds_value_for_all_rows() {
        let mut mc = Microcode::new(64);
        let f = mc.const_field(0xA5, 8);
        let mut pe = HyperPe::new(3, 64);
        mc.program().run(&mut pe);
        for row in 0..3 {
            assert_eq!(f.read(&pe, row), 0xA5);
        }
    }

    #[test]
    fn add_matches_lut_model_counts() {
        // The 1-bit add through the microcode equals the Fig 5d LUT counts
        // (2 searches/1 write for sum + 2/1 for carry-out).
        let mut mc = Microcode::new(64);
        let (a, b) = mc.alloc_paired_inputs("a", "b", 1);
        mc.add(&a, &b);
        let c = mc.program().op_counts();
        assert_eq!(c.search_write_ops(), 6 - 2, "1-bit add without Cin: 2S+2W");
        let _ = ExecutionModel::Hyper;
    }
}
