//! Rodinia-style kernels (§VI-A1 second benchmark set, Fig 18).
//!
//! Each kernel is the per-element computation of its Rodinia counterpart,
//! written in the C-like source language and compiled by the full framework
//! (floating point converted to fixed point, as the paper does for the IMP
//! comparison). One SIMD slot processes one element; stencil/DP kernels
//! receive their neighborhood as inputs (the compiler lays data out so
//! neighbors arrive over the §IV-B local interface; its cost is accounted
//! via the per-kernel `transfers` estimate).
//!
//! Native data sets are replaced by seeded synthetic generators of the same
//! shape (DESIGN.md §2.3).

use hyperap_baselines::imp::KernelOps;
use hyperap_compiler::dfg::{Dfg, DfgOp};
use hyperap_compiler::{compile, CompileOptions, CompiledKernel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One benchmark kernel.
pub struct Kernel {
    /// Kernel name (Rodinia counterpart).
    pub name: &'static str,
    /// C-like source.
    pub source: &'static str,
    /// Scalar reference: per-element outputs from per-element inputs.
    pub reference: fn(&[u64]) -> Vec<u64>,
    /// Estimated inter-slot transfers per element (neighborhood traffic).
    pub transfers: f64,
}

impl Kernel {
    /// Compile with default (RRAM) options.
    ///
    /// # Panics
    ///
    /// Panics if the bundled source fails to compile (a repository bug).
    pub fn compile(&self) -> CompiledKernel {
        compile(self.source, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("kernel {}: {e}", self.name))
    }

    /// Generate `n` random input tuples (seeded, within declared widths).
    pub fn generate_inputs(&self, kernel: &CompiledKernel, n: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
        let widths = &kernel.dfg.input_widths;
        (0..n)
            .map(|_| {
                widths
                    .iter()
                    .map(|&w| rng.random::<u64>() & (((1u128 << w) - 1) as u64))
                    .collect()
            })
            .collect()
    }

    /// Architecture-neutral op tallies (for the IMP/GPU analytical models).
    pub fn kernel_ops(&self, kernel: &CompiledKernel) -> KernelOps {
        let mut ops = kernel_ops_from_dfg(&kernel.dfg);
        ops.transfers = self.transfers;
        ops
    }
}

/// Count DFG operations into architecture-neutral tallies.
pub fn kernel_ops_from_dfg(dfg: &Dfg) -> KernelOps {
    let mut ops = KernelOps::default();
    for n in &dfg.nodes {
        match n.op {
            DfgOp::Add
            | DfgOp::Sub
            | DfgOp::Neg
            | DfgOp::And
            | DfgOp::Or
            | DfgOp::Xor
            | DfgOp::Not
            | DfgOp::Eq
            | DfgOp::Ne
            | DfgOp::Lt
            | DfgOp::Le
            | DfgOp::Gt
            | DfgOp::Ge
            | DfgOp::Select => ops.adds += 1.0,
            DfgOp::Mul => ops.muls += 1.0,
            DfgOp::Div | DfgOp::Rem => ops.divs += 1.0,
            DfgOp::Sqrt => ops.sqrts += 1.0,
            DfgOp::Exp { .. } => ops.exps += 1.0,
            _ => {}
        }
    }
    ops
}

fn mask(w: u32) -> u64 {
    (1u64 << w) - 1
}

/// backprop: one hidden-unit forward pass (4 synapses, Q4.4 weights).
fn backprop_ref(x: &[u64]) -> Vec<u64> {
    let mut acc = 0u64;
    for i in 0..4 {
        acc = acc.wrapping_add(x[i].wrapping_mul(x[4 + i]));
    }
    vec![(acc >> 4) & mask(16)]
}

/// kmeans: nearest of four embedded 2-D centroids (6-bit feature space —
/// the paper's fixed-point conversion narrows features similarly, and the
/// flexible-precision support is exactly Hyper-AP's advantage here).
fn kmeans_ref(x: &[u64]) -> Vec<u64> {
    const C: [(i64, i64); 4] = [(8, 10), (50, 15), (22, 45), (40, 55)];
    let (px, py) = (x[0] as i64, x[1] as i64);
    let mut best = 0u64;
    let mut best_d = i64::MAX;
    for (i, (cx, cy)) in C.iter().enumerate() {
        let d = (px - cx) * (px - cx) + (py - cy) * (py - cy);
        if d < best_d {
            best_d = d;
            best = i as u64;
        }
    }
    vec![best]
}

/// hotspot: 5-point stencil temperature update (fixed point).
fn hotspot_ref(x: &[u64]) -> Vec<u64> {
    let (t, n, s, e, w, p) = (
        x[0] as i64,
        x[1] as i64,
        x[2] as i64,
        x[3] as i64,
        x[4] as i64,
        x[5] as i64,
    );
    let delta = n + s + e + w - 4 * t;
    let out = t + (delta >> 3) + p;
    vec![(out as u64) & mask(16)]
}

/// pathfinder: DP step — cost plus the cheapest of three predecessors.
fn pathfinder_ref(x: &[u64]) -> Vec<u64> {
    vec![(x[0] + x[1].min(x[2]).min(x[3])) & mask(13)]
}

/// nw: Needleman-Wunsch cell update (affine-free, penalty 4 embedded).
fn nw_ref(x: &[u64]) -> Vec<u64> {
    let (diag, up, left, score) = (x[0] as i64, x[1] as i64, x[2] as i64, x[3] as i64);
    let a = diag + score - 8; // score in 0..16, centered at 8
    let b = up.max(left) - 4;
    vec![(a.max(b) as u64) & mask(12)]
}

/// srad: simplified diffusion coefficient, fixed-point division.
fn srad_ref(x: &[u64]) -> Vec<u64> {
    let (g, l) = (x[0], x[1]);
    vec![((g << 8) / (g + l + 1)) & mask(17)]
}

/// streamcluster: weighted squared Euclidean distance (2-D).
fn streamcluster_ref(x: &[u64]) -> Vec<u64> {
    let dx = x[0].abs_diff(x[2]);
    let dy = x[1].abs_diff(x[3]);
    let d = dx * dx + dy * dy;
    vec![(d * x[4]) & mask(19)]
}

/// gaussian: elimination row update `a - ((l * p) >> 8)`.
fn gaussian_ref(x: &[u64]) -> Vec<u64> {
    vec![x[0].wrapping_sub((x[1] * x[2]) >> 8) & mask(16)]
}

/// All bundled kernels.
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "backprop",
            source: "
                unsigned int (16) main(
                    unsigned int (8) x0, unsigned int (8) x1,
                    unsigned int (8) x2, unsigned int (8) x3,
                    unsigned int (8) w0, unsigned int (8) w1,
                    unsigned int (8) w2, unsigned int (8) w3
                ) {
                    unsigned int (18) acc;
                    acc = x0 * w0;
                    acc = acc + x1 * w1;
                    acc = acc + x2 * w2;
                    acc = acc + x3 * w3;
                    return acc >> 4;
                }",
            reference: backprop_ref,
            transfers: 0.0,
        },
        Kernel {
            name: "kmeans",
            source: "
                unsigned int (2) main(unsigned int (6) x, unsigned int (6) y) {
                    unsigned int (6) dx; unsigned int (6) dy;
                    unsigned int (13) d0; unsigned int (13) d1;
                    unsigned int (13) d2; unsigned int (13) d3;
                    unsigned int (13) best; unsigned int (2) idx;

                    dx = max(x, 8) - min(x, 8); dy = max(y, 10) - min(y, 10);
                    d0 = dx * dx + dy * dy;
                    dx = max(x, 50) - min(x, 50); dy = max(y, 15) - min(y, 15);
                    d1 = dx * dx + dy * dy;
                    dx = max(x, 22) - min(x, 22); dy = max(y, 45) - min(y, 45);
                    d2 = dx * dx + dy * dy;
                    dx = max(x, 40) - min(x, 40); dy = max(y, 55) - min(y, 55);
                    d3 = dx * dx + dy * dy;

                    best = d0; idx = 0;
                    if (d1 < best) { best = d1; idx = 1; }
                    if (d2 < best) { best = d2; idx = 2; }
                    if (d3 < best) { best = d3; idx = 3; }
                    return idx;
                }",
            reference: kmeans_ref,
            transfers: 0.0,
        },
        Kernel {
            name: "hotspot",
            source: "
                unsigned int (16) main(
                    unsigned int (12) t, unsigned int (12) n, unsigned int (12) s,
                    unsigned int (12) e, unsigned int (12) w, unsigned int (12) p
                ) {
                    int (16) sum4;
                    int (16) t4;
                    int (16) delta;
                    int (18) out;
                    sum4 = n + s + e + w;
                    t4 = t << 2;
                    delta = sum4 - t4;
                    out = t + (delta >> 3) + p;
                    return out;
                }",
            reference: hotspot_ref,
            transfers: 4.0,
        },
        Kernel {
            name: "pathfinder",
            source: "
                unsigned int (13) main(
                    unsigned int (12) cost, unsigned int (12) a,
                    unsigned int (12) b, unsigned int (12) c
                ) {
                    return cost + min(a, min(b, c));
                }",
            reference: pathfinder_ref,
            transfers: 2.0,
        },
        Kernel {
            name: "nw",
            source: "
                unsigned int (12) main(
                    unsigned int (10) diag, unsigned int (10) up,
                    unsigned int (10) left, unsigned int (4) score
                ) {
                    int (13) a; int (13) b;
                    a = diag + score;
                    a = a - 8;
                    b = max(up, left);
                    b = b - 4;
                    return max(a, b);
                }",
            reference: nw_ref,
            transfers: 3.0,
        },
        Kernel {
            name: "srad",
            source: "
                unsigned int (17) main(unsigned int (8) g, unsigned int (8) l) {
                    unsigned int (17) num;
                    unsigned int (10) den;
                    num = g << 8;
                    den = g + l + 1;
                    return num / den;
                }",
            reference: srad_ref,
            transfers: 4.0,
        },
        Kernel {
            name: "streamcluster",
            source: "
                unsigned int (19) main(
                    unsigned int (6) x1, unsigned int (6) y1,
                    unsigned int (6) x2, unsigned int (6) y2,
                    unsigned int (6) wgt
                ) {
                    unsigned int (6) dx; unsigned int (6) dy;
                    unsigned int (13) d;
                    dx = max(x1, x2) - min(x1, x2);
                    dy = max(y1, y2) - min(y1, y2);
                    d = dx * dx + dy * dy;
                    return d * wgt;
                }",
            reference: streamcluster_ref,
            transfers: 1.0,
        },
        Kernel {
            name: "gaussian",
            source: "
                unsigned int (16) main(
                    unsigned int (16) a, unsigned int (8) l, unsigned int (8) p
                ) {
                    return a - ((l * p) >> 8);
                }",
            reference: gaussian_ref,
            transfers: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_compiles_and_matches_its_reference() {
        for kernel in all_kernels() {
            let compiled = kernel.compile();
            let rows = kernel.generate_inputs(&compiled, 8, 7);
            let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
            let got = compiled
                .run_rows_multi(&refs)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            for (tuple, out) in rows.iter().zip(&got) {
                let expect = (kernel.reference)(tuple);
                assert_eq!(out, &expect, "{} inputs {tuple:?}", kernel.name);
            }
        }
    }

    #[test]
    fn kernels_also_match_the_dfg_interpreter() {
        for kernel in all_kernels() {
            let compiled = kernel.compile();
            let rows = kernel.generate_inputs(&compiled, 4, 99);
            for tuple in &rows {
                let expect = compiled.dfg.eval(tuple);
                let got = (kernel.reference)(tuple);
                assert_eq!(got, expect, "{} inputs {tuple:?}", kernel.name);
            }
        }
    }

    #[test]
    fn kernel_ops_count_expensive_operations() {
        let kernels = all_kernels();
        let kmeans = kernels.iter().find(|k| k.name == "kmeans").unwrap();
        let compiled = kmeans.compile();
        let ops = kmeans.kernel_ops(&compiled);
        assert_eq!(ops.muls, 8.0, "four centroids, two squares each");
        let srad = kernels.iter().find(|k| k.name == "srad").unwrap();
        let ops = srad.kernel_ops(&srad.compile());
        assert_eq!(ops.divs, 1.0);
    }

    #[test]
    fn kernels_fit_one_pe() {
        for kernel in all_kernels() {
            let compiled = kernel.compile();
            assert!(
                compiled.columns() <= 256,
                "{} uses {} columns",
                kernel.name,
                compiled.columns()
            );
        }
    }
}
