//! Optimizer ≡ oracle equivalence across all three engines.
//!
//! For every opt level, the compiled kernel must produce the same
//! machine-visible results as the level-0 oracle — output field values and
//! architectural `RunStats` outcomes (count/index results) — whether the
//! stream executes on the instruction-at-a-time interpreter, the
//! trace-compiled engine, or the bit-plane slab engine. The physical
//! *encoding* of outputs may differ between levels (loop summarization
//! moves result bits into encoded pairs); the decoded values may not.
//!
//! Also pins the trace-cache contract the optimizer relies on: optimized
//! and unoptimized builds of the same kernel lower to *different* streams,
//! so the content-addressed cache can never serve one build's traces for
//! the other.

use std::collections::HashMap;
use std::sync::OnceLock;

use hyperap_arch::{ApMachine, ArchConfig, SlabMachine};
use hyperap_compiler::{compile, CompileOptions, CompiledKernel, OPT_LEVEL_MAX};
use hyperap_core::field::Slot;
use hyperap_isa::Instruction;
use proptest::prelude::*;

const ROWS: usize = 8;

/// One kernel compiled at some level, with its lowered stream.
type Built = (CompiledKernel, Vec<Instruction>);
/// Host loads for one row: plain `(col, bit)` singles and assembled
/// `(col, hi, lo)` encoded pairs.
type Loads = (Vec<(usize, bool)>, Vec<(usize, bool, bool)>);

const ADD32: &str =
    "unsigned int (32) main(unsigned int (32) a, unsigned int (32) b) { return a + b; }";
const MUL16: &str =
    "unsigned int (16) main(unsigned int (16) a, unsigned int (16) b) { return a * b; }";
const MIXED: &str = "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {
    unsigned int (8) t;
    t = (a + b) ^ (a & 15);
    if (t > b) { t = t - b; } else { t = t + 1; }
    return t;
}";

/// Kernels compiled once per (source, level); proptest cases reuse them.
fn kernels(src: &'static str) -> &'static Vec<Built> {
    static CACHE: OnceLock<std::sync::Mutex<HashMap<&'static str, &'static Vec<Built>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let mut guard = cache.lock().unwrap();
    guard.entry(src).or_insert_with(|| {
        let built = (0..=OPT_LEVEL_MAX)
            .map(|level| {
                let opts = CompileOptions {
                    opt_level: level,
                    ..CompileOptions::default()
                };
                let k = compile(src, &opts).unwrap();
                let stream = hyperap_isa::lower(k.program());
                (k, stream)
            })
            .collect();
        Box::leak(Box::new(built))
    })
}

/// Flatten one row's input tuple into host loads: plain bits and fully
/// assembled encoded pairs (both halves gathered before encoding, so the
/// same loads drive the per-PE and slab load paths identically).
fn input_loads(k: &CompiledKernel, tuple: &[u64]) -> Loads {
    let mut singles = Vec::new();
    let mut pairs: HashMap<usize, (bool, bool)> = HashMap::new();
    for (field, &v) in k.input_fields().iter().zip(tuple) {
        for (i, slot) in field.slots.iter().enumerate() {
            let bit = v >> i & 1 == 1;
            match *slot {
                Slot::Single { col } => singles.push((col, bit)),
                Slot::PairHi { col } => pairs.entry(col).or_default().0 = bit,
                Slot::PairLo { col } => pairs.entry(col).or_default().1 = bit,
            }
        }
    }
    let mut pairs: Vec<(usize, bool, bool)> =
        pairs.into_iter().map(|(c, (h, l))| (c, h, l)).collect();
    pairs.sort_unstable();
    (singles, pairs)
}

/// Run `stream` over `rows` on one engine and decode the outputs.
fn run_engine(
    engine: &str,
    k: &CompiledKernel,
    stream: &[Instruction],
    rows: &[Vec<u64>],
) -> (Vec<Vec<u64>>, hyperap_arch::RunStats) {
    let cfg = ArchConfig::single_pe(ROWS);
    let streams = vec![stream.to_vec()];
    let read_out = |pe: &hyperap_core::machine::HyperPe| -> Vec<Vec<u64>> {
        rows.iter()
            .enumerate()
            .map(|(r, _)| k.output_fields().iter().map(|f| f.read(pe, r)).collect())
            .collect()
    };
    match engine {
        "interpreter" | "trace" => {
            let mut m = ApMachine::new(cfg);
            for (r, tuple) in rows.iter().enumerate() {
                let (singles, pairs) = input_loads(k, tuple);
                for (col, v) in singles {
                    m.pe_mut(0).load_bit(r, col, v);
                }
                for (col, hi, lo) in pairs {
                    m.pe_mut(0).load_encoded_pair(r, col, hi, lo);
                }
            }
            let stats = if engine == "interpreter" {
                m.run_interpreted(&streams)
            } else {
                m.run(&streams)
            };
            (read_out(m.pe(0)), stats)
        }
        "slab" => {
            let mut m = SlabMachine::new(cfg);
            for (r, tuple) in rows.iter().enumerate() {
                let (singles, pairs) = input_loads(k, tuple);
                for (col, v) in singles {
                    m.load_bit(0, r, col, v);
                }
                for (col, hi, lo) in pairs {
                    m.load_encoded_pair(0, r, col, hi, lo);
                }
            }
            let stats = m.run(&streams);
            (read_out(&m.pe_snapshot(0)), stats)
        }
        other => panic!("unknown engine {other}"),
    }
}

fn check_equivalence(src: &'static str, rows: &[Vec<u64>]) {
    let built = kernels(src);
    let (oracle, _) = &built[0];
    let expected: Vec<Vec<u64>> = rows.iter().map(|t| oracle.dfg.eval(t)).collect();
    for (level, (k, stream)) in built.iter().enumerate() {
        let mut stats_per_engine = Vec::new();
        for engine in ["interpreter", "trace", "slab"] {
            let (got, stats) = run_engine(engine, k, stream, rows);
            assert_eq!(got, expected, "{engine} level {level} output values");
            stats_per_engine.push(stats);
        }
        // The three engines must agree on the architectural outcome
        // (cycles, op counts, count/index results) at every level.
        assert_eq!(
            stats_per_engine[0], stats_per_engine[1],
            "interpreter vs trace stats at level {level}"
        );
        assert_eq!(
            stats_per_engine[0], stats_per_engine[2],
            "interpreter vs slab stats at level {level}"
        );
    }
}

fn rows_strategy(width: u32, arity: usize) -> impl Strategy<Value = Vec<Vec<u64>>> {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    prop::collection::vec(
        prop::collection::vec((0..=mask).prop_map(move |v| v & mask), arity),
        1..=ROWS,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn add32_matches_oracle_on_all_engines(rows in rows_strategy(32, 2)) {
        check_equivalence(ADD32, &rows);
    }

    #[test]
    fn mul16_matches_oracle_on_all_engines(rows in rows_strategy(16, 2)) {
        check_equivalence(MUL16, &rows);
    }

    #[test]
    fn mixed_arith_matches_oracle_on_all_engines(rows in rows_strategy(8, 2)) {
        check_equivalence(MIXED, &rows);
    }
}

#[test]
fn optimized_and_unoptimized_streams_never_share_a_cache_key() {
    for src in [ADD32, MUL16] {
        let built = kernels(src);
        let (_, s0) = &built[0];
        let (_, s2) = &built[OPT_LEVEL_MAX as usize];
        // Different builds must lower to different streams — the trace
        // cache is content-addressed, so equality here would let one
        // build's compiled traces execute for the other.
        assert_ne!(s0, s2, "opt and unopt streams are cache-identical");

        // Alternate the two builds on one machine. Op counts are a pure
        // function of the dispatched stream, so a wrong cache hit after a
        // switch would bill the *previous* build's op mix.
        let fresh = |s: &Vec<Instruction>| {
            ApMachine::new(ArchConfig::single_pe(ROWS))
                .run(std::slice::from_ref(s))
                .group_ops
        };
        let (ops0, ops2) = (fresh(s0), fresh(s2));
        assert_ne!(ops0, ops2, "builds are indistinguishable by op mix");
        let mut m = ApMachine::new(ArchConfig::single_pe(ROWS));
        for (stream, want) in [(s0, &ops0), (s2, &ops2), (s0, &ops0), (s2, &ops2)] {
            assert_eq!(
                &m.run(std::slice::from_ref(stream)).group_ops,
                want,
                "trace cache served the other build's traces"
            );
        }
    }
}
