//! Code generation (§V-B5): walk the DFG, build AIG regions, map them to
//! LUTs, and emit the associative-operation program, dispatching complex
//! operators to the expert microcode.
//!
//! Because one AIG spans *all* adjacent mappable DFG nodes, LUT clusters
//! routinely cross DFG node boundaries — intermediate results of merged
//! operations are never written to storage (operation merging, Fig 12a).
//! Constants enter the AIG as constant literals and vanish into the
//! surviving gates' truth tables (operand embedding, Fig 12b).

use crate::aig::{lit_inverted, lit_node, Aig, AigNode, Lit, FALSE, TRUE};
use crate::dfg::{Dfg, DfgOp};
use crate::lutmap::{self, complement_on_set, flip_on_set_input, MapOptions};
use crate::opt::{self, OptReport};
use crate::pipeline::{CompileError, CompileOptions};
use crate::rtl;
use hyperap_core::field::{Field, Slot};
use hyperap_core::lut::{Lut, LutOutput};
use hyperap_core::machine::HyperPe;
use hyperap_core::microcode::Microcode;
use hyperap_core::program::Program;
use hyperap_model::timing::OpCounts;
use std::collections::HashMap;

/// A compiled kernel: the program for a single data stream, which the
/// runtime applies to every SIMD slot in parallel (Fig 8).
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The reference DFG (for validation).
    pub dfg: Dfg,
    program: Program,
    inputs: Vec<Field>,
    outputs: Vec<Field>,
    /// Flattened scalar input names.
    pub input_names: Vec<String>,
    /// Flattened scalar output names.
    pub output_names: Vec<String>,
    cols: usize,
    opt_report: OptReport,
}

impl CompiledKernel {
    /// The emitted associative-operation program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// What the `opt_level` pipeline did to the stream (all-zero at level 0).
    pub fn opt_report(&self) -> &OptReport {
        &self.opt_report
    }

    /// Input field layouts (one per flattened scalar input).
    pub fn input_fields(&self) -> &[Field] {
        &self.inputs
    }

    /// Output field layouts.
    pub fn output_fields(&self) -> &[Field] {
        &self.outputs
    }

    /// PE columns required.
    pub fn columns(&self) -> usize {
        self.cols
    }

    /// Static operation counts (the paper's analytical performance inputs).
    pub fn op_counts(&self) -> OpCounts {
        self.program.op_counts()
    }

    /// A human-readable compilation report: operation counts, latency on
    /// both technologies, I/O layout, and the multi-pattern utilization
    /// (average original patterns matched per search — the
    /// Single-Search-Multi-Pattern payoff).
    pub fn report(&self) -> String {
        use hyperap_model::TechParams;
        use std::fmt::Write;
        let ops = self.op_counts();
        let rram = TechParams::rram();
        let cmos = TechParams::cmos();
        let mut out = String::new();
        let _ = writeln!(out, "compiled kernel report");
        let _ = writeln!(
            out,
            "  inputs : {}",
            self.input_names
                .iter()
                .zip(&self.inputs)
                .map(|(n, f)| format!("{n}:{}b", f.width()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "  outputs: {}",
            self.output_names
                .iter()
                .zip(&self.outputs)
                .map(|(n, f)| format!("{n}:{}b", f.width()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(
            out,
            "  columns: {} of {}",
            self.max_column_used() + 1,
            self.cols
        );
        let _ = writeln!(
            out,
            "  ops    : {} searches, {} writes ({} encoded), {} tag ops",
            ops.searches,
            ops.writes(),
            ops.writes_encoded,
            ops.tag_ops
        );
        let _ = writeln!(
            out,
            "  latency: {} cycles on RRAM, {} on CMOS (per SIMD pass)",
            ops.cycles(&rram),
            ops.cycles(&cmos)
        );
        out
    }

    /// Highest physical column the program touches.
    pub fn max_column_used(&self) -> usize {
        use hyperap_core::program::ApOp;
        let mut max = 0usize;
        for op in self.program.ops() {
            match op {
                ApOp::Write { col, .. } => max = max.max(*col),
                ApOp::WriteEncoded { col } => max = max.max(col + 1),
                ApOp::Search { key, .. } => max = max.max(key.active_columns().max().unwrap_or(0)),
                _ => {}
            }
        }
        max
    }

    /// Execute on a fresh PE with one row per input tuple; returns all
    /// outputs per row.
    ///
    /// # Errors
    ///
    /// Returns an error if a tuple's arity differs from the input count.
    pub fn run_rows_multi(&self, rows: &[&[u64]]) -> Result<Vec<Vec<u64>>, CompileError> {
        let mut pe = HyperPe::new(rows.len().max(1), self.cols);
        for (row, tuple) in rows.iter().enumerate() {
            if tuple.len() != self.inputs.len() {
                return Err(CompileError::Run(format!(
                    "expected {} inputs, got {}",
                    self.inputs.len(),
                    tuple.len()
                )));
            }
            for (field, &value) in self.inputs.iter().zip(tuple.iter()) {
                field.store(&mut pe, row, value);
            }
        }
        self.program.run(&mut pe);
        Ok(rows
            .iter()
            .enumerate()
            .map(|(row, _)| self.outputs.iter().map(|f| f.read(&pe, row)).collect())
            .collect())
    }

    /// Convenience for single-output kernels: one result per row.
    ///
    /// # Errors
    ///
    /// See [`run_rows_multi`](Self::run_rows_multi); also errors if the
    /// kernel has more than one output.
    pub fn run_rows(&self, rows: &[&[u64]]) -> Result<Vec<u64>, CompileError> {
        if self.outputs.len() != 1 {
            return Err(CompileError::Run(format!(
                "kernel has {} outputs; use run_rows_multi",
                self.outputs.len()
            )));
        }
        Ok(self
            .run_rows_multi(rows)?
            .into_iter()
            .map(|mut v| v.pop().expect("one output"))
            .collect())
    }
}

/// Per-DFG-node value during generation.
#[derive(Debug, Clone)]
enum NodeVal {
    /// Live AIG literals (not yet written to storage).
    Bits(Vec<Lit>),
    /// Materialized storage field.
    Field(Field),
}

pub(crate) struct Gen {
    dfg: Dfg,
    opts: CompileOptions,
    mc: Microcode,
    aig: Aig,
    /// Slot backing each AIG primary input.
    input_slots: Vec<Slot>,
    /// AIG literal for a bound slot.
    lit_of_slot: HashMap<Slot, Lit>,
    /// Storage slot of materialized AND nodes.
    materialized: HashMap<u32, Slot>,
    /// Storage slot of AND nodes materialized *complemented* (inverted-
    /// literal absorption, `opt_level ≥ 1`): the column stores ¬node.
    materialized_neg: HashMap<u32, Slot>,
    /// Cached inverters / constants.
    inverter_cache: HashMap<Lit, Slot>,
    one_slot: Option<Slot>,
    vals: Vec<Option<NodeVal>>,
    /// Last consumer per node (usize::MAX for outputs).
    last_use: Vec<usize>,
    /// Nodes whose columns have been recycled.
    freed: Vec<bool>,
}

/// Generate code for a lowered DFG.
pub(crate) fn generate(
    dfg: Dfg,
    input_names: Vec<String>,
    output_names: Vec<String>,
    opts: &CompileOptions,
) -> Result<CompiledKernel, CompileError> {
    let cols = opts.pe_columns;
    let n_nodes = dfg.len();
    let mut g = Gen {
        vals: vec![None; dfg.len()],
        last_use: Vec::new(),
        freed: vec![false; n_nodes],
        dfg,
        opts: opts.clone(),
        mc: Microcode::new(cols),
        aig: Aig::new(),
        input_slots: Vec::new(),
        lit_of_slot: HashMap::new(),
        materialized: HashMap::new(),
        materialized_neg: HashMap::new(),
        inverter_cache: HashMap::new(),
        one_slot: None,
    };
    let inputs = g.layout_inputs()?;
    // Liveness: last consumer of each node (outputs live forever).
    let mut last_use = vec![0usize; g.dfg.len()];
    for (id, node) in g.dfg.nodes.iter().enumerate() {
        for &p in &node.inputs {
            last_use[p] = last_use[p].max(id);
        }
    }
    for &o in &g.dfg.outputs {
        last_use[o] = usize::MAX;
    }
    g.last_use = last_use;
    for id in 0..g.dfg.len() {
        g.emit_node(id)?;
    }
    let mut outputs = Vec::new();
    for i in 0..g.dfg.outputs.len() {
        let node = g.dfg.outputs[i];
        let f = g.field_of(node, &format!("out{i}"))?;
        outputs.push(f);
    }
    let mut program = g.mc.into_program();
    let opt_report = opt::optimize(&mut program, &inputs, &mut outputs, cols, opts.opt_level);
    Ok(CompiledKernel {
        dfg: g.dfg,
        program,
        inputs,
        outputs,
        input_names,
        output_names,
        cols,
        opt_report,
    })
}

impl Gen {
    /// Choose the input data layout: pair same-width input operands of
    /// binary mappable ops (the §V-B4a pairing, applied at layout time like
    /// the paper's A-with-B and a[i]-with-b[i] examples); everything else
    /// is stored plain.
    fn layout_inputs(&mut self) -> Result<Vec<Field>, CompileError> {
        let n_inputs = self.dfg.input_widths.len();
        // Map DFG node id -> input index for Input nodes.
        let mut input_node: HashMap<usize, usize> = HashMap::new();
        for (id, node) in self.dfg.nodes.iter().enumerate() {
            if let DfgOp::Input { index } = node.op {
                input_node.insert(id, index);
            }
        }
        let mut partner: Vec<Option<usize>> = vec![None; n_inputs];
        if self.opts.pair_inputs {
            for node in &self.dfg.nodes {
                if matches!(
                    node.op,
                    DfgOp::Add
                        | DfgOp::Sub
                        | DfgOp::Eq
                        | DfgOp::Ne
                        | DfgOp::Lt
                        | DfgOp::Le
                        | DfgOp::Gt
                        | DfgOp::Ge
                        | DfgOp::And
                        | DfgOp::Or
                        | DfgOp::Xor
                ) && node.inputs.len() == 2
                {
                    let (a, b) = (node.inputs[0], node.inputs[1]);
                    if let (Some(&ia), Some(&ib)) = (input_node.get(&a), input_node.get(&b)) {
                        if ia != ib
                            && partner[ia].is_none()
                            && partner[ib].is_none()
                            && self.dfg.input_widths[ia] == self.dfg.input_widths[ib]
                        {
                            partner[ia] = Some(ib);
                            partner[ib] = Some(ia);
                        }
                    }
                }
            }
        }
        // opt_level ≥ 2: microcode-aware layout. An input consumed
        // *exclusively* as the multiplier's second operand is stored
        // self-paired, so the radix-4 digit searches get real two-bit keys
        // (a plain multiplicand degrades them to single-pattern keys whose
        // pair-valued terms can never match).
        let mut self_paired = vec![false; n_inputs];
        if self.opts.opt_level >= 2 {
            let mut only_mul_rhs: Vec<Option<bool>> = vec![None; n_inputs];
            for node in &self.dfg.nodes {
                for (pos, src) in node.inputs.iter().enumerate() {
                    if let Some(&idx) = input_node.get(src) {
                        let good = node.op == DfgOp::Mul && pos == 1;
                        only_mul_rhs[idx] = Some(only_mul_rhs[idx].unwrap_or(true) && good);
                    }
                }
            }
            for out in &self.dfg.outputs {
                if let Some(&idx) = input_node.get(out) {
                    only_mul_rhs[idx] = Some(false); // read back as plain bits
                }
            }
            for i in 0..n_inputs {
                self_paired[i] = only_mul_rhs[i] == Some(true) && partner[i].is_none();
            }
        }
        let mut fields: Vec<Option<Field>> = vec![None; n_inputs];
        for i in 0..n_inputs {
            if fields[i].is_some() {
                continue;
            }
            match partner[i] {
                Some(j) if j > i => {
                    let w = self.dfg.input_widths[i];
                    let (hi, lo) =
                        self.mc
                            .alloc_paired_inputs(format!("in{i}"), format!("in{j}"), w);
                    fields[i] = Some(hi);
                    fields[j] = Some(lo);
                }
                _ => {
                    let w = self.dfg.input_widths[i];
                    let f = if self_paired[i] {
                        self.mc.alloc_self_paired_input(format!("in{i}"), w)
                    } else {
                        self.mc.alloc_plain_input(format!("in{i}"), w)
                    };
                    fields[i] = Some(f);
                }
            }
        }
        let fields: Vec<Field> = fields.into_iter().map(|f| f.expect("assigned")).collect();
        // Bind Input DFG nodes to their fields.
        for (id, node) in self.dfg.nodes.clone().iter().enumerate() {
            if let DfgOp::Input { index } = node.op {
                self.vals[id] = Some(NodeVal::Field(fields[index].clone()));
            }
        }
        Ok(fields)
    }

    fn emit_node(&mut self, id: usize) -> Result<(), CompileError> {
        if self.vals[id].is_some() {
            return Ok(()); // inputs already bound
        }
        let node = self.dfg.node(id).clone();
        let val = match node.op {
            DfgOp::Input { .. } => unreachable!("bound in layout_inputs"),
            DfgOp::Const { value } => {
                if self.opts.enable_embedding {
                    NodeVal::Bits(rtl::constant(&self.aig, value, node.width))
                } else {
                    NodeVal::Field(self.mc.const_field(value, node.width))
                }
            }
            op if op.is_microcode() => {
                // Region boundary: materialize all live AIG values and reset
                // the graph, so dead fields can be recycled safely.
                self.flush_region(id)?;
                let v = self.emit_microcode(id, &node)?;
                self.recycle_dead(id);
                v
            }
            _ => {
                let bits = self.emit_mappable(id, &node)?;
                if self.opts.enable_merging {
                    NodeVal::Bits(bits)
                } else {
                    // Merging disabled: materialize after every DFG node.
                    NodeVal::Field(self.materialize_bits(&bits, &format!("n{id}"))?)
                }
            }
        };
        self.vals[id] = Some(val);
        Ok(())
    }

    fn emit_mappable(
        &mut self,
        _id: usize,
        node: &crate::dfg::DfgNode,
    ) -> Result<Vec<Lit>, CompileError> {
        let w = node.width;
        let in_bits: Vec<Vec<Lit>> = node
            .inputs
            .iter()
            .map(|&i| self.bits_of(i))
            .collect::<Result<_, _>>()?;
        let in_signed: Vec<bool> = node
            .inputs
            .iter()
            .map(|&i| self.dfg.node(i).signed)
            .collect();
        let bits = match node.op {
            DfgOp::Add => rtl::add(&mut self.aig, &in_bits[0], &in_bits[1], w),
            DfgOp::Sub => rtl::sub(&mut self.aig, &in_bits[0], &in_bits[1], w, node.signed),
            DfgOp::And | DfgOp::Or | DfgOp::Xor => {
                rtl::bitwise(&mut self.aig, node.op, &in_bits[0], &in_bits[1], w)
            }
            DfgOp::Not => rtl::not(&rtl::zext(&in_bits[0], w)),
            DfgOp::Neg => rtl::neg(&mut self.aig, &in_bits[0], w),
            DfgOp::Shl { amount } => rtl::shl(&in_bits[0], amount, w),
            DfgOp::Shr { amount } => rtl::shr(&in_bits[0], amount, w, in_signed[0]),
            DfgOp::Eq => vec![rtl::eq(&mut self.aig, &in_bits[0], &in_bits[1])],
            DfgOp::Ne => {
                let e = rtl::eq(&mut self.aig, &in_bits[0], &in_bits[1]);
                vec![crate::aig::lit_not(e)]
            }
            DfgOp::Lt | DfgOp::Le | DfgOp::Gt | DfgOp::Ge => {
                let signed = in_signed[0] || in_signed[1];
                let l = match node.op {
                    DfgOp::Lt => rtl::lt(&mut self.aig, &in_bits[0], &in_bits[1], signed),
                    DfgOp::Gt => rtl::lt(&mut self.aig, &in_bits[1], &in_bits[0], signed),
                    DfgOp::Ge => {
                        let x = rtl::lt(&mut self.aig, &in_bits[0], &in_bits[1], signed);
                        crate::aig::lit_not(x)
                    }
                    _ => {
                        let x = rtl::lt(&mut self.aig, &in_bits[1], &in_bits[0], signed);
                        crate::aig::lit_not(x)
                    }
                };
                vec![l]
            }
            DfgOp::Select => {
                let pred = in_bits[0].first().copied().unwrap_or(FALSE);
                rtl::select(&mut self.aig, pred, &in_bits[1], &in_bits[2], w)
            }
            DfgOp::Resize => {
                if in_signed[0] && w > in_bits[0].len() {
                    rtl::sext(&in_bits[0], w)
                } else {
                    rtl::zext(&in_bits[0], w)
                }
            }
            other => unreachable!("non-mappable op {other:?}"),
        };
        Ok(rtl::zext(&bits, w))
    }

    fn emit_microcode(
        &mut self,
        id: usize,
        node: &crate::dfg::DfgNode,
    ) -> Result<NodeVal, CompileError> {
        let fields: Vec<Field> = node
            .inputs
            .iter()
            .enumerate()
            .map(|(k, &i)| self.field_of(i, &format!("mc{id}_{k}")))
            .collect::<Result<_, _>>()?;
        let out = match node.op {
            DfgOp::Mul => {
                // Radix-4 CSA multiplier at the result width (operands
                // zero-extended; upper zero digits cost little after
                // minimization).
                let w = node.width.max(fields[0].width()).max(fields[1].width());
                let a = self.fit_field(&fields[0], w);
                let b = self.fit_field(&fields[1], w);
                let prod = self.mc.mul_radix4_wrapping(&a, &b);
                self.fit_field(&prod, node.width)
            }
            DfgOp::Div | DfgOp::Rem => {
                if node.signed || self.dfg.node(node.inputs[0]).signed {
                    return Err(CompileError::Unsupported(
                        "signed division is not supported; cast to unsigned".into(),
                    ));
                }
                let (q, r) = self.mc.div_rem_fused(&fields[0], &fields[1]);
                let chosen = if node.op == DfgOp::Div { q } else { r };
                self.fit_field(&chosen, node.width)
            }
            DfgOp::Sqrt => {
                let s = self.mc.isqrt(&fields[0]);
                self.fit_field(&s, node.width)
            }
            DfgOp::Exp { frac_bits } => {
                let e = self.mc.exp_fixed(&fields[0], frac_bits);
                self.fit_field(&e, node.width)
            }
            other => unreachable!("non-microcode op {other:?}"),
        };
        Ok(NodeVal::Field(out))
    }

    /// Zero-extend or truncate a field by layout manipulation.
    fn fit_field(&mut self, f: &Field, w: usize) -> Field {
        if f.width() == w {
            return f.clone();
        }
        if f.width() > w {
            return f.bits(0..w);
        }
        let mut slots = f.slots.clone();
        let pad = self.mc.zero_field(w - slots.len());
        slots.extend(pad.slots);
        Field::new(f.name.clone(), slots)
    }

    /// Literals of a node (binding field slots to AIG inputs as needed).
    fn bits_of(&mut self, id: usize) -> Result<Vec<Lit>, CompileError> {
        match self.vals[id].clone() {
            Some(NodeVal::Bits(b)) => Ok(b),
            Some(NodeVal::Field(f)) => Ok(f.slots.iter().map(|&s| self.lit_for_slot(s)).collect()),
            None => Err(CompileError::Internal(format!("node {id} not yet emitted"))),
        }
    }

    fn lit_for_slot(&mut self, slot: Slot) -> Lit {
        if let Some(&l) = self.lit_of_slot.get(&slot) {
            return l;
        }
        let l = self.aig.input();
        self.input_slots.push(slot);
        self.lit_of_slot.insert(slot, l);
        l
    }

    /// The storage field of a node (materializing live literals if needed).
    fn field_of(&mut self, id: usize, name: &str) -> Result<Field, CompileError> {
        match self.vals[id].clone() {
            Some(NodeVal::Field(f)) => Ok(f),
            Some(NodeVal::Bits(bits)) => {
                let f = self.materialize_bits(&bits, name)?;
                self.vals[id] = Some(NodeVal::Field(f.clone()));
                Ok(f)
            }
            None => Err(CompileError::Internal(format!("node {id} not yet emitted"))),
        }
    }

    /// Map and emit the cones of `bits`, returning the backing field.
    ///
    /// At `opt_level ≥ 1`, output bits needed *only inverted* absorb the
    /// inversion into their root LUT's truth table (the on-set is
    /// complemented) instead of paying a one-search-one-write inverter LUT
    /// per bit; the complemented column is tracked in `materialized_neg`
    /// so later inverted uses bind to it directly.
    fn materialize_bits(&mut self, bits: &[Lit], name: &str) -> Result<Field, CompileError> {
        use std::collections::HashSet;
        let absorb = self.opts.opt_level >= 1;
        let (pos_needed, neg_needed) = self.aig.polarity_uses(bits);
        // Which AND roots still need columns?
        let mut roots: Vec<Lit> = Vec::new();
        let mut want_neg: HashSet<u32> = HashSet::new();
        for &l in bits {
            let n = lit_node(l);
            if !matches!(self.aig.node(n), AigNode::And(..)) {
                continue;
            }
            let neg_only = absorb && neg_needed.contains(&n) && !pos_needed.contains(&n);
            let covered = if neg_only {
                self.materialized_neg.contains_key(&n) || self.materialized.contains_key(&n)
            } else {
                self.materialized.contains_key(&n)
            };
            if covered {
                continue;
            }
            if neg_only {
                want_neg.insert(n);
            }
            let pos = crate::aig::lit(n, false);
            if !roots.contains(&pos) {
                roots.push(pos);
            }
        }
        if !roots.is_empty() {
            let map_opts = MapOptions {
                max_inputs: self.opts.max_lut_inputs,
                alpha: self.opts.alpha,
                cuts_per_node: 8,
            };
            let mut leaf_set: HashSet<u32> = self.materialized.keys().copied().collect();
            if absorb {
                // A node being (re-)mapped as a root must not double as a
                // cut boundary for itself.
                let root_nodes: HashSet<u32> = roots.iter().map(|&l| lit_node(l)).collect();
                leaf_set.extend(
                    self.materialized_neg
                        .keys()
                        .copied()
                        .filter(|n| !root_nodes.contains(n)),
                );
            }
            let mapping = lutmap::map(&self.aig, &roots, &leaf_set, &map_opts);
            // A root another LUT consumes as a leaf must stay positive.
            let leaves_in_use: HashSet<u32> = mapping
                .luts
                .iter()
                .flat_map(|l| l.leaves.iter().copied())
                .collect();
            for lut in &mapping.luts {
                let mut on_set = lut.on_set.clone();
                let in_slots: Vec<Slot> = lut
                    .leaves
                    .iter()
                    .enumerate()
                    .map(|(idx, &leaf)| {
                        if let Some(&s) = self.materialized.get(&leaf) {
                            return Ok(s);
                        }
                        // A complemented column stores ¬leaf: bind it and
                        // flip that input's polarity in the truth table.
                        if let Some(&s) = self.materialized_neg.get(&leaf) {
                            on_set = flip_on_set_input(&on_set, idx);
                            return Ok(s);
                        }
                        self.slot_for_leaf(leaf)
                    })
                    .collect::<Result<_, _>>()?;
                let negate = want_neg.contains(&lut.root) && !leaves_in_use.contains(&lut.root);
                if negate {
                    on_set = complement_on_set(&on_set, lut.leaves.len());
                }
                let out = self.mc.alloc_plain(format!("{name}.lut"), 1);
                let core_lut = Lut {
                    inputs: in_slots,
                    outputs: vec![LutOutput::Plain {
                        col: out.slot(0).base_col(),
                        on_set,
                    }],
                };
                self.mc.apply_lut(&core_lut);
                if negate {
                    self.materialized_neg.insert(lut.root, out.slot(0));
                } else {
                    self.materialized.insert(lut.root, out.slot(0));
                }
            }
        }
        // Resolve each output bit literal to a slot.
        let slots: Vec<Slot> = bits
            .iter()
            .map(|&l| self.slot_for_lit(l))
            .collect::<Result<_, _>>()?;
        Ok(Field::new(name, slots))
    }

    fn slot_for_leaf(&mut self, leaf: u32) -> Result<Slot, CompileError> {
        if let Some(&s) = self.materialized.get(&leaf) {
            return Ok(s);
        }
        match self.aig.node(leaf) {
            AigNode::Input { index } => Ok(self.input_slots[index as usize]),
            other => Err(CompileError::Internal(format!(
                "unmaterialized LUT leaf {leaf}: {other:?}"
            ))),
        }
    }

    /// Materialize every live literal value and reset the AIG — a region
    /// boundary. Afterwards no state references storage except through
    /// [`NodeVal::Field`]s, so dead columns can be recycled.
    fn flush_region(&mut self, current: usize) -> Result<(), CompileError> {
        for id in 0..self.vals.len().min(self.dfg.len()) {
            if matches!(self.vals[id], Some(NodeVal::Bits(_)))
                && (self.last_use[id] >= current || id >= current)
            {
                self.field_of(id, &format!("r{id}"))?;
            }
        }
        self.aig = Aig::new();
        self.input_slots.clear();
        self.lit_of_slot.clear();
        self.materialized.clear();
        self.materialized_neg.clear();
        self.inverter_cache.clear();
        self.recycle_dead(current);
        Ok(())
    }

    /// Recycle columns of dead, non-aliased fields. Only safe right after a
    /// flush (no AIG state references storage).
    fn recycle_dead(&mut self, current: usize) {
        if !self.lit_of_slot.is_empty()
            || !self.materialized.is_empty()
            || !self.materialized_neg.is_empty()
        {
            return; // AIG state alive: unsafe to recycle
        }
        // Columns of live fields (and pinned constants) must be preserved.
        let mut live_cols: std::collections::HashSet<usize> = std::collections::HashSet::new();
        if let Some(s) = self.one_slot {
            live_cols.insert(s.base_col());
        }
        for id in 0..self.vals.len() {
            let live = self.last_use.get(id).copied().unwrap_or(usize::MAX) >= current;
            if live && !self.freed[id] {
                if let Some(NodeVal::Field(f)) = &self.vals[id] {
                    for slot in &f.slots {
                        for c in slot.columns() {
                            live_cols.insert(c);
                        }
                    }
                }
            }
        }
        for id in 0..self.vals.len() {
            let dead = self.last_use.get(id).copied().unwrap_or(usize::MAX) < current;
            if !dead || self.freed[id] {
                continue;
            }
            if let Some(NodeVal::Field(f)) = self.vals[id].clone() {
                let cols: Vec<usize> = f.slots.iter().flat_map(|s| s.columns()).collect();
                if cols.iter().any(|c| live_cols.contains(c)) {
                    continue; // aliases a live field (e.g. shift views)
                }
                self.mc.free(&f);
                self.freed[id] = true;
            }
        }
    }

    fn slot_for_lit(&mut self, l: Lit) -> Result<Slot, CompileError> {
        if l == FALSE {
            return Ok(self.mc.zero_field(1).slot(0));
        }
        if l == TRUE {
            if let Some(s) = self.one_slot {
                return Ok(s);
            }
            let one = self.mc.const_field(1, 1).slot(0);
            self.one_slot = Some(one);
            return Ok(one);
        }
        let node = lit_node(l);
        if lit_inverted(l) {
            // An absorbed (complemented) column *is* the inverted literal.
            if let Some(&s) = self.materialized_neg.get(&node) {
                return Ok(s);
            }
        }
        let base = self.slot_for_leaf(node)?;
        if !lit_inverted(l) {
            return Ok(base);
        }
        if let Some(&s) = self.inverter_cache.get(&l) {
            return Ok(s);
        }
        // Materialize an inverter LUT (1 search + 1 write).
        let out = self.mc.alloc_plain("inv", 1);
        let core_lut = Lut {
            inputs: vec![base],
            outputs: vec![LutOutput::Plain {
                col: out.slot(0).base_col(),
                on_set: vec![0],
            }],
        };
        self.mc.apply_lut(&core_lut);
        self.inverter_cache.insert(l, out.slot(0));
        Ok(out.slot(0))
    }
}
