//! Inter-PE data-movement idioms built on the §IV-B local interface.
//!
//! The hardware primitive moves one 256-bit data register to a mesh
//! neighbor (`MovR`, 5 cycles). Moving a stored bit column therefore costs:
//! search the column (tags ← column), `ReadTag`, `MovR`, `SetTag`, and an
//! associative write at the destination — the high-bandwidth, low-latency
//! path the paper credits for Hyper-AP's low synchronization cost (§VI-D).

use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;

/// Instruction sequence transferring one bit column from every active PE to
/// its mesh neighbor in `dir` (column `src_col` → neighbor's `dst_col`).
///
/// The destination column is zeroed first (broadcast all-ones into the data
/// registers, `SetTag`, write 0), then the moved bits arrive through
/// tags → data register → `MovR` → tags → associative write.
pub fn column_transfer(src_col: u8, dst_col: u8, dir: Direction, cols: usize) -> Vec<Instruction> {
    let mut key_one = SearchKey::masked(cols);
    key_one.set_bit(src_col as usize, KeyBit::One);
    let mut dst_one = SearchKey::masked(cols);
    dst_one.set_bit(dst_col as usize, KeyBit::One);
    let mut dst_zero = SearchKey::masked(cols);
    dst_zero.set_bit(dst_col as usize, KeyBit::Zero);
    vec![
        // Zero the destination column everywhere.
        Instruction::WriteR {
            addr: crate::machine::BROADCAST_ADDR,
            imm: vec![0xFF; 64],
        },
        Instruction::SetTag,
        Instruction::SetKey { key: dst_zero },
        Instruction::Write {
            col: dst_col,
            encode: false,
        },
        // Tags ← source column; move; tags at the destination PE.
        Instruction::SetKey { key: key_one },
        Instruction::Search {
            acc: false,
            encode: false,
        },
        Instruction::ReadTag,
        Instruction::MovR { dir },
        Instruction::SetTag,
        // Destination ← 1 where tagged.
        Instruction::SetKey { key: dst_one },
        Instruction::Write {
            col: dst_col,
            encode: false,
        },
    ]
}

/// Cycle cost of [`column_transfer`] under RRAM Table-I timing.
pub fn column_transfer_cycles(tech: &hyperap_model::tech::TechParams) -> u64 {
    column_transfer(0, 1, Direction::Right, 8)
        .iter()
        .map(|i| i.cycles(tech))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ApMachine, ArchConfig};

    #[test]
    fn column_transfer_moves_bits_right() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(3, 5, true);
        m.pe_mut(0).load_bit(9, 5, true);
        // Make destination dirty to prove both polarities are written.
        m.pe_mut(1).load_bit(4, 6, true);
        let stream = column_transfer(5, 6, Direction::Right, 64);
        m.run(&[stream]);
        assert_eq!(m.pe(1).read_bit(3, 6), Some(true));
        assert_eq!(m.pe(1).read_bit(9, 6), Some(true));
        assert_eq!(m.pe(1).read_bit(4, 6), Some(false), "stale bit cleared");
    }

    #[test]
    fn transfer_cost_is_tens_of_cycles() {
        // §VI-D quotes 10 ns latency / 51.2 Gb/s for the local interface;
        // a full column transfer (256 bits) lands in the tens of cycles.
        let cycles = column_transfer_cycles(&hyperap_model::TechParams::rram());
        assert!(cycles > 10 && cycles < 60, "cycles = {cycles}");
    }
}
