//! Instruction definitions and the Table-I cycle model.

use hyperap_model::tech::TechParams;
use hyperap_tcam::key::SearchKey;
use serde::{Deserialize, Serialize};

/// Number of key/mask register columns (one PE word, Fig 7).
pub const KEY_COLUMNS: usize = 256;

/// Neighbor direction for `MovR` (§IV-A6: 2-bit `<dir>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// `<dir>` = 00.
    Up,
    /// `<dir>` = 01.
    Left,
    /// `<dir>` = 10.
    Right,
    /// `<dir>` = 11.
    Down,
}

impl Direction {
    /// The 2-bit encoding.
    pub fn code(self) -> u8 {
        match self {
            Direction::Up => 0b00,
            Direction::Left => 0b01,
            Direction::Right => 0b10,
            Direction::Down => 0b11,
        }
    }

    /// Decode from the 2-bit field.
    pub fn from_code(code: u8) -> Self {
        match code & 0b11 {
            0b00 => Direction::Up,
            0b01 => Direction::Left,
            0b10 => Direction::Right,
            _ => Direction::Down,
        }
    }
}

/// How an instruction interacts with state outside its own PE — the
/// classification that drives trace segmentation (`hyperap_arch::trace`).
///
/// Within a group, instructions touch three kinds of state:
///
/// * **PE-private** state (TCAM cells, tags, encoder latch) and the group's
///   own key register — invisible to every other group, so these
///   instructions commute freely with other groups' work.
/// * The per-PE **data registers** — the cross-PE transport medium: another
///   group's `MovR` push or a global `ReadR`/`WriteR` can read or write
///   them, so their ordering against those instructions matters.
/// * **Cross-PE / controller** state: reductions, mesh shifts, global data
///   path, the bank-enable mask. These are hard synchronization points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncClass {
    /// `Search`, `Write`, `SetKey`, `Wait`: strictly PE-/group-private;
    /// always safe inside a trace segment.
    PeLocal,
    /// `SetTag`, `ReadTag`: read/write the issuing group's data registers.
    /// Safe inside a segment unless another group's stream can touch those
    /// registers remotely (`MovR`/`ReadR`/`WriteR`).
    DataReg,
    /// `Count`, `Index`, `MovR`, `ReadR`, `WriteR`, `Broadcast`: cross-PE
    /// synchronization points; always a segment boundary.
    SyncPoint,
}

/// One Hyper-AP instruction (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Compare key register against all words; `acc` enables the
    /// accumulation unit, `encode` routes the result to the two-bit encoder.
    Search {
        /// `<acc>`: OR result into tags.
        acc: bool,
        /// `<encode>`: latch result into the encoder DFF stage.
        encode: bool,
    },
    /// Write the key-register value into the TCAM cell(s) at `col`
    /// (`encode` = two cells from the two-bit encoder: 23 cycles; otherwise
    /// one cell: 12 cycles).
    Write {
        /// 8-bit column address.
        col: u8,
        /// `<encode>` flag.
        encode: bool,
    },
    /// Load the key and mask registers from a 512-bit immediate
    /// (2 bits per column: 00 = masked, 01 = key 1, 10 = key 0, 11 = Z;
    /// §IV-A3).
    SetKey {
        /// The decoded logical key.
        key: SearchKey,
    },
    /// Population count of the tags (adder tree).
    Count,
    /// Priority-encoded index of the first tagged word.
    Index,
    /// Move the data register to the adjacent PE in `dir`.
    MovR {
        /// Neighbor direction.
        dir: Direction,
    },
    /// Read the data register of the PE at the 17-bit address into the
    /// top-level controller's data buffer.
    ReadR {
        /// Global PE address (17 bits).
        addr: u32,
    },
    /// Write a 512-bit immediate into the data register of the addressed PE.
    WriteR {
        /// Global PE address (17 bits).
        addr: u32,
        /// 512-bit immediate (64 bytes).
        imm: Vec<u8>,
    },
    /// Copy the data register into the tag registers of the same PE.
    SetTag,
    /// Copy the tag registers into the data register of the same PE.
    ReadTag,
    /// Set the group-mask register in the controller.
    Broadcast {
        /// 8-bit group mask.
        group_mask: u8,
    },
    /// Stall this group for `cycles` cycles (compile-time synchronization,
    /// §IV-A12).
    Wait {
        /// Stall length.
        cycles: u8,
    },
}

impl Instruction {
    /// Instruction length in bytes (the "Length" column of Table I).
    pub fn length(&self) -> usize {
        match self {
            Instruction::Search { .. } => 1,
            Instruction::Write { .. } => 2,
            Instruction::SetKey { .. } => 65,
            Instruction::Count => 1,
            Instruction::Index => 1,
            Instruction::MovR { .. } => 1,
            Instruction::ReadR { .. } => 3,
            Instruction::WriteR { .. } => 67,
            Instruction::SetTag => 1,
            Instruction::ReadTag => 1,
            Instruction::Broadcast { .. } => 2,
            Instruction::Wait { .. } => 2,
        }
    }

    /// Execution latency in cycles under the given technology (the "Cycles"
    /// column of Table I holds for RRAM: Write = 12/23).
    pub fn cycles(&self, tech: &TechParams) -> u64 {
        match self {
            Instruction::Search { .. } => tech.t_search_cycles,
            Instruction::Write { encode, .. } => {
                let t = tech.t_bit_write_cycles();
                if *encode {
                    1 + 2 + 2 * t // decode + two key setups + two cell columns
                } else {
                    1 + 1 + t
                }
            }
            Instruction::SetKey { .. } => 1,
            Instruction::Count => 4,
            Instruction::Index => 4,
            Instruction::MovR { .. } => 5,
            Instruction::ReadR { .. } => 8,
            Instruction::WriteR { .. } => 8,
            Instruction::SetTag => 1,
            Instruction::ReadTag => 1,
            Instruction::Broadcast { .. } => 1,
            Instruction::Wait { cycles } => *cycles as u64,
        }
    }

    /// The instruction's [`SyncClass`] — how it interacts with state
    /// outside its own PE (drives trace segmentation).
    pub fn sync_class(&self) -> SyncClass {
        match self {
            Instruction::Search { .. }
            | Instruction::Write { .. }
            | Instruction::SetKey { .. }
            | Instruction::Wait { .. } => SyncClass::PeLocal,
            Instruction::SetTag | Instruction::ReadTag => SyncClass::DataReg,
            Instruction::Count
            | Instruction::Index
            | Instruction::MovR { .. }
            | Instruction::ReadR { .. }
            | Instruction::WriteR { .. }
            | Instruction::Broadcast { .. } => SyncClass::SyncPoint,
        }
    }

    /// True for unconditional segment boundaries ([`SyncClass::SyncPoint`]).
    pub fn is_sync_point(&self) -> bool {
        self.sync_class() == SyncClass::SyncPoint
    }

    /// True if this instruction can read or write the data register of a PE
    /// **outside the issuing group**: `MovR` pushes across group borders,
    /// `ReadR`/`WriteR` address the global data path. A stream containing
    /// any of these forces other streams' [`SyncClass::DataReg`]
    /// instructions to segment boundaries.
    pub fn touches_remote_regs(&self) -> bool {
        matches!(
            self,
            Instruction::MovR { .. } | Instruction::ReadR { .. } | Instruction::WriteR { .. }
        )
    }

    /// Mnemonic for assembly listings.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Search { .. } => "search",
            Instruction::Write { .. } => "write",
            Instruction::SetKey { .. } => "setkey",
            Instruction::Count => "count",
            Instruction::Index => "index",
            Instruction::MovR { .. } => "movr",
            Instruction::ReadR { .. } => "readr",
            Instruction::WriteR { .. } => "writer",
            Instruction::SetTag => "settag",
            Instruction::ReadTag => "readtag",
            Instruction::Broadcast { .. } => "broadcast",
            Instruction::Wait { .. } => "wait",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lengths() {
        use Instruction as I;
        let key = SearchKey::masked(KEY_COLUMNS);
        assert_eq!(
            I::Search {
                acc: false,
                encode: false
            }
            .length(),
            1
        );
        assert_eq!(
            I::Write {
                col: 0,
                encode: false
            }
            .length(),
            2
        );
        assert_eq!(I::SetKey { key }.length(), 65);
        assert_eq!(I::Count.length(), 1);
        assert_eq!(I::Index.length(), 1);
        assert_eq!(I::MovR { dir: Direction::Up }.length(), 1);
        assert_eq!(I::ReadR { addr: 0 }.length(), 3);
        assert_eq!(
            I::WriteR {
                addr: 0,
                imm: vec![0; 64]
            }
            .length(),
            67
        );
        assert_eq!(I::SetTag.length(), 1);
        assert_eq!(I::ReadTag.length(), 1);
        assert_eq!(I::Broadcast { group_mask: 0 }.length(), 2);
        assert_eq!(I::Wait { cycles: 0 }.length(), 2);
    }

    #[test]
    fn table1_cycles_rram() {
        use Instruction as I;
        let rram = TechParams::rram();
        assert_eq!(
            I::Search {
                acc: true,
                encode: false
            }
            .cycles(&rram),
            1
        );
        assert_eq!(
            I::Write {
                col: 3,
                encode: false
            }
            .cycles(&rram),
            12
        );
        assert_eq!(
            I::Write {
                col: 3,
                encode: true
            }
            .cycles(&rram),
            23
        );
        assert_eq!(
            I::SetKey {
                key: SearchKey::masked(4)
            }
            .cycles(&rram),
            1
        );
        assert_eq!(I::Count.cycles(&rram), 4);
        assert_eq!(I::Index.cycles(&rram), 4);
        assert_eq!(
            I::MovR {
                dir: Direction::Left
            }
            .cycles(&rram),
            5
        );
        assert_eq!(I::SetTag.cycles(&rram), 1);
        assert_eq!(I::ReadTag.cycles(&rram), 1);
        assert_eq!(I::Broadcast { group_mask: 1 }.cycles(&rram), 1);
        assert_eq!(I::Wait { cycles: 42 }.cycles(&rram), 42);
    }

    #[test]
    fn cmos_write_is_cheap() {
        let cmos = TechParams::cmos();
        assert_eq!(
            Instruction::Write {
                col: 0,
                encode: false
            }
            .cycles(&cmos),
            3
        );
    }

    #[test]
    fn sync_classification_covers_all_instructions() {
        use Instruction as I;
        let cases: Vec<(I, SyncClass)> = vec![
            (
                I::Search {
                    acc: false,
                    encode: false,
                },
                SyncClass::PeLocal,
            ),
            (
                I::Write {
                    col: 0,
                    encode: true,
                },
                SyncClass::PeLocal,
            ),
            (
                I::SetKey {
                    key: SearchKey::masked(4),
                },
                SyncClass::PeLocal,
            ),
            (I::Wait { cycles: 3 }, SyncClass::PeLocal),
            (I::SetTag, SyncClass::DataReg),
            (I::ReadTag, SyncClass::DataReg),
            (I::Count, SyncClass::SyncPoint),
            (I::Index, SyncClass::SyncPoint),
            (I::MovR { dir: Direction::Up }, SyncClass::SyncPoint),
            (I::ReadR { addr: 0 }, SyncClass::SyncPoint),
            (
                I::WriteR {
                    addr: 0,
                    imm: vec![],
                },
                SyncClass::SyncPoint,
            ),
            (I::Broadcast { group_mask: 1 }, SyncClass::SyncPoint),
        ];
        for (inst, class) in cases {
            assert_eq!(inst.sync_class(), class, "{}", inst.mnemonic());
            assert_eq!(inst.is_sync_point(), class == SyncClass::SyncPoint);
        }
    }

    #[test]
    fn remote_reg_instructions_are_the_cross_group_ones() {
        use Instruction as I;
        assert!(I::MovR { dir: Direction::Up }.touches_remote_regs());
        assert!(I::ReadR { addr: 3 }.touches_remote_regs());
        assert!(I::WriteR {
            addr: 3,
            imm: vec![]
        }
        .touches_remote_regs());
        assert!(!I::SetTag.touches_remote_regs());
        assert!(!I::ReadTag.touches_remote_regs());
        assert!(!I::Count.touches_remote_regs());
    }

    #[test]
    fn direction_codes_round_trip() {
        for d in [
            Direction::Up,
            Direction::Left,
            Direction::Right,
            Direction::Down,
        ] {
            assert_eq!(Direction::from_code(d.code()), d);
        }
    }
}
