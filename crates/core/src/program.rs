//! The low-level associative-operation IR shared by microcode and compiler.
//!
//! An [`ApOp`] is one primitive machine action with its full key; a
//! [`Program`] is a straight-line sequence of them. AP computation is
//! branch-free by construction (conditionals become predicated searches,
//! §V-A / Fig 13b), so straight-line programs suffice; data-dependent
//! behaviour lives entirely inside search/write semantics.
//!
//! Programs can be (a) executed on a [`HyperPe`] or [`TraditionalPe`] for
//! functional validation, and (b) statically costed into
//! [`OpCounts`] for the paper's analytical performance evaluation.

use crate::machine::{HyperPe, TraditionalPe};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;
use serde::{Deserialize, Serialize};

/// One primitive associative operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ApOp {
    /// Compare the key against all words; `accumulate` selects the
    /// accumulation unit (`<acc>` of the Search instruction).
    Search {
        /// Key + mask contents.
        key: SearchKey,
        /// OR the result into the tags instead of overwriting them.
        accumulate: bool,
    },
    /// Latch the current tags into the encoder DFF stage (free; part of the
    /// sensing path, Fig 7).
    Latch,
    /// Write `value` into column `col` of all tagged words (12 cycles, RRAM).
    Write {
        /// Target column.
        col: usize,
        /// Value to program (`Z` writes the `X` state).
        value: KeyBit,
    },
    /// Write the encoded pair (latched result, current tag) into columns
    /// `col`, `col + 1` of every word (23 cycles, RRAM).
    WriteEncoded {
        /// First column of the encoded pair.
        col: usize,
    },
    /// Set all tags (data-register path).
    TagAll,
    /// Clear all tags.
    TagNone,
    /// Population count (reduction tree). The value is observable via
    /// [`Outcome`].
    Count,
    /// Priority-encode the first tagged index.
    Index,
}

/// Observable results of the reduction-tree operations of a program run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// Results of `Count` ops, in program order.
    pub counts: Vec<usize>,
    /// Results of `Index` ops, in program order.
    pub indexes: Vec<Option<usize>>,
}

/// A straight-line sequence of associative operations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    ops: Vec<ApOp>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// The operations.
    pub fn ops(&self) -> &[ApOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append one operation.
    pub fn push(&mut self, op: ApOp) {
        self.ops.push(op);
    }

    /// Append all operations of `other`.
    pub fn extend(&mut self, other: &Program) {
        self.ops.extend(other.ops.iter().cloned());
    }

    /// Append a search.
    pub fn search(&mut self, key: SearchKey, accumulate: bool) {
        self.push(ApOp::Search { key, accumulate });
    }

    /// Append a single-column write.
    pub fn write(&mut self, col: usize, value: KeyBit) {
        self.push(ApOp::Write { col, value });
    }

    /// Append "zero column `col` for all rows": TagAll + Write 0.
    pub fn zero_column(&mut self, col: usize) {
        self.push(ApOp::TagAll);
        self.push(ApOp::Write {
            col,
            value: KeyBit::Zero,
        });
    }

    /// Append zeroing writes for a batch of columns (one TagAll, then one
    /// write per column).
    pub fn zero_columns(&mut self, cols: &[usize]) {
        if cols.is_empty() {
            return;
        }
        self.push(ApOp::TagAll);
        for &col in cols {
            self.push(ApOp::Write {
                col,
                value: KeyBit::Zero,
            });
        }
    }

    /// Static operation counts (Table I accounting), without execution.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for op in &self.ops {
            match op {
                ApOp::Search { .. } => {
                    c.searches += 1;
                    c.set_keys += 1;
                }
                ApOp::Latch => {}
                ApOp::Write { .. } => c.writes_single += 1,
                ApOp::WriteEncoded { .. } => c.writes_encoded += 1,
                ApOp::TagAll | ApOp::TagNone => c.tag_ops += 1,
                ApOp::Count => c.counts += 1,
                ApOp::Index => c.indexes += 1,
            }
        }
        c
    }

    /// Execute on a Hyper-AP PE.
    pub fn run(&self, pe: &mut HyperPe) -> Outcome {
        let mut out = Outcome::default();
        for op in &self.ops {
            match op {
                ApOp::Search { key, accumulate } => pe.search(key, *accumulate),
                ApOp::Latch => pe.latch_tags(),
                ApOp::Write { col, value } => pe.write(*col, *value),
                ApOp::WriteEncoded { col } => pe.write_encoded(*col),
                ApOp::TagAll => pe.tag_all(),
                ApOp::TagNone => pe.tag_none(),
                ApOp::Count => out.counts.push(pe.count()),
                ApOp::Index => out.indexes.push(pe.index()),
            }
        }
        out
    }

    /// Execute on a traditional AP PE.
    ///
    /// # Panics
    ///
    /// Panics if the program uses Hyper-AP-only features: accumulating
    /// searches, `Z` key bits, `Latch`, or encoded writes (§II-D).
    pub fn run_traditional(&self, pe: &mut TraditionalPe) -> Outcome {
        let mut out = Outcome::default();
        for op in &self.ops {
            match op {
                ApOp::Search { key, accumulate } => {
                    assert!(!accumulate, "traditional AP has no accumulation unit");
                    pe.search(key);
                }
                ApOp::Latch | ApOp::WriteEncoded { .. } => {
                    panic!("traditional AP has no two-bit encoder")
                }
                ApOp::Write { col, value } => pe.write(*col, *value),
                ApOp::TagAll => pe.tag_all(),
                ApOp::TagNone => {
                    // Modeled as an overwriting search that matches nothing is
                    // not available; traditional flows never need it.
                    panic!("traditional AP programs do not clear tags explicitly")
                }
                ApOp::Count => out.counts.push(pe.count()),
                ApOp::Index => out.indexes.push(pe.index()),
            }
        }
        out
    }
}

impl FromIterator<ApOp> for Program {
    fn from_iter<T: IntoIterator<Item = ApOp>>(iter: T) -> Self {
        Program {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_follow_table1_categories() {
        let mut p = Program::new();
        p.search(SearchKey::masked(4), false);
        p.search(SearchKey::masked(4), true);
        p.write(0, KeyBit::One);
        p.push(ApOp::WriteEncoded { col: 1 });
        p.push(ApOp::Latch);
        p.push(ApOp::Count);
        p.push(ApOp::Index);
        p.zero_column(3);
        let c = p.op_counts();
        assert_eq!(c.searches, 2);
        assert_eq!(c.set_keys, 2);
        assert_eq!(c.writes_single, 2); // explicit write + zeroing write
        assert_eq!(c.writes_encoded, 1);
        assert_eq!(c.counts, 1);
        assert_eq!(c.indexes, 1);
        assert_eq!(c.tag_ops, 1);
    }

    #[test]
    fn static_counts_match_dynamic_counts() {
        let mut p = Program::new();
        p.search(SearchKey::parse("1---").unwrap(), false);
        p.write(1, KeyBit::One);
        p.zero_columns(&[2, 3]);
        let mut pe = HyperPe::new(4, 4);
        p.run(&mut pe);
        assert_eq!(p.op_counts(), pe.op_counts());
    }

    #[test]
    fn run_executes_semantics() {
        // Write 1 into column 1 of rows whose column 0 is 1.
        let mut pe = HyperPe::new(3, 2);
        pe.load_bit(0, 0, true);
        pe.load_bit(2, 0, true);
        let mut p = Program::new();
        p.search(SearchKey::parse("1-").unwrap(), false);
        p.write(1, KeyBit::One);
        p.push(ApOp::Count);
        let out = p.run(&mut pe);
        assert_eq!(out.counts, vec![2]);
        assert_eq!(pe.read_bit(0, 1), Some(true));
        assert_eq!(pe.read_bit(1, 1), Some(false));
        assert_eq!(pe.read_bit(2, 1), Some(true));
    }

    #[test]
    #[should_panic(expected = "no accumulation unit")]
    fn traditional_rejects_accumulation() {
        let mut p = Program::new();
        p.search(SearchKey::masked(2), true);
        p.run_traditional(&mut TraditionalPe::new(2, 2));
    }

    #[test]
    fn zero_columns_batches_tagall() {
        let mut p = Program::new();
        p.zero_columns(&[0, 1, 2]);
        let c = p.op_counts();
        assert_eq!(c.tag_ops, 1);
        assert_eq!(c.writes_single, 3);
        p.zero_columns(&[]);
        assert_eq!(p.op_counts().tag_ops, 1, "empty batch adds nothing");
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Program::new();
        a.write(0, KeyBit::One);
        let mut b = Program::new();
        b.write(1, KeyBit::Zero);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}
