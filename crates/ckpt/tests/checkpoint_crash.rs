//! Crash-injection proof of the commit protocol's atomicity: for **every**
//! mutating sink operation of a commit, and every partial outcome that
//! operation can be torn into (see [`hyperap_ckpt::testing::variants`]),
//! killing the process there and resuming restores a machine bit-identical
//! to the last committed epoch or to the new one — never a hybrid. The
//! suite also chains crashes (kill → resume → more ops → kill → resume)
//! and fuzzes kill points under random instruction streams and seeded
//! fault models.

mod common;

use common::{assert_identical, build_machine, snap, stream_pair};
use hyperap_arch::SlabMachine;
use hyperap_ckpt::testing::{variants, CrashSink, KillPlan, OpKind};
use hyperap_ckpt::{Checkpointer, CkptError, MemSink, SinkError};
use proptest::prelude::*;

/// Commit epoch 0 of `machine` into a fresh durable image.
fn committed_base(machine: &SlabMachine) -> MemSink {
    let mut ck = Checkpointer::new(MemSink::new());
    ck.set_keep(1);
    let stats = ck.checkpoint(machine).unwrap();
    assert_eq!(stats.epoch, 0);
    ck.into_sink()
}

/// Run the epoch-1 commit against a crash plan; returns the surviving
/// image. `plan = None` is the op-counting pass and returns the op log.
fn crashed_commit(
    base: &MemSink,
    machine: &SlabMachine,
    plan: Option<KillPlan>,
) -> (MemSink, Vec<OpKind>, Result<(), CkptError>) {
    let mut ck = Checkpointer::new(CrashSink::new(base, plan));
    ck.set_keep(1);
    let result = ck.checkpoint(machine).map(|_| ());
    let sink = ck.into_sink();
    (sink.after_crash(), sink.op_log().to_vec(), result)
}

/// Resume from `image` into a fresh machine; returns `(epoch, machine)`.
fn resume_fresh(image: MemSink, chunk_pes: usize, faulty: bool) -> (u64, SlabMachine) {
    let mut cfg = hyperap_arch::ArchConfig::tiny();
    if faulty {
        cfg.faults = common::dense_faults();
    }
    let mut m = SlabMachine::with_chunk_pes(cfg, chunk_pes);
    let mut ck = Checkpointer::new(image);
    let epoch = ck.resume(&mut m).expect("a committed epoch must survive");
    (epoch, m)
}

/// The exhaustive sweep: every kill point × every torn outcome of the
/// epoch-1 commit (which exercises chunk writes, syncs, renames, the
/// manifest commit rename, and the keep=1 garbage collection's removes).
#[test]
fn every_kill_point_restores_exactly_prev_or_new_epoch() {
    let chunk_pes = 3;
    let mut prev = build_machine(chunk_pes, true);
    let _ = prev.try_run(&stream_pair(1));
    let base = committed_base(&prev);

    let mut new = build_machine(chunk_pes, true);
    let _ = new.try_run(&stream_pair(1));
    assert_identical(&prev, &new, "deterministic rebuild");
    let _ = new.try_run(&stream_pair(9));

    // Op-counting pass: no kill, commit succeeds, schedule recorded.
    let (image, log, result) = crashed_commit(&base, &new, None);
    result.expect("uninjected commit");
    let (epoch, restored) = resume_fresh(image, chunk_pes, true);
    assert_eq!(epoch, 1);
    assert_identical(&restored, &new, "uninjected resume");
    assert!(
        log.contains(&OpKind::Rename) && log.contains(&OpKind::Remove),
        "schedule must cover renames and GC removes: {log:?}"
    );

    for (kill_op, &kind) in log.iter().enumerate() {
        for variant in 0..variants(kind) {
            let plan = KillPlan {
                kill_op: kill_op as u64,
                variant,
            };
            let (image, _, result) = crashed_commit(&base, &new, Some(plan));
            assert_eq!(
                result.unwrap_err(),
                CkptError::Sink(SinkError::Killed),
                "kill at {plan:?} must surface"
            );
            let (epoch, restored) = resume_fresh(image, chunk_pes, true);
            match epoch {
                0 => assert_identical(&restored, &prev, &format!("{plan:?} -> prev epoch")),
                1 => assert_identical(&restored, &new, &format!("{plan:?} -> new epoch")),
                e => panic!("{plan:?} resumed impossible epoch {e}"),
            }
        }
    }
}

/// Double-crash chains: crash the epoch-1 commit, resume, run more ops,
/// crash the next commit too, resume again — the second resume must be
/// bit-identical to one of the two states that were ever commit candidates
/// in the second attempt.
#[test]
fn kill_resume_kill_resume_chains_stay_consistent() {
    let chunk_pes = 4;
    let mut prev = build_machine(chunk_pes, true);
    let _ = prev.try_run(&stream_pair(2));
    let base = committed_base(&prev);

    let mut new = build_machine(chunk_pes, true);
    let _ = new.try_run(&stream_pair(2));
    let _ = new.try_run(&stream_pair(5));

    let (_, log, _) = crashed_commit(&base, &new, None);
    let n = log.len() as u64;

    for k1 in [0, n / 3, n / 2, n - 2, n - 1] {
        for k2 in [0, n / 2, n.saturating_sub(1)] {
            let plan1 = KillPlan {
                kill_op: k1,
                variant: (k1 % 3) as u8,
            };
            let (image1, _, r1) = crashed_commit(&base, &new, Some(plan1));
            assert!(r1.is_err());
            let (epoch1, mut m1) = resume_fresh(image1.clone(), chunk_pes, true);
            let before = snap(&m1);

            // More work on the survivor, then a second crashing commit.
            let _ = m1.try_run(&stream_pair(11));
            let after = snap(&m1);
            let mut ck2 = Checkpointer::new(CrashSink::new(
                &image1,
                Some(KillPlan {
                    kill_op: k2,
                    variant: (k2 % 2) as u8,
                }),
            ));
            ck2.set_keep(1);
            let r2 = ck2.checkpoint(&m1);
            let image2 = ck2.into_sink().after_crash();
            let (epoch2, m2) = resume_fresh(image2, chunk_pes, true);

            assert!(epoch2 >= epoch1, "epochs must never move backwards");
            let got = snap(&m2);
            if r2.is_ok() || epoch2 > epoch1 {
                assert_eq!(got, after, "k1={k1} k2={k2}: new state committed");
            } else {
                assert_eq!(got, before, "k1={k1} k2={k2}: prior epoch must hold");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed kill points: random salt streams, chunk widths, fault
    /// on/off, and any (kill op, variant). The restored machine is always
    /// exactly the prior epoch or the new one.
    #[test]
    fn fuzzed_kill_points_never_yield_hybrids(
        chunk_pes in (0usize..3).prop_map(|i| [1usize, 3, 4][i]),
        faulty in any::<bool>(),
        salt_a in 0u8..32,
        salt_b in 0u8..32,
        kill_seed in any::<u64>(),
    ) {
        let mut prev = build_machine(chunk_pes, faulty);
        let _ = prev.try_run(&stream_pair(salt_a));
        let base = committed_base(&prev);

        let mut new = build_machine(chunk_pes, faulty);
        let _ = new.try_run(&stream_pair(salt_a));
        let _ = new.try_run(&stream_pair(salt_b));

        let (_, log, _) = crashed_commit(&base, &new, None);
        let kill_op = kill_seed % log.len() as u64;
        let variant = (kill_seed >> 32) as u8 % variants(log[kill_op as usize]);
        let plan = KillPlan { kill_op, variant };

        let (image, _, result) = crashed_commit(&base, &new, Some(plan));
        prop_assert!(result.is_err());
        let (epoch, restored) = resume_fresh(image, chunk_pes, faulty);
        match epoch {
            0 => assert_identical(&restored, &prev, "fuzzed -> prev"),
            1 => assert_identical(&restored, &new, "fuzzed -> new"),
            e => panic!("impossible epoch {e}"),
        }
    }
}
