//! Property tests for the execution-engine determinism guarantee: random
//! instruction streams produce bit-identical machine state and `RunStats`
//! whether the per-group PE fan-out runs sequentially or threaded.

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode};
use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::KeyBit;
use proptest::prelude::*;

/// Geometry under test: `tiny()` is 2 groups x 4 PEs of 16x64.
const PES: usize = 8;
const ROWS: usize = 16;
const COLS: usize = 64;

fn inst_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        prop::collection::vec(0u8..4, COLS).prop_map(|bits| Instruction::SetKey {
            key: bits
                .iter()
                .map(|b| match b {
                    0 => KeyBit::Zero,
                    1 => KeyBit::One,
                    2 => KeyBit::Z,
                    _ => KeyBit::Masked,
                })
                .collect(),
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
        // `encode` needs two adjacent columns, so stop one short.
        (0u8..(COLS as u8 - 1), any::<bool>())
            .prop_map(|(col, encode)| Instruction::Write { col, encode }),
        Just(Instruction::Count),
        Just(Instruction::Index),
        (0u8..4).prop_map(|d| Instruction::MovR {
            dir: match d {
                0 => Direction::Up,
                1 => Direction::Down,
                2 => Direction::Left,
                _ => Direction::Right,
            },
        }),
        (0u32..PES as u32).prop_map(|addr| Instruction::ReadR { addr }),
        (0u32..=PES as u32, prop::collection::vec(any::<u8>(), 0..4)).prop_map(|(a, imm)| {
            Instruction::WriteR {
                addr: if a == PES as u32 { BROADCAST_ADDR } else { a },
                imm,
            }
        }),
        Just(Instruction::SetTag),
        Just(Instruction::ReadTag),
        any::<u8>().prop_map(|m| Instruction::Broadcast { group_mask: m }),
        (0u8..10).prop_map(|cycles| Instruction::Wait { cycles }),
    ]
}

type Load = (usize, usize, usize, bool);

fn loads_strategy() -> impl Strategy<Value = Vec<Load>> {
    prop::collection::vec(
        (0usize..PES, 0usize..ROWS, 0usize..COLS, any::<bool>()),
        0..64,
    )
}

fn build(mode: ExecMode, loads: &[Load]) -> ApMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    let mut m = ApMachine::new(cfg);
    for &(pe, row, col, v) in loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn assert_machines_identical(a: &ApMachine, b: &ApMachine) {
    for pe in 0..PES {
        assert_eq!(a.pe(pe), b.pe(pe), "PE {pe} state diverged");
        assert_eq!(
            a.data_reg(pe),
            b.data_reg(pe),
            "PE {pe} data register diverged"
        );
    }
    assert_eq!(
        a.data_buffers, b.data_buffers,
        "controller data buffers diverged"
    );
}

proptest! {
    #[test]
    fn sequential_and_parallel_runs_are_bit_identical(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..40),
        s1 in prop::collection::vec(inst_strategy(), 0..40),
    ) {
        let streams = vec![s0, s1];
        let mut seq = build(ExecMode::Sequential, &loads);
        let mut par = build(ExecMode::Parallel, &loads);
        let mut auto = build(ExecMode::Auto, &loads);
        let seq_stats = seq.run(&streams);
        let par_stats = par.run(&streams);
        let auto_stats = auto.run(&streams);
        prop_assert_eq!(&seq_stats, &par_stats);
        prop_assert_eq!(&seq_stats, &auto_stats);
        assert_machines_identical(&seq, &par);
        assert_machines_identical(&seq, &auto);
    }

    #[test]
    fn broadcast_invalidation_matches_uncached_semantics(
        masks in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        // Interleave Broadcast instructions with Counts; the cached
        // active-PE set must track every mask change in both modes.
        let mut stream = Vec::new();
        for m in &masks {
            stream.push(Instruction::Broadcast { group_mask: *m });
            stream.push(Instruction::Count);
        }
        let streams = vec![stream];
        let mut seq = build(ExecMode::Sequential, &[]);
        let mut par = build(ExecMode::Parallel, &[]);
        let seq_stats = seq.run(&streams);
        let par_stats = par.run(&streams);
        // tiny() has one bank (bank 0) per group: mask bit 0 gates all PEs.
        let expected: usize = masks.iter().map(|m| if m & 1 == 1 { 4 } else { 0 }).sum();
        prop_assert_eq!(seq_stats.count_results[0].len(), expected);
        prop_assert_eq!(&seq_stats, &par_stats);
    }
}
