//! Benchmarks for the Hyper-AP evaluation (§VI-A1).
//!
//! * [`synthetic`] — the first benchmark set: representative arithmetic
//!   operations executed in one SIMD slot with no inter-PE communication,
//!   showing peak compute performance (Figs 15-17). Each operation is built
//!   from the expert microcode (the paper's hand-optimized RTL library) and
//!   functionally validated against 64-bit host arithmetic.
//! * [`kernels`] — the second set: Rodinia-style kernels expressed in the
//!   C-like language, compiled by the full compilation framework, and
//!   validated against scalar Rust references (Fig 18). Native data sets are
//!   replaced by seeded synthetic generators (see `DESIGN.md` §2.3);
//!   floating-point math is converted to fixed point as in the paper.
//! * [`perf`] — chip-level performance extraction: turns per-slot operation
//!   counts into the latency/throughput/efficiency metrics and compares
//!   against the IMP and GPU baseline models.
//! * [`similarity`] — search-dominated workloads driving the CAM-native
//!   similarity API: Hamming top-k over stored binary codes and a
//!   binarized-HDC classifier, each with a pure-host scalar reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod perf;
pub mod scaleout;
pub mod similarity;
pub mod synthetic;

pub use kernels::{all_kernels, Kernel};
pub use synthetic::{measure_op, SyntheticOp};
