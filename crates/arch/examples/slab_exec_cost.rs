//! Ad-hoc timing probe for the slab engine's execute path (not part of the
//! benchmark suite; run with `cargo run --release -p hyperap-arch --example
//! slab_exec_cost`).

use hyperap_arch::{trace, ApMachine, ArchConfig, ExecMode, SlabMachine};
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let stream = lower(&mc.into_program());
    let streams: Vec<_> = (0..16).map(|_| stream.clone()).collect();
    let mut cfg = ArchConfig::paper_scaled(256);
    cfg.groups = 16;
    cfg.exec = ExecMode::Sequential;

    let mut m = SlabMachine::new(cfg.clone());
    let traces = trace::compile_streams(&streams, &cfg);
    let iters: usize = std::env::var("ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(m.run_compiled(&traces));
        }
        best = best.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    println!("slab run_compiled: {:.1}us", best * 1e6);

    let unfused = trace::compile_streams_unfused(&streams, &cfg);
    let mut best_u = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(m.run_compiled(&unfused));
        }
        best_u = best_u.min(t.elapsed().as_secs_f64() / iters as f64);
    }
    println!("slab run_compiled (unfused): {:.1}us", best_u * 1e6);

    if std::env::var("SLAB_ONLY").is_err() {
        let only = std::env::var("TRACE_ONLY").ok();
        let mut a = ApMachine::new(cfg.clone());
        for (label, tr) in [("fused", &traces), ("unfused", &unfused)] {
            if only.as_deref().is_some_and(|o| o != label) {
                continue;
            }
            let mut best_a = f64::INFINITY;
            for _ in 0..3 {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(a.run_compiled(tr));
                }
                best_a = best_a.min(t.elapsed().as_secs_f64() / iters as f64);
            }
            println!("trace run_compiled ({label}): {:.1}us", best_a * 1e6);
        }
    }

    let one = &traces[0];
    println!(
        "steps {}  segments {}  ops {}",
        one.steps.len(),
        one.segments.len(),
        one.segments.iter().map(|s| s.ops.len()).sum::<usize>()
    );
}
