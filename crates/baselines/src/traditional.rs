//! Traditional AP baseline and the Fig 19 ablation ladder.
//!
//! Four cumulative variants isolate each Hyper-AP contribution for the
//! Fig 19b breakdown:
//!
//! 1. [`ApVariant::Traditional`] — Single-Search-Single-Pattern +
//!    Single-Search-Single-Write, monolithic TCAM array (prior work
//!    \[56\]\[39\]).
//! 2. [`ApVariant::WithAccumulation`] — adds the accumulation unit:
//!    Multi-Search-Single-Write, but still single-pattern searches.
//! 3. [`ApVariant::WithDualArray`] — adds the logical-unified-physical-
//!    separated array (§IV-B): TCAM bit writes in one pulse instead of two.
//! 4. [`ApVariant::HyperAp`] — adds the extended search keys (Fig 5c):
//!    Single-Search-Multi-Pattern. The full system.

use hyperap_core::lut::{full_adder_lut, ExecutionModel};
use hyperap_model::area::AreaModel;
use hyperap_model::tech::{TechParams, Technology};
use hyperap_model::timing::OpCounts;
use serde::{Deserialize, Serialize};

/// Ablation variant (cumulative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApVariant {
    /// Prior-work traditional AP.
    Traditional,
    /// + accumulation unit (Multi-Search-Single-Write).
    WithAccumulation,
    /// + dual-crossbar TCAM array (halved write latency).
    WithDualArray,
    /// + extended search keys (full Hyper-AP).
    HyperAp,
}

impl ApVariant {
    /// All variants, in cumulative order.
    pub const LADDER: [ApVariant; 4] = [
        ApVariant::Traditional,
        ApVariant::WithAccumulation,
        ApVariant::WithDualArray,
        ApVariant::HyperAp,
    ];
}

impl std::fmt::Display for ApVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ApVariant::Traditional => "traditional AP",
            ApVariant::WithAccumulation => "+ accumulation unit",
            ApVariant::WithDualArray => "+ dual-crossbar array",
            ApVariant::HyperAp => "+ extended search keys (Hyper-AP)",
        };
        write!(f, "{s}")
    }
}

/// Cost of a variant executing one operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariantCost {
    /// Operation counts per element pass.
    pub ops: OpCounts,
    /// Latency in nanoseconds.
    pub latency_ns: f64,
    /// Chip throughput in GOPS.
    pub throughput_gops: f64,
}

/// Technology parameters a variant runs under.
pub fn variant_tech(variant: ApVariant, tech: Technology) -> TechParams {
    match (tech, variant) {
        (Technology::Rram, ApVariant::Traditional | ApVariant::WithAccumulation) => {
            TechParams::rram_monolithic()
        }
        (Technology::Rram, _) => TechParams::rram(),
        // CMOS TCAM writes both halves in one cycle regardless; the array
        // split does not change its timing.
        (Technology::Cmos, _) => TechParams::cmos(),
    }
}

/// Per-bit full-adder operation counts under a variant's execution model.
fn per_bit_counts(variant: ApVariant) -> OpCounts {
    let lut = full_adder_lut();
    match variant {
        ApVariant::Traditional => lut.op_counts(ExecutionModel::Traditional),
        ApVariant::WithAccumulation | ApVariant::WithDualArray => {
            // Single-pattern searches, but writes batched per output: the
            // search count of the traditional model with the write count of
            // the hyper model.
            let t = lut.op_counts(ExecutionModel::Traditional);
            let h = lut.op_counts(ExecutionModel::Hyper);
            OpCounts {
                searches: t.searches,
                set_keys: t.set_keys,
                writes_single: h.writes_single,
                writes_encoded: h.writes_encoded,
                ..OpCounts::default()
            }
        }
        ApVariant::HyperAp => lut.op_counts(ExecutionModel::Hyper),
    }
}

/// Ripple-adder cost of a `width`-bit addition under a variant.
pub fn add_cost(variant: ApVariant, width: usize, tech: Technology) -> VariantCost {
    let per_bit = per_bit_counts(variant);
    let ops = per_bit.repeated(width as u64);
    let params = variant_tech(variant, tech);
    let latency_ns = ops.latency_ns(&params);
    let area = match tech {
        Technology::Rram => AreaModel::rram(),
        Technology::Cmos => AreaModel::cmos(),
    };
    VariantCost {
        ops,
        latency_ns,
        throughput_gops: area.simd_slots() as f64 / latency_ns,
    }
}

/// The Fig 19a ladder for a `width`-bit addition.
pub fn ablation_ladder(width: usize, tech: Technology) -> Vec<(ApVariant, VariantCost)> {
    ApVariant::LADDER
        .iter()
        .map(|&v| (v, add_cost(v, width, tech)))
        .collect()
}

/// Fig 19b: fraction of the total throughput improvement contributed by
/// each step (accumulation unit, array design, search keys), derived from
/// the ladder's marginal gains.
pub fn breakdown(width: usize, tech: Technology) -> [f64; 3] {
    let ladder = ablation_ladder(width, tech);
    let t: Vec<f64> = ladder.iter().map(|(_, c)| c.throughput_gops).collect();
    let total = t[3] - t[0];
    if total <= 0.0 {
        return [0.0; 3];
    }
    [
        (t[1] - t[0]) / total, // accumulation unit
        (t[2] - t[1]) / total, // TCAM array design
        (t[3] - t[2]) / total, // additional search keys
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_traditional_full_adder_counts() {
        let c = per_bit_counts(ApVariant::Traditional);
        assert_eq!(c.searches, 7);
        assert_eq!(c.writes(), 7);
    }

    #[test]
    fn ladder_improves_monotonically_on_rram() {
        let ladder = ablation_ladder(32, Technology::Rram);
        for w in ladder.windows(2) {
            assert!(
                w[1].1.latency_ns <= w[0].1.latency_ns,
                "{} -> {}: {} vs {}",
                w[0].0,
                w[1].0,
                w[0].1.latency_ns,
                w[1].1.latency_ns
            );
        }
    }

    #[test]
    fn rram_benefits_more_than_cmos() {
        // §VI-E / Fig 19a: the execution model gains more on RRAM than CMOS
        // because of the asymmetric write latency.
        let gain = |tech| {
            let l = ablation_ladder(32, tech);
            l[0].1.latency_ns / l[3].1.latency_ns
        };
        let rram = gain(Technology::Rram);
        let cmos = gain(Technology::Cmos);
        assert!(rram > cmos, "RRAM {rram:.1}x vs CMOS {cmos:.1}x");
        assert!(rram > 3.0, "RRAM gain {rram:.1}x");
    }

    #[test]
    fn breakdown_shares_are_positive_and_sum_to_one() {
        // Fig 19b reports the search keys as the dominant share (83%); our
        // measured ladder attributes less to them because our *traditional*
        // baseline already cube-minimizes its lookup tables (7 searches per
        // full adder, exactly Fig 2b) — a smaller search gap than the
        // paper's internal traditional counts. All three contributions
        // remain positive on RRAM; EXPERIMENTS.md discusses the deviation.
        let b = breakdown(32, Technology::Rram);
        assert!(b.iter().all(|&x| x > 0.0), "{b:?}");
        let sum: f64 = b.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // On CMOS the keys' share must dominate the array share (which is
        // zero) and be positive.
        let c = breakdown(32, Technology::Cmos);
        assert!(c[2] > c[1], "{c:?}");
    }

    #[test]
    fn cmos_array_split_contributes_nothing() {
        // CMOS writes are single-cycle either way.
        let b = breakdown(32, Technology::Cmos);
        assert!(b[1].abs() < 1e-9, "array share on CMOS = {}", b[1]);
    }

    #[test]
    fn write_reduction_exceeds_search_reduction() {
        // §III: the write reduction is larger than the search reduction,
        // which is why RRAM benefits more (§VI-E).
        let t = add_cost(ApVariant::Traditional, 32, Technology::Rram).ops;
        let h = add_cost(ApVariant::HyperAp, 32, Technology::Rram).ops;
        let s_red = t.searches as f64 / h.searches as f64;
        let w_red = t.writes() as f64 / h.writes() as f64;
        assert!(w_red > s_red, "writes {w_red:.1}x vs searches {s_red:.1}x");
    }
}
