//! Search-dominated similarity workloads: Hamming top-k over stored
//! binary codes and a binarized-HDC classifier (the first benchmark family
//! that exercises the TCAM *as a CAM* — ROADMAP item 5).
//!
//! Both workloads drive the batch similarity API of
//! [`hyperap_arch::similarity`] and come with a pure-host scalar reference
//! that never touches a machine:
//!
//! * [`CodeSet`] — seeded random binary codes stored one per `(pe, row)`
//!   candidate slot; [`CodeSet::host_topk`] is the plain
//!   sort-by-`(distance, pe, row)` reference the engines must reproduce
//!   exactly.
//! * [`HdcModel`] — hyperdimensional classification in the style of
//!   binarized associative memories (PAPERS.md: arxiv 1807.08583 and the
//!   in-CAM similarity search of 2208.02651): class prototypes generate
//!   noisy binary samples, training *bundles* each class's samples by
//!   per-bit majority vote into a class hypervector, the class vectors are
//!   stored in CAM rows, and inference is one nearest-neighbor query.
//!
//! Class vectors are placed round-robin across PEs
//! ([`HdcModel::slot_class`] wraps every `(pe, row)` slot onto a class),
//! so every candidate slot is meaningful, every PE participates in every
//! query, and the machine's deterministic `(distance, pe, row)` tie-break
//! maps back to a class identically in every engine and in the host
//! reference.

use hyperap_arch::similarity::SimilarityHit;
use hyperap_arch::{ApMachine, SlabMachine};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::KeyBit;

/// One round of the splitmix64 finalizer — the same seeded generator the
/// synthetic kernels use, so workload content is reproducible everywhere.
fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random bit vector of `bits` bits.
fn random_code(state: &mut u64, bits: usize) -> Vec<bool> {
    (0..bits).map(|_| splitmix(state) & 1 == 1).collect()
}

/// A fully specified search key for a binary code: bit `i` of the key is
/// `0`/`1` per `code[i]`, everything beyond is masked out to `width`.
pub fn code_key(code: &[bool], width: usize) -> SearchKey {
    let mut key = SearchKey::masked(width);
    for (col, &b) in code.iter().enumerate() {
        key.set_bit(col, if b { KeyBit::One } else { KeyBit::Zero });
    }
    key
}

/// Hamming distance between two equal-length binary codes.
pub fn hamming(a: &[bool], b: &[bool]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).filter(|(x, y)| x != y).count() as u32
}

/// Stored binary codes for the Hamming top-k workload: one `bits`-bit
/// code per `(pe, row)` candidate slot of a `pes × rows` machine region.
#[derive(Debug, Clone)]
pub struct CodeSet {
    /// PEs holding codes (must equal the machine's total PE count when
    /// loading).
    pub pes: usize,
    /// Rows of codes per PE.
    pub rows: usize,
    /// Bits per code (must fit the machine's columns).
    pub bits: usize,
    /// Codes indexed `[pe * rows + row]`.
    pub codes: Vec<Vec<bool>>,
}

impl CodeSet {
    /// Seeded random codes filling every slot.
    pub fn generate(seed: u64, pes: usize, rows: usize, bits: usize) -> Self {
        let mut state = seed ^ 0x0C0D_E5E7_0000_0001;
        let codes = (0..pes * rows)
            .map(|_| random_code(&mut state, bits))
            .collect();
        CodeSet {
            pes,
            rows,
            bits,
            codes,
        }
    }

    /// A seeded random query code of the set's width.
    pub fn random_query(&self, seed: u64) -> Vec<bool> {
        let mut state = seed ^ 0xC0DE_06E5_0000_0002;
        random_code(&mut state, self.bits)
    }

    /// The query as a machine search key of `width` columns.
    pub fn query_key(&self, query: &[bool], width: usize) -> SearchKey {
        code_key(query, width)
    }

    /// Load every code into the scalar reference machine (host data-load
    /// path; columns beyond `bits` stay `0`).
    pub fn load_ap(&self, m: &mut ApMachine) {
        assert_eq!(self.pes, m.config().total_pes(), "PE count mismatch");
        for pe in 0..self.pes {
            for row in 0..self.rows {
                let code = &self.codes[pe * self.rows + row];
                for (col, &b) in code.iter().enumerate() {
                    m.pe_mut(pe).load_bit(row, col, b);
                }
            }
        }
    }

    /// Load every code into the word-parallel slab machine.
    pub fn load_slab(&self, m: &mut SlabMachine) {
        assert_eq!(self.pes, m.config().total_pes(), "PE count mismatch");
        for pe in 0..self.pes {
            for row in 0..self.rows {
                let code = &self.codes[pe * self.rows + row];
                for (col, &b) in code.iter().enumerate() {
                    m.load_bit(pe, row, col, b);
                }
            }
        }
    }

    /// Pure-host scalar reference: the top-`k` stored codes by Hamming
    /// distance to `query`, ascending `(distance, pe, row)` — exactly what
    /// both engines must return (fault-free).
    pub fn host_topk(&self, query: &[bool], k: usize) -> Vec<SimilarityHit> {
        let mut hits: Vec<SimilarityHit> = self
            .codes
            .iter()
            .enumerate()
            .map(|(i, code)| SimilarityHit {
                distance: hamming(code, query),
                pe: (i / self.rows) as u32,
                row: (i % self.rows) as u32,
            })
            .collect();
        hits.sort_unstable();
        hits.truncate(k);
        hits
    }
}

/// Configuration of the synthetic HDC classification task.
#[derive(Debug, Clone, Copy)]
pub struct HdcConfig {
    /// Hypervector dimensionality (bits per vector; must fit the
    /// machine's columns for inference).
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training samples bundled per class.
    pub train_per_class: usize,
    /// Held-out samples per class for accuracy evaluation.
    pub test_per_class: usize,
    /// Per-bit flip probability of a sample versus its class prototype,
    /// in events per million.
    pub noise_per_million: u32,
    /// Generator seed.
    pub seed: u64,
}

/// A generated HDC task: class prototypes plus noisy labeled samples.
#[derive(Debug, Clone)]
pub struct HdcDataset {
    /// The generating configuration.
    pub config: HdcConfig,
    /// Ground-truth class prototypes (hidden from training).
    pub prototypes: Vec<Vec<bool>>,
    /// Labeled training samples `(class, hypervector)`.
    pub train: Vec<(usize, Vec<bool>)>,
    /// Labeled held-out samples `(class, hypervector)`.
    pub test: Vec<(usize, Vec<bool>)>,
}

impl HdcDataset {
    /// Generate prototypes and noisy samples from the seed.
    pub fn generate(config: HdcConfig) -> Self {
        assert!(config.classes > 0 && config.dim > 0, "degenerate task");
        let mut state = config.seed ^ 0x4DC0_FFEE_0000_0003;
        let prototypes: Vec<Vec<bool>> = (0..config.classes)
            .map(|_| random_code(&mut state, config.dim))
            .collect();
        let noisy = |proto: &[bool], state: &mut u64| -> Vec<bool> {
            proto
                .iter()
                .map(|&b| {
                    if splitmix(state) % 1_000_000 < config.noise_per_million as u64 {
                        !b
                    } else {
                        b
                    }
                })
                .collect()
        };
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (c, proto) in prototypes.iter().enumerate() {
            for _ in 0..config.train_per_class {
                train.push((c, noisy(proto, &mut state)));
            }
            for _ in 0..config.test_per_class {
                test.push((c, noisy(proto, &mut state)));
            }
        }
        HdcDataset {
            config,
            prototypes,
            train,
            test,
        }
    }
}

/// A trained binarized-HDC associative memory: one majority-vote class
/// hypervector per class, stored in CAM rows for nearest-neighbor
/// inference.
#[derive(Debug, Clone)]
pub struct HdcModel {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Class hypervectors, indexed by class id.
    pub class_vectors: Vec<Vec<bool>>,
}

impl HdcModel {
    /// Bundle each class's training samples by per-bit majority vote
    /// (ties round up — the bundling convention of binarized HDC with an
    /// even sample count).
    pub fn train(ds: &HdcDataset) -> Self {
        let dim = ds.config.dim;
        let mut votes = vec![vec![0usize; dim]; ds.config.classes];
        let mut totals = vec![0usize; ds.config.classes];
        for (c, sample) in &ds.train {
            totals[*c] += 1;
            for (v, &b) in votes[*c].iter_mut().zip(sample) {
                *v += b as usize;
            }
        }
        let class_vectors = votes
            .iter()
            .zip(&totals)
            .map(|(v, &n)| {
                assert!(n > 0, "every class needs at least one training sample");
                v.iter().map(|&ones| 2 * ones >= n).collect()
            })
            .collect();
        HdcModel { dim, class_vectors }
    }

    /// The class stored at candidate slot `(pe, row)`: class vectors are
    /// placed round-robin across PEs (`slot index = row * pes + pe`,
    /// wrapped onto the class count), so every slot of the searched region
    /// holds a meaningful vector and every PE works on every query.
    pub fn slot_class(&self, pe: usize, row: usize, pes: usize) -> usize {
        (row * pes + pe) % self.class_vectors.len()
    }

    /// Rows per PE needed to hold at least one copy of every class vector
    /// on a `pes`-wide machine.
    pub fn rows_needed(&self, pes: usize) -> usize {
        self.class_vectors.len().div_ceil(pes)
    }

    /// Store the class vectors into the scalar reference machine over the
    /// first `rows` rows of every PE (every slot filled per
    /// [`slot_class`](Self::slot_class)).
    pub fn load_ap(&self, m: &mut ApMachine, rows: usize) {
        let pes = m.config().total_pes();
        assert!(self.dim <= m.config().cols, "hypervector exceeds columns");
        for pe in 0..pes {
            for row in 0..rows {
                let v = &self.class_vectors[self.slot_class(pe, row, pes)];
                for (col, &b) in v.iter().enumerate() {
                    m.pe_mut(pe).load_bit(row, col, b);
                }
            }
        }
    }

    /// Store the class vectors into the word-parallel slab machine.
    pub fn load_slab(&self, m: &mut SlabMachine, rows: usize) {
        let pes = m.config().total_pes();
        assert!(self.dim <= m.config().cols, "hypervector exceeds columns");
        for pe in 0..pes {
            for row in 0..rows {
                let v = &self.class_vectors[self.slot_class(pe, row, pes)];
                for (col, &b) in v.iter().enumerate() {
                    m.load_bit(pe, row, col, b);
                }
            }
        }
    }

    /// Pure-host scalar inference over the same slot layout a machine
    /// searches: nearest slot by `(distance, pe, row)`, mapped back to its
    /// class. This is the reference every engine must agree with.
    pub fn classify_host(&self, sample: &[bool], pes: usize, rows: usize) -> usize {
        let mut best: Option<(u32, usize, usize)> = None;
        for row in 0..rows {
            for pe in 0..pes {
                let d = hamming(&self.class_vectors[self.slot_class(pe, row, pes)], sample);
                let cand = (d, pe, row);
                // `(distance, pe, row)` ascending — the engines' tie-break.
                if best.is_none_or(|b| (cand.0, cand.1, cand.2) < (b.0, b.1, b.2)) {
                    best = Some(cand);
                }
            }
        }
        let (_, pe, row) = best.expect("at least one slot");
        self.slot_class(pe, row, pes)
    }

    /// Inference on the scalar reference machine: one `nearest` query.
    pub fn classify_ap(&self, m: &ApMachine, sample: &[bool], rows: usize) -> usize {
        let key = code_key(sample, m.config().cols);
        let out = m.nearest(&key, rows);
        let hit = out.best().expect("machine has candidates");
        self.slot_class(hit.pe as usize, hit.row as usize, m.config().total_pes())
    }

    /// Inference on the word-parallel slab machine: one `nearest` query.
    pub fn classify_slab(&self, m: &SlabMachine, sample: &[bool], rows: usize) -> usize {
        let key = code_key(sample, m.config().cols);
        let out = m.nearest(&key, rows);
        let hit = out.best().expect("machine has candidates");
        self.slot_class(hit.pe as usize, hit.row as usize, m.config().total_pes())
    }

    /// Host-reference accuracy on a labeled sample set.
    pub fn accuracy_host(&self, samples: &[(usize, Vec<bool>)], pes: usize, rows: usize) -> f64 {
        if samples.is_empty() {
            return 1.0;
        }
        let good = samples
            .iter()
            .filter(|(c, s)| self.classify_host(s, pes, rows) == *c)
            .count();
        good as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_arch::ArchConfig;

    fn fault_free(mut config: ArchConfig) -> ArchConfig {
        config.faults = Default::default();
        config
    }

    #[test]
    fn host_topk_is_sorted_and_exact() {
        let cs = CodeSet::generate(7, 4, 6, 32);
        let q = cs.random_query(11);
        let hits = cs.host_topk(&q, 5);
        assert_eq!(hits.len(), 5);
        for w in hits.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for h in &hits {
            assert_eq!(
                h.distance,
                hamming(&cs.codes[h.pe as usize * 6 + h.row as usize], &q)
            );
        }
    }

    #[test]
    fn engines_reproduce_host_topk() {
        let config = fault_free(ArchConfig::tiny());
        let cs = CodeSet::generate(3, config.total_pes(), 8, config.cols.min(48));
        let mut ap = ApMachine::new(config.clone());
        let mut slab = SlabMachine::new(config.clone());
        cs.load_ap(&mut ap);
        cs.load_slab(&mut slab);
        for qseed in 0..4 {
            let q = cs.random_query(qseed);
            let key = cs.query_key(&q, config.cols);
            for k in [1, 3, 17] {
                let want = cs.host_topk(&q, k);
                let a = ap.hamming_topk(&key, cs.rows, k);
                let s = slab.hamming_topk(&key, cs.rows, k);
                assert_eq!(a.hits, want, "scalar engine vs host, k={k}");
                assert_eq!(s.hits, want, "slab engine vs host, k={k}");
                assert_eq!(a.stats, s.stats, "engine stats must match");
            }
        }
    }

    #[test]
    fn hdc_classifier_agrees_across_engines_and_learns() {
        let config = fault_free(ArchConfig::tiny());
        let ds = HdcDataset::generate(HdcConfig {
            dim: 48,
            classes: 6,
            train_per_class: 10,
            test_per_class: 6,
            noise_per_million: 80_000, // 8% bit flips
            seed: 0xDC5EED,
        });
        let model = HdcModel::train(&ds);
        let pes = config.total_pes();
        let rows = model.rows_needed(pes).max(3); // wrap several replicas
        let mut ap = ApMachine::new(config.clone());
        let mut slab = SlabMachine::new(config.clone());
        model.load_ap(&mut ap, rows);
        model.load_slab(&mut slab, rows);
        let mut correct = 0;
        for (label, sample) in &ds.test {
            let host = model.classify_host(sample, pes, rows);
            assert_eq!(model.classify_ap(&ap, sample, rows), host);
            assert_eq!(model.classify_slab(&slab, sample, rows), host);
            if host == *label {
                correct += 1;
            }
        }
        // Bundled prototypes under 8% noise recover labels reliably.
        assert!(
            correct * 10 >= ds.test.len() * 9,
            "accuracy too low: {correct}/{}",
            ds.test.len()
        );
    }
}
