//! Lookup tables and their lowering under the two execution models.
//!
//! A computation step is a LUT: a set of input bits (≤ 12, §V-B4) and, per
//! output bit, the set of input minterms for which the output is `1`
//! (outputs are written into pre-zeroed columns, §II-C).
//!
//! * **Traditional lowering** (Fig 2c): the LUT is expressed as *binary*
//!   cubes (each input fixed or masked); each cube is one search immediately
//!   followed by one write — Single-Search-Single-Pattern and
//!   Single-Search-Single-Write. This reproduces the paper's Fig 2b table
//!   (7 entries for the full adder).
//! * **Hyper-AP lowering** (Fig 5d): inputs placed on encoded pairs allow
//!   multi-valued product terms ([`hyperap_tcam::mvsop`]); searches
//!   accumulate into the tags and one write per output follows —
//!   Single-Search-Multi-Pattern and Multi-Search-Single-Write.

use crate::field::Slot;
use crate::program::{ApOp, Program};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::encoding::{key_for_subset, single_key_for_subset, PairSubset};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::mvsop::{minimize, Cover, PosKind, Solution, Term};
use serde::{Deserialize, Serialize};

/// Which execution model to lower a LUT under (§II-D vs §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionModel {
    /// Single-Search-Single-Pattern + Single-Search-Single-Write.
    Traditional,
    /// Single-Search-Multi-Pattern + Multi-Search-Single-Write.
    Hyper,
}

/// One output of a LUT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LutOutput {
    /// Write `1` into a plain column for matching rows.
    Plain {
        /// Destination column (must be pre-zeroed).
        col: usize,
        /// ON-set minterms: bit `i` of each value is logical input `i`.
        on_set: Vec<u16>,
    },
    /// Write two computed bits as an encoded pair at `col`, `col + 1`
    /// (Hyper-AP only; uses the PE's two-bit encoder, Fig 7).
    EncodedPair {
        /// First destination column.
        col: usize,
        /// ON-set of the pair-high bit.
        hi_on_set: Vec<u16>,
        /// ON-set of the pair-low bit.
        lo_on_set: Vec<u16>,
    },
}

/// A lookup table: placed inputs and outputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lut {
    /// Input bit placements; logical input `i` is `inputs[i]`.
    pub inputs: Vec<Slot>,
    /// Outputs.
    pub outputs: Vec<LutOutput>,
}

/// Internal: the multi-valued position structure induced by input placement.
struct Positions {
    kinds: Vec<PosKind>,
    /// For each position: the physical base column.
    cols: Vec<usize>,
    /// For each position: logical input indices bound to (pair-high,
    /// pair-low). A single-bit position uses only the `hi` list. Multiple
    /// indices on one list mean the same stored bit is used several times
    /// (e.g. squaring); minterms where they disagree are unreachable.
    members: Vec<(Vec<usize>, Vec<usize>)>,
}

impl Lut {
    /// Evaluate one ON-set against concrete logical input bits (bit `i` of
    /// `inputs` = logical input `i`).
    pub fn eval_on_set(on_set: &[u16], inputs: u16) -> bool {
        on_set.contains(&inputs)
    }

    /// Number of logical inputs.
    pub fn n_inputs(&self) -> usize {
        self.inputs.len()
    }

    fn positions(&self) -> Positions {
        let mut kinds = Vec::new();
        let mut cols = Vec::new();
        let mut members: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        let mut pair_pos: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        let mut single_pos: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for (i, slot) in self.inputs.iter().enumerate() {
            match *slot {
                Slot::Single { col } => {
                    let p = *single_pos.entry(col).or_insert_with(|| {
                        kinds.push(PosKind::Single);
                        cols.push(col);
                        members.push((Vec::new(), Vec::new()));
                        kinds.len() - 1
                    });
                    members[p].0.push(i);
                }
                Slot::PairHi { col } => {
                    let p = *pair_pos.entry(col).or_insert_with(|| {
                        kinds.push(PosKind::Pair);
                        cols.push(col);
                        members.push((Vec::new(), Vec::new()));
                        kinds.len() - 1
                    });
                    members[p].0.push(i);
                }
                Slot::PairLo { col } => {
                    let p = *pair_pos.entry(col).or_insert_with(|| {
                        kinds.push(PosKind::Pair);
                        cols.push(col);
                        members.push((Vec::new(), Vec::new()));
                        kinds.len() - 1
                    });
                    members[p].1.push(i);
                }
            }
        }
        Positions {
            kinds,
            cols,
            members,
        }
    }

    /// Expand a logical minterm into position-value minterms; absent pair
    /// halves take both values (the output must not depend on them), and
    /// minterms where multiple bindings of one stored bit disagree are
    /// unreachable and dropped.
    fn position_minterms(pos: &Positions, logical: u16) -> Vec<Vec<u8>> {
        let mut result: Vec<Vec<u8>> = vec![Vec::new()];
        for (k, kind) in pos.kinds.iter().enumerate() {
            let (hi, lo) = &pos.members[k];
            // All bindings of one physical bit must agree; `None` = conflict.
            let agreed = |idxs: &[usize]| -> Result<Option<u8>, ()> {
                let mut v: Option<u8> = None;
                for &i in idxs {
                    let b = (logical >> i & 1) as u8;
                    match v {
                        None => v = Some(b),
                        Some(prev) if prev != b => return Err(()),
                        _ => {}
                    }
                }
                Ok(v)
            };
            let (h, l) = match (agreed(hi), agreed(lo)) {
                (Ok(h), Ok(l)) => (h, l),
                _ => return Vec::new(), // unreachable minterm
            };
            let values: Vec<u8> = match kind {
                PosKind::Single => vec![h.expect("single always has a member")],
                PosKind::Pair => {
                    let hs: Vec<u8> = match h {
                        Some(v) => vec![v],
                        None => vec![0, 1],
                    };
                    let ls: Vec<u8> = match l {
                        Some(v) => vec![v],
                        None => vec![0, 1],
                    };
                    hs.iter()
                        .flat_map(|&h| ls.iter().map(move |&l| h << 1 | l))
                        .collect()
                }
            };
            result = result
                .into_iter()
                .flat_map(|m| {
                    values.iter().map(move |&v| {
                        let mut m2 = m.clone();
                        m2.push(v);
                        m2
                    })
                })
                .collect();
        }
        result
    }

    fn cover_for(&self, pos: &Positions, on_set: &[u16]) -> Cover {
        let mut on = Vec::new();
        for &m in on_set {
            for pm in Self::position_minterms(pos, m) {
                if !on.contains(&pm) {
                    on.push(pm);
                }
            }
        }
        Cover::new(pos.kinds.clone(), on)
    }

    fn term_to_key(pos: &Positions, term: &Term, width_hint: usize) -> SearchKey {
        let mut key = SearchKey::masked(width_hint);
        for (k, subset) in term.subsets.iter().enumerate() {
            let col = pos.cols[k];
            match pos.kinds[k] {
                PosKind::Single => {
                    let kb = single_key_for_subset(*subset).expect("non-empty subset");
                    if kb != KeyBit::Masked {
                        key.set_bit(col, kb);
                    }
                }
                PosKind::Pair => {
                    if *subset == PairSubset::FULL {
                        continue; // fully masked pair
                    }
                    let [k1, k0] = key_for_subset(*subset).expect("non-empty subset");
                    if k1 != KeyBit::Masked {
                        key.set_bit(col, k1);
                    }
                    if k0 != KeyBit::Masked {
                        key.set_bit(col + 1, k0);
                    }
                }
            }
        }
        key
    }

    /// The minimized multi-valued cover for an ON-set under this placement
    /// (exposed for compiler cost estimation).
    pub fn plan(&self, on_set: &[u16]) -> Solution {
        let pos = self.positions();
        minimize(&self.cover_for(&pos, on_set))
    }

    fn max_col(&self) -> usize {
        let in_max = self
            .inputs
            .iter()
            .flat_map(|s| s.columns())
            .max()
            .unwrap_or(0);
        let out_max = self
            .outputs
            .iter()
            .map(|o| match o {
                LutOutput::Plain { col, .. } => *col,
                LutOutput::EncodedPair { col, .. } => *col + 1,
            })
            .max()
            .unwrap_or(0);
        in_max.max(out_max)
    }

    /// Lower to a Hyper-AP program: per output, accumulate all covering
    /// searches into the tags, then write once (Multi-Search-Single-Write).
    pub fn lower_hyper(&self) -> Program {
        let pos = self.positions();
        let width = self.max_col() + 2;
        let mut prog = Program::new();
        let emit_search_series = |prog: &mut Program, on_set: &[u16]| {
            let sol = minimize(&self.cover_for(&pos, on_set));
            if sol.terms.is_empty() {
                // Constant-0 output: leave the pre-zeroed column; clear tags
                // so a following write/encode sees no tagged rows.
                prog.push(ApOp::TagNone);
                return;
            }
            for (i, term) in sol.terms.iter().enumerate() {
                prog.search(Self::term_to_key(&pos, term, width), i > 0);
            }
        };
        for out in &self.outputs {
            match out {
                LutOutput::Plain { col, on_set } => {
                    emit_search_series(&mut prog, on_set);
                    // Skip the write entirely for constant-0 outputs.
                    if !on_set.is_empty() {
                        prog.write(*col, KeyBit::One);
                    }
                }
                LutOutput::EncodedPair {
                    col,
                    hi_on_set,
                    lo_on_set,
                } => {
                    if hi_on_set.is_empty() {
                        // Constant-0 high half: a Latch after TagNone would
                        // be dropped by ISA lowering, so program the pair
                        // with plain writes (X into the high cell, then the
                        // low half by search + write).
                        prog.push(ApOp::TagAll);
                        prog.write(*col, KeyBit::Z);
                        prog.write(*col + 1, KeyBit::Zero);
                        if !lo_on_set.is_empty() {
                            emit_search_series(&mut prog, lo_on_set);
                            prog.write(*col + 1, KeyBit::One);
                        }
                    } else {
                        emit_search_series(&mut prog, hi_on_set);
                        prog.push(ApOp::Latch);
                        emit_search_series(&mut prog, lo_on_set);
                        prog.push(ApOp::WriteEncoded { col: *col });
                    }
                }
            }
        }
        prog
    }

    /// Lower to a traditional-AP program: per output, one search per binary
    /// cube immediately followed by a write (Fig 2c).
    ///
    /// # Panics
    ///
    /// Panics if any input is placed on an encoded pair or any output is an
    /// encoded pair — traditional AP has neither (§II-D).
    pub fn lower_traditional(&self) -> Program {
        assert!(
            self.inputs.iter().all(|s| !s.is_paired()),
            "traditional AP stores plain bits only"
        );
        let width = self.max_col() + 1;
        let mut prog = Program::new();
        for out in &self.outputs {
            let LutOutput::Plain { col, on_set } = out else {
                panic!("traditional AP has no two-bit encoder");
            };
            // Binary cube cover = MV minimization with all-single positions.
            let pos = self.positions();
            let sol = minimize(&self.cover_for(&pos, on_set));
            for term in &sol.terms {
                prog.search(Self::term_to_key(&pos, term, width), false);
                prog.write(*col, KeyBit::One);
            }
        }
        prog
    }

    /// Lower under either model.
    ///
    /// # Panics
    ///
    /// See [`lower_traditional`](Self::lower_traditional) for the traditional
    /// model's constraints.
    pub fn lower(&self, model: ExecutionModel) -> Program {
        match model {
            ExecutionModel::Traditional => self.lower_traditional(),
            ExecutionModel::Hyper => self.lower_hyper(),
        }
    }

    /// Operation counts under a model, without needing a placement valid for
    /// that model: traditional counts use an all-plain placement of the same
    /// logical LUT (the physical columns do not affect counts).
    pub fn op_counts(&self, model: ExecutionModel) -> OpCounts {
        match model {
            ExecutionModel::Hyper => self.lower_hyper().op_counts(),
            ExecutionModel::Traditional => {
                let plain = Lut {
                    inputs: (0..self.n_inputs())
                        .map(|i| Slot::Single { col: i })
                        .collect(),
                    outputs: self
                        .outputs
                        .iter()
                        .enumerate()
                        .map(|(k, o)| {
                            let on = match o {
                                LutOutput::Plain { on_set, .. } => on_set.clone(),
                                LutOutput::EncodedPair { hi_on_set, .. } => hi_on_set.clone(),
                            };
                            LutOutput::Plain {
                                col: self.n_inputs() + k,
                                on_set: on,
                            }
                        })
                        .collect(),
                };
                // Encoded-pair outputs count as two plain outputs.
                let mut extra = OpCounts::default();
                for o in &self.outputs {
                    if let LutOutput::EncodedPair { lo_on_set, .. } = o {
                        let lo_lut = Lut {
                            inputs: plain.inputs.clone(),
                            outputs: vec![LutOutput::Plain {
                                col: self.n_inputs(),
                                on_set: lo_on_set.clone(),
                            }],
                        };
                        extra.add(&lo_lut.lower_traditional().op_counts());
                    }
                }
                let mut c = plain.lower_traditional().op_counts();
                c.add(&extra);
                c
            }
        }
    }
}

/// The paper's running example: the 1-bit full adder
/// (`Sum, Cout = A + B + Cin`, Fig 2b), with `A`/`B` two-bit-encoded at
/// columns 0-1 and `Cin` plain at column 2 (the Fig 5d layout); `Sum` at
/// column 3, `Cout` at column 4.
///
/// # Example
/// ```
/// use hyperap_core::lut::{full_adder_lut, ExecutionModel};
/// assert_eq!(full_adder_lut().op_counts(ExecutionModel::Hyper).search_write_ops(), 6);
/// ```
pub fn full_adder_lut() -> Lut {
    // Logical inputs: 0 = A, 1 = B, 2 = Cin. Minterm bit i = input i.
    let sum: Vec<u16> = vec![0b001, 0b010, 0b100, 0b111];
    let cout: Vec<u16> = vec![0b011, 0b101, 0b110, 0b111];
    Lut {
        inputs: vec![
            Slot::PairHi { col: 0 },
            Slot::PairLo { col: 0 },
            Slot::Single { col: 2 },
        ],
        outputs: vec![
            LutOutput::Plain {
                col: 3,
                on_set: sum,
            },
            LutOutput::Plain {
                col: 4,
                on_set: cout,
            },
        ],
    }
}

/// The same full adder placed entirely on plain columns (A, B, Cin at
/// columns 0, 1, 2) for execution on traditional AP.
pub fn full_adder_lut_plain() -> Lut {
    let mut lut = full_adder_lut();
    lut.inputs = vec![
        Slot::Single { col: 0 },
        Slot::Single { col: 1 },
        Slot::Single { col: 2 },
    ];
    lut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{HyperPe, TraditionalPe};

    #[test]
    fn fig2c_traditional_full_adder_is_14_operations() {
        let c = full_adder_lut().op_counts(ExecutionModel::Traditional);
        assert_eq!(c.searches, 7, "Fig 2b: 7 lookup-table entries");
        assert_eq!(c.writes(), 7);
        assert_eq!(c.search_write_ops(), 14);
    }

    #[test]
    fn fig5d_hyper_full_adder_is_6_operations() {
        let c = full_adder_lut().op_counts(ExecutionModel::Hyper);
        assert_eq!(c.searches, 4, "2 for Sum + 2 for Cout");
        assert_eq!(c.writes(), 2, "one per output");
        assert_eq!(c.search_write_ops(), 6);
    }

    #[test]
    fn fig5d_reduction_ratios() {
        // §III: searches reduced 1.8×, writes 3.5×, total 2.3× for 1-bit add.
        let t = full_adder_lut().op_counts(ExecutionModel::Traditional);
        let h = full_adder_lut().op_counts(ExecutionModel::Hyper);
        assert!((t.searches as f64 / h.searches as f64 - 1.75).abs() < 0.1);
        assert_eq!(t.writes() / h.writes(), 3); // 7/2 = 3.5 -> 3 integer
        assert!((t.search_write_ops() as f64 / h.search_write_ops() as f64 - 2.33).abs() < 0.1);
    }

    fn run_hyper_adder(a: bool, b: bool, cin: bool) -> (bool, bool) {
        let mut pe = HyperPe::new(1, 8);
        pe.load_encoded_pair(0, 0, a, b);
        pe.load_bit(0, 2, cin);
        full_adder_lut().lower_hyper().run(&mut pe);
        (pe.read_bit(0, 3).unwrap(), pe.read_bit(0, 4).unwrap())
    }

    #[test]
    fn hyper_full_adder_is_functionally_correct() {
        for v in 0u8..8 {
            let (a, b, cin) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
            let total = a as u8 + b as u8 + cin as u8;
            let (sum, cout) = run_hyper_adder(a, b, cin);
            assert_eq!(sum, total & 1 == 1, "sum for {a}{b}{cin}");
            assert_eq!(cout, total >= 2, "cout for {a}{b}{cin}");
        }
    }

    #[test]
    fn traditional_full_adder_is_functionally_correct() {
        for v in 0u8..8 {
            let (a, b, cin) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
            let mut pe = TraditionalPe::new(1, 8);
            pe.load_bit(0, 0, a);
            pe.load_bit(0, 1, b);
            pe.load_bit(0, 2, cin);
            full_adder_lut_plain()
                .lower_traditional()
                .run_traditional(&mut pe);
            let total = a as u8 + b as u8 + cin as u8;
            assert_eq!(pe.read_bit(0, 3), Some(total & 1 == 1));
            assert_eq!(pe.read_bit(0, 4), Some(total >= 2));
        }
    }

    #[test]
    fn word_parallelism_computes_all_rows() {
        let mut pe = HyperPe::new(8, 8);
        for v in 0u8..8 {
            let (a, b, cin) = (v & 1 != 0, v & 2 != 0, v & 4 != 0);
            pe.load_encoded_pair(v as usize, 0, a, b);
            pe.load_bit(v as usize, 2, cin);
        }
        full_adder_lut().lower_hyper().run(&mut pe);
        for v in 0u8..8 {
            let total = (v & 1) + (v >> 1 & 1) + (v >> 2 & 1);
            assert_eq!(pe.read_bit(v as usize, 3), Some(total & 1 == 1));
            assert_eq!(pe.read_bit(v as usize, 4), Some(total >= 2));
        }
    }

    #[test]
    fn encoded_pair_output_round_trips() {
        // Compute (hi = A AND B, lo = A OR B) into an encoded pair.
        let lut = Lut {
            inputs: vec![Slot::Single { col: 0 }, Slot::Single { col: 1 }],
            outputs: vec![LutOutput::EncodedPair {
                col: 2,
                hi_on_set: vec![0b11],
                lo_on_set: vec![0b01, 0b10, 0b11],
            }],
        };
        for v in 0u8..4 {
            let (a, b) = (v & 1 != 0, v & 2 != 0);
            let mut pe = HyperPe::new(1, 6);
            pe.load_bit(0, 0, a);
            pe.load_bit(0, 1, b);
            lut.lower_hyper().run(&mut pe);
            assert_eq!(pe.read_encoded_pair(0, 2), (a && b, a || b), "v={v}");
        }
    }

    #[test]
    fn constant_zero_output_emits_no_write() {
        let lut = Lut {
            inputs: vec![Slot::Single { col: 0 }],
            outputs: vec![LutOutput::Plain {
                col: 1,
                on_set: vec![],
            }],
        };
        let prog = lut.lower_hyper();
        assert_eq!(prog.op_counts().writes(), 0);
        assert_eq!(prog.op_counts().searches, 0);
    }

    #[test]
    fn partial_pair_input_ignores_partner() {
        // Only the pair-high half is an input; output = that bit. The
        // partner (pair-low) must not affect the result.
        let lut = Lut {
            inputs: vec![Slot::PairHi { col: 0 }],
            outputs: vec![LutOutput::Plain {
                col: 2,
                on_set: vec![0b1],
            }],
        };
        for hi in [false, true] {
            for lo in [false, true] {
                let mut pe = HyperPe::new(1, 4);
                pe.load_encoded_pair(0, 0, hi, lo);
                lut.lower_hyper().run(&mut pe);
                assert_eq!(pe.read_bit(0, 2), Some(hi), "hi={hi} lo={lo}");
            }
        }
    }

    #[test]
    fn hyper_never_needs_more_searches_than_traditional() {
        // For a batch of random 4-input functions with inputs placed on two
        // encoded pairs.
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        for _ in 0..10 {
            let on_set: Vec<u16> = (0u16..16).filter(|_| next() % 2 == 0).collect();
            let lut = Lut {
                inputs: vec![
                    Slot::PairHi { col: 0 },
                    Slot::PairLo { col: 0 },
                    Slot::PairHi { col: 2 },
                    Slot::PairLo { col: 2 },
                ],
                outputs: vec![LutOutput::Plain {
                    col: 4,
                    on_set: on_set.clone(),
                }],
            };
            let h = lut.op_counts(ExecutionModel::Hyper);
            let t = lut.op_counts(ExecutionModel::Traditional);
            assert!(h.searches <= t.searches, "on_set = {on_set:?}");
            assert!(h.writes() <= t.writes());
        }
    }
}
