//! The Hyper-AP compilation framework (§V).
//!
//! Users write C-like programs with arbitrary-bit-width integer types
//! (Fig 8); the compiler turns them into associative search/write programs:
//!
//! ```text
//! source ──lex/parse──▶ AST ──sema──▶ DFG ──(clustering, Eq. 1)──▶
//!   AIG generation (RTL library + function overloading) ──▶
//!   LUT generation (Eq. 2, ≤12 inputs; two-bit encoding, operation
//!   merging, operand embedding) ──▶ code generation
//! ```
//!
//! * [`lex`] / [`parse`] / [`ast`] — the C-like frontend (§V-A): `unsigned
//!   int (N)`, `int (N)`, `bool`, structs, compile-time-unrollable loops,
//!   if/else (flattened into predicated selects, Fig 13b), no pointers.
//! * [`sema`] — type checking, width inference, loop unrolling, branch
//!   flattening, constant folding.
//! * [`dfg`] — the dataflow graph; [`cluster`] implements the Eq. 1
//!   clustering heuristic adapted from priority cuts \[42\].
//! * [`aig`] / [`rtl`] — and-inverter graphs and the expert RTL library
//!   (ripple adders, comparators, muxes) with function overloading by
//!   operand type/width (§V-B3); `*`, `/`, `%`, `sqrt`, `exp` dispatch to
//!   the hand-optimized iterative microcode of [`hyperap_core::microcode`].
//! * [`lutmap`] — cut-based LUT generation with the Eq. 2 cost
//!   `Cost1[i] = Σ Cost1[j] + N_patterns + α`, where α = Twrite/Tsearch
//!   retargets the result between RRAM (α = 10) and CMOS (α = 1). Mapping
//!   across DFG node boundaries is the paper's *operation merging*.
//! * [`pairing`] — the two-bit-encoding bit-pairing search of Fig 11.
//! * [`codegen`] / [`pipeline`] — data layout, program emission, and the
//!   end-to-end [`compile`] entry point.
//!
//! # Example
//!
//! ```
//! use hyperap_compiler::{compile, CompileOptions};
//!
//! let kernel = compile(
//!     "unsigned int (6) main(unsigned int (5) a, unsigned int (5) b) {
//!          unsigned int (6) c;
//!          c = a + b;
//!          return c;
//!      }",
//!     &CompileOptions::default(),
//! ).unwrap();
//! let out = kernel.run_rows(&[(&[7, 21]), (&[30, 31])]).unwrap();
//! assert_eq!(out, vec![28, 61]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aig;
pub mod ast;
pub mod cluster;
pub mod codegen;
pub mod dfg;
pub mod lex;
pub mod lutmap;
pub mod opt;
pub mod pairing;
pub mod parse;
pub mod pipeline;
pub mod rtl;
pub mod sema;

pub use codegen::CompiledKernel;
pub use pipeline::{compile, CompileError, CompileOptions, OPT_LEVEL_MAX};
