//! The functional TCAM array model.
//!
//! Words are rows, bits are columns (Fig 1a). The representation is
//! column-major: each column keeps two row-bitmasks (`is_zero`, `is_one`;
//! `X` = neither), so a search over all rows is two or three 64-bit boolean
//! operations per active column per 64 rows — the word-parallel semantics of
//! the hardware at software speed.

use crate::bit::{KeyBit, TernaryBit};
use crate::fault::{FaultError, FaultModel, FaultState};
use crate::key::SearchKey;
use crate::sweep;
use crate::tags::TagVector;
use serde::{Deserialize, Serialize};

/// One bit column of the array: which rows store `0` and which store `1`
/// (rows in neither set store `X`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Column {
    is_zero: Vec<u64>,
    is_one: Vec<u64>,
}

/// A functional ternary CAM array of `rows` words × `cols` bits.
///
/// All cells initialize to `0`, matching the paper's convention that output
/// vectors are initialized to zero before a computation (§II-C).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcamArray {
    rows: usize,
    cols: usize,
    columns: Vec<Column>,
    row_mask: Vec<u64>,
    /// Associative-write pulses per column (RRAM endurance accounting; host
    /// loads are not counted).
    wear: Vec<u64>,
    /// Device-fault bookkeeping; `None` (the default) is the ideal array and
    /// keeps every kernel on its zero-fault path.
    fault: Option<Box<FaultState>>,
}

impl TcamArray {
    /// Create an array of `rows` × `cols` cells, all storing `0`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        let blocks = rows.div_ceil(64);
        let mut row_mask = vec![u64::MAX; blocks];
        let tail = rows % 64;
        if tail != 0 {
            row_mask[blocks - 1] = (1u64 << tail) - 1;
        }
        let full_zero = row_mask.clone();
        TcamArray {
            rows,
            cols,
            columns: vec![
                Column {
                    is_zero: full_zero,
                    is_one: vec![0; blocks],
                };
                cols
            ],
            row_mask,
            wear: vec![0; cols],
            fault: None,
        }
    }

    /// Attach a device-fault model: this array becomes global PE `pe` with
    /// `spares` spare column devices. Stuck bits of the initial devices are
    /// enforced on the (all-zero or pre-loaded) storage immediately.
    pub fn attach_fault(&mut self, model: FaultModel, spares: usize, pe: usize) {
        self.fault = Some(Box::new(FaultState::new(
            model, pe, spares, self.rows, self.cols,
        )));
        for col in 0..self.cols {
            self.enforce_stuck_col(col);
        }
    }

    /// The fault bookkeeping, if a model is attached.
    pub fn fault(&self) -> Option<&FaultState> {
        self.fault.as_deref()
    }

    /// Restore fault bookkeeping verbatim (slab ⇄ array conversion path).
    /// Storage is *not* re-enforced: the source storage already reflects the
    /// stuck bits.
    pub(crate) fn set_fault(&mut self, fault: Option<Box<FaultState>>) {
        self.fault = fault;
    }

    /// Start a new run epoch (re-derives the transient search-miss set).
    /// No-op without an attached fault model.
    pub fn advance_epoch(&mut self) {
        if let Some(f) = &mut self.fault {
            f.advance_epoch();
        }
    }

    /// End-of-run endurance service: retire every column whose wear counter
    /// reached the model's limit onto a spare device (columns in ascending
    /// order). Retirement resets the column's wear — the spare is a fresh
    /// device — and enforces the new device's stuck bits on the copied data.
    ///
    /// # Errors
    ///
    /// [`FaultError::SparesExhausted`] at the first column that cannot be
    /// retired; the failure is also latched in [`fault`](Self::fault) so
    /// later runs can fail fast.
    pub fn service_endurance(&mut self) -> Result<(), FaultError> {
        let Some(limit) = self.fault.as_ref().and_then(|f| f.model.endurance_limit) else {
            return Ok(());
        };
        for col in 0..self.cols {
            let w = self.wear[col];
            if w >= limit {
                self.fault
                    .as_mut()
                    .expect("fault state present")
                    .retire(col, w)?;
                self.wear[col] = 0;
                self.enforce_stuck_col(col);
            }
        }
        Ok(())
    }

    /// The block mask searches initialize from: the row mask, minus this
    /// epoch's transient misses when a fault model is attached.
    fn search_base(&self) -> &[u64] {
        match &self.fault {
            Some(f) => &f.search_mask,
            None => &self.row_mask,
        }
    }

    /// Force column `col`'s storage to agree with its backing device's
    /// stuck bits. Idempotent; no-op without a fault model.
    fn enforce_stuck_col(&mut self, col: usize) {
        if let Some(f) = &self.fault {
            let (s0, s1) = f.stuck_col(col);
            let c = &mut self.columns[col];
            sweep::enforce_stuck(&mut c.is_zero, &mut c.is_one, s0, s1);
        }
    }

    /// The paper's PE array geometry: 256 words × 256 bits (Fig 7).
    pub fn pe_sized() -> Self {
        Self::new(256, 256)
    }

    /// Number of word rows (SIMD slots).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bit columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Read one cell.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, row: usize, col: usize) -> TernaryBit {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        let (b, m) = (row / 64, 1u64 << (row % 64));
        let c = &self.columns[col];
        if c.is_zero[b] & m != 0 {
            TernaryBit::Zero
        } else if c.is_one[b] & m != 0 {
            TernaryBit::One
        } else {
            TernaryBit::X
        }
    }

    /// Write one cell directly (host data load path, not an associative write).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_cell(&mut self, row: usize, col: usize, value: TernaryBit) {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        let (b, m) = (row / 64, 1u64 << (row % 64));
        let c = &mut self.columns[col];
        c.is_zero[b] &= !m;
        c.is_one[b] &= !m;
        match value {
            TernaryBit::Zero => c.is_zero[b] |= m,
            TernaryBit::One => c.is_one[b] |= m,
            TernaryBit::X => {}
        }
        if let Some(f) = &self.fault {
            let (s0, s1) = f.stuck_col(col);
            let c = &mut self.columns[col];
            if s0[b] & m != 0 {
                c.is_zero[b] |= m;
                c.is_one[b] &= !m;
            } else if s1[b] & m != 0 {
                c.is_one[b] |= m;
                c.is_zero[b] &= !m;
            }
        }
    }

    /// Store a whole word at `row` (shorter words leave later columns alone).
    ///
    /// # Panics
    ///
    /// Panics if `row` or the word length is out of range.
    pub fn store_word(&mut self, row: usize, word: &[TernaryBit]) {
        assert!(word.len() <= self.cols, "word wider than array");
        for (col, bit) in word.iter().enumerate() {
            self.set_cell(row, col, *bit);
        }
    }

    /// Read the whole word at `row`.
    pub fn read_word(&self, row: usize) -> Vec<TernaryBit> {
        (0..self.cols).map(|c| self.cell(row, c)).collect()
    }

    /// Store the low `width` bits of `value` at columns
    /// `col..col + width` of `row` (LSB first — the Fig 2a layout).
    pub fn store_field(&mut self, row: usize, col: usize, width: usize, value: u64) {
        for i in 0..width {
            self.set_cell(row, col + i, TernaryBit::from_bool(value >> i & 1 == 1));
        }
    }

    /// Read `width` bits starting at column `col` of `row` as a `u64`
    /// (`None` if any cell stores `X`).
    pub fn read_field(&self, row: usize, col: usize, width: usize) -> Option<u64> {
        let mut v = 0u64;
        for i in 0..width {
            match self.cell(row, col + i).to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    /// Search all rows in parallel against `key`; returns one tag per row.
    ///
    /// Fig 4 semantics: key `0` matches stored {0, X}, key `1` matches
    /// {1, X}, key `Z` matches {X}, masked columns match everything.
    ///
    /// Allocates the result vector; hot paths should reuse a buffer via
    /// [`search_into`](Self::search_into).
    pub fn search(&self, key: &SearchKey) -> TagVector {
        let mut tags = TagVector::zeros(self.rows);
        self.search_into(key, &mut tags);
        tags
    }

    /// [`search`](Self::search) into a caller-provided tag buffer: the
    /// zero-allocation kernel of the simulator's hot loop. `out` is fully
    /// overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rows`.
    pub fn search_into(&self, key: &SearchKey, out: &mut TagVector) {
        assert_eq!(out.len(), self.rows, "tag/row count mismatch");
        let acc = out.blocks_mut();
        acc.copy_from_slice(self.search_base());
        for col in key.active_columns() {
            if col >= self.cols {
                continue;
            }
            self.search_col_step(acc, col, key.bit(col));
        }
    }

    /// [`search_into`](Self::search_into) with a precompiled
    /// `(column, key-bit)` plan: the key scan is hoisted out of the hot
    /// loop, done once per key change instead of once per array per search.
    /// Equivalent to searching a key whose unmasked bits are exactly `plan`
    /// (masked or out-of-range plan entries are skipped).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the row count.
    pub fn search_plan_into(&self, plan: &[(usize, KeyBit)], out: &mut TagVector) {
        assert_eq!(out.len(), self.rows, "tag/row count mismatch");
        let acc = out.blocks_mut();
        acc.copy_from_slice(self.search_base());
        for &(col, bit) in plan {
            if col >= self.cols || bit == KeyBit::Masked {
                continue;
            }
            self.search_col_step(acc, col, bit);
        }
    }

    /// Incremental search: narrow `out`'s existing contents by `plan`
    /// without the row-mask re-initialization of
    /// [`search_plan_into`](Self::search_plan_into) — the reference kernel
    /// for the trace engine's `SearchDelta` micro-op, sound when `out`
    /// already holds the match of a still-valid plan prefix.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the row count.
    pub fn search_plan_narrow(&self, plan: &[(usize, KeyBit)], out: &mut TagVector) {
        assert_eq!(out.len(), self.rows, "tag/row count mismatch");
        let acc = out.blocks_mut();
        for &(col, bit) in plan {
            if col >= self.cols || bit == KeyBit::Masked {
                continue;
            }
            self.search_col_step(acc, col, bit);
        }
    }

    /// Fused search chain plus conditional writes in one pass — the
    /// reference counterpart of the slab engine's single-sweep kernel
    /// ([`crate::slab::TcamSlab::search_write_multi`]).
    ///
    /// Per 64-row block: `t = (acc ? tags : 0) | match(plans[0]) | …`,
    /// store `t` into `tags`, then program each `(column, value)` of
    /// `writes` in order under `t`. Processing block-by-block with the
    /// reads before the writes is equivalent to the unfused sequence even
    /// when a write column appears in a plan, because the architectural
    /// search completes (per block) before any store and blocks are
    /// independent. Wear: one pulse per write column, exactly like
    /// [`write_column`](Self::write_column).
    ///
    /// # Panics
    ///
    /// Panics if a write column is out of range or `tags.len() != rows`.
    pub fn search_write_multi(
        &mut self,
        plans: &[&[(usize, KeyBit)]],
        acc: bool,
        writes: &[(usize, TernaryBit)],
        tags: &mut TagVector,
    ) {
        assert_eq!(tags.len(), self.rows, "tag/row count mismatch");
        for &(col, _) in writes {
            assert!(col < self.cols, "column out of range");
            self.wear[col] += 1;
        }
        // Same tiled sweep structure as the slab kernel
        // ([`crate::slab::TcamSlab::search_write_multi`]), built from the
        // shared pairwise passes in [`crate::sweep`]: plan entries are
        // consumed two per pass with the bit-kind `match` hoisted out of
        // the word loop, a non-accumulating chain evaluates its first plan
        // directly in the tags tile, and the OR-accumulate folds into each
        // later plan's final narrowing pass. Tiles are independent — a
        // tile's searches read only its own block offsets.
        // 8 blocks covers a 512-row array in one tile (the paper PE is 256
        // rows = 4 blocks); keeping the scratch tile small matters here
        // because this kernel runs once per PE, not once per chunk.
        const TILE: usize = 8;
        let mut s = [0u64; TILE];
        let full = self.rows.is_multiple_of(64);
        let blocks = self.row_mask.len();
        let tag_blocks = tags.blocks_mut();
        let mut base = 0;
        while base < blocks {
            let n = TILE.min(blocks - base);
            let t = &mut tag_blocks[base..base + n];
            let mask = match &self.fault {
                // Under faults the effective mask also excludes this
                // epoch's transient misses, so it applies even when the row
                // count fills every block.
                Some(f) => Some(&f.search_mask[base..base + n]),
                None => (!full).then(|| &self.row_mask[base..base + n]),
            };
            if !acc && plans.is_empty() {
                t.fill(0);
            }
            let columns = &self.columns;
            let col = |c: usize| {
                let cc = &columns[c];
                (&cc.is_zero[base..base + n], &cc.is_one[base..base + n])
            };
            for (pi, plan) in plans.iter().enumerate() {
                if pi == 0 && !acc {
                    sweep::plan_and_into(t, plan, self.cols, &col, mask);
                } else {
                    sweep::plan_or_into(t, &mut s[..n], plan, self.cols, &col, mask);
                }
            }
            for &(col, value) in writes {
                let c = &mut self.columns[col];
                let zero = &mut c.is_zero[base..base + n];
                let one = &mut c.is_one[base..base + n];
                match value {
                    TernaryBit::Zero => {
                        for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(t.iter()) {
                            *z |= tw;
                            *o &= !tw;
                        }
                    }
                    TernaryBit::One => {
                        for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(t.iter()) {
                            *o |= tw;
                            *z &= !tw;
                        }
                    }
                    TernaryBit::X => {
                        for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(t.iter()) {
                            *z &= !tw;
                            *o &= !tw;
                        }
                    }
                }
            }
            base += n;
        }
        if self.fault.is_some() {
            // Stuck enforcement is idempotent and tiles touch disjoint row
            // blocks with reads preceding writes, so enforcing once per
            // written column at kernel end equals enforcing after every
            // store — the invariant the unfused engines maintain.
            for &(col, _) in writes {
                self.enforce_stuck_col(col);
            }
        }
    }

    /// Narrow `acc` to the rows matching `bit` at `col`.
    fn search_col_step(&self, acc: &mut [u64], col: usize, bit: KeyBit) {
        let c = &self.columns[col];
        match bit {
            KeyBit::Zero => {
                for (a, one) in acc.iter_mut().zip(&c.is_one) {
                    *a &= !one;
                }
            }
            KeyBit::One => {
                for (a, zero) in acc.iter_mut().zip(&c.is_zero) {
                    *a &= !zero;
                }
            }
            KeyBit::Z => {
                for ((a, zero), one) in acc.iter_mut().zip(&c.is_zero).zip(&c.is_one) {
                    *a &= !(zero | one);
                }
            }
            KeyBit::Masked => unreachable!("masked bits are filtered by the callers"),
        }
    }

    /// Associative write: program every unmasked column of every tagged row
    /// with the key value (Fig 1c / Fig 4d; `Z` writes `X`).
    ///
    /// # Panics
    ///
    /// Panics if `tags.len() != rows`.
    pub fn write(&mut self, key: &SearchKey, tags: &TagVector) {
        assert_eq!(tags.len(), self.rows, "tag/row count mismatch");
        for col in key.active_columns() {
            if col >= self.cols {
                continue;
            }
            let value = key
                .bit(col)
                .write_value()
                .expect("active column has a write value");
            self.write_column(col, value, tags);
        }
    }

    /// Associative write of a single column: program `value` into column
    /// `col` of every tagged row. The allocation-free write kernel — callers
    /// with a single-column write (the `Write` instruction's common case)
    /// avoid building a full-width [`SearchKey`].
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `tags.len() != rows`.
    pub fn write_column(&mut self, col: usize, value: TernaryBit, tags: &TagVector) {
        assert!(col < self.cols, "column out of range");
        assert_eq!(tags.len(), self.rows, "tag/row count mismatch");
        let tag_blocks = tags.blocks();
        self.wear[col] += 1;
        let c = &mut self.columns[col];
        match value {
            TernaryBit::Zero => {
                for ((zero, one), t) in c.is_zero.iter_mut().zip(&mut c.is_one).zip(tag_blocks) {
                    *zero |= t;
                    *one &= !t;
                }
            }
            TernaryBit::One => {
                for ((zero, one), t) in c.is_zero.iter_mut().zip(&mut c.is_one).zip(tag_blocks) {
                    *one |= t;
                    *zero &= !t;
                }
            }
            TernaryBit::X => {
                for ((zero, one), t) in c.is_zero.iter_mut().zip(&mut c.is_one).zip(tag_blocks) {
                    *zero &= !t;
                    *one &= !t;
                }
            }
        }
        self.enforce_stuck_col(col);
    }

    /// Associative-write pulse count per column — the endurance profile of
    /// the array. RRAM cells endure a bounded number of SET/RESET cycles
    /// (~10^6-10^12 depending on device), so heavily recycled scratch
    /// columns are the wear-leveling hotspot.
    pub fn column_wear(&self) -> &[u64] {
        &self.wear
    }

    /// Record one write pulse on `col` for operations that program cells
    /// through a row-dependent path (e.g. the PE's two-bit encoder, whose
    /// per-row values bypass [`write`](Self::write)).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn note_write(&mut self, col: usize) {
        assert!(col < self.cols, "column out of range");
        self.wear[col] += 1;
    }

    /// The most-written column and its pulse count (`None` for a
    /// never-written array).
    pub fn max_wear(&self) -> Option<(usize, u64)> {
        self.wear
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(_, w)| w)
            .filter(|&(_, w)| w > 0)
    }

    /// Raw row-blocks of one column, `(is_zero, is_one)` — the
    /// [`crate::slab`] conversion path.
    pub(crate) fn column_bits(&self, col: usize) -> (&[u64], &[u64]) {
        let c = &self.columns[col];
        (&c.is_zero, &c.is_one)
    }

    /// Overwrite one column's row-blocks from raw slices (slab conversion).
    pub(crate) fn set_column_bits(&mut self, col: usize, zeros: &[u64], ones: &[u64]) {
        let c = &mut self.columns[col];
        c.is_zero.copy_from_slice(zeros);
        c.is_one.copy_from_slice(ones);
    }

    /// Mutable wear counters (slab conversion restores accounted wear).
    pub(crate) fn wear_mut(&mut self) -> &mut [u64] {
        &mut self.wear
    }

    /// Copy the cells of column `src` into column `dst` for all rows (used by
    /// data-movement helpers in higher layers).
    ///
    /// # Panics
    ///
    /// Panics if either column is out of range.
    pub fn copy_column(&mut self, src: usize, dst: usize) {
        assert!(src < self.cols && dst < self.cols, "column out of range");
        if src == dst {
            return;
        }
        // Split the column table so source and destination can be borrowed
        // simultaneously, then `clone_from` to reuse the destination's
        // existing block storage instead of allocating a fresh column.
        let (lo, hi) = self.columns.split_at_mut(src.max(dst));
        let (s, d) = if src < dst {
            (&lo[src], &mut hi[0])
        } else {
            (&hi[0], &mut lo[dst])
        };
        d.is_zero.clone_from(&s.is_zero);
        d.is_one.clone_from(&s.is_one);
        self.enforce_stuck_col(dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit::word_from_str;

    fn array_with(words: &[&str]) -> TcamArray {
        let cols = words[0].len();
        let mut a = TcamArray::new(words.len(), cols);
        for (i, w) in words.iter().enumerate() {
            a.store_word(i, &word_from_str(w).unwrap());
        }
        a
    }

    #[test]
    fn new_array_is_all_zero() {
        let a = TcamArray::new(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(a.cell(r, c), TernaryBit::Zero);
            }
        }
    }

    #[test]
    fn search_matches_selected_columns_only() {
        // Fig 1b style: key 101 over the first three columns (last two
        // masked); only rows whose selected columns equal the key match.
        let a = array_with(&["10110", "10011", "11100", "10111", "00011"]);
        let key = SearchKey::parse("101--").unwrap();
        let tags = a.search(&key);
        let expect = [true, false, false, true, false];
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(tags.get(i), *e, "row {i}");
        }
    }

    #[test]
    fn write_fig1c_example() {
        // Fig 1c: write 111 into columns 0,1,3 of tagged words.
        let mut a = array_with(&["10011", "10010"]);
        let tags = TagVector::from_bools([true, false]);
        let key = SearchKey::parse("11-1-").unwrap();
        a.write(&key, &tags);
        assert_eq!(a.read_field(0, 0, 5), Some(0b11011)); // cols 0,1,3 set
        assert_eq!(a.read_field(1, 0, 5), Some(0b01001)); // untouched
    }

    #[test]
    fn x_state_matches_both_inputs() {
        let a = array_with(&["X0", "00", "10"]);
        let t0 = a.search(&SearchKey::parse("00").unwrap());
        assert!(t0.get(0) && t0.get(1) && !t0.get(2));
        let t1 = a.search(&SearchKey::parse("10").unwrap());
        assert!(t1.get(0) && !t1.get(1) && t1.get(2));
    }

    #[test]
    fn z_matches_only_x() {
        let a = array_with(&["X", "0", "1"]);
        let t = a.search(&SearchKey::parse("Z").unwrap());
        assert!(t.get(0) && !t.get(1) && !t.get(2));
    }

    #[test]
    fn z_writes_x() {
        let mut a = TcamArray::new(2, 2);
        let tags = TagVector::ones(2);
        a.write(&SearchKey::parse("Z-").unwrap(), &tags);
        assert_eq!(a.cell(0, 0), TernaryBit::X);
        assert_eq!(a.cell(0, 1), TernaryBit::Zero); // masked column untouched
    }

    #[test]
    fn fully_masked_key_matches_all_rows() {
        let a = TcamArray::new(130, 4);
        let t = a.search(&SearchKey::masked(4));
        assert_eq!(t.count(), 130);
    }

    #[test]
    fn fully_masked_key_does_not_set_padding() {
        let a = TcamArray::new(70, 4);
        let t = a.search(&SearchKey::masked(4));
        assert_eq!(t.count(), 70);
        assert_eq!(t.blocks()[1] >> 6, 0);
    }

    #[test]
    fn field_round_trip() {
        let mut a = TcamArray::new(4, 16);
        a.store_field(2, 3, 8, 0xA5);
        assert_eq!(a.read_field(2, 3, 8), Some(0xA5));
    }

    #[test]
    fn write_untagged_rows_untouched() {
        let mut a = array_with(&["0000", "0000"]);
        let tags = TagVector::from_bools([false, true]);
        a.write(&SearchKey::parse("1111").unwrap(), &tags);
        assert_eq!(a.read_field(0, 0, 4), Some(0));
        assert_eq!(a.read_field(1, 0, 4), Some(0xF));
    }

    #[test]
    fn copy_column_duplicates_state() {
        let mut a = array_with(&["10X", "01X"]);
        a.copy_column(0, 2);
        assert_eq!(a.cell(0, 2), TernaryBit::One);
        assert_eq!(a.cell(1, 2), TernaryBit::Zero);
    }

    #[test]
    fn copy_column_works_in_both_directions_and_reuses_storage() {
        let mut a = array_with(&["10X", "01X", "1X0"]);
        let ptr = a.columns[0].is_zero.as_ptr();
        a.copy_column(2, 0); // src > dst
        assert_eq!(a.columns[0].is_zero.as_ptr(), ptr, "no reallocation");
        for r in 0..3 {
            assert_eq!(a.cell(r, 0), a.cell(r, 2));
        }
        a.copy_column(0, 1); // src < dst
        for r in 0..3 {
            assert_eq!(a.cell(r, 1), a.cell(r, 0));
        }
        a.copy_column(1, 1); // no-op
        assert_eq!(a.cell(2, 1), TernaryBit::Zero);
    }

    #[test]
    fn search_into_matches_search_and_reuses_buffer() {
        let a = array_with(&["10110", "10011", "11100", "10111", "00011"]);
        let key = SearchKey::parse("101--").unwrap();
        let mut out = TagVector::ones(5); // stale contents must be overwritten
        let ptr = out.blocks().as_ptr();
        a.search_into(&key, &mut out);
        assert_eq!(out, a.search(&key));
        assert_eq!(out.blocks().as_ptr(), ptr, "no reallocation");
    }

    #[test]
    fn search_plan_into_matches_search() {
        let a = array_with(&["10110", "10011", "11100", "10111", "00011"]);
        for key in ["101--", "-----", "1Z0--", "00000"] {
            let key = SearchKey::parse(key).unwrap();
            let plan: Vec<(usize, KeyBit)> = key.active_bits().collect();
            let mut out = TagVector::ones(5);
            a.search_plan_into(&plan, &mut out);
            assert_eq!(out, a.search(&key), "key {key}");
        }
    }

    #[test]
    fn search_plan_into_skips_out_of_range_and_masked_entries() {
        let a = array_with(&["10", "01"]);
        let mut out = TagVector::zeros(2);
        a.search_plan_into(&[(7, KeyBit::One), (0, KeyBit::Masked)], &mut out);
        assert_eq!(out.count(), 2, "no-op plan entries match everything");
    }

    #[test]
    #[should_panic(expected = "tag/row count mismatch")]
    fn search_into_rejects_wrong_buffer_size() {
        let a = TcamArray::new(4, 4);
        let mut out = TagVector::zeros(5);
        a.search_into(&SearchKey::masked(4), &mut out);
    }

    #[test]
    fn write_column_matches_keyed_write() {
        let mut a = array_with(&["0000", "0000", "0000"]);
        let mut b = a.clone();
        let tags = TagVector::from_bools([true, false, true]);
        a.write(&SearchKey::parse("-1--").unwrap(), &tags);
        b.write_column(1, TernaryBit::One, &tags);
        assert_eq!(a, b);
        assert_eq!(b.column_wear(), &[0, 1, 0, 0]);
    }

    #[test]
    fn wear_counts_associative_writes_only() {
        let mut a = TcamArray::new(4, 4);
        a.store_field(0, 0, 4, 0xF); // host load: not counted
        assert_eq!(a.max_wear(), None);
        let tags = TagVector::ones(4);
        a.write(&SearchKey::parse("1-1-").unwrap(), &tags);
        a.write(&SearchKey::parse("1---").unwrap(), &tags);
        assert_eq!(a.column_wear(), &[2, 0, 1, 0]);
        assert_eq!(a.max_wear(), Some((0, 2)));
    }

    #[test]
    fn write_column_wears_once_per_pulse_but_set_cell_never() {
        // The endurance model bills associative write pulses (the column
        // driver fires once per write_column call, whatever the tags say),
        // while host-side set_cell loads go through the peripheral port and
        // are not billed.
        let mut a = TcamArray::new(4, 4);
        let empty = TagVector::zeros(4);
        a.write_column(2, TernaryBit::One, &empty);
        a.write_column(2, TernaryBit::Zero, &TagVector::ones(4));
        a.write_column(0, TernaryBit::X, &TagVector::ones(4));
        assert_eq!(a.column_wear(), &[1, 0, 2, 0]);
        for row in 0..4 {
            a.set_cell(row, 2, TernaryBit::One);
            a.set_cell(row, 3, TernaryBit::X);
        }
        assert_eq!(a.column_wear(), &[1, 0, 2, 0], "set_cell adds no wear");
        assert_eq!(a.max_wear(), Some((2, 2)));
    }

    #[test]
    fn pe_sized_is_256x256() {
        let a = TcamArray::pe_sized();
        assert_eq!((a.rows(), a.cols()), (256, 256));
    }

    #[test]
    fn stuck_cells_override_host_and_associative_writes() {
        use crate::fault::FaultModel;
        let model = FaultModel {
            seed: 7,
            stuck_per_million: 200_000,
            miss_per_million: 0,
            endurance_limit: None,
        };
        let mut a = TcamArray::new(64, 8);
        a.attach_fault(model, 0, 3);
        for col in 0..8 {
            for row in 0..64 {
                a.set_cell(row, col, TernaryBit::One);
            }
        }
        a.write_column(5, TernaryBit::Zero, &TagVector::ones(64));
        for col in 0..8 {
            for row in 0..64 {
                let expect = match model.stuck_at(3, col, row) {
                    Some(true) => TernaryBit::One,
                    Some(false) => TernaryBit::Zero,
                    None if col == 5 => TernaryBit::Zero,
                    None => TernaryBit::One,
                };
                assert_eq!(a.cell(row, col), expect, "row {row} col {col}");
            }
        }
    }

    #[test]
    fn transient_misses_gate_searches_per_epoch() {
        use crate::fault::FaultModel;
        let model = FaultModel {
            seed: 9,
            stuck_per_million: 0,
            miss_per_million: 400_000,
            endurance_limit: None,
        };
        let mut a = TcamArray::new(70, 4);
        a.attach_fault(model, 0, 2);
        for epoch in 0..2 {
            let t = a.search(&SearchKey::masked(4));
            for row in 0..70 {
                assert_eq!(t.get(row), !model.misses(2, row, epoch), "row {row}");
            }
            assert_eq!(t.blocks()[1] >> 6, 0, "padding stays clear");
            a.advance_epoch();
        }
    }

    #[test]
    fn endurance_service_retires_then_exhausts_spares() {
        use crate::fault::{FaultError, FaultModel};
        let model = FaultModel {
            seed: 1,
            stuck_per_million: 0,
            miss_per_million: 0,
            endurance_limit: Some(2),
        };
        let mut a = TcamArray::new(8, 4);
        a.attach_fault(model, 1, 0);
        let tags = TagVector::ones(8);
        a.write_column(1, TernaryBit::One, &tags);
        a.write_column(1, TernaryBit::One, &tags);
        a.service_endurance().unwrap();
        assert_eq!(a.column_wear(), &[0, 0, 0, 0], "spare is a fresh device");
        assert_eq!(a.fault().unwrap().retired, vec![(1, 4)]);
        a.write_column(1, TernaryBit::One, &tags);
        a.write_column(1, TernaryBit::One, &tags);
        let err = a.service_endurance().unwrap_err();
        assert_eq!(
            err,
            FaultError::SparesExhausted {
                pe: 0,
                col: 1,
                wear: 2
            }
        );
        assert_eq!(a.fault().unwrap().failed, Some((1, 2)));
    }

    #[test]
    fn zero_fault_model_attached_changes_nothing() {
        use crate::fault::FaultModel;
        let reference = array_with(&["10110", "10011", "11100", "10111", "00011"]);
        let mut a = reference.clone();
        a.attach_fault(FaultModel::none(), 0, 1);
        let key = SearchKey::parse("101--").unwrap();
        assert_eq!(a.search(&key), reference.search(&key));
        for r in 0..5 {
            assert_eq!(a.read_word(r), reference.read_word(r));
        }
    }

    #[test]
    fn search_key_beyond_cols_is_ignored() {
        let a = array_with(&["11"]);
        let mut key = SearchKey::masked(2);
        key.set_bit(10, KeyBit::One);
        // Column 10 doesn't exist; key is effectively fully masked.
        assert_eq!(a.search(&key).count(), 1);
    }
}
