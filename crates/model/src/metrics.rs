//! Derived evaluation metrics: latency, throughput, power- and area-efficiency.
//!
//! These are the four y-axes of Figs 15-17 and 19. Throughput assumes every
//! SIMD slot carries one element (the peak-throughput setting of the paper's
//! synthetic benchmarks, §VI-C: "arithmetic operations that are performed in
//! one SIMD slot ... to show the peak computing performance").

use crate::area::AreaModel;
use crate::tech::TechParams;
use crate::timing::OpCounts;
use serde::{Deserialize, Serialize};

/// The four evaluation metrics the paper reports per operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Latency of one operation in nanoseconds.
    pub latency_ns: f64,
    /// Throughput in giga-operations per second (GOPS).
    pub throughput_gops: f64,
    /// Power efficiency in GOPS per watt.
    pub power_eff_gops_w: f64,
    /// Area efficiency in GOPS per mm².
    pub area_eff_gops_mm2: f64,
}

impl Metrics {
    /// Compute the full metric set for an operation whose per-slot instruction
    /// stream is `ops`, on a chip described by `area` with technology `tech`.
    ///
    /// * latency = cycles × clock period
    /// * throughput = slots / latency
    /// * power = dynamic (per-PE energy / latency × PE count) + static
    /// * area efficiency = throughput / chip area
    pub fn compute(ops: &OpCounts, tech: &TechParams, area: &AreaModel) -> Metrics {
        let latency_ns = ops.latency_ns(tech);
        let slots = area.simd_slots() as f64;
        let pes = area.pe_count() as f64;
        let throughput_gops = slots / latency_ns; // ops per ns == GOPS
        let dyn_power_w = ops.energy_pj_per_pe(tech) * 1e-12 / (latency_ns * 1e-9) * pes;
        let static_power_w = tech.p_static_mw * 1e-3 * pes;
        let power_w = dyn_power_w + static_power_w;
        Metrics {
            latency_ns,
            throughput_gops,
            power_eff_gops_w: throughput_gops / power_w,
            area_eff_gops_mm2: throughput_gops / area.chip_area_mm2,
        }
    }

    /// Energy in joules to process `n` elements (n/slots passes).
    pub fn energy_j(&self, n: u64) -> f64 {
        // throughput_gops = 1e9 ops/s; power = throughput/power_eff.
        let power_w = self.throughput_gops / self.power_eff_gops_w;
        let time_s = n as f64 / (self.throughput_gops * 1e9);
        power_w * time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add32_ops() -> OpCounts {
        // Representative Hyper-AP 32-bit add stream (≈ paper's operating
        // point: ~159 searches, 33 single-column writes).
        OpCounts {
            searches: 159,
            writes_single: 33,
            set_keys: 37,
            ..OpCounts::default()
        }
    }

    #[test]
    fn add32_latency_near_paper() {
        // Fig 19a: RRAM Hyper-AP 32-bit add latency = 592 ns.
        let m = Metrics::compute(&add32_ops(), &TechParams::rram(), &AreaModel::rram());
        assert!(
            (m.latency_ns - 592.0).abs() / 592.0 < 0.05,
            "latency = {}",
            m.latency_ns
        );
    }

    #[test]
    fn add32_throughput_near_paper() {
        // Fig 15: Hyper-AP 32-bit add throughput = 56,680 GOPS.
        let m = Metrics::compute(&add32_ops(), &TechParams::rram(), &AreaModel::rram());
        assert!(
            (m.throughput_gops - 56_680.0).abs() / 56_680.0 < 0.06,
            "throughput = {}",
            m.throughput_gops
        );
    }

    #[test]
    fn add32_power_efficiency_order_of_paper() {
        // Fig 15: Hyper-AP 32-bit add power efficiency = 233 GOPS/W.
        let m = Metrics::compute(&add32_ops(), &TechParams::rram(), &AreaModel::rram());
        assert!(
            m.power_eff_gops_w > 120.0 && m.power_eff_gops_w < 400.0,
            "power eff = {}",
            m.power_eff_gops_w
        );
    }

    #[test]
    fn energy_scales_linearly_with_elements() {
        let m = Metrics::compute(&add32_ops(), &TechParams::rram(), &AreaModel::rram());
        let e1 = m.energy_j(1_000_000);
        let e2 = m.energy_j(2_000_000);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
