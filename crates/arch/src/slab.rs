//! The slab execution engine: trace segments over contiguous multi-PE
//! arenas.
//!
//! [`crate::ApMachine`] stores each PE as its own [`HyperPe`] — per-column
//! `Vec<u64>` pairs whose scattered layout defeats the cache and forces
//! every micro-op to be dispatched once per PE. [`SlabMachine`] executes
//! the same compiled traces ([`crate::trace`]) over [`TcamSlab`] arenas
//! instead: each group's PEs are partitioned into a few 64-aligned chunks,
//! and a segment micro-op runs **once per chunk** as a fused bit-plane
//! kernel — each 64-bit ALU op processes the same cell position across 64
//! PEs at once ([`TcamSlab::search_plan_multi_into`] and friends), with
//! partially-active chunks driven through a word-granular selection mask
//! instead of per-PE loops. Threaded modes fork-join over whole chunks —
//! the chunk is both
//! the storage arena and the unit of parallelism, so no two workers ever
//! share an allocation.
//!
//! # Equivalence guarantee
//!
//! The engine is bit-identical to [`crate::ApMachine`] — PE state (cells,
//! tags, latch, per-PE op counts, wear), data registers, `RunStats`, and
//! cross-run key-register state all match (property-tested in
//! `tests/slab_engine_equivalence.rs`):
//!
//! * The fused kernels are property-tested against the per-PE
//!   [`hyperap_tcam::array::TcamArray`] operations (tcam's
//!   `tests/slab_properties.rs`).
//! * Segments execute micro-ops in program order; within one micro-op the
//!   PEs are independent, so sweeping PEs per op commutes with the per-PE
//!   engine's op-per-PE order.
//! * Synchronization points reimplement the interpreter's instruction
//!   semantics over the slab, in the same ascending-PE order, driven by the
//!   same event loop (`trace::drive_steps`).

use crate::config::{ArchConfig, ExecMode};
use crate::machine::{ActiveSet, ApMachine, KeySnapshot, BROADCAST_ADDR};
use crate::par;
use crate::similarity::{SimilarityHit, SimilarityOutcome};
use crate::stats::{PeHealth, RunGeometry, RunStats};
use crate::trace::{self, CompiledTrace, MicroOp, PlanRef, Segment, StepKind};
use hyperap_core::machine::HyperPe;
use hyperap_isa::{Direction, Instruction};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::encoding::encode_pair;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::similarity as tcam_similarity;
use hyperap_tcam::slab::{SlabTopk, SweepOp, TagSlab, TcamSlab};
use hyperap_tcam::tags::TagVector;
use hyperap_tcam::FaultError;

/// One contiguous arena covering a sub-range of a group's PEs, with every
/// per-PE register file the engine needs in matching multi-PE layout. The
/// fork-join unit of the slab engine: workers own whole chunks, never
/// slices of one.
#[derive(Debug, Clone)]
struct SlabChunk {
    /// Group-relative index of the chunk's first PE.
    base: usize,
    /// PEs in this chunk (the last chunk of a group may be short).
    pes: usize,
    /// TCAM cell state + wear.
    storage: TcamSlab,
    /// Tag registers.
    tags: TagSlab,
    /// Encoder DFF stage (latched search results).
    latch: TagSlab,
    /// Data registers.
    regs: TagSlab,
    /// Per-PE operation counters (chunk-relative indexing).
    ops: Vec<OpCounts>,
    /// Word-granular active-PE selection mask (`pes.div_ceil(64)` words,
    /// bit `p` = chunk-relative PE `p` active), refreshed per dispatch.
    /// Ragged broadcasts cost the same as contiguous ones: every kernel
    /// takes the whole mask in one sweep.
    active: Vec<u64>,
    /// Cached summary of `active`: every chunk PE is active (kernels get
    /// `sel = None`, the mask-free fast path).
    all_active: bool,
    /// Cached summary of `active`: at least one chunk PE is active.
    any_active: bool,
    /// Monotonic write-tracking counter for `ops` — the slab/tag arenas
    /// track their own versions, but the per-PE op counters live outside
    /// them, so checkpoint dirty-detection needs this one too. Bumped
    /// conservatively wherever `ops` can change; never reset.
    ops_version: u64,
}

impl SlabChunk {
    fn new(base: usize, pes: usize, rows: usize, cols: usize) -> Self {
        SlabChunk {
            base,
            pes,
            storage: TcamSlab::new(pes, rows, cols),
            tags: TagSlab::zeros(pes, rows),
            latch: TagSlab::zeros(pes, rows),
            regs: TagSlab::zeros(pes, rows),
            ops: vec![OpCounts::default(); pes],
            active: vec![0; pes.div_ceil(64)],
            all_active: false,
            any_active: false,
            ops_version: 0,
        }
    }

    /// Recompute the chunk's word-granular active-PE mask from the group
    /// mask.
    fn refresh_active(&mut self, group_mask: &[bool]) {
        self.active.fill(0);
        let mut count = 0usize;
        for i in 0..self.pes {
            if group_mask[self.base + i] {
                self.active[i / 64] |= 1u64 << (i % 64);
                count += 1;
            }
        }
        self.any_active = count > 0;
        self.all_active = count == self.pes;
    }

    /// Run a whole segment over this chunk: each micro-op executes **once**
    /// as a fused kernel sweeping the entire chunk under the active-PE
    /// selection mask, and the segment's per-PE `OpCounts` delta lands in
    /// one `add` per active PE.
    fn exec_segment(
        &mut self,
        seg: &Segment,
        plans: &[Vec<(usize, KeyBit)>],
        entry: Option<&KeySnapshot>,
        pe_delta: &OpCounts,
        group_mask: &[bool],
    ) {
        self.refresh_active(group_mask);
        if !self.any_active {
            return;
        }
        let base = self.base;
        let Self {
            storage,
            tags,
            latch,
            regs,
            active,
            all_active,
            ..
        } = self;
        let sel: Option<&[u64]> = if *all_active {
            None
        } else {
            Some(active.as_slice())
        };
        let resolve = |plan: &PlanRef| -> &[(usize, KeyBit)] {
            match plan {
                PlanRef::Entry => entry.expect("entry key snapshotted").1.as_slice(),
                PlanRef::Compiled(p) => plans[*p].as_slice(),
            }
        };
        let store = |value: KeyBit| -> TernaryBit {
            value.write_value().expect("compiler emits storing writes")
        };
        // Batch every run of search/write micro-ops into one
        // [`TcamSlab::sweep_program`] call so the whole run executes tile by
        // tile over cache-resident windows instead of one full-arena sweep
        // per op. Ops that touch the latch, registers, or the narrow path
        // (`encode`, `SetTag`/`ReadTag`, `WriteEncoded`, `SearchDelta`)
        // flush the pending batch first and run as before — they need the
        // tags exactly as the batch leaves them.
        let mut plan_arena: Vec<&[(usize, KeyBit)]> = Vec::with_capacity(seg.ops.len() * 2);
        let mut write_arena: Vec<(usize, TernaryBit)> = Vec::with_capacity(seg.ops.len());
        // (plan range, acc, write range) into the arenas, one per batched op.
        let mut pend: Vec<(std::ops::Range<usize>, bool, std::ops::Range<usize>)> =
            Vec::with_capacity(seg.ops.len());
        macro_rules! flush {
            () => {
                if !pend.is_empty() {
                    let sweep_ops: Vec<SweepOp<'_>> = pend
                        .drain(..)
                        .map(|(pr, acc, wr)| SweepOp {
                            plans: &plan_arena[pr],
                            acc,
                            writes: &write_arena[wr],
                        })
                        .collect();
                    storage.sweep_program(&sweep_ops, tags.words_mut(), sel);
                    drop(sweep_ops);
                    plan_arena.clear();
                    write_arena.clear();
                }
            };
        }
        for op in &seg.ops {
            match op {
                MicroOp::Search { plan, acc, encode } => {
                    let p0 = plan_arena.len();
                    plan_arena.push(resolve(plan));
                    let w = write_arena.len();
                    pend.push((p0..p0 + 1, *acc, w..w));
                    if *encode {
                        flush!();
                        latch.copy_from_masked(tags, sel);
                    }
                }
                MicroOp::Write { col, value } => {
                    let (p, w0) = (plan_arena.len(), write_arena.len());
                    write_arena.push((*col as usize, store(*value)));
                    pend.push((p..p, true, w0..w0 + 1));
                }
                MicroOp::WriteEntry { col } => {
                    let value = entry.expect("entry key snapshotted").0.bit(*col as usize);
                    if let Some(v) = value.write_value() {
                        let (p, w0) = (plan_arena.len(), write_arena.len());
                        write_arena.push((*col as usize, v));
                        pend.push((p..p, true, w0..w0 + 1));
                    }
                }
                MicroOp::WriteEncoded { col } => {
                    flush!();
                    storage.write_encoded_multi(*col as usize, latch.words(), tags.words(), sel);
                }
                MicroOp::SetTag => {
                    flush!();
                    tags.copy_from_masked(regs, sel);
                }
                MicroOp::ReadTag => {
                    flush!();
                    regs.copy_from_masked(tags, sel);
                }
                MicroOp::SearchWrite {
                    plan,
                    acc,
                    encode,
                    col,
                    value,
                } => {
                    let (p0, w0) = (plan_arena.len(), write_arena.len());
                    plan_arena.push(resolve(plan));
                    write_arena.push((*col as usize, store(*value)));
                    pend.push((p0..p0 + 1, *acc, w0..w0 + 1));
                    if *encode {
                        flush!();
                        latch.copy_from_masked(tags, sel);
                    }
                }
                MicroOp::SearchWriteMulti {
                    plans: chain,
                    acc,
                    encode,
                    writes,
                } => {
                    let (p0, w0) = (plan_arena.len(), write_arena.len());
                    plan_arena.extend(chain.iter().map(&resolve));
                    write_arena.extend(
                        writes
                            .iter()
                            .map(|&(col, value)| (col as usize, store(value))),
                    );
                    pend.push((p0..p0 + chain.len(), *acc, w0..w0 + writes.len()));
                    if *encode {
                        flush!();
                        latch.copy_from_masked(tags, sel);
                    }
                }
                MicroOp::WriteMulti { writes } => {
                    // An empty-chain fused sweep: `acc` keeps the tags, so the
                    // kernel degenerates to "apply every write in one pass".
                    let (p0, w0) = (plan_arena.len(), write_arena.len());
                    write_arena.extend(
                        writes
                            .iter()
                            .map(|&(col, value)| (col as usize, store(value))),
                    );
                    pend.push((p0..p0, true, w0..w0 + writes.len()));
                }
                MicroOp::SearchDelta { plan, encode } => {
                    flush!();
                    storage.search_narrow_multi(plans[*plan].as_slice(), sel, tags.words_mut());
                    if *encode {
                        latch.copy_from_masked(tags, sel);
                    }
                }
            }
        }
        flush!();
        self.ops_version = self.ops_version.wrapping_add(1);
        for (i, pe_ops) in self.ops.iter_mut().enumerate() {
            if group_mask[base + i] {
                pe_ops.add(pe_delta);
            }
        }
    }
}

/// Borrowed view of one slab chunk's serializable state — everything a
/// checkpoint must capture to restore the chunk bit-identically (the
/// active-mask cache and trace cache are recomputed, not state).
#[derive(Debug)]
pub struct ChunkState<'a> {
    /// Global index of the chunk's first PE.
    pub global_base: usize,
    /// PEs in the chunk.
    pub pes: usize,
    /// TCAM cells + wear + fault bookkeeping.
    pub storage: &'a TcamSlab,
    /// Tag registers.
    pub tags: &'a TagSlab,
    /// Encoder DFF stage.
    pub latch: &'a TagSlab,
    /// Data registers.
    pub regs: &'a TagSlab,
    /// Per-PE operation counters.
    pub ops: &'a [OpCounts],
}

/// Owned state of one restored chunk — the decode-side counterpart of
/// [`ChunkState`], fed to [`SlabMachine::restore_chunks`]. Payload chunks
/// need not match the target machine's chunking: restore re-slices them
/// (the migration path).
#[derive(Debug, Clone)]
pub struct ChunkPayload {
    /// Global index of the payload's first PE.
    pub global_base: usize,
    /// TCAM cells + wear + fault bookkeeping.
    pub storage: TcamSlab,
    /// Tag registers.
    pub tags: TagSlab,
    /// Encoder DFF stage.
    pub latch: TagSlab,
    /// Data registers.
    pub regs: TagSlab,
    /// Per-PE operation counters.
    pub ops: Vec<OpCounts>,
}

/// Per-group controller state outside the chunk arenas — key registers,
/// compiled key plans, bank masks, and `ReadR` data buffers. Small and
/// serialized whole by every checkpoint (no dirty tracking).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineExtras {
    /// Per-group search-key registers.
    pub keys: Vec<SearchKey>,
    /// Per-group compiled key plans. Stored verbatim, **not** recomputed
    /// from the key: traces install narrowed plans that a fresh
    /// `compile_plan` would widen.
    pub key_plans: Vec<Vec<(usize, KeyBit)>>,
    /// Per-group bank masks.
    pub bank_masks: Vec<u8>,
    /// Per-group controller data buffers (last `ReadR` result).
    pub data_buffers: Vec<TagVector>,
}

/// Failure modes of [`SlabMachine::restore_chunks`] /
/// [`SlabMachine::set_machine_extras`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// Payload chunks do not tile the machine's PEs exactly (gap, overlap,
    /// group-boundary straddle, or wrong total).
    Coverage,
    /// A payload's internal geometry (rows, cols, tag shapes, op-counter
    /// length, or fault-state presence/base) contradicts the machine's
    /// config.
    Geometry,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Coverage => write!(f, "restore payload does not tile the machine's PEs"),
            RestoreError::Geometry => write!(f, "restore payload geometry contradicts the config"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// A simulated Hyper-AP machine backed by slab storage — the fast engine,
/// bit-identical to [`ApMachine`] (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct SlabMachine {
    config: ArchConfig,
    /// Resolved host fan-out width for `config.exec`.
    threads: usize,
    /// PEs per chunk (the last chunk of each group may be short).
    chunk_pes: usize,
    /// Chunks per group.
    chunks_per_group: usize,
    /// All chunks, group-major (`group * chunks_per_group + chunk`).
    chunks: Vec<SlabChunk>,
    keys: Vec<SearchKey>,
    key_plans: Vec<Vec<(usize, KeyBit)>>,
    bank_masks: Vec<u8>,
    /// Controller data buffer (last `ReadR` result per group).
    pub data_buffers: Vec<TagVector>,
    active: Vec<ActiveSet>,
    /// `MovR` snapshot of one group's pushing registers (`[pe][block]`).
    mov_scratch: Vec<u64>,
    /// Decoded `WriteR` immediate.
    imm_scratch: TagVector,
    /// Content-addressed trace cache: the last compiled stream set and its
    /// traces. [`run`](Self::run) recompiles only when the incoming streams
    /// differ, so steady-state reruns of the same kernel pay one stream
    /// comparison instead of a full compile.
    trace_cache: Option<(Vec<Vec<Instruction>>, Vec<CompiledTrace>)>,
}

impl SlabMachine {
    /// Build a machine with the given geometry; all cells zero.
    ///
    /// The chunk width comes from [`crate::config::default_chunk_pes`]:
    /// each group splits into (at most) [`crate::config::host_width`]
    /// chunks, rounded up to whole 64-PE words. Threaded dispatches get one
    /// chunk per worker, on a single-CPU host every group is one maximal
    /// arena, and either way every kernel sweep processes full `u64` PE
    /// words. The resolved geometry is logged in
    /// [`crate::stats::RunStats::geometry`].
    pub fn new(config: ArchConfig) -> Self {
        let width = crate::config::default_chunk_pes(config.pes_per_group());
        Self::with_chunk_pes(config, width)
    }

    /// [`new`](Self::new) with an explicit chunk width (tests sweep odd
    /// widths to exercise short tail chunks; `chunk_pes >= pes_per_group`
    /// gives one chunk per group).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_pes` is zero.
    pub fn with_chunk_pes(config: ArchConfig, chunk_pes: usize) -> Self {
        assert!(chunk_pes > 0, "chunk width must be non-zero");
        let per = config.pes_per_group();
        let cpg = per.div_ceil(chunk_pes);
        let mut chunks = Vec::with_capacity(config.groups * cpg);
        for g in 0..config.groups {
            for c in 0..cpg {
                let base = c * chunk_pes;
                let mut chunk =
                    SlabChunk::new(base, chunk_pes.min(per - base), config.rows, config.cols);
                if config.faults.is_active() {
                    // Seed each chunk's fault state at its first PE's
                    // *global* id, so every PE derives exactly the faults
                    // `ApMachine` gives it regardless of chunking.
                    chunk.storage.attach_fault(
                        config.faults.model,
                        config.faults.spare_cols,
                        g * per + base,
                    );
                }
                chunks.push(chunk);
            }
        }
        SlabMachine {
            threads: config.exec.threads(),
            chunk_pes,
            chunks_per_group: cpg,
            chunks,
            keys: vec![SearchKey::masked(config.cols); config.groups],
            key_plans: vec![Vec::new(); config.groups],
            bank_masks: vec![0xFF; config.groups],
            data_buffers: vec![TagVector::zeros(config.rows); config.groups],
            active: vec![ActiveSet::default(); config.groups],
            mov_scratch: Vec::new(),
            imm_scratch: TagVector::zeros(config.rows),
            trace_cache: None,
            config,
        }
    }

    /// Reset every piece of architectural state to the as-constructed
    /// machine — cells, tags, latches, data registers, op counters, wear,
    /// fault bookkeeping (re-seeded at the same global PE ids), search
    /// keys, bank masks, and data buffers — without reallocating the
    /// arenas. A scrubbed machine is bit-identical to a fresh
    /// [`new`](Self::new) of the same config: the serving layer scrubs
    /// between tenants so one job can never observe another's state. The
    /// content-addressed trace cache survives (it is invisible in results
    /// and exactly what a steady-state pool wants warm).
    pub fn scrub(&mut self) {
        for chunk in &mut self.chunks {
            chunk.storage.reset();
            chunk.tags.clear();
            chunk.latch.clear();
            chunk.regs.clear();
            chunk.ops.fill(OpCounts::default());
            chunk.ops_version = chunk.ops_version.wrapping_add(1);
            chunk.active.fill(0);
            chunk.all_active = false;
            chunk.any_active = false;
        }
        for key in &mut self.keys {
            *key = SearchKey::masked(self.config.cols);
        }
        for plan in &mut self.key_plans {
            plan.clear();
        }
        self.bank_masks.fill(0xFF);
        for buf in &mut self.data_buffers {
            buf.blocks_mut().fill(0);
        }
        self.active.fill(ActiveSet::default());
        self.mov_scratch.clear();
        self.imm_scratch.blocks_mut().fill(0);
    }

    /// The machine geometry.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// PEs per slab chunk.
    pub fn chunk_pes(&self) -> usize {
        self.chunk_pes
    }

    /// Switch the engine's threading policy in place (results are identical
    /// under every mode; see [`ExecMode`]).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.config.exec = mode;
        self.threads = mode.threads();
    }

    /// Locate a PE: `(chunk index, chunk-relative slot)`.
    fn chunk_of(&self, pe: usize) -> (usize, usize) {
        let per = self.config.pes_per_group();
        let (group, rel) = (pe / per, pe % per);
        (
            group * self.chunks_per_group + rel / self.chunk_pes,
            rel % self.chunk_pes,
        )
    }

    /// Snapshot one PE as a standalone [`HyperPe`] (cells, wear, tags,
    /// latch, per-PE op counts) — the comparison/readout path; costs a
    /// conversion, so not for hot loops.
    pub fn pe_snapshot(&self, pe: usize) -> HyperPe {
        let (c, s) = self.chunk_of(pe);
        let chunk = &self.chunks[c];
        HyperPe::from_parts(
            chunk.storage.to_array(s),
            chunk.tags.to_tagvector(s),
            chunk.latch.to_tagvector(s),
            chunk.ops[s],
        )
    }

    /// A PE's data register (copied out).
    pub fn data_reg(&self, pe: usize) -> TagVector {
        let (c, s) = self.chunk_of(pe);
        self.chunks[c].regs.to_tagvector(s)
    }

    /// A group's controller data buffer.
    pub fn data_buffer(&self, group: usize) -> &TagVector {
        &self.data_buffers[group]
    }

    // ----- checkpoint surface -----

    /// Number of slab chunks (`groups * chunks_per_group`) — the dirty
    /// tracking and snapshot granularity of the checkpoint layer.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Borrow one chunk's serializable state.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn chunk_state(&self, chunk: usize) -> ChunkState<'_> {
        let per = self.config.pes_per_group();
        let c = &self.chunks[chunk];
        ChunkState {
            global_base: (chunk / self.chunks_per_group) * per + c.base,
            pes: c.pes,
            storage: &c.storage,
            tags: &c.tags,
            latch: &c.latch,
            regs: &c.regs,
            ops: &c.ops,
        }
    }

    /// One chunk's write-tracking fingerprint: the version counters of the
    /// storage arena, the three tag planes, and the op counters. Two equal
    /// fingerprints taken across a span of operations prove the chunk's
    /// serializable state did not change (the counters only ever advance);
    /// unequal fingerprints prove nothing — bumps are conservative.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is out of range.
    pub fn chunk_fingerprint(&self, chunk: usize) -> [u64; 5] {
        let c = &self.chunks[chunk];
        [
            c.storage.version(),
            c.tags.version(),
            c.latch.version(),
            c.regs.version(),
            c.ops_version,
        ]
    }

    /// Copy out the per-group controller state outside the chunk arenas.
    pub fn machine_extras(&self) -> MachineExtras {
        MachineExtras {
            keys: self.keys.clone(),
            key_plans: self.key_plans.clone(),
            bank_masks: self.bank_masks.clone(),
            data_buffers: self.data_buffers.clone(),
        }
    }

    /// Install per-group controller state from a checkpoint, invalidating
    /// the derived active-set caches.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Geometry`] when any vector's length or element shape
    /// contradicts the machine's config.
    pub fn set_machine_extras(&mut self, extras: MachineExtras) -> Result<(), RestoreError> {
        let groups = self.config.groups;
        // Key registers may be wider than the array (`lower()` emits
        // KEY_COLUMNS-wide keys on any geometry), so only the per-group
        // shape and the plan/buffer column bounds are checked.
        if extras.keys.len() != groups
            || extras.key_plans.len() != groups
            || extras.bank_masks.len() != groups
            || extras.data_buffers.len() != groups
            || extras
                .key_plans
                .iter()
                .any(|plan| plan.iter().any(|&(col, _)| col >= self.config.cols))
            || extras
                .data_buffers
                .iter()
                .any(|b| b.len() != self.config.rows)
        {
            return Err(RestoreError::Geometry);
        }
        self.keys = extras.keys;
        self.key_plans = extras.key_plans;
        self.bank_masks = extras.bank_masks;
        self.data_buffers = extras.data_buffers;
        self.active.fill(ActiveSet::default());
        Ok(())
    }

    /// Replace every chunk's state from checkpoint payloads. Payload
    /// chunking need not match this machine's: a payload written by a
    /// machine with different `chunk_pes` is re-sliced through the lossless
    /// per-PE array conversions (wear and fault bookkeeping carried along)
    /// — the shard-migration path. Either way the restored machine is
    /// bit-identical to the one that produced the payloads: every
    /// `pe_snapshot`, data register, wear counter, spare remap, and fault
    /// latch matches.
    ///
    /// The derived caches (active sets, scratch, trace cache) are reset;
    /// the controller extras are restored separately via
    /// [`set_machine_extras`](Self::set_machine_extras).
    ///
    /// # Errors
    ///
    /// [`RestoreError::Coverage`] when the payloads do not tile the
    /// machine's PEs exactly or straddle a group boundary;
    /// [`RestoreError::Geometry`] when a payload's shape or fault state
    /// contradicts the config.
    pub fn restore_chunks(&mut self, mut parts: Vec<ChunkPayload>) -> Result<(), RestoreError> {
        let (rows, cols) = (self.config.rows, self.config.cols);
        let per = self.config.pes_per_group();
        parts.sort_by_key(|p| p.global_base);
        let mut next = 0usize;
        for p in &parts {
            let pes = p.storage.pes();
            if p.global_base != next || pes == 0 {
                return Err(RestoreError::Coverage);
            }
            // Chunks never span groups on any legal machine.
            if p.global_base / per != (p.global_base + pes - 1) / per {
                return Err(RestoreError::Coverage);
            }
            if p.storage.rows() != rows
                || p.storage.cols() != cols
                || [&p.tags, &p.latch, &p.regs]
                    .iter()
                    .any(|t| t.pes() != pes || t.rows() != rows)
                || p.ops.len() != pes
                || p.storage.fault().is_some() != self.config.faults.is_active()
                || p.storage.fault().is_some_and(|f| f.pe0 != p.global_base)
            {
                return Err(RestoreError::Geometry);
            }
            next += pes;
        }
        if next != self.config.total_pes() {
            return Err(RestoreError::Coverage);
        }
        let aligned = parts.len() == self.chunks.len()
            && parts
                .iter()
                .zip(self.chunks.iter())
                .enumerate()
                .all(|(i, (p, c))| {
                    p.global_base == (i / self.chunks_per_group) * per + c.base
                        && p.storage.pes() == c.pes
                });
        if aligned {
            for (chunk, p) in self.chunks.iter_mut().zip(parts) {
                chunk.storage = p.storage;
                chunk.tags = p.tags;
                chunk.latch = p.latch;
                chunk.regs = p.regs;
                chunk.ops = p.ops;
                chunk.ops_version = chunk.ops_version.wrapping_add(1);
            }
        } else {
            // Migration: explode the payloads into per-PE arrays and
            // re-slice them along this machine's chunk boundaries.
            let mut arrays = Vec::with_capacity(self.config.total_pes());
            let mut tags = Vec::with_capacity(self.config.total_pes());
            let mut latches = Vec::with_capacity(self.config.total_pes());
            let mut regs = Vec::with_capacity(self.config.total_pes());
            let mut ops = Vec::with_capacity(self.config.total_pes());
            for p in &parts {
                arrays.extend(p.storage.to_arrays());
                for s in 0..p.storage.pes() {
                    tags.push(p.tags.to_tagvector(s));
                    latches.push(p.latch.to_tagvector(s));
                    regs.push(p.regs.to_tagvector(s));
                }
                ops.extend_from_slice(&p.ops);
            }
            for (i, chunk) in self.chunks.iter_mut().enumerate() {
                let base = (i / self.chunks_per_group) * per + chunk.base;
                let range = base..base + chunk.pes;
                chunk.storage = TcamSlab::from_arrays(&arrays[range.clone()]);
                let mut t = TagSlab::zeros(chunk.pes, rows);
                let mut l = TagSlab::zeros(chunk.pes, rows);
                let mut r = TagSlab::zeros(chunk.pes, rows);
                for (s, g) in range.clone().enumerate() {
                    t.set_pe(s, &tags[g]);
                    l.set_pe(s, &latches[g]);
                    r.set_pe(s, &regs[g]);
                }
                chunk.tags = t;
                chunk.latch = l;
                chunk.regs = r;
                chunk.ops = ops[range].to_vec();
                chunk.ops_version = chunk.ops_version.wrapping_add(1);
            }
        }
        for chunk in &mut self.chunks {
            chunk.active.fill(0);
            chunk.all_active = false;
            chunk.any_active = false;
        }
        self.active.fill(ActiveSet::default());
        self.mov_scratch.clear();
        self.imm_scratch.blocks_mut().fill(0);
        self.trace_cache = None;
        Ok(())
    }

    // ----- host data-load path (mirrors `HyperPe`'s; free) -----

    /// Host load: store a plain bit in one PE.
    pub fn load_bit(&mut self, pe: usize, row: usize, col: usize, value: bool) {
        let (c, s) = self.chunk_of(pe);
        self.chunks[c].storage.set_cell(
            s,
            row,
            col,
            hyperap_tcam::bit::TernaryBit::from_bool(value),
        );
    }

    /// Host load: store a logical bit pair `(hi, lo)` in two-bit-encoded
    /// form at columns `col`, `col + 1` of one PE.
    pub fn load_encoded_pair(&mut self, pe: usize, row: usize, col: usize, hi: bool, lo: bool) {
        let (c, s) = self.chunk_of(pe);
        let cells = encode_pair(hi, lo);
        self.chunks[c].storage.set_cell(s, row, col, cells[0]);
        self.chunks[c].storage.set_cell(s, row, col + 1, cells[1]);
    }

    /// Host read: a plain bit (`None` if the cell stores `X`).
    pub fn read_bit(&self, pe: usize, row: usize, col: usize) -> Option<bool> {
        let (c, s) = self.chunk_of(pe);
        self.chunks[c].storage.cell(s, row, col).to_bool()
    }

    /// Host read: decode the encoded pair at columns `col`, `col + 1` of
    /// one PE into `(hi, lo)`.
    ///
    /// # Panics
    ///
    /// Panics if the cells do not hold a valid two-bit code.
    pub fn read_encoded_pair(&self, pe: usize, row: usize, col: usize) -> (bool, bool) {
        let (c, s) = self.chunk_of(pe);
        let v = hyperap_tcam::encoding::decode_pair([
            self.chunks[c].storage.cell(s, row, col),
            self.chunks[c].storage.cell(s, row, col + 1),
        ])
        .expect("valid two-bit code");
        (v & 0b10 != 0, v & 0b01 != 0)
    }

    /// CAM-native batch similarity query: the top-`k` stored words across
    /// every PE by ternary Hamming distance to `query`, searched over the
    /// first `rows` rows of each PE.
    ///
    /// This is the word-parallel engine: each chunk accumulates per-row
    /// miss counts into counter bit-planes — 64 PEs per machine word —
    /// and runs the progressive threshold schedule locally
    /// ([`TcamSlab::hamming_topk`]); a chunk always executes at least as
    /// many rounds as the global controller needs, so the per-round counts
    /// sum to the exact global schedule and the merged winners are the
    /// exact global top-k. Bit-identical in hits *and* [`RunStats`] to
    /// [`ApMachine::hamming_topk`] under every [`ExecMode`] and chunk
    /// width; see [`crate::similarity`]. Read-only: no wear, no epoch
    /// advance.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rows` exceeds the machine's rows.
    pub fn hamming_topk(&self, query: &SearchKey, rows: usize, k: usize) -> SimilarityOutcome {
        assert!(rows <= self.config.rows, "row limit exceeds machine");
        assert!(k > 0, "top-k requires k >= 1");
        let plan = query.compile_plan();
        let active = tcam_similarity::active_entries(&plan, self.config.cols);
        let threads = self.config.exec.dispatch_threads(
            self.threads,
            (self.config.total_pes() * rows) as u64,
            plan.len().max(1) as u64,
        );
        let mut results: Vec<Option<SlabTopk>> = vec![None; self.chunks.len()];
        let chunks = &self.chunks;
        par::for_each_chunk(threads, &mut results, |off, out| {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = Some(chunks[off + i].storage.hamming_topk(&plan, rows, k));
            }
        });
        let results: Vec<SlabTopk> = results
            .into_iter()
            .map(|r| r.expect("every chunk produced a result"))
            .collect();
        // Recover the global stopping round from the per-chunk counts: the
        // first budget where the machine-wide count reaches `k` (or covers
        // the maximum distance). Chunks never stop before the global
        // controller would, so every summed entry exists.
        let mut rounds = 0usize;
        let tau = loop {
            let tau = tcam_similarity::round_tau(rounds + 1);
            let count: usize = results
                .iter()
                .map(|r| {
                    r.round_counts
                        .get(rounds)
                        .copied()
                        .expect("chunk ran at least as many rounds as the controller")
                })
                .sum();
            rounds += 1;
            if count >= k || tau >= active {
                break tau;
            }
        };
        let per = self.config.pes_per_group();
        let mut hits: Vec<SimilarityHit> = Vec::new();
        for (ci, r) in results.iter().enumerate() {
            let base = (ci / self.chunks_per_group) * per + self.chunks[ci].base;
            for h in &r.hits {
                if h.distance <= tau {
                    hits.push(SimilarityHit {
                        distance: h.distance,
                        pe: (base + h.pe as usize) as u32,
                        row: h.row,
                    });
                }
            }
        }
        hits.sort_unstable();
        hits.truncate(k);
        let geometry = Some(RunGeometry {
            chunk_pes: self.chunk_pes,
            chunks_per_group: self.chunks_per_group,
            pe_words: self.chunk_pes.div_ceil(64),
            threads: self.threads,
        });
        SimilarityOutcome {
            hits,
            stats: crate::similarity::query_stats(&self.config, active, rounds, geometry),
        }
    }

    /// The single nearest stored word to `query` —
    /// [`hamming_topk`](Self::hamming_topk) with `k = 1`.
    pub fn nearest(&self, query: &SearchKey, rows: usize) -> SimilarityOutcome {
        self.hamming_topk(query, rows, 1)
    }

    /// Run one instruction stream per group to completion — identical
    /// contract to [`ApMachine::run`], compiled through the same
    /// [`crate::trace`] pipeline.
    ///
    /// Compiled traces are cached by stream content: rerunning the same
    /// streams (the steady state of a kernel executed many times) skips
    /// recompilation entirely. Caching is invisible in the results —
    /// identical streams compile to identical traces.
    pub fn run(&mut self, streams: &[Vec<Instruction>]) -> RunStats {
        self.try_run(streams)
            .unwrap_or_else(|e| panic!("fault degradation: {e}"))
    }

    /// [`run`](Self::run) surfacing fault degradation as a typed error
    /// instead of a panic — identical contract (including the exact error)
    /// to [`ApMachine::try_run`].
    pub fn try_run(&mut self, streams: &[Vec<Instruction>]) -> Result<RunStats, FaultError> {
        let cached = self
            .trace_cache
            .take()
            .filter(|(s, _)| s.as_slice() == streams);
        let (key, traces) = match cached {
            Some(hit) => hit,
            None => (
                streams.to_vec(),
                trace::compile_streams(streams, &self.config),
            ),
        };
        let stats = self.try_run_compiled(&traces);
        self.trace_cache = Some((key, traces));
        stats
    }

    /// Fail fast on a latched spare-exhaustion failure (scanning chunks in
    /// global PE order — chunk construction is group-major, so vector
    /// order IS ascending global order), then open a new run epoch.
    fn begin_run(&mut self) -> Result<(), FaultError> {
        if !self.config.faults.is_active() {
            return Ok(());
        }
        for chunk in &self.chunks {
            if let Some(f) = chunk.storage.fault() {
                for (pe, failed) in f.failed.iter().enumerate() {
                    if let Some((col, wear)) = *failed {
                        return Err(FaultError::SparesExhausted {
                            pe: f.pe0 + pe,
                            col,
                            wear,
                        });
                    }
                }
            }
        }
        for chunk in &mut self.chunks {
            chunk.storage.advance_epoch();
        }
        Ok(())
    }

    /// End-of-run endurance service in global ascending PE order (chunks
    /// in vector order, PEs ascending within each chunk — exactly
    /// `ApMachine`'s order), stopping at the first exhaustion, then report
    /// per-PE degradation in [`RunStats::pe_health`].
    fn finish_run(&mut self, stats: &mut RunStats) -> Result<(), FaultError> {
        if !self.config.faults.is_active() {
            return Ok(());
        }
        for chunk in &mut self.chunks {
            chunk.storage.service_endurance()?;
        }
        for chunk in &self.chunks {
            let Some(f) = chunk.storage.fault() else {
                continue;
            };
            for (pe, retired) in f.retired.iter().enumerate() {
                if !retired.is_empty() {
                    stats.pe_health.push(PeHealth {
                        pe: f.pe0 + pe,
                        retired: retired.clone(),
                        spares_left: f.spares_left(pe),
                    });
                }
            }
        }
        Ok(())
    }

    /// Run precompiled traces — identical contract (and results) to
    /// [`ApMachine::run_compiled`], with segments executed as fused slab
    /// kernels instead of per-PE loops.
    pub fn run_compiled(&mut self, traces: &[CompiledTrace]) -> RunStats {
        self.try_run_compiled(traces)
            .unwrap_or_else(|e| panic!("fault degradation: {e}"))
    }

    /// [`run_compiled`](Self::run_compiled) surfacing fault degradation as
    /// a typed error (see [`try_run`](Self::try_run)).
    pub fn try_run_compiled(&mut self, traces: &[CompiledTrace]) -> Result<RunStats, FaultError> {
        self.try_run_compiled_inner(traces)
    }

    /// [`try_run_compiled`](Self::try_run_compiled) over borrowed traces —
    /// the shared-cache execution path: a serving layer holding compiled
    /// programs behind `Arc`s (possibly the same program repeated across
    /// groups) runs them without cloning a single trace.
    pub fn try_run_compiled_refs(
        &mut self,
        traces: &[&CompiledTrace],
    ) -> Result<RunStats, FaultError> {
        self.try_run_compiled_inner(traces)
    }

    fn try_run_compiled_inner<T: std::borrow::Borrow<CompiledTrace>>(
        &mut self,
        traces: &[T],
    ) -> Result<RunStats, FaultError> {
        self.begin_run()?;
        let groups = self.config.groups;
        let mut stats = RunStats {
            group_cycles: vec![0; groups],
            group_ops: vec![OpCounts::default(); groups],
            count_results: vec![Vec::new(); groups],
            index_results: vec![Vec::new(); groups],
            pe_health: Vec::new(),
            geometry: Some(RunGeometry {
                chunk_pes: self.chunk_pes,
                chunks_per_group: self.chunks_per_group,
                pe_words: self.chunk_pes.div_ceil(64),
                threads: self.threads,
            }),
        };
        let n = groups.min(traces.len());
        let entries: Vec<Option<KeySnapshot>> = (0..n)
            .map(|g| {
                traces[g]
                    .borrow()
                    .uses_entry_key
                    .then(|| (self.keys[g].clone(), self.key_plans[g].clone()))
            })
            .collect();
        let clocks = trace::drive_steps(traces, groups, |g, step| match &step.kind {
            StepKind::Segment(si) => {
                let t = traces[g].borrow();
                let seg = &t.segments[*si];
                self.exec_segment(g, seg, &t.plans, entries[g].as_ref());
                stats.group_ops[g].add(&seg.ops_delta);
            }
            StepKind::Sync(inst) => self.execute_sync(g, inst, &mut stats),
        });
        for (g, t) in traces.iter().enumerate().take(n) {
            let t = t.borrow();
            if let Some(key) = &t.final_key {
                self.keys[g].copy_from(key);
                let fp = t.final_plan.expect("a final key implies a plan");
                self.key_plans[g].clear();
                self.key_plans[g].extend_from_slice(&t.plans[fp]);
            }
        }
        stats.group_cycles = clocks;
        self.finish_run(&mut stats)?;
        Ok(stats)
    }

    fn refresh_active(&mut self, group: usize) {
        self.active[group].refresh(&self.config, group, self.bank_masks[group]);
    }

    /// Execute one segment: fork-join over the group's chunks, each worker
    /// running its chunks through the entire micro-op list as fused sweeps.
    fn exec_segment(
        &mut self,
        group: usize,
        seg: &Segment,
        plans: &[Vec<(usize, KeyBit)>],
        entry: Option<&KeySnapshot>,
    ) {
        if seg.ops.is_empty() && seg.elided == OpCounts::default() {
            return; // bookkeeping-only segment (SetKey/Wait runs)
        }
        self.refresh_active(group);
        let cache = &self.active[group];
        if cache.count == 0 {
            return;
        }
        let threads = if cache.count < 2 {
            1
        } else {
            self.config.exec.dispatch_threads(
                self.threads,
                (cache.count * self.config.rows) as u64,
                seg.ops.len() as u64,
            )
        };
        let pe_delta = seg.pe_ops_delta(entry.map(|e| &e.0));
        let cpg = self.chunks_per_group;
        let mask = &cache.mask;
        let chunks = &mut self.chunks[group * cpg..(group + 1) * cpg];
        par::for_each_chunk(threads, chunks, |_, chunks| {
            for chunk in chunks {
                chunk.exec_segment(seg, plans, entry, &pe_delta, mask);
            }
        });
    }

    /// Execute a synchronization-point step: the interpreter's instruction
    /// semantics, reimplemented over the slab. Only instructions the trace
    /// compiler can emit as sync steps appear here (`SyncClass::SyncPoint`,
    /// plus `SetTag`/`ReadTag` when demoted by `reg_sync`).
    fn execute_sync(&mut self, group: usize, inst: &Instruction, stats: &mut RunStats) {
        let per = self.config.pes_per_group();
        let base = group * per;
        match inst {
            Instruction::Count => {
                self.refresh_active(group);
                for i in 0..per {
                    if !self.active[group].mask[i] {
                        continue;
                    }
                    let (c, s) = self.chunk_of(base + i);
                    let chunk = &mut self.chunks[c];
                    chunk.ops[s].counts += 1;
                    chunk.ops_version = chunk.ops_version.wrapping_add(1);
                    let count = chunk.tags.count(s);
                    stats.count_results[group].push((base + i, count));
                }
                stats.group_ops[group].counts += 1;
            }
            Instruction::Index => {
                self.refresh_active(group);
                for i in 0..per {
                    if !self.active[group].mask[i] {
                        continue;
                    }
                    let (c, s) = self.chunk_of(base + i);
                    let chunk = &mut self.chunks[c];
                    chunk.ops[s].indexes += 1;
                    chunk.ops_version = chunk.ops_version.wrapping_add(1);
                    let index = chunk.tags.first_index(s);
                    stats.index_results[group].push((base + i, index));
                }
                stats.group_ops[group].indexes += 1;
            }
            Instruction::MovR { dir } => {
                self.mov_r(group, *dir);
                stats.group_ops[group].mov_rs += 1;
            }
            Instruction::ReadR { addr } => {
                let pe = (*addr as usize).min(self.config.total_pes() - 1);
                let (c, s) = self.chunk_of(pe);
                self.chunks[c]
                    .regs
                    .pe_blocks_into(s, self.data_buffers[group].blocks_mut());
            }
            Instruction::WriteR { addr, imm } => {
                ApMachine::decode_reg(imm, &mut self.imm_scratch);
                if *addr == BROADCAST_ADDR {
                    // Word-parallel broadcast: one masked fill per chunk
                    // instead of a copy per active PE.
                    self.refresh_active(group);
                    let cpg = self.chunks_per_group;
                    let Self {
                        chunks,
                        active,
                        imm_scratch,
                        ..
                    } = self;
                    let mask = &active[group].mask;
                    for chunk in &mut chunks[group * cpg..(group + 1) * cpg] {
                        chunk.refresh_active(mask);
                        if !chunk.any_active {
                            continue;
                        }
                        let SlabChunk {
                            regs,
                            active,
                            all_active,
                            ..
                        } = chunk;
                        let sel = if *all_active {
                            None
                        } else {
                            Some(active.as_slice())
                        };
                        regs.broadcast(imm_scratch, sel);
                    }
                } else {
                    let pe = (*addr as usize).min(self.config.total_pes() - 1);
                    let (c, s) = self.chunk_of(pe);
                    self.chunks[c]
                        .regs
                        .set_pe_blocks(s, self.imm_scratch.blocks());
                }
            }
            Instruction::SetTag | Instruction::ReadTag => {
                self.refresh_active(group);
                let cpg = self.chunks_per_group;
                let Self { chunks, active, .. } = self;
                let mask = &active[group].mask;
                for chunk in &mut chunks[group * cpg..(group + 1) * cpg] {
                    chunk.refresh_active(mask);
                    if !chunk.any_active {
                        continue;
                    }
                    let SlabChunk {
                        tags,
                        regs,
                        active,
                        all_active,
                        ..
                    } = chunk;
                    let sel = if *all_active {
                        None
                    } else {
                        Some(active.as_slice())
                    };
                    if matches!(inst, Instruction::SetTag) {
                        tags.copy_from_masked(regs, sel);
                    } else {
                        regs.copy_from_masked(tags, sel);
                    }
                }
                stats.group_ops[group].tag_ops += 1;
            }
            Instruction::Broadcast { group_mask } => {
                self.bank_masks[group] = *group_mask;
                self.active[group].valid = false;
                stats.group_ops[group].broadcasts += 1;
            }
            Instruction::SetKey { .. }
            | Instruction::Search { .. }
            | Instruction::Write { .. }
            | Instruction::Wait { .. } => {
                unreachable!("PE-local instructions always fold into segments")
            }
        }
    }

    /// `MovR` over the slab — exactly [`ApMachine`]'s semantics: every
    /// active PE pushes its data register to the mesh neighbor in `dir`
    /// (possibly across groups); active PEs with no pushing in-group
    /// upstream shift zeros in. Snapshot semantics via `mov_scratch`.
    fn mov_r(&mut self, group: usize, dir: Direction) {
        let (h, w) = self.config.mesh_dims();
        let per = self.config.pes_per_group();
        let base = group * per;
        let bpp = self.config.rows.div_ceil(64);
        self.refresh_active(group);
        if self.mov_scratch.len() < per * bpp {
            self.mov_scratch.resize(per * bpp, 0);
        }
        // Snapshot the pushing registers.
        for i in 0..per {
            if !self.active[group].mask[i] {
                continue;
            }
            let (c, s) = self.chunk_of(base + i);
            self.chunks[c]
                .regs
                .pe_blocks_into(s, &mut self.mov_scratch[i * bpp..(i + 1) * bpp]);
        }
        // Active PEs with no pushing upstream receive zeros…
        let zeros = vec![0u64; bpp];
        for i in 0..per {
            if !self.active[group].mask[i] {
                continue;
            }
            let pe = base + i;
            let (r, c) = (pe / w, pe % w);
            let upstream = match dir {
                Direction::Up => (r + 1 < h).then(|| pe + w),
                Direction::Down => (r > 0).then(|| pe - w),
                Direction::Left => (c + 1 < w).then(|| pe + 1),
                Direction::Right => (c > 0).then(|| pe - 1),
            };
            let pushing = upstream
                .is_some_and(|u| u >= base && u < base + per && self.active[group].mask[u - base]);
            if !pushing {
                let (ci, s) = self.chunk_of(pe);
                self.chunks[ci].regs.set_pe_blocks(s, &zeros);
            }
        }
        // …then pushes land (possibly into other groups' PEs).
        for i in 0..per {
            if !self.active[group].mask[i] {
                continue;
            }
            let pe = base + i;
            let (r, c) = (pe / w, pe % w);
            let dest = match dir {
                Direction::Up => (r > 0).then(|| pe - w),
                Direction::Down => (r + 1 < h).then(|| pe + w),
                Direction::Left => (c > 0).then(|| pe - 1),
                Direction::Right => (c + 1 < w).then(|| pe + 1),
            };
            if let Some(d) = dest {
                if d < self.config.total_pes() {
                    let (ci, s) = self.chunk_of(d);
                    self.chunks[ci]
                        .regs
                        .set_pe_blocks(s, &self.mov_scratch[i * bpp..(i + 1) * bpp]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn search_key(s: &str) -> Instruction {
        Instruction::SetKey {
            key: SearchKey::parse(s).unwrap(),
        }
    }

    const SEARCH: Instruction = Instruction::Search {
        acc: false,
        encode: false,
    };

    #[test]
    fn simd_search_applies_to_all_pes_in_group() {
        let mut m = SlabMachine::new(ArchConfig::tiny());
        m.load_bit(0, 2, 0, true);
        m.load_bit(2, 2, 0, true);
        let stats = m.run(&[vec![search_key("1"), SEARCH, Instruction::Count]]);
        let counts: Vec<usize> = stats.count_results[0].iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![1, 0, 1, 0]);
    }

    #[test]
    fn matches_ap_machine_on_a_small_program() {
        let stream = vec![
            search_key("1"),
            SEARCH,
            Instruction::ReadTag,
            Instruction::MovR {
                dir: Direction::Right,
            },
            Instruction::SetTag,
            Instruction::Count,
            Instruction::Index,
        ];
        let mut reference = ApMachine::new(ArchConfig::tiny());
        let mut slab = SlabMachine::with_chunk_pes(ArchConfig::tiny(), 3);
        for pe in [0, 2, 5] {
            reference.pe_mut(pe).load_bit(3, 0, true);
            slab.load_bit(pe, 3, 0, true);
        }
        let a = reference.run(std::slice::from_ref(&stream));
        let b = slab.run(std::slice::from_ref(&stream));
        assert_eq!(a, b);
        for pe in 0..reference.config().total_pes() {
            assert_eq!(reference.pe(pe), &slab.pe_snapshot(pe), "PE {pe}");
            assert_eq!(reference.data_reg(pe), &slab.data_reg(pe), "reg {pe}");
        }
    }

    #[test]
    fn scrub_restores_fresh_machine_behavior() {
        let dirtying = vec![
            search_key("1"),
            SEARCH,
            Instruction::Write {
                col: 2,
                encode: false,
            },
            Instruction::ReadTag,
            Instruction::Broadcast { group_mask: 0b01 },
            Instruction::Count,
        ];
        let probe = vec![
            search_key("--"),
            SEARCH,
            Instruction::Count,
            Instruction::Index,
        ];
        let mut pool = SlabMachine::new(ArchConfig::tiny());
        pool.load_bit(1, 0, 0, true);
        pool.run(std::slice::from_ref(&dirtying));
        pool.scrub();
        let mut fresh = SlabMachine::new(ArchConfig::tiny());
        // Same host loads on both, then the probe must be bit-identical —
        // nothing of the dirtying run (cells, tags, keys, bank masks, op
        // counters) may leak through the scrub.
        pool.load_bit(5, 1, 1, true);
        fresh.load_bit(5, 1, 1, true);
        let a = pool.run(std::slice::from_ref(&probe));
        let b = fresh.run(std::slice::from_ref(&probe));
        assert_eq!(a, b);
        for pe in 0..fresh.config().total_pes() {
            assert_eq!(pool.pe_snapshot(pe), fresh.pe_snapshot(pe), "PE {pe}");
            assert_eq!(pool.data_reg(pe), fresh.data_reg(pe), "reg {pe}");
        }
    }

    #[test]
    fn run_compiled_refs_matches_owned_traces() {
        let stream = vec![
            search_key("1"),
            SEARCH,
            Instruction::Write {
                col: 1,
                encode: false,
            },
            Instruction::Count,
        ];
        let cfg = ArchConfig::tiny();
        let traces = trace::compile_streams(&[stream.clone(), stream], &cfg);
        let mut owned = SlabMachine::new(cfg.clone());
        let mut refs = SlabMachine::new(cfg);
        owned.load_bit(2, 0, 0, true);
        refs.load_bit(2, 0, 0, true);
        let a = owned.try_run_compiled(&traces).unwrap();
        let trace_refs: Vec<&CompiledTrace> = traces.iter().collect();
        let b = refs.try_run_compiled_refs(&trace_refs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn short_tail_chunks_cover_every_pe() {
        // tiny(): 4 PEs per group; chunk width 3 gives chunks of 3 and 1.
        let m = SlabMachine::with_chunk_pes(ArchConfig::tiny(), 3);
        assert_eq!(m.chunks_per_group, 2);
        assert_eq!(m.chunks[0].pes, 3);
        assert_eq!(m.chunks[1].pes, 1);
        let pes: usize = m.chunks[..2].iter().map(|c| c.pes).sum();
        assert_eq!(pes, m.config.pes_per_group());
        assert_eq!(m.chunk_of(3), (1, 0));
        assert_eq!(m.chunk_of(4), (2, 0), "group 1 starts a new chunk row");
    }

    #[test]
    fn exec_modes_agree_bitwise() {
        let stream = vec![
            search_key("1"),
            SEARCH,
            Instruction::Write {
                col: 2,
                encode: false,
            },
            Instruction::Count,
        ];
        let run = |mode: ExecMode| {
            let mut cfg = ArchConfig::tiny();
            cfg.exec = mode;
            let mut m = SlabMachine::with_chunk_pes(cfg, 2);
            m.load_bit(0, 3, 0, true);
            m.load_bit(2, 7, 0, true);
            let stats = m.run(std::slice::from_ref(&stream));
            (stats, m)
        };
        let (seq_stats, seq_m) = run(ExecMode::Sequential);
        let (par_stats, par_m) = run(ExecMode::Parallel);
        assert_eq!(seq_stats, par_stats);
        for pe in 0..seq_m.config().total_pes() {
            assert_eq!(seq_m.pe_snapshot(pe), par_m.pe_snapshot(pe), "PE {pe}");
        }
    }

    #[test]
    fn encoded_round_trip_through_host_paths() {
        let mut m = SlabMachine::new(ArchConfig::tiny());
        m.load_encoded_pair(1, 4, 10, true, false);
        assert_eq!(m.read_encoded_pair(1, 4, 10), (true, false));
        m.load_bit(1, 4, 20, true);
        assert_eq!(m.read_bit(1, 4, 20), Some(true));
        assert_eq!(m.read_bit(1, 4, 21), Some(false));
    }
}
