//! Cross-crate integration: source program → compiler → ISA lowering →
//! hierarchical architecture simulator, validated against both the DFG
//! interpreter and scalar references.

use hyperap_arch::{ApMachine, ArchConfig};
use hyperap_compiler::{compile, CompileOptions};
use hyperap_isa::{lower, stream_cycles, stream_op_counts};
use hyperap_model::TechParams;

/// Compile a kernel, lower it to the Table-I ISA, execute it on the
/// hierarchical machine, and read the outputs back per row.
fn run_on_machine(src: &str, rows: &[Vec<u64>]) -> Vec<u64> {
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    let stream = lower(kernel.program());
    let mut machine = ApMachine::new(ArchConfig::single_pe(rows.len().max(1)));
    for (row, tuple) in rows.iter().enumerate() {
        for (field, &v) in kernel.input_fields().iter().zip(tuple) {
            field.store(machine.pe_mut(0), row, v);
        }
    }
    machine.run(&[stream]);
    let pe = machine.pe(0);
    rows.iter()
        .enumerate()
        .map(|(row, _)| kernel.output_fields()[0].read(pe, row))
        .collect()
}

#[test]
fn compiled_kernel_runs_identically_on_the_arch_simulator() {
    let src = "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) {
        unsigned int (9) s;
        s = a + b;
        if (s > 300) { s = 300; }
        return s;
    }";
    let rows: Vec<Vec<u64>> = vec![vec![200, 150], vec![1, 2], vec![255, 255], vec![0, 0]];
    let got = run_on_machine(src, &rows);
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    for (tuple, out) in rows.iter().zip(&got) {
        assert_eq!(*out, kernel.dfg.eval(tuple)[0], "inputs {tuple:?}");
    }
}

#[test]
fn isa_cycle_count_matches_analytical_model_within_setkey_slack() {
    // The analytical OpCounts model charges one SetKey per search; the
    // lowered stream may skip repeated keys and adds SetKeys before writes,
    // plus WriteR/SetTag pairs for tag initialization. The two accountings
    // must agree within that slack.
    let src = "unsigned int (6) main(unsigned int (5) a, unsigned int (5) b) { return a + b; }";
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    let rram = TechParams::rram();
    let analytical = kernel.op_counts().cycles(&rram);
    let stream = lower(kernel.program());
    let lowered = stream_cycles(&stream, &rram);
    let ratio = lowered as f64 / analytical as f64;
    assert!(
        (0.8..1.6).contains(&ratio),
        "lowered {lowered} vs analytical {analytical}"
    );
    // Search/write counts must match exactly.
    let sc = stream_op_counts(&stream);
    let ac = kernel.op_counts();
    assert_eq!(sc.searches, ac.searches);
    assert_eq!(sc.writes_single + sc.writes_encoded, ac.writes());
}

#[test]
fn word_parallelism_is_free_on_the_machine() {
    // Same program, 1 row vs 12 rows: identical instruction stream and
    // cycle count — the SIMD promise of AP.
    let src = "unsigned int (5) main(unsigned int (4) a) { return a + 3; }";
    let kernel = compile(src, &CompileOptions::default()).unwrap();
    let stream = lower(kernel.program());
    let mut m1 = ApMachine::new(ArchConfig::single_pe(1));
    let mut m12 = ApMachine::new(ArchConfig::single_pe(12));
    let s1 = m1.run(std::slice::from_ref(&stream));
    let s12 = m12.run(&[stream]);
    assert_eq!(s1.group_cycles, s12.group_cycles);
}

#[test]
fn two_groups_run_different_kernels_concurrently() {
    // MIMD across groups (§IV-B): group 0 adds, group 1 subtracts.
    let add = compile(
        "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) { return a + b; }",
        &CompileOptions::default(),
    )
    .unwrap();
    let sub = compile(
        "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) { return a - b; }",
        &CompileOptions::default(),
    )
    .unwrap();
    let mut machine = ApMachine::new(ArchConfig {
        groups: 2,
        banks_per_group: 1,
        subarrays_per_bank: 1,
        pes_per_subarray: 1,
        rows: 4,
        cols: 256,
        tech: TechParams::rram(),
        mesh: None,
        exec: Default::default(),
        faults: Default::default(),
    });
    // Group 0 = PE 0, group 1 = PE 1.
    for (field, v) in add.input_fields().iter().zip([100u64, 55]) {
        field.store(machine.pe_mut(0), 0, v);
    }
    for (field, v) in sub.input_fields().iter().zip([100u64, 55]) {
        field.store(machine.pe_mut(1), 0, v);
    }
    machine.run(&[lower(add.program()), lower(sub.program())]);
    assert_eq!(add.output_fields()[0].read(machine.pe(0), 0), 155);
    assert_eq!(sub.output_fields()[0].read(machine.pe(1), 0), 45);
}

#[test]
fn microcode_and_compiler_agree_on_arithmetic() {
    // The same operation through the expert microcode and through the
    // compiled language must produce identical results.
    use hyperap_core::machine::HyperPe;
    use hyperap_core::microcode::Microcode;
    let mut mc = Microcode::new(256);
    let a = mc.alloc_plain_input("a", 8);
    let b = mc.alloc_plain_input("b", 8);
    let (q, _r) = mc.div_rem_fused(&a, &b);
    let mut pe = HyperPe::new(3, 256);
    let cases = [(100u64, 7u64), (255, 3), (44, 44)];
    for (row, &(va, vb)) in cases.iter().enumerate() {
        a.store(&mut pe, row, va);
        b.store(&mut pe, row, vb);
    }
    mc.program().run(&mut pe);

    let kernel = compile(
        "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) { return a / b; }",
        &CompileOptions::default(),
    )
    .unwrap();
    for (row, &(va, vb)) in cases.iter().enumerate() {
        let compiled = kernel.run_rows(&[&[va, vb]]).unwrap()[0];
        assert_eq!(q.read(&pe, row), compiled, "{va}/{vb}");
        assert_eq!(compiled, va / vb);
    }
}

#[test]
fn mul_full_agrees_between_interpreter_and_machine() {
    // Regression: standalone Latch ops (mul_full's zero-initialized upper
    // accumulator pairs) must survive ISA lowering — the machine path used
    // to see a stale encoder latch there.
    use hyperap_core::machine::HyperPe;
    use hyperap_core::microcode::Microcode;
    let mut mc = Microcode::new(256);
    let a = mc.alloc_plain_input("a", 6);
    let b = mc.alloc_plain_input("b", 6);
    let out = mc.mul_full(&a, &b);
    let prog = mc.into_program();
    let cases = [(63u64, 63u64), (17, 40), (1, 62), (0, 9)];

    let mut pe = HyperPe::new(cases.len(), 256);
    let mut machine = ApMachine::new(ArchConfig::single_pe(cases.len()));
    for (row, &(va, vb)) in cases.iter().enumerate() {
        a.store(&mut pe, row, va);
        b.store(&mut pe, row, vb);
        a.store(machine.pe_mut(0), row, va);
        b.store(machine.pe_mut(0), row, vb);
    }
    prog.run(&mut pe);
    machine.run(&[lower(&prog)]);
    for (row, &(va, vb)) in cases.iter().enumerate() {
        assert_eq!(out.read(&pe, row), va * vb, "interpreter {va}*{vb}");
        assert_eq!(out.read(machine.pe(0), row), va * vb, "machine {va}*{vb}");
    }
}
