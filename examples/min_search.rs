//! Associative global-minimum search — the classic AP application: find the
//! minimum of N values in O(bit-width) searches, independent of N, using
//! only the machine's search + count + priority-encode primitives.

use hyper_ap::core::machine::HyperPe;
use hyper_ap::tcam::{KeyBit, SearchKey};

fn main() {
    let values: Vec<u64> = vec![212, 45, 190, 71, 99, 254, 47, 130, 68, 45, 201, 77];
    let width = 8usize;
    let mut pe = HyperPe::new(values.len(), 16);
    for (row, &v) in values.iter().enumerate() {
        for b in 0..width {
            pe.load_bit(row, b, v >> b & 1 == 1);
        }
    }

    // Bit-serial tournament, MSB down: keep the 0-branch whenever any
    // candidate survives it.
    let mut prefix = SearchKey::masked(16);
    for bit in (0..width).rev() {
        let mut trial = prefix.clone();
        trial.set_bit(bit, KeyBit::Zero);
        pe.search(&trial, false);
        if pe.count() > 0 {
            prefix = trial;
        } else {
            prefix.set_bit(bit, KeyBit::One);
        }
    }
    pe.search(&prefix, false);
    let winners = pe.count();
    let row = pe.index().expect("non-empty input");
    println!("values  : {values:?}");
    println!(
        "minimum : {} at row {row} ({winners} occurrence(s)), found in {} searches",
        values[row],
        pe.op_counts().searches
    );
    assert_eq!(values[row], *values.iter().min().unwrap());
    println!(
        "searches scale with bit-width (8), not with element count ({})",
        values.len()
    );
}
