//! Physical-design (area) constants from Fig 14 and Table II.
//!
//! The paper's PE is measured from a custom 32 nm physical design:
//! 53.12 µm × 49.72 µm, with the two 256×256 RRAM crossbar arrays
//! monolithically 3D-stacked on top of the CMOS circuits (so the arrays
//! consume no die area). A CMOS TCAM implementation has to pay array area in
//! silicon, which is why CMOS-based Hyper-AP ends up with far fewer SIMD
//! slots (§VI-E).

use crate::tech::Technology;
use serde::{Deserialize, Serialize};

/// PE width in micrometres (Fig 14).
pub const PE_WIDTH_UM: f64 = 53.12;
/// PE height in micrometres (Fig 14).
pub const PE_HEIGHT_UM: f64 = 49.72;
/// Words (rows) per PE — one word is one SIMD slot (§IV-B).
pub const PE_ROWS: usize = 256;
/// Bits (columns) per PE word.
pub const PE_COLS: usize = 256;

/// Area model for one implementation technology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Implementation technology.
    pub technology: Technology,
    /// Area of a single PE in square micrometres.
    pub pe_area_um2: f64,
    /// Total die area budget in square millimetres (Table II: 452 mm²).
    pub chip_area_mm2: f64,
    /// Fraction of the die usable for PEs (rest: controllers, instruction
    /// memories, dispatch units, global network).
    pub pe_area_fraction: f64,
}

impl AreaModel {
    /// RRAM-based Hyper-AP area model (Table II / Fig 14).
    ///
    /// The PE count is chosen so the chip exposes the paper's
    /// 33,554,432 SIMD slots (= 131,072 PEs × 256 rows) inside 452 mm².
    pub fn rram() -> Self {
        AreaModel {
            technology: Technology::Rram,
            pe_area_um2: PE_WIDTH_UM * PE_HEIGHT_UM,
            chip_area_mm2: 452.0,
            pe_area_fraction: 0.766,
        }
    }

    /// CMOS TCAM area model.
    ///
    /// A 16T CMOS ternary cell at 32 nm occupies roughly 60× the footprint of
    /// a 3D-stacked 1D1R pair (which is *free* in die area); the paper notes
    /// CMOS TCAM "has a much lower storage density, which substantially
    /// increases the PE area ... and reduces the number of SIMD slots"
    /// (§VI-E). Calibrated so the CMOS Hyper-AP throughput lands at the
    /// paper's ≈2.4 TOPS for 32-bit add (Fig 19a).
    pub fn cmos() -> Self {
        AreaModel {
            technology: Technology::Cmos,
            pe_area_um2: PE_WIDTH_UM * PE_HEIGHT_UM * 60.0,
            chip_area_mm2: 452.0,
            pe_area_fraction: 0.766,
        }
    }

    /// Number of PEs that fit in the chip budget.
    pub fn pe_count(&self) -> u64 {
        let usable_um2 = self.chip_area_mm2 * 1e6 * self.pe_area_fraction;
        (usable_um2 / self.pe_area_um2) as u64
    }

    /// Number of SIMD slots (word rows) the chip exposes.
    pub fn simd_slots(&self) -> u64 {
        self.pe_count() * PE_ROWS as u64
    }

    /// Memory capacity in bytes (each PE stores 256 × 256 TCAM bits).
    pub fn capacity_bytes(&self) -> u64 {
        self.pe_count() * (PE_ROWS * PE_COLS / 8) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_area_matches_fig14() {
        let a = AreaModel::rram();
        let expected = 53.12 * 49.72;
        assert!((a.pe_area_um2 - expected).abs() < 1e-9);
    }

    #[test]
    fn rram_slot_count_matches_table2() {
        // Table II: 33,554,432 SIMD slots. Our area model must land within 5%.
        let slots = AreaModel::rram().simd_slots() as f64;
        let paper = 33_554_432.0;
        assert!(
            (slots - paper).abs() / paper < 0.05,
            "slots = {slots}, paper = {paper}"
        );
    }

    #[test]
    fn cmos_has_far_fewer_slots() {
        assert!(AreaModel::cmos().simd_slots() * 10 < AreaModel::rram().simd_slots());
    }

    #[test]
    fn capacity_is_about_1gb() {
        // Table II: 1 GB RRAM.
        let bytes = AreaModel::rram().capacity_bytes() as f64;
        assert!(bytes > 0.95e9 && bytes < 1.15e9, "bytes = {bytes}");
    }
}
