//! Bit-plane layout helpers: 64×64 bit transposes between the slab's
//! PE-major word planes and the per-PE row-block layout of
//! [`crate::tags::TagVector`] / [`crate::array::TcamArray`].
//!
//! The slab arenas ([`crate::slab::TcamSlab`], [`crate::slab::TagSlab`])
//! store one *cell position* across 64 PEs per `u64` word — bit `p` of a
//! plane word is PE `p`'s bit for that row. Everything outside the kernels
//! (byte images, per-PE snapshots, the reference arrays) speaks the
//! historical per-PE layout of 64-*row* blocks, so conversions are bit
//! transposes. They run tile-wise with the Hacker's Delight in-register
//! 64×64 transpose, which keeps whole-slab conversions O(words) instead of
//! O(bits).

/// In-place 64×64 bit-matrix transpose with LSB-first indexing: on return,
/// bit `i` of word `j` is the input's bit `j` of word `i`.
pub(crate) fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m: u64 = 0x0000_0000_FFFF_FFFF;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Convert a `[row][pe_word]` plane (`rows * pes.div_ceil(64)` words) into
/// per-PE row-blocks `[pe][block]` (`pes * rows.div_ceil(64)` words).
/// Plane bits at PE positions `>= pes` are ignored; output row-padding
/// bits are zero.
pub(crate) fn plane_to_pe_major(plane: &[u64], rows: usize, pes: usize) -> Vec<u64> {
    let pw = pes.div_ceil(64);
    let bpp = rows.div_ceil(64);
    assert_eq!(plane.len(), rows * pw, "plane word count mismatch");
    let mut out = vec![0u64; pes * bpp];
    let mut tile = [0u64; 64];
    for rb in 0..bpp {
        let rn = 64.min(rows - rb * 64);
        for pb in 0..pw {
            for (i, t) in tile.iter_mut().enumerate() {
                *t = if i < rn {
                    plane[(rb * 64 + i) * pw + pb]
                } else {
                    0
                };
            }
            transpose64(&mut tile);
            let pn = 64.min(pes - pb * 64);
            for (j, t) in tile.iter().take(pn).enumerate() {
                out[(pb * 64 + j) * bpp + rb] = *t;
            }
        }
    }
    out
}

/// Convert per-PE row-blocks `[pe][block]` into a `[row][pe_word]` plane —
/// the inverse of [`plane_to_pe_major`]. Input bits at row positions
/// `>= rows` in a PE's last block are ignored; output PE-padding bits are
/// zero.
pub(crate) fn pe_major_to_plane(words: &[u64], rows: usize, pes: usize) -> Vec<u64> {
    let pw = pes.div_ceil(64);
    let bpp = rows.div_ceil(64);
    assert_eq!(words.len(), pes * bpp, "pe-major word count mismatch");
    let mut plane = vec![0u64; rows * pw];
    let mut tile = [0u64; 64];
    let row_tail = if !rows.is_multiple_of(64) {
        (1u64 << (rows % 64)) - 1
    } else {
        !0
    };
    for rb in 0..bpp {
        let rn = 64.min(rows - rb * 64);
        let keep = if rb == bpp - 1 { row_tail } else { !0 };
        for pb in 0..pw {
            let pn = 64.min(pes - pb * 64);
            for (j, t) in tile.iter_mut().enumerate() {
                *t = if j < pn {
                    words[(pb * 64 + j) * bpp + rb] & keep
                } else {
                    0
                };
            }
            transpose64(&mut tile);
            for (i, t) in tile.iter().take(rn).enumerate() {
                plane[(rb * 64 + i) * pw + pb] = *t;
            }
        }
    }
    plane
}

/// Read one bit of a `[row][pe_word]` plane.
#[cfg(test)]
pub(crate) fn get_bit(plane: &[u64], pw: usize, row: usize, pe: usize) -> bool {
    plane[row * pw + pe / 64] >> (pe % 64) & 1 != 0
}

/// Write one bit of a `[row][pe_word]` plane.
#[cfg(test)]
pub(crate) fn set_bit(plane: &mut [u64], pw: usize, row: usize, pe: usize, value: bool) {
    let (w, m) = (row * pw + pe / 64, 1u64 << (pe % 64));
    if value {
        plane[w] |= m;
    } else {
        plane[w] &= !m;
    }
}

/// All-live PE mask: `pes.div_ceil(64)` words with bits `0..pes` set.
pub(crate) fn pe_mask(pes: usize) -> Vec<u64> {
    let pw = pes.div_ceil(64);
    let mut m = vec![!0u64; pw];
    if !pes.is_multiple_of(64) {
        m[pw - 1] = (1u64 << (pes % 64)) - 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_orientation_matches_scalar_gather() {
        // Deterministic mixed pattern; check bit (j, i) lands at (i, j).
        let mut a = [0u64; 64];
        for (i, w) in a.iter_mut().enumerate() {
            *w = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (1u64 << (i % 64));
        }
        let orig = a;
        transpose64(&mut a);
        for (i, ow) in orig.iter().enumerate() {
            for (j, aw) in a.iter().enumerate() {
                assert_eq!(aw >> i & 1, ow >> j & 1, "bit ({i}, {j}) misplaced");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig, "transpose is an involution");
    }

    #[test]
    fn plane_round_trips_for_ragged_geometries() {
        for (rows, pes) in [
            (1usize, 1usize),
            (64, 64),
            (70, 5),
            (33, 67),
            (130, 96),
            (64, 130),
        ] {
            let pw = pes.div_ceil(64);
            let mut plane = vec![0u64; rows * pw];
            for row in 0..rows {
                for pe in 0..pes {
                    set_bit(&mut plane, pw, row, pe, (row * 31 + pe * 7) % 3 == 0);
                }
            }
            let pm = plane_to_pe_major(&plane, rows, pes);
            // Spot-check orientation against the scalar definition.
            let bpp = rows.div_ceil(64);
            for pe in 0..pes {
                for row in 0..rows {
                    assert_eq!(
                        pm[pe * bpp + row / 64] >> (row % 64) & 1 != 0,
                        get_bit(&plane, pw, row, pe),
                        "rows {rows} pes {pes} pe {pe} row {row}"
                    );
                }
            }
            assert_eq!(
                pe_major_to_plane(&pm, rows, pes),
                plane,
                "rows {rows} pes {pes}"
            );
        }
    }

    #[test]
    fn conversions_scrub_padding() {
        // Row-tail garbage in pe-major input must not leak into the plane.
        let (rows, pes) = (70usize, 5usize);
        let bpp = rows.div_ceil(64);
        let mut pm = vec![!0u64; pes * bpp];
        let plane = pe_major_to_plane(&pm, rows, pes);
        for w in &plane {
            assert_eq!(w >> pes, 0, "PE padding must stay clear");
        }
        // And PE-tail garbage in a plane must not leak into pe-major words.
        pm = plane_to_pe_major(&vec![!0u64; rows], rows, pes);
        for pe in 0..pes {
            assert_eq!(pm[pe * bpp + bpp - 1] >> (rows % 64), 0, "row padding");
        }
    }

    #[test]
    fn pe_mask_covers_exactly_the_live_pes() {
        assert_eq!(pe_mask(64), vec![!0u64]);
        assert_eq!(pe_mask(1), vec![1]);
        assert_eq!(pe_mask(65), vec![!0, 1]);
        assert_eq!(pe_mask(96), vec![!0, 0xFFFF_FFFF]);
    }
}
