//! Closed-loop load benchmark for the serving layer, and the generator of
//! the `serve` block in `BENCH_SIM.json`.
//!
//! Two measured regimes over the same job mix (single-group `add32`
//! kernels plus a search-heavy probe kernel, preloaded operands):
//!
//! * **single**: one submitter, window 1 — a depth-1 closed loop. At most
//!   one job is ever in flight, so at most one pool machine is busy: this
//!   is the no-concurrency baseline.
//! * **saturation**: `2 × machines` submitters, window 8 — every machine
//!   busy, queues non-empty, batching and work stealing active.
//!
//! Reported: jobs/s in both regimes, their ratio (`throughput_scaling`),
//! p50/p99 submit-to-completion latency under saturation, max queue depth,
//! shared-cache hit rate, batch statistics, and the process memory
//! high-water mark. On hosts where threading pays
//! ([`hyperap_arch::par::parallel_pays`]) the scaling ratio must reach
//! 1.5×; on a single-CPU host the saturated pool cannot beat the depth-1
//! loop, so the gate is only that concurrency costs <10% (0.9×). Either
//! way the shared cache must serve ≥90% of lookups. Violations exit
//! non-zero, and `bench_guard` re-checks the same floors against the
//! checked-in numbers.
//!
//! Run `bench_sim` first when regenerating: it rewrites `BENCH_SIM.json`
//! wholesale, while this binary only splices its `serve` block in.
//!
//! `--smoke` runs a seconds-scale correctness pass on a tiny geometry
//! (results cross-checked against isolated machines) and writes nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use hyperap_arch::{ArchConfig, ExecMode, SlabMachine};
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use hyperap_isa::Instruction;
use hyperap_serve::{CellLoad, JobSpec, ServeConfig, ServePool};
use hyperap_tcam::SearchKey;

/// Per-group geometry of the load test: 8 groups × 16 PEs of 64×256 —
/// large enough that a job's sweep dominates its dispatch, small enough
/// that a full run stays under a couple of seconds.
fn bench_arch() -> ArchConfig {
    let mut cfg = ArchConfig::tiny();
    cfg.groups = 8;
    cfg.banks_per_group = 1;
    cfg.subarrays_per_bank = 2;
    cfg.pes_per_subarray = 8;
    cfg.rows = 64;
    cfg.cols = 256;
    cfg
}

/// The arithmetic kernel: one group's worth of a `width`-bit add (32 on
/// the 256-column load geometry; 8 on the 64-column smoke geometry, where
/// add32's column footprint does not fit).
fn add_stream(cols: usize, width: usize) -> Vec<Instruction> {
    let mut mc = Microcode::new(cols);
    let (x, y) = mc.alloc_paired_inputs("a", "b", width);
    let _ = mc.add(&x, &y);
    lower(&mc.into_program())
}

/// The probe kernel: search-heavy, no writes — a second distinct cache
/// entry so hits are not an artifact of a one-program mix.
fn probe_stream(cols: usize) -> Vec<Instruction> {
    let mut key = String::from("1-0");
    while key.len() < cols.min(12) {
        key.push('-');
    }
    vec![
        Instruction::SetKey {
            key: SearchKey::parse(&key).unwrap(),
        },
        Instruction::Search {
            acc: false,
            encode: false,
        },
        Instruction::SetTag,
        Instruction::Search {
            acc: true,
            encode: false,
        },
        Instruction::Count,
        Instruction::Index,
    ]
}

/// Operand preloads for job-local PE space: a few encoded-looking bit
/// pairs so the adders chew on non-trivial data.
fn job_loads(pes: usize, rows: usize) -> Vec<CellLoad> {
    let mut loads = Vec::new();
    for pe in 0..pes {
        for row in 0..8.min(rows) {
            loads.push(CellLoad {
                pe,
                row,
                col: (pe + row) % 2,
                value: (pe ^ row) & 1 == 1,
            });
        }
    }
    loads
}

/// One closed-loop run: `submitters` threads, each keeping up to `window`
/// jobs in flight until `jobs_per_submitter` complete. Returns
/// (elapsed seconds, sorted per-job latencies in seconds).
fn closed_loop(
    pool: &ServePool,
    kernels: &[Vec<Vec<Instruction>>],
    loads: &[CellLoad],
    submitters: usize,
    window: usize,
    jobs_per_submitter: usize,
) -> (f64, Vec<f64>) {
    let completed = AtomicU64::new(0);
    let start = Instant::now();
    let latencies = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for t in 0..submitters {
            let pool = &pool;
            let kernels = &kernels;
            let completed = &completed;
            let latencies = &latencies;
            s.spawn(move || {
                let mut local = Vec::with_capacity(jobs_per_submitter);
                let mut done = 0usize;
                let mut next = 0usize;
                let mut inflight: Vec<(Instant, hyperap_serve::JobHandle)> = Vec::new();
                while done < jobs_per_submitter {
                    while inflight.len() < window && next < jobs_per_submitter {
                        let k = (next + t) % kernels.len();
                        let handle = pool
                            .submit(JobSpec {
                                tenant: t as u32,
                                streams: kernels[k].clone(),
                                loads: loads.to_vec(),
                            })
                            .expect("window below the tenant depth bound");
                        inflight.push((Instant::now(), handle));
                        next += 1;
                    }
                    let (sent, handle) = inflight.remove(0);
                    handle.wait().expect("zero-fault job cannot fail");
                    local.push(sent.elapsed().as_secs_f64());
                    done += 1;
                }
                completed.fetch_add(done as u64, Ordering::Relaxed);
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut lats = latencies.into_inner().unwrap();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(
        completed.load(Ordering::Relaxed) as usize,
        submitters * jobs_per_submitter
    );
    (elapsed, lats)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Process memory high-water mark (`VmHWM`) in kB, from
/// `/proc/self/status`; 0 where unavailable.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Splice `block` in as the top-level `"serve"` object of the checked-in
/// `BENCH_SIM.json` (replacing any previous one). No JSON dependency is
/// available offline, so this is a brace-depth scan over the known
/// bench_sim layout.
fn merge_serve_block(json: &str, block: &str) -> String {
    let mut body = json.trim_end().to_string();
    // Drop an existing `"serve": { ... }` block, including a trailing or
    // leading comma keeping the object list well-formed.
    if let Some(start) = body.find("\"serve\":") {
        let open = start + body[start..].find('{').expect("serve block opens");
        let mut depth = 0usize;
        let mut end = open;
        for (i, c) in body[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        let mut cut_start = start;
        let mut cut_end = end;
        let tail = body[end..].trim_start();
        if tail.starts_with(',') {
            cut_end = end + body[end..].find(',').unwrap() + 1;
        } else if body[..start].trim_end().ends_with(',') {
            cut_start = body[..start].rfind(',').unwrap();
        }
        body.replace_range(cut_start..cut_end, "");
        body = body.trim_end().to_string();
    }
    let close = body.rfind('}').expect("top-level object closes");
    let head = body[..close].trim_end();
    let sep = if head.ends_with('{') { "" } else { "," };
    format!("{head}{sep}\n  \"serve\": {block}\n}}\n")
}

fn find_bench_json() -> Option<std::path::PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let p = dir.join("BENCH_SIM.json");
        if p.exists() {
            return Some(p);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Tiny-geometry correctness pass for CI: results under concurrency are
/// cross-checked against isolated machines; nothing is written.
fn smoke() -> i32 {
    let arch = ArchConfig::tiny();
    let kernels = vec![
        vec![add_stream(arch.cols, 8)],
        vec![probe_stream(arch.cols)],
    ];
    let pes_per_group = arch.total_pes() / arch.groups;
    let loads = job_loads(pes_per_group, arch.rows);

    // Expected results: each kernel alone on a fresh machine of its size.
    let expected: Vec<_> = kernels
        .iter()
        .map(|streams| {
            let mut cfg = arch.clone();
            cfg.groups = streams.len();
            cfg.exec = ExecMode::Sequential;
            let mut iso = SlabMachine::new(cfg);
            for l in &loads {
                iso.load_bit(l.pe, l.row, l.col, l.value);
            }
            iso.run(streams)
        })
        .collect();

    let mut cfg = ServeConfig::new(arch);
    cfg.machines = 2;
    let pool = ServePool::new(cfg);
    let submitters = 3;
    let jobs = 30;
    std::thread::scope(|s| {
        for t in 0..submitters {
            let pool = &pool;
            let kernels = &kernels;
            let expected = &expected;
            let loads = &loads;
            s.spawn(move || {
                for i in 0..jobs {
                    let k = (i + t) % kernels.len();
                    let out = pool
                        .submit(JobSpec {
                            tenant: t as u32,
                            streams: kernels[k].clone(),
                            loads: loads.clone(),
                        })
                        .expect("smoke stays under the depth bound")
                        .wait()
                        .expect("zero-fault job cannot fail");
                    assert_eq!(out.stats, expected[k], "kernel {k} diverged under load");
                }
            });
        }
    });
    let stats = pool.shutdown();
    let hit_rate = stats.cache.hit_rate();
    println!(
        "serve_bench --smoke: {} jobs, {} sweeps ({} batched), cache hit rate {:.3}",
        stats.completed_jobs, stats.sweeps, stats.batched_jobs, hit_rate
    );
    let mut failed = false;
    if stats.completed_jobs != (submitters * jobs) as u64 {
        eprintln!("serve_bench: lost jobs under --smoke");
        failed = true;
    }
    if hit_rate < 0.90 {
        eprintln!("serve_bench: shared cache hit rate {hit_rate:.3} below 0.90");
        failed = true;
    }
    if stats.healthy_machines != stats.machines {
        eprintln!("serve_bench: zero-fault smoke quarantined a machine");
        failed = true;
    }
    i32::from(failed)
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }

    let arch = bench_arch();
    let machines = hyperap_arch::par::logical_cpus().max(2);
    let parallel_pays = hyperap_arch::par::parallel_pays();
    let jobs_per_submitter: usize = std::env::var("HYPERAP_SERVE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);

    let kernels = vec![
        vec![add_stream(arch.cols, 32)],
        vec![probe_stream(arch.cols)],
    ];
    let pes_per_group = arch.total_pes() / arch.groups;
    let loads = job_loads(pes_per_group, arch.rows);

    // Regime 1: depth-1 closed loop — the no-concurrency baseline.
    let mut cfg = ServeConfig::new(arch.clone());
    cfg.machines = machines;
    let single_pool = ServePool::new(cfg);
    let submitters = 2 * machines;
    let single_jobs = submitters * jobs_per_submitter;
    let (single_s, _) = closed_loop(&single_pool, &kernels, &loads, 1, 1, single_jobs);
    let single_stats = single_pool.shutdown();
    assert_eq!(single_stats.completed_jobs, single_jobs as u64);
    let single_jps = single_jobs as f64 / single_s;

    // Regime 2: saturation — every machine busy, queues non-empty.
    let mut cfg = ServeConfig::new(arch.clone());
    cfg.machines = machines;
    let pool = ServePool::new(cfg);
    let (multi_s, lats) = closed_loop(&pool, &kernels, &loads, submitters, 8, jobs_per_submitter);
    let stats = pool.shutdown();
    assert_eq!(stats.completed_jobs, single_jobs as u64);
    let multi_jps = single_jobs as f64 / multi_s;

    let scaling = multi_jps / single_jps;
    let hit_rate = stats.cache.hit_rate();
    let p50_us = percentile(&lats, 0.50) * 1e6;
    let p99_us = percentile(&lats, 0.99) * 1e6;
    let hwm = vm_hwm_kb();

    println!(
        "serve_bench: {machines} machines, {submitters} submitters, {single_jobs} jobs/regime"
    );
    println!("serve_bench: single {single_jps:.0} jobs/s, saturated {multi_jps:.0} jobs/s ({scaling:.2}x)");
    println!(
        "serve_bench: p50 {p50_us:.0}us p99 {p99_us:.0}us, max queue depth {}, \
         {} batched jobs over {} sweeps, cache hit rate {hit_rate:.3}, VmHWM {hwm} kB",
        stats.max_queue_depth, stats.batched_jobs, stats.sweeps
    );

    // The same floors bench_guard holds the checked-in numbers to.
    let scaling_floor = if parallel_pays { 1.5 } else { 0.9 };
    let mut failed = false;
    if scaling < scaling_floor {
        eprintln!(
            "serve_bench: throughput scaling {scaling:.2}x below the {scaling_floor}x floor \
             (parallel_pays = {parallel_pays})"
        );
        failed = true;
    }
    if hit_rate < 0.90 {
        eprintln!("serve_bench: shared cache hit rate {hit_rate:.3} below 0.90");
        failed = true;
    }

    let block = format!(
        r#"{{
    "machines": {machines},
    "submitters": {submitters},
    "jobs_per_regime": {single_jobs},
    "single_jobs_per_sec": {single_jps:.1},
    "saturation_jobs_per_sec": {multi_jps:.1},
    "throughput_scaling": {scaling:.3},
    "parallel_pays": {parallel_pays},
    "latency_p50_us": {p50_us:.1},
    "latency_p99_us": {p99_us:.1},
    "max_queue_depth": {},
    "batched_jobs": {},
    "sweeps": {},
    "cache_hit_rate": {hit_rate:.4},
    "vm_hwm_kb": {hwm}
  }}"#,
        stats.max_queue_depth, stats.batched_jobs, stats.sweeps
    );
    match find_bench_json() {
        Some(path) => {
            let json = std::fs::read_to_string(&path).expect("read BENCH_SIM.json");
            std::fs::write(&path, merge_serve_block(&json, &block)).expect("write BENCH_SIM.json");
            println!("serve_bench: merged serve block into {}", path.display());
        }
        None => {
            eprintln!("serve_bench: BENCH_SIM.json not found — run bench_sim first");
            failed = true;
        }
    }
    std::process::exit(i32::from(failed));
}
