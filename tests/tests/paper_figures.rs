//! Executable paper figures: the hand-written instruction sequences from
//! the paper's figures run on the simulated machine and produce the
//! documented results.

use hyperap_arch::{ApMachine, ArchConfig};
use hyperap_isa::{asm, Instruction};

/// Fig 5d: the 6-operation Hyper-AP 1-bit addition, written exactly as in
/// the paper (A,B two-bit-encoded in columns 0-1, Cin plain in column 2,
/// Sum in column 3, Cout in column 4), executed for all eight input
/// combinations simultaneously — one per SIMD slot.
#[test]
fn fig5d_assembly_runs_on_the_machine() {
    let program = asm::parse(
        "
        # Sum: patterns {100, 010} then {001, 111}   (A,B encoded; Cin plain)
        setkey 010
        search
        setkey 101
        search acc
        setkey ---1
        write 3
        # Cout: patterns {011, 101, 111} then {110}
        setkey -11
        search
        setkey 1Z0
        search acc
        setkey ----1
        write 4
        ",
    )
    .unwrap();
    assert_eq!(
        program
            .iter()
            .filter(|i| matches!(i, Instruction::Search { .. } | Instruction::Write { .. }))
            .count(),
        6,
        "Fig 5d: six operations"
    );

    let mut machine = ApMachine::new(ArchConfig {
        groups: 1,
        banks_per_group: 1,
        subarrays_per_bank: 1,
        pes_per_subarray: 1,
        rows: 8,
        cols: 8,
        tech: hyperap_model::TechParams::rram(),
        mesh: None,
        exec: Default::default(),
        faults: Default::default(),
    });
    for v in 0u64..8 {
        let (a, b, cin) = (v & 1 == 1, v & 2 != 0, v & 4 != 0);
        machine.pe_mut(0).load_encoded_pair(v as usize, 0, a, b);
        machine.pe_mut(0).load_bit(v as usize, 2, cin);
    }
    machine.run(&[program]);
    for v in 0u64..8 {
        let total = (v & 1) + (v >> 1 & 1) + (v >> 2 & 1);
        let pe = machine.pe(0);
        assert_eq!(
            pe.read_bit(v as usize, 3),
            Some(total & 1 == 1),
            "Sum for minterm {v:03b}"
        );
        assert_eq!(
            pe.read_bit(v as usize, 4),
            Some(total >= 2),
            "Cout for minterm {v:03b}"
        );
    }
}

/// §IV-A12: Wait-based synchronization between groups. Group 0 computes a
/// column and pushes it across the mesh; group 1 waits the statically known
/// cycle count before consuming it.
#[test]
fn wait_synchronizes_producer_and_consumer_groups() {
    use hyperap_isa::Direction;
    use hyperap_model::TechParams;
    use hyperap_tcam::{KeyBit, SearchKey};

    let config = ArchConfig {
        groups: 2,
        banks_per_group: 1,
        subarrays_per_bank: 1,
        pes_per_subarray: 1,
        rows: 4,
        cols: 16,
        tech: TechParams::rram(),
        mesh: Some((1, 2)),
        exec: Default::default(),
        faults: Default::default(),
    };
    let mut machine = ApMachine::new(config);
    machine.pe_mut(0).load_bit(1, 0, true);
    machine.pe_mut(0).load_bit(3, 0, true);

    // Producer (group 0 = PE 0): tags <- column 0, data reg <- tags,
    // shove it right to PE 1.
    let producer = vec![
        Instruction::SetKey {
            key: SearchKey::masked(16).with_bit(0, KeyBit::One),
        },
        Instruction::Search {
            acc: false,
            encode: false,
        },
        Instruction::ReadTag,
        Instruction::MovR {
            dir: Direction::Right,
        },
    ];
    let rram = TechParams::rram();
    let producer_cycles: u64 = producer.iter().map(|i| i.cycles(&rram)).sum();

    // Consumer (group 1 = PE 1): wait out the producer, then commit the
    // received register into storage.
    let consumer = vec![
        Instruction::Wait {
            cycles: producer_cycles as u8,
        },
        Instruction::SetTag,
        Instruction::SetKey {
            key: SearchKey::masked(16).with_bit(5, KeyBit::One),
        },
        Instruction::Write {
            col: 5,
            encode: false,
        },
    ];
    let stats = machine.run(&[producer, consumer]);
    assert_eq!(machine.pe(1).read_bit(1, 5), Some(true));
    assert_eq!(machine.pe(1).read_bit(3, 5), Some(true));
    assert_eq!(machine.pe(1).read_bit(0, 5), Some(false));
    // The consumer stalled at least as long as the producer ran.
    assert!(stats.group_cycles[1] >= producer_cycles);
}

/// Fig 19 grounding: the ripple adder executes *functionally* under the
/// traditional execution model too — same results, ~2.3x the operations.
#[test]
fn traditional_execution_model_computes_the_same_addition() {
    use hyperap_core::lut::{full_adder_lut, full_adder_lut_plain, ExecutionModel};
    use hyperap_core::machine::{HyperPe, TraditionalPe};

    // 1-bit full adder, all 8 minterms, both machines.
    let hyper_prog = full_adder_lut().lower(ExecutionModel::Hyper);
    let trad_prog = full_adder_lut_plain().lower(ExecutionModel::Traditional);
    let mut hyper = HyperPe::new(8, 8);
    let mut trad = TraditionalPe::new(8, 8);
    for v in 0u64..8 {
        let (a, b, cin) = (v & 1 == 1, v & 2 != 0, v & 4 != 0);
        hyper.load_encoded_pair(v as usize, 0, a, b);
        hyper.load_bit(v as usize, 2, cin);
        trad.load_bit(v as usize, 0, a);
        trad.load_bit(v as usize, 1, b);
        trad.load_bit(v as usize, 2, cin);
    }
    hyper_prog.run(&mut hyper);
    trad_prog.run_traditional(&mut trad);
    for v in 0usize..8 {
        assert_eq!(hyper.read_bit(v, 3), trad.read_bit(v, 3), "Sum row {v}");
        assert_eq!(hyper.read_bit(v, 4), trad.read_bit(v, 4), "Cout row {v}");
    }
    // And the op-count ratio is the Fig 5d claim.
    let h = hyper.op_counts();
    let t = trad.op_counts();
    assert_eq!(t.search_write_ops(), 14);
    assert_eq!(h.search_write_ops(), 6);
}

/// The classic associative application: global min via bit-serial
/// tournament search (MSB down), using only Search/Count — O(width), not
/// O(n log n).
#[test]
fn associative_minimum_search() {
    use hyperap_core::machine::HyperPe;
    use hyperap_tcam::{KeyBit, SearchKey};

    let values: [u64; 8] = [212, 45, 190, 45, 99, 254, 47, 130];
    let width = 8usize;
    let mut pe = HyperPe::new(values.len(), 16);
    for (row, &v) in values.iter().enumerate() {
        for b in 0..width {
            pe.load_bit(row, b, v >> b & 1 == 1);
        }
    }
    // Walk bits MSB→LSB, narrowing the candidate prefix.
    let mut prefix = SearchKey::masked(16);
    for bit in (0..width).rev() {
        let mut trial = prefix.clone();
        trial.set_bit(bit, KeyBit::Zero);
        pe.search(&trial, false);
        if pe.count() > 0 {
            prefix = trial; // some candidate has a 0 here: keep it
        } else {
            prefix.set_bit(bit, KeyBit::One);
        }
    }
    pe.search(&prefix, false);
    let min_row = pe.index().expect("min exists");
    assert_eq!(values[min_row], 45);
    // O(width) searches + final: 8 probes + 1.
    assert_eq!(pe.op_counts().searches, 9);
}
