//! Differential fuzzer for the three execution engines: random Table-I
//! instruction streams (plus synthetic-arithmetic kernel streams from
//! [`hyperap_workloads::synthetic`]) run on the instruction-at-a-time
//! interpreter, the trace-compiled engine, and the slab engine — with and
//! without a seeded fault model — and any divergence in the run `Result`
//! (stats, `pe_health`, typed fault errors) or the post-run machine state
//! is shrunk to a minimized repro before the fuzzer exits non-zero.
//!
//! A second differential axis covers the compiler's optimizer: every
//! fourth iteration also generates a random C-like kernel source, compiles
//! it at `opt_level` 0 (the oracle) and at [`OPT_LEVEL_MAX`], and
//! cross-checks the two builds row-by-row against each other and against
//! the DFG reference evaluator. Divergences are shrunk by the same greedy
//! delta-debugging loop the stream cases use, dropping whole statements
//! and input rows until a fixpoint.
//!
//! A third axis covers the similarity API: random stored codes plus random
//! ternary query keys, `rows` limits, and `k` values run through
//! `hamming_topk` on the scalar engine and the slab engine over every
//! mode × chunk width, with and without stuck-at faults — hits and stats
//! must be bit-identical. Divergent cases shrink by dropping loads and
//! queries.
//!
//! Usage: `diff_fuzz [--smoke] [--seed N] [--iters N] [--case N] [--kernel-case N] [--sim-case N]`
//!
//! * `--smoke` — a short deterministic pass for CI (few iterations).
//! * `--seed N` — base seed; every iteration derives its own case seed.
//! * `--iters N` — number of fuzz cases.
//! * `--case N` — re-run exactly one case seed (the repro header prints
//!   the value to pass here).
//! * `--kernel-case N` — re-run exactly one compiler-kernel case seed.
//! * `--sim-case N` — re-run exactly one similarity-query case seed.
//!
//! The RNG is a self-contained splitmix64 so repros are stable across
//! hosts and toolchains.

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode, FaultConfig, SlabMachine};
use hyperap_baselines::reference::OpKind;
use hyperap_compiler::{compile, CompileOptions, OPT_LEVEL_MAX};
use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::{FaultModel, KeyBit, SearchKey};
use hyperap_workloads::synthetic;

/// Geometry under test: `tiny()` is 2 groups x 4 PEs.
const PES: usize = 8;
const GROUPS: usize = 2;
const ROWS: usize = 16;

/// Slab chunk widths exercised per case: single-PE chunks, a short tail
/// chunk, one chunk per group.
const CHUNK_WIDTHS: [usize; 3] = [1, 3, 4];

/// Deterministic splitmix64 — the fuzzer's only entropy source.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0; modulo bias is irrelevant for fuzzing).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn flag(&mut self) -> bool {
        self.below(2) == 0
    }
}

type Load = (usize, usize, usize, bool);

/// One fuzz case: a machine geometry, initial cell loads, a per-group
/// instruction stream, and a (possibly inactive) fault configuration.
struct Case {
    cols: usize,
    loads: Vec<Load>,
    streams: Vec<Vec<Instruction>>,
    faults: FaultConfig,
}

fn random_key(rng: &mut Rng, cols: usize) -> SearchKey {
    (0..cols)
        .map(|_| match rng.below(4) {
            0 => KeyBit::Zero,
            1 => KeyBit::One,
            2 => KeyBit::Z,
            _ => KeyBit::Masked,
        })
        .collect()
}

fn random_instruction(rng: &mut Rng, cols: usize) -> Instruction {
    match rng.below(12) {
        0 => Instruction::SetKey {
            key: random_key(rng, cols),
        },
        1 => Instruction::Search {
            acc: rng.flag(),
            encode: rng.flag(),
        },
        // `encode` needs two adjacent columns, so stop one short.
        2 => Instruction::Write {
            col: rng.below(cols as u64 - 1) as u8,
            encode: rng.flag(),
        },
        3 => Instruction::Count,
        4 => Instruction::Index,
        5 => Instruction::MovR {
            dir: match rng.below(4) {
                0 => Direction::Up,
                1 => Direction::Down,
                2 => Direction::Left,
                _ => Direction::Right,
            },
        },
        6 => Instruction::ReadR {
            addr: rng.below(PES as u64) as u32,
        },
        7 => Instruction::WriteR {
            addr: if rng.flag() {
                BROADCAST_ADDR
            } else {
                rng.below(PES as u64) as u32
            },
            imm: (0..rng.below(4)).map(|_| rng.next() as u8).collect(),
        },
        8 => Instruction::SetTag,
        9 => Instruction::ReadTag,
        10 => Instruction::Broadcast {
            group_mask: rng.next() as u8,
        },
        _ => Instruction::Wait {
            cycles: rng.below(10) as u8,
        },
    }
}

fn random_stream(rng: &mut Rng, cols: usize, max_len: u64) -> Vec<Instruction> {
    (0..rng.below(max_len))
        .map(|_| random_instruction(rng, cols))
        .collect()
}

fn random_faults(rng: &mut Rng) -> FaultConfig {
    // Half the cases run fault-free: the fuzzer differentially tests the
    // zero-fault path (must match today's engines) as much as the faulty
    // one.
    if rng.flag() {
        return FaultConfig::default();
    }
    FaultConfig {
        model: FaultModel {
            seed: rng.next(),
            stuck_per_million: rng.below(60_000) as u32,
            miss_per_million: rng.below(40_000) as u32,
            endurance_limit: rng.flag().then(|| 2 + rng.below(28)),
        },
        spare_cols: rng.below(3) as usize,
    }
}

/// Synthetic-arithmetic kernels mixed into the case pool — their microcode
/// streams are long chains of SetKey/Search/Write with realistic structure
/// random generation never produces.
const KERNELS: [(OpKind, usize); 4] = [
    (OpKind::Add, 16),
    (OpKind::AddImm, 16),
    (OpKind::MultiAdd, 8),
    (OpKind::Mul, 8),
];

fn generate_case(case_seed: u64) -> Case {
    let mut rng = Rng(case_seed);
    // One case in four runs a synthetic kernel stream (on the 256-column
    // geometry its microcode targets); the rest are random Table-I streams
    // on the tiny 64-column geometry.
    let kernel = rng.below(4) == 0;
    let cols = if kernel { 256 } else { 64 };
    let loads = (0..rng.below(64))
        .map(|_| {
            (
                rng.below(PES as u64) as usize,
                rng.below(ROWS as u64) as usize,
                rng.below(cols as u64) as usize,
                rng.flag(),
            )
        })
        .collect();
    let mut streams: Vec<Vec<Instruction>> = if kernel {
        let (op, width) = KERNELS[rng.below(KERNELS.len() as u64) as usize];
        let bench = synthetic::build(op, width);
        vec![bench.stream(), random_stream(&mut rng, cols, 12)]
    } else {
        (0..GROUPS)
            .map(|_| random_stream(&mut rng, cols, 30))
            .collect()
    };
    streams.truncate(GROUPS);
    Case {
        cols,
        loads,
        streams,
        faults: random_faults(&mut rng),
    }
}

fn config(case: &Case, mode: ExecMode) -> ArchConfig {
    let mut cfg = ArchConfig::tiny();
    cfg.cols = case.cols;
    cfg.exec = mode;
    cfg.faults = case.faults;
    cfg
}

fn build_reference(case: &Case) -> ApMachine {
    let mut m = ApMachine::new(config(case, ExecMode::Sequential));
    for &(pe, row, col, v) in &case.loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn build_slab(case: &Case, mode: ExecMode, chunk_pes: usize) -> SlabMachine {
    let mut m = SlabMachine::with_chunk_pes(config(case, mode), chunk_pes);
    for &(pe, row, col, v) in &case.loads {
        m.load_bit(pe, row, col, v);
    }
    m
}

/// First state component on which `b` disagrees with the reference, if any.
fn ap_state_divergence(reference: &ApMachine, b: &ApMachine) -> Option<String> {
    for pe in 0..PES {
        if reference.pe(pe) != b.pe(pe) {
            return Some(format!("PE {pe} state (cells/tags/wear/fault bookkeeping)"));
        }
        if reference.data_reg(pe) != b.data_reg(pe) {
            return Some(format!("PE {pe} data register"));
        }
    }
    (reference.data_buffers != b.data_buffers).then(|| "controller data buffers".to_string())
}

fn slab_state_divergence(reference: &ApMachine, b: &SlabMachine) -> Option<String> {
    for pe in 0..PES {
        if *reference.pe(pe) != b.pe_snapshot(pe) {
            return Some(format!("PE {pe} state (cells/tags/wear/fault bookkeeping)"));
        }
        if *reference.data_reg(pe) != b.data_reg(pe) {
            return Some(format!("PE {pe} data register"));
        }
    }
    (reference.data_buffers != b.data_buffers).then(|| "controller data buffers".to_string())
}

/// Run the full engine matrix on `case`; `Some(description)` on the first
/// divergence from the interpreted reference.
fn check(case: &Case) -> Option<String> {
    let mut reference = build_reference(case);
    let ref_result = reference.try_run_interpreted(&case.streams);
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        let mut traced = ApMachine::new(config(case, mode));
        for &(pe, row, col, v) in &case.loads {
            traced.pe_mut(pe).load_bit(row, col, v);
        }
        let got = traced.try_run(&case.streams);
        if got != ref_result {
            return Some(format!(
                "trace engine ({mode:?}) result diverged:\n  reference: {ref_result:?}\n  trace:     {got:?}"
            ));
        }
        if let Some(what) = ap_state_divergence(&reference, &traced) {
            return Some(format!("trace engine ({mode:?}) diverged on {what}"));
        }
        for chunk_pes in CHUNK_WIDTHS {
            let mut slab = build_slab(case, mode, chunk_pes);
            let got = slab.try_run(&case.streams);
            if got != ref_result {
                return Some(format!(
                    "slab engine ({mode:?}, {chunk_pes}-PE chunks) result diverged:\n  reference: {ref_result:?}\n  slab:      {got:?}"
                ));
            }
            if let Some(what) = slab_state_divergence(&reference, &slab) {
                return Some(format!(
                    "slab engine ({mode:?}, {chunk_pes}-PE chunks) diverged on {what}"
                ));
            }
        }
    }
    None
}

/// Greedy delta-debugging: repeatedly drop single instructions and loads
/// while the divergence persists, until a fixpoint.
fn minimize(case: &mut Case) {
    loop {
        let mut shrunk = false;
        for g in 0..case.streams.len() {
            let mut i = 0;
            while i < case.streams[g].len() {
                let removed = case.streams[g].remove(i);
                if check(case).is_some() {
                    shrunk = true;
                } else {
                    case.streams[g].insert(i, removed);
                    i += 1;
                }
            }
        }
        let mut i = 0;
        while i < case.loads.len() {
            let removed = case.loads.remove(i);
            if check(case).is_some() {
                shrunk = true;
            } else {
                case.loads.insert(i, removed);
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
}

fn report(case_seed: u64, iteration: u64, case: &Case, divergence: &str) {
    eprintln!("diff_fuzz: DIVERGENCE at iteration {iteration} (case seed {case_seed})");
    eprintln!("diff_fuzz: re-run just this case with: diff_fuzz --case {case_seed}");
    eprintln!("diff_fuzz: minimized repro ({} columns):", case.cols);
    eprintln!("  faults: {:?}", case.faults);
    eprintln!("  loads (pe, row, col, value): {:?}", case.loads);
    for (g, s) in case.streams.iter().enumerate() {
        eprintln!("  group {g} stream ({} instructions): {s:?}", s.len());
    }
    eprintln!("diff_fuzz: {divergence}");
}

/// One compiler-optimizer fuzz case: a random straight-line kernel source
/// (as droppable statements) plus the input rows it runs on.
struct KernelCase {
    width: u32,
    arity: usize,
    /// Number of declared temporaries (fixed at generation so the
    /// minimizer can drop any statement without undeclaring later temps).
    n_temps: usize,
    stmts: Vec<String>,
    rows: Vec<Vec<u64>>,
}

impl KernelCase {
    /// Assemble the C-like source. All temporaries are declared up front;
    /// the return reads the last surviving assignment's target (or the
    /// first input when every statement has been shrunk away).
    fn source(&self) -> String {
        let params: Vec<String> = (0..self.arity)
            .map(|i| format!("unsigned int ({}) x{i}", self.width))
            .collect();
        let ret = self
            .stmts
            .iter()
            .rev()
            .find_map(|s| s.split('=').next().map(|l| l.trim().to_string()))
            .map(|lhs| lhs.split_whitespace().last().unwrap().to_string())
            .unwrap_or_else(|| "x0".into());
        let decls: Vec<String> = (0..self.n_temps)
            .map(|i| format!("    unsigned int ({}) t{i};", self.width))
            .collect();
        format!(
            "unsigned int ({}) main({}) {{\n{}\n    {}\n    return {ret};\n}}",
            self.width,
            params.join(", "),
            decls.join("\n"),
            self.stmts.join("\n    "),
        )
    }
}

/// A random expression over the inputs and the temporaries assigned by
/// earlier statements. Depth-bounded; shifts are by constants only
/// (data-dependent shifts are unsupported by the target).
fn random_expr(rng: &mut Rng, arity: usize, temps: usize, width: u32, depth: u32) -> String {
    if depth == 0 || rng.below(3) == 0 {
        return match rng.below(3) {
            0 if temps > 0 => format!("t{}", rng.below(temps as u64)),
            1 => format!("{}", rng.below(1 << width.min(16))),
            _ => format!("x{}", rng.below(arity as u64)),
        };
    }
    let a = random_expr(rng, arity, temps, width, depth - 1);
    let b = random_expr(rng, arity, temps, width, depth - 1);
    match rng.below(8) {
        0 => format!("({a} + {b})"),
        1 => format!("({a} - {b})"),
        2 => format!("({a} * {b})"),
        3 => format!("({a} & {b})"),
        4 => format!("({a} | {b})"),
        5 => format!("({a} ^ {b})"),
        6 => format!("({a} << {})", rng.below(u64::from(width))),
        _ => format!("({a} >> {})", rng.below(u64::from(width))),
    }
}

fn generate_kernel_case(case_seed: u64) -> KernelCase {
    let mut rng = Rng(case_seed ^ 0xC0DE_F00D);
    // Small widths keep multiplier microcode expansions fast to compile.
    let width = 3 + rng.below(6) as u32;
    let arity = 1 + rng.below(3) as usize;
    let n_stmts = 1 + rng.below(4) as usize;
    let stmts = (0..n_stmts)
        .map(|i| {
            // A statement either assigns an expression or selects between
            // two arms on a comparison (exercising predicated selects).
            if rng.below(4) == 0 {
                let c0 = random_expr(&mut rng, arity, i, width, 1);
                let c1 = random_expr(&mut rng, arity, i, width, 1);
                let e0 = random_expr(&mut rng, arity, i, width, 1);
                let e1 = random_expr(&mut rng, arity, i, width, 1);
                format!("if ({c0} > {c1}) {{ t{i} = {e0}; }} else {{ t{i} = {e1}; }}")
            } else {
                format!("t{i} = {};", random_expr(&mut rng, arity, i, width, 2))
            }
        })
        .collect();
    let mask = (1u64 << width) - 1;
    let rows = (0..4 + rng.below(5))
        .map(|_| (0..arity).map(|_| rng.next() & mask).collect())
        .collect();
    KernelCase {
        width,
        arity,
        n_temps: n_stmts,
        stmts,
        rows,
    }
}

/// Compile at level 0 and max and cross-check; `Some(description)` on the
/// first divergence. A source both levels reject (e.g. a shrink broke a
/// temp reference) is not a divergence — but *disagreeing* on
/// compilability is.
fn check_kernel(case: &KernelCase) -> Option<String> {
    let src = case.source();
    let oracle = compile(&src, &CompileOptions::default());
    let optimized = compile(
        &src,
        &CompileOptions {
            opt_level: OPT_LEVEL_MAX,
            ..CompileOptions::default()
        },
    );
    let (k0, kmax) = match (oracle, optimized) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(_), Err(_)) => return None,
        (Ok(_), Err(e)) => {
            return Some(format!(
                "level {OPT_LEVEL_MAX} rejects what level 0 compiles: {e}"
            ))
        }
        (Err(e), Ok(_)) => {
            return Some(format!(
                "level 0 rejects what level {OPT_LEVEL_MAX} compiles: {e}"
            ))
        }
    };
    let rows: Vec<&[u64]> = case.rows.iter().map(|r| r.as_slice()).collect();
    let (got0, gotmax) = match (k0.run_rows(&rows), kmax.run_rows(&rows)) {
        (Ok(a), Ok(b)) => (a, b),
        (a, b) => return Some(format!("run disagreement: level 0 {a:?}, max {b:?}")),
    };
    for (i, row) in case.rows.iter().enumerate() {
        let want = k0.dfg.eval(row)[0];
        if got0[i] != want {
            return Some(format!(
                "level 0 disagrees with the DFG reference on row {i} {row:?}: {} != {want}",
                got0[i]
            ));
        }
        if gotmax[i] != want {
            return Some(format!(
                "level {OPT_LEVEL_MAX} disagrees with level 0 on row {i} {row:?}: {} != {want}",
                gotmax[i]
            ));
        }
    }
    None
}

/// Greedy delta-debugging over statements and rows, mirroring
/// [`minimize`] for instruction streams.
fn minimize_kernel(case: &mut KernelCase) {
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < case.stmts.len() {
            let removed = case.stmts.remove(i);
            if check_kernel(case).is_some() {
                shrunk = true;
            } else {
                case.stmts.insert(i, removed);
                i += 1;
            }
        }
        let mut i = 0;
        while i < case.rows.len() {
            let removed = case.rows.remove(i);
            if case.rows.is_empty() || check_kernel(case).is_none() {
                case.rows.insert(i, removed);
                i += 1;
            } else {
                shrunk = true;
            }
        }
        if !shrunk {
            break;
        }
    }
}

/// One similarity-query fuzz case: stored codes, a batch of read-only
/// top-k queries, and a (possibly inactive) fault configuration.
struct SimCase {
    loads: Vec<Load>,
    /// `(query, rows, k)` triples; queries are read-only so one machine
    /// build answers the whole batch.
    queries: Vec<(SearchKey, usize, usize)>,
    faults: FaultConfig,
}

fn generate_sim_case(case_seed: u64) -> SimCase {
    let mut rng = Rng(case_seed ^ 0x51AB_CA5E);
    let loads = (0..rng.below(96))
        .map(|_| {
            (
                rng.below(PES as u64) as usize,
                rng.below(ROWS as u64) as usize,
                rng.below(64) as usize,
                rng.flag(),
            )
        })
        .collect();
    let queries = (0..1 + rng.below(4))
        .map(|_| {
            let key = random_key(&mut rng, 64);
            let rows = 1 + rng.below(ROWS as u64) as usize;
            let k = [1usize, 2, 5, 40, 200][rng.below(5) as usize];
            (key, rows, k)
        })
        .collect();
    let mut faults = random_faults(&mut rng);
    // Queries never write, so endurance is irrelevant — and host loads on
    // a near-exhausted array would make the fixture about wear, not
    // distances.
    faults.model.endurance_limit = None;
    SimCase {
        loads,
        queries,
        faults,
    }
}

fn sim_config(case: &SimCase, mode: ExecMode) -> ArchConfig {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    cfg.faults = case.faults;
    cfg
}

/// Run the similarity engine matrix on `case`; `Some(description)` on the
/// first divergence from the scalar reference.
fn check_sim(case: &SimCase) -> Option<String> {
    let mut reference = ApMachine::new(sim_config(case, ExecMode::Sequential));
    for &(pe, row, col, v) in &case.loads {
        reference.pe_mut(pe).load_bit(row, col, v);
    }
    for mode in [ExecMode::Sequential, ExecMode::Parallel] {
        for chunk_pes in CHUNK_WIDTHS {
            let mut slab = SlabMachine::with_chunk_pes(sim_config(case, mode), chunk_pes);
            for &(pe, row, col, v) in &case.loads {
                slab.load_bit(pe, row, col, v);
            }
            for (qi, (query, rows, k)) in case.queries.iter().enumerate() {
                let want = reference.hamming_topk(query, *rows, *k);
                let got = slab.hamming_topk(query, *rows, *k);
                if want.hits != got.hits {
                    return Some(format!(
                        "query {qi} (rows {rows}, k {k}) hits diverged on slab \
                         ({mode:?}, {chunk_pes}-PE chunks):\n  reference: {:?}\n  slab:      {:?}",
                        want.hits, got.hits
                    ));
                }
                if want.stats != got.stats {
                    return Some(format!(
                        "query {qi} (rows {rows}, k {k}) stats diverged on slab \
                         ({mode:?}, {chunk_pes}-PE chunks)"
                    ));
                }
            }
        }
    }
    None
}

/// Greedy delta-debugging over loads and queries, mirroring [`minimize`].
fn minimize_sim(case: &mut SimCase) {
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < case.loads.len() {
            let removed = case.loads.remove(i);
            if check_sim(case).is_some() {
                shrunk = true;
            } else {
                case.loads.insert(i, removed);
                i += 1;
            }
        }
        let mut i = 0;
        while i < case.queries.len() {
            let removed = case.queries.remove(i);
            if check_sim(case).is_some() {
                shrunk = true;
            } else {
                case.queries.insert(i, removed);
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }
}

/// Run one similarity case end to end; `true` when a divergence was found
/// (already minimized and reported).
fn run_sim_case(case_seed: u64, iteration: u64) -> bool {
    let mut case = generate_sim_case(case_seed);
    if check_sim(&case).is_none() {
        return false;
    }
    minimize_sim(&mut case);
    let divergence =
        check_sim(&case).unwrap_or_else(|| "divergence vanished while shrinking".into());
    eprintln!("diff_fuzz: SIMILARITY DIVERGENCE at iteration {iteration} (case seed {case_seed})");
    eprintln!("diff_fuzz: re-run just this case with: diff_fuzz --sim-case {case_seed}");
    eprintln!("diff_fuzz: minimized repro:");
    eprintln!("  faults: {:?}", case.faults);
    eprintln!("  loads (pe, row, col, value): {:?}", case.loads);
    for (qi, (query, rows, k)) in case.queries.iter().enumerate() {
        eprintln!("  query {qi} (rows {rows}, k {k}): {query:?}");
    }
    eprintln!("diff_fuzz: {divergence}");
    true
}

/// Run one compiler-kernel case end to end; `true` when a divergence was
/// found (already minimized and reported).
fn run_kernel_case(case_seed: u64, iteration: u64) -> bool {
    let mut case = generate_kernel_case(case_seed);
    if check_kernel(&case).is_none() {
        return false;
    }
    minimize_kernel(&mut case);
    let divergence =
        check_kernel(&case).unwrap_or_else(|| "divergence vanished while shrinking".into());
    eprintln!("diff_fuzz: OPTIMIZER DIVERGENCE at iteration {iteration} (case seed {case_seed})");
    eprintln!("diff_fuzz: re-run just this case with: diff_fuzz --kernel-case {case_seed}");
    eprintln!("diff_fuzz: minimized kernel source:\n{}", case.source());
    eprintln!("diff_fuzz: rows: {:?}", case.rows);
    eprintln!("diff_fuzz: {divergence}");
    true
}

/// Run one case end to end; `true` when a divergence was found (already
/// minimized and reported).
fn run_case(case_seed: u64, iteration: u64) -> bool {
    let mut case = generate_case(case_seed);
    let Some(_) = check(&case) else {
        return false;
    };
    minimize(&mut case);
    let divergence = check(&case).unwrap_or_else(|| "divergence vanished while shrinking".into());
    report(case_seed, iteration, &case, &divergence);
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 0xD1FF_F027;
    let mut iters: u64 = 256;
    let mut single_case: Option<u64> = None;
    let mut single_kernel_case: Option<u64> = None;
    let mut single_sim_case: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => iters = 24,
            "--seed" | "--iters" | "--case" | "--kernel-case" | "--sim-case" => {
                let Some(v) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("diff_fuzz: {} needs an integer argument", args[i]);
                    std::process::exit(2);
                };
                match args[i].as_str() {
                    "--seed" => seed = v,
                    "--iters" => iters = v,
                    "--case" => single_case = Some(v),
                    "--kernel-case" => single_kernel_case = Some(v),
                    _ => single_sim_case = Some(v),
                }
                i += 1;
            }
            other => {
                eprintln!("diff_fuzz: unknown argument {other}");
                eprintln!(
                    "usage: diff_fuzz [--smoke] [--seed N] [--iters N] [--case N] \
                     [--kernel-case N] [--sim-case N]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(case_seed) = single_case {
        let failed = run_case(case_seed, 0);
        if !failed {
            println!("diff_fuzz: case {case_seed} is clean — all engines bit-identical");
        }
        std::process::exit(i32::from(failed));
    }
    if let Some(case_seed) = single_kernel_case {
        let failed = run_kernel_case(case_seed, 0);
        if !failed {
            println!("diff_fuzz: kernel case {case_seed} is clean — opt levels agree");
        }
        std::process::exit(i32::from(failed));
    }
    if let Some(case_seed) = single_sim_case {
        let failed = run_sim_case(case_seed, 0);
        if !failed {
            println!("diff_fuzz: similarity case {case_seed} is clean — engines bit-identical");
        }
        std::process::exit(i32::from(failed));
    }

    let mut derive = Rng(seed);
    let mut kernel_cases = 0u64;
    let mut sim_cases = 0u64;
    for iteration in 0..iters {
        let case_seed = derive.next();
        if run_case(case_seed, iteration) {
            std::process::exit(1);
        }
        // Every fourth iteration also fuzzes the compiler's optimizer:
        // opt level 0 vs max on a random kernel source.
        if iteration % 4 == 0 {
            kernel_cases += 1;
            if run_kernel_case(case_seed, iteration) {
                std::process::exit(1);
            }
        }
        // Every other iteration fuzzes the similarity API: random stored
        // codes and top-k queries, scalar vs slab over the engine matrix.
        if iteration % 2 == 0 {
            sim_cases += 1;
            if run_sim_case(case_seed, iteration) {
                std::process::exit(1);
            }
        }
    }
    println!(
        "diff_fuzz: {iters} cases clean — interpreter, trace, and slab engines bit-identical \
         (with and without faults); {kernel_cases} compiler kernels agree at opt levels 0 and \
         {OPT_LEVEL_MAX}; {sim_cases} similarity-query cases agree across engines"
    );
}
