//! Cross-engine / cross-shard equivalence and crash-restartability of the
//! sharded stencil driver.
//!
//! The equivalence chain: the scalar reference ≡ [`stencil_1d`] (ApMachine,
//! single chain) ≡ [`stencil_1d_sharded`] (SlabMachine shards) for every
//! shard count — so one shard ≡ N shards ≡ a different engine. On top of
//! that, the sharded driver is killed at every commit-protocol operation
//! and must resume from the last committed barrier into the bit-identical
//! end state — including when the resuming process picks a different chunk
//! width (migration).

use hyperap_ckpt::testing::{variants, CrashSink, KillPlan};
use hyperap_ckpt::{CkptError, MemSink, SinkError};
use hyperap_workloads::scaleout::{stencil_1d, stencil_1d_reference, stencil_1d_sharded};
use proptest::prelude::*;

const WIDTH: u8 = 8;

fn values_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..256, 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scalar reference ≡ ApMachine chain ≡ SlabMachine shards, for shard
    /// counts 1..=4 and both extreme chunk widths.
    #[test]
    fn stencil_agrees_across_engines_and_shard_counts(
        values in values_strategy(),
        shards in 1usize..5,
        chunk_pes in (0usize..2).prop_map(|i| [1usize, usize::MAX][i]),
    ) {
        let reference = stencil_1d_reference(&values);
        prop_assert_eq!(&stencil_1d(&values, WIDTH).outputs, &reference);

        let mut sink = MemSink::new();
        let run = stencil_1d_sharded(&values, WIDTH, shards, chunk_pes, &mut sink, None)
            .unwrap();
        prop_assert!(run.completed);
        prop_assert_eq!(run.shards_resumed, 0);
        prop_assert_eq!(&run.outputs, &reference);

        // A second invocation over the same sink resumes every shard from
        // its barrier and reproduces the outputs without recomputing.
        let rerun = stencil_1d_sharded(&values, WIDTH, shards, chunk_pes, &mut sink, None)
            .unwrap();
        prop_assert_eq!(rerun.shards_computed, 0);
        prop_assert_eq!(rerun.shards_resumed, run.shards_computed);
        prop_assert_eq!(&rerun.outputs, &reference);
    }
}

/// Every shard's manifest bytes under `prefix s<i>-`, name-ordered.
fn shard_manifests(sink: &MemSink) -> Vec<(String, Vec<u8>)> {
    sink.files()
        .iter()
        .filter(|(n, _)| n.contains("-m-"))
        .map(|(n, b)| (n.clone(), b.clone()))
        .collect()
}

/// Kill the sharded job at every commit-protocol operation; resuming over
/// the surviving image must finish the job with the same outputs and
/// bit-identical shard states (equal manifests ⇒ equal content-addressed
/// chunk hashes ⇒ equal machine state).
#[test]
fn killed_sharded_job_resumes_bit_identically_from_last_barrier() {
    let values: Vec<u64> = (0..7).map(|i| (i * 37 + 11) % 256).collect();
    let shards = 3;
    let reference = stencil_1d_reference(&values);

    // Uninterrupted witness.
    let mut witness = MemSink::new();
    let clean = stencil_1d_sharded(&values, WIDTH, shards, 1, &mut witness, None).unwrap();
    assert_eq!(clean.outputs, reference);
    let expected = shard_manifests(&witness);
    assert_eq!(expected.len(), shards);

    // Count the mutating ops of the whole job.
    let mut counter = CrashSink::new(&MemSink::new(), None);
    stencil_1d_sharded(&values, WIDTH, shards, 1, &mut counter, None).unwrap();
    let log = counter.op_log().to_vec();
    assert!(log.len() > 12, "expected several commits, got {log:?}");

    for (kill_op, &kind) in log.iter().enumerate() {
        for variant in 0..variants(kind) {
            let mut crash = CrashSink::new(
                &MemSink::new(),
                Some(KillPlan {
                    kill_op: kill_op as u64,
                    variant,
                }),
            );
            let died = stencil_1d_sharded(&values, WIDTH, shards, 1, &mut crash, None);
            assert!(
                matches!(died, Err(CkptError::Sink(SinkError::Killed))),
                "kill at op {kill_op} must surface, got {died:?}"
            );
            let mut image = crash.after_crash();
            let resumed = stencil_1d_sharded(&values, WIDTH, shards, 1, &mut image, None)
                .unwrap_or_else(|e| panic!("resume after kill at op {kill_op}: {e}"));
            assert!(resumed.completed);
            assert_eq!(
                resumed.outputs, reference,
                "outputs diverged after kill at op {kill_op} variant {variant}"
            );
            // Bit-identical shard states: same manifests, chunk for chunk.
            for (name, bytes) in &expected {
                assert_eq!(
                    image.get(name),
                    Some(bytes.as_slice()),
                    "shard manifest {name} diverged after kill at op {kill_op}"
                );
            }
        }
    }
}

/// `max_new_shards = 1` turns the driver into one-barrier-per-invocation:
/// each call resumes all prior shards and computes exactly one more.
#[test]
fn cooperative_barriers_advance_one_shard_per_invocation() {
    let values: Vec<u64> = (0..8).map(|i| (i * 53 + 7) % 256).collect();
    let shards = 4;
    let mut sink = MemSink::new();
    for round in 0..shards {
        let run = stencil_1d_sharded(&values, WIDTH, shards, 2, &mut sink, Some(1)).unwrap();
        assert_eq!(run.shards_resumed, round);
        if round + 1 < shards {
            assert!(!run.completed, "round {round} finished early");
            assert_eq!(run.shards_computed, 1);
        } else {
            assert!(run.completed);
            assert_eq!(run.outputs, stencil_1d_reference(&values));
        }
    }
}

/// A job started with single-PE chunks finishes under a host-width
/// chunking: every committed shard migrates through the lossless per-PE
/// conversion path on resume.
#[test]
fn shard_checkpoints_migrate_across_chunk_widths() {
    let values: Vec<u64> = (0..8).map(|i| (i * 91 + 3) % 256).collect();
    let shards = 3;
    let mut sink = MemSink::new();

    // Two barriers under chunk width 1, then a "new host" finishes with
    // the widest chunking (and vice-versa on a third pass).
    let first = stencil_1d_sharded(&values, WIDTH, shards, 1, &mut sink, Some(2)).unwrap();
    assert!(!first.completed);
    assert_eq!(first.shards_computed, 2);

    let second = stencil_1d_sharded(&values, WIDTH, shards, usize::MAX, &mut sink, None).unwrap();
    assert!(second.completed);
    assert_eq!(second.shards_resumed, 2);
    assert_eq!(second.shards_computed, 1);
    assert_eq!(second.outputs, stencil_1d_reference(&values));

    let third = stencil_1d_sharded(&values, WIDTH, shards, 2, &mut sink, None).unwrap();
    assert_eq!(third.shards_resumed, shards);
    assert_eq!(third.outputs, stencil_1d_reference(&values));
}

/// A shard checkpoint for the wrong geometry is a hard error, not a silent
/// recompute: the driver must refuse to mix jobs in one namespace.
#[test]
fn mismatched_job_in_the_same_sink_is_rejected() {
    let values: Vec<u64> = (0..6).map(|i| (i * 29 + 5) % 256).collect();
    let mut sink = MemSink::new();
    stencil_1d_sharded(&values, WIDTH, 2, 1, &mut sink, None).unwrap();
    // Same sink, different element split ⇒ different shard geometry.
    let err = stencil_1d_sharded(&values[..5], WIDTH, 2, 1, &mut sink, None);
    assert!(
        matches!(err, Err(CkptError::GeometryMismatch)),
        "got {err:?}"
    );
}
