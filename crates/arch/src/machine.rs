//! The event-stepped machine executing per-group instruction streams.

use crate::config::ArchConfig;
use crate::stats::RunStats;
use hyperap_core::machine::HyperPe;
use hyperap_isa::{Direction, Instruction};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::tags::TagVector;

/// Broadcast PE address (re-exported from the ISA): `ReadR`/`WriteR` with
/// the all-ones 17-bit address target every PE of the issuing group.
pub use hyperap_isa::lower::BROADCAST_ADDR;

/// A simulated Hyper-AP machine.
#[derive(Debug, Clone)]
pub struct ApMachine {
    config: ArchConfig,
    pes: Vec<HyperPe>,
    data_regs: Vec<TagVector>,
    /// Per-group controller state: current key and bank-enable mask.
    keys: Vec<SearchKey>,
    bank_masks: Vec<u8>,
    /// Controller data buffer (last `ReadR` result per group).
    pub data_buffers: Vec<TagVector>,
}

impl ApMachine {
    /// Build a machine with the given geometry; all cells zero.
    pub fn new(config: ArchConfig) -> Self {
        let n = config.total_pes();
        ApMachine {
            pes: (0..n).map(|_| HyperPe::new(config.rows, config.cols)).collect(),
            data_regs: vec![TagVector::zeros(config.rows); n],
            keys: vec![SearchKey::masked(config.cols); config.groups],
            bank_masks: vec![0xFF; config.groups],
            data_buffers: vec![TagVector::zeros(config.rows); config.groups],
            config,
        }
    }

    /// The machine geometry.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Read access to a PE.
    pub fn pe(&self, id: usize) -> &HyperPe {
        &self.pes[id]
    }

    /// Mutable access to a PE (host data-load path).
    pub fn pe_mut(&mut self, id: usize) -> &mut HyperPe {
        &mut self.pes[id]
    }

    /// A PE's data register.
    pub fn data_reg(&self, id: usize) -> &TagVector {
        &self.data_regs[id]
    }

    /// The PE ids belonging to `group` whose banks are enabled by the
    /// group's current bank mask.
    fn active_pes(&self, group: usize) -> Vec<usize> {
        let per_group = self.config.pes_per_group();
        let base = group * per_group;
        (base..base + per_group)
            .filter(|&pe| {
                let bank = self.config.bank_of(pe);
                bank >= 8 || self.bank_masks[group] >> bank & 1 == 1
            })
            .collect()
    }

    /// Run one instruction stream per group to completion (streams beyond
    /// [`ArchConfig::groups`] are ignored; missing streams idle).
    ///
    /// Returns cycle counts, SIMD-level operation counts, and reduction
    /// results. Timing is event-stepped: each group issues its next
    /// instruction when its previous one retires; `Wait` stalls implement
    /// compile-time synchronization (§IV-A12).
    pub fn run(&mut self, streams: &[Vec<Instruction>]) -> RunStats {
        let groups = self.config.groups;
        let mut stats = RunStats {
            group_cycles: vec![0; groups],
            group_ops: vec![OpCounts::default(); groups],
            count_results: vec![Vec::new(); groups],
            index_results: vec![Vec::new(); groups],
        };
        // Event-driven: always step the group whose local clock is
        // earliest, so `Wait`-based synchronization orders cross-group
        // interactions (MovR handoffs) exactly as the compile-time schedule
        // intends (§IV-A12).
        let mut pcs = vec![0usize; groups];
        let mut clocks = vec![0u64; groups];
        loop {
            let next = (0..groups)
                .filter(|&g| streams.get(g).is_some_and(|s| pcs[g] < s.len()))
                .min_by_key(|&g| (clocks[g], g));
            let Some(g) = next else { break };
            let inst = streams[g][pcs[g]].clone();
            pcs[g] += 1;
            clocks[g] += inst.cycles(&self.config.tech);
            self.execute(g, &inst, &mut stats);
        }
        stats.group_cycles = clocks;
        stats
    }

    fn execute(&mut self, group: usize, inst: &Instruction, stats: &mut RunStats) {
        let ops = &mut stats.group_ops[group];
        match inst {
            Instruction::SetKey { key } => {
                self.keys[group] = key.clone();
                ops.set_keys += 1;
            }
            Instruction::Search { acc, encode } => {
                let key = self.keys[group].clone();
                for pe in self.active_pes(group) {
                    self.pes[pe].search(&key, *acc);
                    if *encode {
                        self.pes[pe].latch_tags();
                    }
                }
                ops.searches += 1;
            }
            Instruction::Write { col, encode } => {
                let key = self.keys[group].clone();
                for pe in self.active_pes(group) {
                    if *encode {
                        self.pes[pe].write_encoded(*col as usize);
                    } else {
                        let value = key.bit(*col as usize);
                        if value.write_value().is_some() {
                            self.pes[pe].write(*col as usize, value);
                        }
                    }
                }
                if *encode {
                    ops.writes_encoded += 1;
                } else {
                    ops.writes_single += 1;
                }
            }
            Instruction::Count => {
                let mut results = Vec::new();
                for pe in self.active_pes(group) {
                    results.push((pe, self.pes[pe].count()));
                }
                stats.count_results[group].extend(results);
                stats.group_ops[group].counts += 1;
            }
            Instruction::Index => {
                let mut results = Vec::new();
                for pe in self.active_pes(group) {
                    results.push((pe, self.pes[pe].index()));
                }
                stats.index_results[group].extend(results);
                stats.group_ops[group].indexes += 1;
            }
            Instruction::MovR { dir } => {
                self.mov_r(group, *dir);
                ops.mov_rs += 1;
            }
            Instruction::ReadR { addr } => {
                let pe = (*addr as usize).min(self.pes.len() - 1);
                self.data_buffers[group] = self.data_regs[pe].clone();
            }
            Instruction::WriteR { addr, imm } => {
                let value = Self::reg_from_bytes(imm, self.config.rows);
                if *addr == BROADCAST_ADDR {
                    for pe in self.active_pes(group) {
                        self.data_regs[pe] = value.clone();
                    }
                } else {
                    let pe = (*addr as usize).min(self.pes.len() - 1);
                    self.data_regs[pe] = value;
                }
            }
            Instruction::SetTag => {
                for pe in self.active_pes(group) {
                    let reg = self.data_regs[pe].clone();
                    self.pes[pe].set_tags(reg);
                }
                ops.tag_ops += 1;
            }
            Instruction::ReadTag => {
                for pe in self.active_pes(group) {
                    self.data_regs[pe] = self.pes[pe].tags().clone();
                }
                ops.tag_ops += 1;
            }
            Instruction::Broadcast { group_mask } => {
                self.bank_masks[group] = *group_mask;
                ops.broadcasts += 1;
            }
            Instruction::Wait { cycles } => {
                ops.wait_cycles += *cycles as u64;
            }
        }
    }

    /// MovR: every active PE *pushes* its data register to the mesh
    /// neighbor in `dir` (the paper: "reads the value in the data register
    /// of one PE and stores it into the data register of its adjacent PE" —
    /// the destination may belong to another group, which is how
    /// cross-group handoffs work under Wait synchronization). Active PEs
    /// whose upstream neighbor is not pushing shift zeros in, like a
    /// hardware shift chain; snapshot semantics throughout.
    fn mov_r(&mut self, group: usize, dir: Direction) {
        let (h, w) = self.config.mesh_dims();
        let active = self.active_pes(group);
        let active_set: std::collections::HashSet<usize> = active.iter().copied().collect();
        let snapshot: Vec<(usize, TagVector)> = active
            .iter()
            .map(|&pe| (pe, self.data_regs[pe].clone()))
            .collect();
        // Active PEs with no pushing upstream receive zeros…
        for &pe in &active {
            let (r, c) = (pe / w, pe % w);
            let upstream = match dir {
                Direction::Up => (r + 1 < h).then(|| pe + w),
                Direction::Down => (r > 0).then(|| pe - w),
                Direction::Left => (c + 1 < w).then(|| pe + 1),
                Direction::Right => (c > 0).then(|| pe - 1),
            };
            if upstream.map(|u| !active_set.contains(&u)).unwrap_or(true) {
                self.data_regs[pe] = TagVector::zeros(self.config.rows);
            }
        }
        // …then pushes land (possibly into other groups' PEs).
        for (pe, value) in snapshot {
            let (r, c) = (pe / w, pe % w);
            let dest = match dir {
                Direction::Up => (r > 0).then(|| pe - w),
                Direction::Down => (r + 1 < h).then(|| pe + w),
                Direction::Left => (c > 0).then(|| pe - 1),
                Direction::Right => (c + 1 < w).then(|| pe + 1),
            };
            if let Some(d) = dest {
                if d < self.data_regs.len() {
                    self.data_regs[d] = value;
                }
            }
        }
    }

    fn reg_from_bytes(bytes: &[u8], rows: usize) -> TagVector {
        let mut t = TagVector::zeros(rows);
        for row in 0..rows {
            let byte = bytes.get(row / 8).copied().unwrap_or(0);
            if byte >> (row % 8) & 1 == 1 {
                t.set(row, true);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_tcam::bit::KeyBit;

    fn search_key(s: &str) -> Instruction {
        Instruction::SetKey {
            key: SearchKey::parse(s).unwrap(),
        }
    }

    #[test]
    fn simd_search_applies_to_all_pes_in_group() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        // Group 0 owns PEs 0..4; load bit 0 of row 2 in PEs 0 and 2.
        m.pe_mut(0).load_bit(2, 0, true);
        m.pe_mut(2).load_bit(2, 0, true);
        let stats = m.run(&[vec![
            search_key("1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::Count,
        ]]);
        let counts: Vec<usize> = stats.count_results[0].iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![1, 0, 1, 0]);
    }

    #[test]
    fn groups_run_independent_streams() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(0, 0, true); // group 0
        m.pe_mut(4).load_bit(0, 1, true); // group 1
        let g0 = vec![
            search_key("1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::Count,
        ];
        let g1 = vec![
            search_key("-1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::Count,
            Instruction::Wait { cycles: 50 },
        ];
        let stats = m.run(&[g0, g1]);
        assert_eq!(stats.count_results[0][0], (0, 1));
        assert_eq!(stats.count_results[1][0], (4, 1));
        // Wait extends group 1's makespan.
        assert!(stats.group_cycles[1] > stats.group_cycles[0]);
        assert_eq!(stats.makespan(), stats.group_cycles[1]);
    }

    #[test]
    fn write_uses_key_register_value() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(1).load_bit(5, 0, true);
        m.run(&[vec![
            search_key("1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::SetKey {
                key: SearchKey::masked(64).with_bit(3, KeyBit::One),
            },
            Instruction::Write { col: 3, encode: false },
        ]]);
        assert_eq!(m.pe(1).read_bit(5, 3), Some(true));
        assert_eq!(m.pe(1).read_bit(4, 3), Some(false));
        assert_eq!(m.pe(0).read_bit(5, 3), Some(false));
    }

    #[test]
    fn broadcast_gates_banks() {
        // tiny() has 1 bank per group, so disable it and verify no effect.
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(0, 0, true);
        let stats = m.run(&[vec![
            Instruction::Broadcast { group_mask: 0 }, // all banks off
            search_key("1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::Count,
        ]]);
        assert!(stats.count_results[0].is_empty(), "no active PEs");
    }

    #[test]
    fn movr_shifts_data_registers_right() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        // Put a pattern in PE 0's data register via WriteR, then MovR right.
        let stats = m.run(&[vec![
            Instruction::WriteR { addr: 0, imm: vec![0b101] },
            Instruction::MovR { dir: Direction::Right },
        ]]);
        assert_eq!(stats.group_ops[0].mov_rs, 1);
        assert!(m.data_reg(1).get(0));
        assert!(!m.data_reg(1).get(1));
        assert!(m.data_reg(1).get(2));
    }

    #[test]
    fn readtag_movr_settag_transfers_tags_between_pes() {
        // The §IV-B local-communication idiom: column -> tags -> data reg ->
        // neighbor -> tags.
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(7, 0, true);
        m.run(&[vec![
            search_key("1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::ReadTag,
            Instruction::MovR { dir: Direction::Right },
            Instruction::SetTag,
            Instruction::SetKey {
                key: SearchKey::masked(64).with_bit(1, KeyBit::One),
            },
            Instruction::Write { col: 1, encode: false },
        ]]);
        assert_eq!(m.pe(1).read_bit(7, 1), Some(true), "transferred to PE 1");
        assert_eq!(m.pe(1).read_bit(6, 1), Some(false));
    }

    #[test]
    fn broadcast_writer_loads_all_data_registers() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.run(&[vec![
            Instruction::WriteR { addr: BROADCAST_ADDR, imm: vec![0xFF; 64] },
            Instruction::SetTag,
            Instruction::Count,
        ]]);
        // All group-0 PEs count all rows tagged.
        let mut mm = ApMachine::new(ArchConfig::tiny());
        let stats = mm.run(&[vec![
            Instruction::WriteR { addr: BROADCAST_ADDR, imm: vec![0xFF; 64] },
            Instruction::SetTag,
            Instruction::Count,
        ]]);
        for &(_, c) in &stats.count_results[0] {
            assert_eq!(c, 16);
        }
    }

    #[test]
    fn cycle_accounting_is_deterministic() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        let stream = vec![
            search_key("1"),
            Instruction::Search { acc: false, encode: false },
            Instruction::SetKey {
                key: SearchKey::masked(64).with_bit(2, KeyBit::One),
            },
            Instruction::Write { col: 2, encode: false },
        ];
        let stats = m.run(&[stream]);
        // 1 + 1 + 1 + 12 = 15 cycles.
        assert_eq!(stats.group_cycles[0], 15);
    }
}
