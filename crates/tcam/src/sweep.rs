//! Shared fused-sweep primitives for the TCAM kernels.
//!
//! Both storage backends — the per-PE [`crate::array::TcamArray`] and the
//! multi-PE [`crate::slab::TcamSlab`] arena — execute fused
//! search→write micro-ops as a handful of vectorizable word passes over a
//! window of 64-row blocks. The pass structure lives here, generic over a
//! *column resolver* closure that maps a column index to that backend's
//! `(zero, one)` bit-line slices for the current window:
//!
//! * [`plan_and_into`] — evaluate one search plan as an AND chain directly
//!   in the destination (`dst = match(plan) [& mask]`), consuming plan
//!   entries **two per pass** with the bit-kind dispatch hoisted out of
//!   the word loop.
//! * [`plan_or_into`] — OR a plan's match into already-valid tags
//!   (`dst |= match(plan) [& mask]`). Plans of up to two entries fold the
//!   OR into the narrowing pass itself; longer plans AND their leading
//!   entries in a scratch window and fold the final entry, the row mask,
//!   and the OR into one closing pass.
//!
//! `mask` is the live-lane mask for windows with dead bits — partial row
//! tail blocks in the per-PE array layout, partial PE tail words in the
//! slab's bit-plane layout. Callers pass `None` when every bit of the
//! window is live, which removes the mask load from every pass.

use crate::bit::KeyBit;

/// How a fused word pass combines its computed match words into `dst`.
#[derive(Clone, Copy)]
pub(crate) enum FillMode {
    /// `dst = f(i) [& mask]` — first pass of an AND chain.
    Init,
    /// `dst &= f(i)` — continuing an AND chain (mask already applied).
    And,
    /// `dst |= f(i) [& mask]` — OR-accumulate a finished match into tags.
    Or,
}

/// One vectorizable word loop: combine `f(i)` into `dst` per `mode`,
/// masking fresh contributions by `mask` when a partial tail block makes
/// some row bits dead. Monomorphizes per call site, so every `(shape,
/// mode)` pair compiles to a branch-free SIMD loop.
#[inline(always)]
fn fill_words(dst: &mut [u64], mode: FillMode, mask: Option<&[u64]>, f: impl Fn(usize) -> u64) {
    let n = dst.len();
    match (mode, mask) {
        (FillMode::Init, None) => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d = f(i);
            }
        }
        (FillMode::Init, Some(m)) => {
            let m = &m[..n];
            for (i, d) in dst.iter_mut().enumerate() {
                *d = f(i) & m[i];
            }
        }
        (FillMode::And, _) => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d &= f(i);
            }
        }
        (FillMode::Or, None) => {
            for (i, d) in dst.iter_mut().enumerate() {
                *d |= f(i);
            }
        }
        (FillMode::Or, Some(m)) => {
            let m = &m[..n];
            for (i, d) in dst.iter_mut().enumerate() {
                *d |= f(i) & m[i];
            }
        }
    }
}

/// Match words of a single plan entry, dispatched once per pass (never
/// per word): a cell matches unless the opposing bit-line is programmed.
#[inline(always)]
fn fill_entry(
    dst: &mut [u64],
    mode: FillMode,
    mask: Option<&[u64]>,
    bit: KeyBit,
    z: &[u64],
    o: &[u64],
) {
    let n = dst.len();
    let (z, o) = (&z[..n], &o[..n]);
    match bit {
        KeyBit::Zero => fill_words(dst, mode, mask, |i| !o[i]),
        KeyBit::One => fill_words(dst, mode, mask, |i| !z[i]),
        KeyBit::Z => fill_words(dst, mode, mask, |i| !(z[i] | o[i])),
        KeyBit::Masked => unreachable!("masked entries are filtered out"),
    }
}

/// Match words of two plan entries ANDed in one pass — the workhorse of
/// the fused kernels: a two-entry plan narrows (or OR-accumulates) in a
/// single sweep instead of init + narrow (+ OR).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fill_entry_pair(
    dst: &mut [u64],
    mode: FillMode,
    mask: Option<&[u64]>,
    b1: KeyBit,
    z1: &[u64],
    o1: &[u64],
    b2: KeyBit,
    z2: &[u64],
    o2: &[u64],
) {
    let n = dst.len();
    let (z1, o1, z2, o2) = (&z1[..n], &o1[..n], &z2[..n], &o2[..n]);
    use KeyBit::{One, Zero, Z};
    match (b1, b2) {
        (Zero, Zero) => fill_words(dst, mode, mask, |i| !o1[i] & !o2[i]),
        (Zero, One) => fill_words(dst, mode, mask, |i| !o1[i] & !z2[i]),
        (Zero, Z) => fill_words(dst, mode, mask, |i| !o1[i] & !(z2[i] | o2[i])),
        (One, Zero) => fill_words(dst, mode, mask, |i| !z1[i] & !o2[i]),
        (One, One) => fill_words(dst, mode, mask, |i| !z1[i] & !z2[i]),
        (One, Z) => fill_words(dst, mode, mask, |i| !z1[i] & !(z2[i] | o2[i])),
        (Z, Zero) => fill_words(dst, mode, mask, |i| !(z1[i] | o1[i]) & !o2[i]),
        (Z, One) => fill_words(dst, mode, mask, |i| !(z1[i] | o1[i]) & !z2[i]),
        (Z, Z) => fill_words(dst, mode, mask, |i| !(z1[i] | o1[i]) & !(z2[i] | o2[i])),
        (KeyBit::Masked, _) | (_, KeyBit::Masked) => {
            unreachable!("masked entries are filtered out")
        }
    }
}

/// Evaluate one plan's match as an AND chain directly in `dst`
/// (`dst = match(plan) [& mask]`), consuming entries two per pass. An
/// empty (or fully masked) plan matches every live row. `col` resolves a
/// column index to its `(zero, one)` bit-line slices for the window;
/// entries with out-of-range columns (≥ `ncols`) or masked bits are
/// skipped.
#[inline]
pub(crate) fn plan_and_into<'a>(
    dst: &mut [u64],
    plan: &[(usize, KeyBit)],
    ncols: usize,
    col: &impl Fn(usize) -> (&'a [u64], &'a [u64]),
    mask: Option<&[u64]>,
) {
    let n = dst.len();
    let mut it = plan
        .iter()
        .filter(|&&(c, b)| c < ncols && b != KeyBit::Masked)
        .copied();
    let mut first = true;
    while let Some((c1, b1)) = it.next() {
        let (z1, o1) = col(c1);
        let (mode, m) = if first {
            (FillMode::Init, mask)
        } else {
            (FillMode::And, None)
        };
        match it.next() {
            Some((c2, b2)) => {
                let (z2, o2) = col(c2);
                fill_entry_pair(dst, mode, m, b1, z1, o1, b2, z2, o2);
            }
            None => fill_entry(dst, mode, m, b1, z1, o1),
        }
        first = false;
    }
    if first {
        match mask {
            Some(m) => dst.copy_from_slice(&m[..n]),
            None => dst.fill(!0),
        }
    }
}

/// Narrow `dst` in place by one plan's entries (`dst &= match(plan)`), two
/// per pass, with no initialization and no mask — the incremental
/// (`SearchDelta`) form of [`plan_and_into`]: sound when `dst` already
/// holds a valid match whose dead lanes are zero, since narrowing only
/// clears bits. Out-of-range or masked entries are skipped; an empty plan
/// leaves `dst` untouched.
#[inline]
pub(crate) fn plan_narrow<'a>(
    dst: &mut [u64],
    plan: &[(usize, KeyBit)],
    ncols: usize,
    col: &impl Fn(usize) -> (&'a [u64], &'a [u64]),
) {
    let mut it = plan
        .iter()
        .filter(|&&(c, b)| c < ncols && b != KeyBit::Masked)
        .copied();
    while let Some((c1, b1)) = it.next() {
        let (z1, o1) = col(c1);
        match it.next() {
            Some((c2, b2)) => {
                let (z2, o2) = col(c2);
                fill_entry_pair(dst, FillMode::And, None, b1, z1, o1, b2, z2, o2);
            }
            None => fill_entry(dst, FillMode::And, None, b1, z1, o1),
        }
    }
}

/// Force a column's bit-lines to agree with its backing device's stuck
/// masks: stuck-at-0 cells read `0` (`is_zero` set), stuck-at-1 cells read
/// `1` (`is_one` set), whatever was last written. One pass over the
/// window, shared by both storage backends; idempotent, so fused kernels
/// may run it once per written column at kernel end.
#[inline]
pub(crate) fn enforce_stuck(zero: &mut [u64], one: &mut [u64], s0: &[u64], s1: &[u64]) {
    let n = zero.len();
    let (s0, s1) = (&s0[..n], &s1[..n]);
    for i in 0..n {
        let s = s0[i] | s1[i];
        zero[i] = (zero[i] & !s) | s0[i];
        one[i] = (one[i] & !s) | s1[i];
    }
}

/// OR one plan's match into `dst` (`dst |= match(plan) [& mask]`). Plans
/// of up to two entries fold the OR into the narrowing pass itself; longer
/// plans AND all but the last entry in `scratch` and fold the final entry
/// plus the OR into one closing pass.
#[inline]
pub(crate) fn plan_or_into<'a>(
    dst: &mut [u64],
    scratch: &mut [u64],
    plan: &[(usize, KeyBit)],
    ncols: usize,
    col: &impl Fn(usize) -> (&'a [u64], &'a [u64]),
    mask: Option<&[u64]>,
) {
    let n = dst.len();
    let live = |&&(c, b): &&(usize, KeyBit)| c < ncols && b != KeyBit::Masked;
    let count = plan.iter().filter(live).count();
    let mut it = plan.iter().filter(live).copied();
    match count {
        0 => match mask {
            Some(m) => {
                for (d, m) in dst.iter_mut().zip(&m[..n]) {
                    *d |= m;
                }
            }
            None => dst.fill(!0),
        },
        1 => {
            let (c1, b1) = it.next().expect("count == 1");
            let (z1, o1) = col(c1);
            fill_entry(dst, FillMode::Or, mask, b1, z1, o1);
        }
        2 => {
            let (c1, b1) = it.next().expect("count == 2");
            let (c2, b2) = it.next().expect("count == 2");
            let (z1, o1) = col(c1);
            let (z2, o2) = col(c2);
            fill_entry_pair(dst, FillMode::Or, mask, b1, z1, o1, b2, z2, o2);
        }
        _ => {
            // AND the leading entries in scratch, then fold the last entry,
            // the row mask, and the OR into a single closing pass.
            let mut remaining = count - 1;
            let mut first = true;
            while remaining > 0 {
                let (c1, b1) = it.next().expect("lead entries remain");
                let (z1, o1) = col(c1);
                let mode = if first { FillMode::Init } else { FillMode::And };
                if remaining >= 2 {
                    let (c2, b2) = it.next().expect("lead entries remain");
                    let (z2, o2) = col(c2);
                    fill_entry_pair(scratch, mode, None, b1, z1, o1, b2, z2, o2);
                    remaining -= 2;
                } else {
                    fill_entry(scratch, mode, None, b1, z1, o1);
                    remaining -= 1;
                }
                first = false;
            }
            let (cl, bl) = it.next().expect("count - 1 entries consumed");
            let (z, o) = col(cl);
            let (z, o) = (&z[..n], &o[..n]);
            let s = &scratch[..n];
            match bl {
                KeyBit::Zero => fill_words(dst, FillMode::Or, mask, |i| s[i] & !o[i]),
                KeyBit::One => fill_words(dst, FillMode::Or, mask, |i| s[i] & !z[i]),
                KeyBit::Z => fill_words(dst, FillMode::Or, mask, |i| s[i] & !(z[i] | o[i])),
                KeyBit::Masked => unreachable!("masked entries are filtered out"),
            }
        }
    }
}
