//! Execution statistics: cycles, energy, and reduction results.

use hyperap_model::tech::TechParams;
use hyperap_model::timing::OpCounts;
use serde::{Deserialize, Serialize};

/// Degradation report for one PE that has retired columns onto spares.
///
/// Emitted by the end-of-run endurance service (see
/// `ArchConfig::faults`); PEs with an empty retirement log are omitted
/// from [`RunStats::pe_health`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeHealth {
    /// Global PE id.
    pub pe: usize,
    /// Retirement log in order: `(logical column, spare device id)`.
    pub retired: Vec<(u16, u16)>,
    /// Spare columns this PE still has available.
    pub spares_left: u16,
}

/// Results of one [`crate::ApMachine::run`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Cycle at which each group finished its stream.
    pub group_cycles: Vec<u64>,
    /// Per-group operation counts (aggregated over the group's PEs; one
    /// SIMD instruction counts once, as in the paper's analytical model).
    pub group_ops: Vec<OpCounts>,
    /// `Count` results per group: `(pe_id, count)` pairs in program order.
    pub count_results: Vec<Vec<(usize, usize)>>,
    /// `Index` results per group: `(pe_id, first_index)` pairs.
    pub index_results: Vec<Vec<(usize, Option<usize>)>>,
    /// Per-PE fault degradation, ascending by PE id; empty when no fault
    /// model is active or no PE has retired a column yet.
    pub pe_health: Vec<PeHealth>,
}

impl RunStats {
    /// Machine makespan: the cycle at which the last group finished.
    pub fn makespan(&self) -> u64 {
        self.group_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Makespan in nanoseconds.
    pub fn makespan_ns(&self, tech: &TechParams) -> f64 {
        self.makespan() as f64 * tech.clock_period_ns()
    }

    /// Total dynamic energy in picojoules for `active_pes` PEs per group
    /// (every PE in a group executes each SIMD instruction).
    pub fn energy_pj(&self, tech: &TechParams, active_pes: usize) -> f64 {
        self.group_ops
            .iter()
            .map(|ops| ops.energy_pj_per_pe(tech) * active_pes as f64)
            .sum()
    }
}
