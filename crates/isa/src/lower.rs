//! Lowering the portable associative-operation IR ([`hyperap_core`]'s
//! [`ApOp`]) to Hyper-AP instruction streams, plus stream-level cycle/energy
//! accounting.
//!
//! Lowering rules:
//!
//! * `Search` → `SetKey` + `Search` (the key register must hold the key);
//!   consecutive searches with an identical key skip the redundant `SetKey`.
//! * `Write { col, value }` → `SetKey` (value bit at `col`) + `Write` — the
//!   write drivers take the value from the key register (§IV-B).
//! * `Latch` → folds into the preceding `Search` as its `<encode>` flag, or
//!   becomes a zero-cost re-search marker when standalone.
//! * `TagAll`/`TagNone` → `WriteR`(all-ones/zeros into the data register) +
//!   `SetTag`.
//! * `Count`/`Index` map 1:1.

use crate::instruction::Instruction;

/// Broadcast PE address: `WriteR` with the all-ones 17-bit address targets
/// every PE of the issuing group (the hierarchical machine honors it).
pub const BROADCAST_ADDR: u32 = 0x1FFFF;
use hyperap_core::program::{ApOp, Program};
use hyperap_model::tech::TechParams;
use hyperap_model::timing::OpCounts;
use hyperap_tcam::key::SearchKey;

/// Lower an IR program to an instruction stream.
pub fn lower(program: &Program) -> Vec<Instruction> {
    let mut out: Vec<Instruction> = Vec::with_capacity(program.len() * 2);
    let mut current_key: Option<SearchKey> = None;
    let set_key = |out: &mut Vec<Instruction>, key: &SearchKey, current: &mut Option<SearchKey>| {
        if current.as_ref() != Some(key) {
            out.push(Instruction::SetKey { key: key.clone() });
            *current = Some(key.clone());
        }
    };
    let ops = program.ops();
    let mut i = 0;
    while i < ops.len() {
        match &ops[i] {
            ApOp::Search { key, accumulate } => {
                set_key(&mut out, key, &mut current_key);
                // Fold a following Latch into the <encode> flag.
                let encode = matches!(ops.get(i + 1), Some(ApOp::Latch));
                out.push(Instruction::Search {
                    acc: *accumulate,
                    encode,
                });
                if encode {
                    i += 1; // consume the Latch
                }
            }
            ApOp::Latch => {
                // Standalone latch: re-issue the search with <encode> set is
                // not possible without the key; model as a Search with a
                // fully-masked key would change tags. The machine latches
                // for free, so emit nothing (the encoder DFF shadows the
                // sense amplifiers continuously, Fig 7).
            }
            ApOp::Write { col, value } => {
                let key = SearchKey::masked(crate::instruction::KEY_COLUMNS).with_bit(*col, *value);
                set_key(&mut out, &key, &mut current_key);
                out.push(Instruction::Write {
                    col: *col as u8,
                    encode: false,
                });
            }
            ApOp::WriteEncoded { col } => {
                out.push(Instruction::Write {
                    col: *col as u8,
                    encode: true,
                });
            }
            ApOp::TagAll => {
                // Broadcast to every PE of the group: all PEs execute the
                // SIMD SetTag that follows.
                out.push(Instruction::WriteR {
                    addr: BROADCAST_ADDR,
                    imm: vec![0xFF; 64],
                });
                out.push(Instruction::SetTag);
            }
            ApOp::TagNone => {
                out.push(Instruction::WriteR {
                    addr: BROADCAST_ADDR,
                    imm: vec![0; 64],
                });
                out.push(Instruction::SetTag);
            }
            ApOp::Count => out.push(Instruction::Count),
            ApOp::Index => out.push(Instruction::Index),
        }
        i += 1;
    }
    out
}

/// Total cycles of an instruction stream under a technology.
pub fn stream_cycles(stream: &[Instruction], tech: &TechParams) -> u64 {
    stream.iter().map(|i| i.cycles(tech)).sum()
}

/// Classify an instruction stream into the model-level operation counts
/// (used to cross-check analytical accounting against lowered code).
pub fn stream_op_counts(stream: &[Instruction]) -> OpCounts {
    let mut c = OpCounts::default();
    for inst in stream {
        match inst {
            Instruction::Search { .. } => c.searches += 1,
            Instruction::Write { encode: false, .. } => c.writes_single += 1,
            Instruction::Write { encode: true, .. } => c.writes_encoded += 1,
            Instruction::SetKey { .. } => c.set_keys += 1,
            Instruction::Count => c.counts += 1,
            Instruction::Index => c.indexes += 1,
            Instruction::MovR { .. } => c.mov_rs += 1,
            Instruction::ReadR { .. } | Instruction::WriteR { .. } => {}
            Instruction::SetTag | Instruction::ReadTag => c.tag_ops += 1,
            Instruction::Broadcast { .. } => c.broadcasts += 1,
            Instruction::Wait { cycles } => c.wait_cycles += *cycles as u64,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_tcam::bit::KeyBit;

    #[test]
    fn search_lowering_emits_setkey_then_search() {
        let mut p = Program::new();
        p.search(SearchKey::parse("1-0").unwrap(), false);
        let stream = lower(&p);
        assert!(matches!(stream[0], Instruction::SetKey { .. }));
        assert!(matches!(
            stream[1],
            Instruction::Search {
                acc: false,
                encode: false
            }
        ));
    }

    #[test]
    fn repeated_key_skips_setkey() {
        let mut p = Program::new();
        let key = SearchKey::parse("1Z").unwrap();
        p.search(key.clone(), false);
        p.search(key, true);
        let stream = lower(&p);
        let setkeys = stream
            .iter()
            .filter(|i| matches!(i, Instruction::SetKey { .. }))
            .count();
        assert_eq!(setkeys, 1);
    }

    #[test]
    fn latch_folds_into_search_encode_flag() {
        let mut p = Program::new();
        p.search(SearchKey::parse("1").unwrap(), false);
        p.push(ApOp::Latch);
        p.push(ApOp::WriteEncoded { col: 2 });
        let stream = lower(&p);
        assert!(stream
            .iter()
            .any(|i| matches!(i, Instruction::Search { encode: true, .. })));
        assert!(stream
            .iter()
            .any(|i| matches!(i, Instruction::Write { encode: true, .. })));
    }

    #[test]
    fn write_emits_value_setkey() {
        let mut p = Program::new();
        p.write(5, KeyBit::One);
        let stream = lower(&p);
        assert_eq!(stream.len(), 2);
        let Instruction::SetKey { key } = &stream[0] else {
            panic!("expected SetKey");
        };
        assert_eq!(key.bit(5), KeyBit::One);
        assert_eq!(key.active_count(), 1);
    }

    #[test]
    fn stream_cycles_match_table1() {
        let mut p = Program::new();
        p.search(SearchKey::parse("1").unwrap(), false);
        p.write(0, KeyBit::One);
        let stream = lower(&p);
        // SetKey(1) + Search(1) + SetKey(1) + Write(12) = 15.
        assert_eq!(stream_cycles(&stream, &TechParams::rram()), 15);
    }

    #[test]
    fn lowered_counts_match_ir_counts_for_searches_and_writes() {
        let mut p = Program::new();
        p.search(SearchKey::parse("10").unwrap(), false);
        p.search(SearchKey::parse("01").unwrap(), true);
        p.write(3, KeyBit::One);
        p.push(ApOp::WriteEncoded { col: 4 });
        p.push(ApOp::Count);
        let ir = p.op_counts();
        let lowered = stream_op_counts(&lower(&p));
        assert_eq!(lowered.searches, ir.searches);
        assert_eq!(lowered.writes_single, ir.writes_single);
        assert_eq!(lowered.writes_encoded, ir.writes_encoded);
        assert_eq!(lowered.counts, ir.counts);
    }

    #[test]
    fn tag_ops_lower_to_writer_settag() {
        let mut p = Program::new();
        p.push(ApOp::TagAll);
        let stream = lower(&p);
        assert!(matches!(stream[0], Instruction::WriteR { .. }));
        assert!(matches!(stream[1], Instruction::SetTag));
    }
}
