//! Slab-backed TCAM storage: one contiguous arena for a whole chunk of PEs.
//!
//! [`crate::array::TcamArray`] keeps each column's `is_zero`/`is_one`
//! row-blocks in their own `Vec<u64>`, so a machine of 1024 PEs × 256
//! columns owns ~half a million tiny heap allocations and a search-plan
//! column step pays a pointer chase per column per PE. Real CAM
//! accelerators are banked arrays swept in lockstep; [`TcamSlab`] gives the
//! simulator the same structure-of-arrays shape:
//!
//! * Cell state lives in two flat arenas indexed `[col][pe][block]` — a
//!   given column's blocks for **all** PEs of the chunk are adjacent, so
//!   one search-plan column step is a single linear sweep over one
//!   contiguous slice covering the whole chunk.
//! * Tags (and the encoder latch, sense scratch, data registers of higher
//!   layers) live in a matching [`TagSlab`] bitset indexed `[pe][block]` —
//!   exactly the layout of one column's slice, so search output lands with
//!   a straight `zip` and no per-PE dispatch.
//! * Wear is a flat `[col][pe]` table, so the per-column write pulse
//!   accounting of a multi-PE write is one contiguous increment sweep.
//!
//! The fused kernels ([`TcamSlab::search_plan_multi_into`],
//! [`write_column_multi`](TcamSlab::write_column_multi),
//! [`copy_column_multi`](TcamSlab::copy_column_multi),
//! [`write_encoded_multi`](TcamSlab::write_encoded_multi), and the
//! single-sweep search→write kernels
//! [`search_write_multi`](TcamSlab::search_write_multi) /
//! [`search_narrow_multi`](TcamSlab::search_narrow_multi) behind the trace
//! peephole's fused micro-ops) are bit-identical
//! to looping the corresponding [`TcamArray`] kernel over per-PE objects
//! (property-tested in `tests/slab_equivalence.rs`), and
//! [`from_arrays`](TcamSlab::from_arrays) / [`to_arrays`](TcamSlab::to_arrays)
//! convert losslessly in both directions, wear included.

use crate::array::TcamArray;
use crate::bit::{KeyBit, TernaryBit};
use crate::fault::{FaultError, FaultModel, FaultState, SlabFaultState};
use crate::sweep;
use crate::tags::TagVector;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// A contiguous multi-PE tag bitset: the slab counterpart of one
/// [`TagVector`] per PE.
///
/// Blocks are laid out `[pe][block]`, matching the per-column slices of
/// [`TcamSlab`], so slab search kernels write straight into a PE range of
/// this arena. Bits at row positions `>= rows` in a PE's last block are
/// always zero (same invariant as [`TagVector`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSlab {
    pes: usize,
    rows: usize,
    /// 64-row blocks per PE.
    bpp: usize,
    blocks: Vec<u64>,
}

impl TagSlab {
    /// All-clear tags for `pes` PEs of `rows` rows each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(pes: usize, rows: usize) -> Self {
        assert!(pes > 0 && rows > 0, "tag slab dimensions must be non-zero");
        let bpp = rows.div_ceil(64);
        TagSlab {
            pes,
            rows,
            bpp,
            blocks: vec![0; pes * bpp],
        }
    }

    /// Number of PEs in the slab.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Rows per PE.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// 64-row blocks per PE.
    pub fn blocks_per_pe(&self) -> usize {
        self.bpp
    }

    /// One PE's blocks.
    pub fn pe(&self, pe: usize) -> &[u64] {
        &self.blocks[pe * self.bpp..(pe + 1) * self.bpp]
    }

    /// One PE's blocks, mutable. Padding bits must be left zero.
    pub fn pe_mut(&mut self, pe: usize) -> &mut [u64] {
        &mut self.blocks[pe * self.bpp..(pe + 1) * self.bpp]
    }

    /// The contiguous blocks of PEs `lo..hi`.
    pub fn range(&self, lo: usize, hi: usize) -> &[u64] {
        &self.blocks[lo * self.bpp..hi * self.bpp]
    }

    /// Mutable blocks of PEs `lo..hi`. Padding bits must be left zero.
    pub fn range_mut(&mut self, lo: usize, hi: usize) -> &mut [u64] {
        &mut self.blocks[lo * self.bpp..hi * self.bpp]
    }

    /// Multi-PE accumulate: OR `other`'s blocks for PEs `lo..hi` into this
    /// slab (the accumulation unit of every PE in the range, fused into one
    /// linear sweep).
    ///
    /// # Panics
    ///
    /// Panics if the slabs' geometries differ.
    pub fn accumulate_range_from(&mut self, other: &TagSlab, lo: usize, hi: usize) {
        assert_eq!(
            (self.pes, self.rows),
            (other.pes, other.rows),
            "tag slab geometry mismatch"
        );
        for (a, b) in self.range_mut(lo, hi).iter_mut().zip(other.range(lo, hi)) {
            *a |= b;
        }
    }

    /// Multi-PE latch/copy: overwrite this slab's blocks for PEs `lo..hi`
    /// with `other`'s (one `memcpy` for the whole range).
    ///
    /// # Panics
    ///
    /// Panics if the slabs' geometries differ.
    pub fn copy_range_from(&mut self, other: &TagSlab, lo: usize, hi: usize) {
        assert_eq!(
            (self.pes, self.rows),
            (other.pes, other.rows),
            "tag slab geometry mismatch"
        );
        self.range_mut(lo, hi).copy_from_slice(other.range(lo, hi));
    }

    /// Population count of one PE's tags (the `Count` reduction).
    pub fn count(&self, pe: usize) -> usize {
        self.pe(pe).iter().map(|b| b.count_ones() as usize).sum()
    }

    /// First tagged row of one PE (the `Index` priority encoder).
    pub fn first_index(&self, pe: usize) -> Option<usize> {
        for (i, b) in self.pe(pe).iter().enumerate() {
            if *b != 0 {
                return Some(i * 64 + b.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Copy one PE's tags out as a standalone [`TagVector`].
    pub fn to_tagvector(&self, pe: usize) -> TagVector {
        let mut t = TagVector::zeros(self.rows);
        t.blocks_mut().copy_from_slice(self.pe(pe));
        t
    }

    /// Overwrite one PE's tags from a [`TagVector`].
    ///
    /// # Panics
    ///
    /// Panics if the vector's length differs from the slab's row count.
    pub fn set_pe(&mut self, pe: usize, tags: &TagVector) {
        assert_eq!(tags.len(), self.rows, "tag length mismatch");
        self.pe_mut(pe).copy_from_slice(tags.blocks());
    }

    /// Version byte of the [`to_bytes`](Self::to_bytes) image format.
    pub const FORMAT_VERSION: u8 = 1;

    /// Serialize to a versioned byte image (header + blocks as big-endian
    /// words) — the [`TagSlab`] counterpart of [`TcamSlab::to_bytes`], so
    /// snapshots of an engine's tag/latch/register state round-trip the
    /// same way its cell state does.
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u16::MAX`.
    pub fn to_bytes(&self) -> Vec<u8> {
        for dim in [self.pes, self.rows] {
            assert!(dim <= u16::MAX as usize, "dimension exceeds image format");
        }
        let mut buf = BytesMut::with_capacity(5 + self.blocks.len() * 8);
        buf.put_u8(Self::FORMAT_VERSION);
        buf.put_u16(self.pes as u16);
        buf.put_u16(self.rows as u16);
        for w in &self.blocks {
            buf.put_slice(&w.to_be_bytes());
        }
        buf.to_vec()
    }

    /// Deserialize a [`to_bytes`](Self::to_bytes) image.
    ///
    /// # Errors
    ///
    /// Returns a [`SlabDecodeError`] on truncation, version or geometry
    /// problems, trailing bytes, or set bits in a PE's row padding (the
    /// always-zero invariant the kernels rely on).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SlabDecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 5 {
            return Err(SlabDecodeError::Truncated);
        }
        let version = buf.get_u8();
        if version != Self::FORMAT_VERSION {
            return Err(SlabDecodeError::BadVersion(version));
        }
        let pes = buf.get_u16() as usize;
        let rows = buf.get_u16() as usize;
        if pes == 0 || rows == 0 {
            return Err(SlabDecodeError::BadGeometry);
        }
        let bpp = rows.div_ceil(64);
        if buf.remaining() < pes * bpp * 8 {
            return Err(SlabDecodeError::Truncated);
        }
        let mut blocks = Vec::with_capacity(pes * bpp);
        let mut word = [0u8; 8];
        for _ in 0..pes * bpp {
            buf.copy_to_slice(&mut word);
            blocks.push(u64::from_be_bytes(word));
        }
        if buf.has_remaining() {
            return Err(SlabDecodeError::TrailingBytes(buf.remaining()));
        }
        let tail = rows % 64;
        if tail != 0 {
            let pad = !((1u64 << tail) - 1);
            for pe in 0..pes {
                if blocks[pe * bpp + bpp - 1] & pad != 0 {
                    return Err(SlabDecodeError::BadGeometry);
                }
            }
        }
        Ok(TagSlab {
            pes,
            rows,
            bpp,
            blocks,
        })
    }
}

/// Failure modes of [`TcamSlab::from_bytes`] and [`TagSlab::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlabDecodeError {
    /// The buffer is shorter than the header or the payload its header
    /// promises.
    Truncated,
    /// The version byte is not [`TcamSlab::FORMAT_VERSION`].
    BadVersion(u8),
    /// A header dimension is zero.
    BadGeometry,
    /// Bytes remain after the payload.
    TrailingBytes(usize),
}

impl std::fmt::Display for SlabDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlabDecodeError::Truncated => write!(f, "slab image truncated"),
            SlabDecodeError::BadVersion(v) => write!(f, "unknown slab format version {v}"),
            SlabDecodeError::BadGeometry => write!(f, "slab header has a zero dimension"),
            SlabDecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after slab image"),
        }
    }
}

impl std::error::Error for SlabDecodeError {}

/// One contiguous arena holding the `is_zero`/`is_one` row-blocks of every
/// PE in a chunk, laid out column-major-across-PEs (`[col][pe][block]`).
///
/// All cells initialize to `0`, matching [`TcamArray::new`]. See the
/// [module docs](self) for the layout rationale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcamSlab {
    pes: usize,
    rows: usize,
    cols: usize,
    /// 64-row blocks per PE.
    bpp: usize,
    /// Rows storing `0`, indexed `[col][pe][block]`.
    zeros: Vec<u64>,
    /// Rows storing `1`, indexed `[col][pe][block]`.
    ones: Vec<u64>,
    /// Valid-row mask, indexed `[pe][block]` (every PE's copy is identical;
    /// the replication keeps kernel sweeps a straight `zip` with any
    /// per-column slice).
    row_mask: Vec<u64>,
    /// Associative-write pulses, indexed `[col][pe]`.
    wear: Vec<u64>,
    /// Device-fault bookkeeping; `None` (the default) is the ideal slab and
    /// keeps every kernel on its zero-fault path.
    fault: Option<Box<SlabFaultState>>,
}

impl TcamSlab {
    /// Version byte of the [`to_bytes`](Self::to_bytes) image format
    /// without fault state (the original format, still decoded).
    pub const FORMAT_VERSION: u8 = 1;

    /// Version byte of the [`to_bytes`](Self::to_bytes) image format with
    /// a fault-bookkeeping payload appended.
    pub const FORMAT_VERSION_FAULT: u8 = 2;

    /// A slab of `pes` arrays of `rows` × `cols`, all cells `0`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(pes: usize, rows: usize, cols: usize) -> Self {
        assert!(
            pes > 0 && rows > 0 && cols > 0,
            "slab dimensions must be non-zero"
        );
        let bpp = rows.div_ceil(64);
        let mut pe_mask = vec![u64::MAX; bpp];
        let tail = rows % 64;
        if tail != 0 {
            pe_mask[bpp - 1] = (1u64 << tail) - 1;
        }
        let mut row_mask = Vec::with_capacity(pes * bpp);
        for _ in 0..pes {
            row_mask.extend_from_slice(&pe_mask);
        }
        let mut zeros = Vec::with_capacity(cols * pes * bpp);
        for _ in 0..cols {
            zeros.extend_from_slice(&row_mask);
        }
        TcamSlab {
            pes,
            rows,
            cols,
            bpp,
            ones: vec![0; cols * pes * bpp],
            zeros,
            row_mask,
            wear: vec![0; cols * pes],
            fault: None,
        }
    }

    /// Attach a device-fault model: slot `s` of this slab becomes global
    /// PE `pe0 + s`, each with `spares` spare column devices. Stuck bits of
    /// the initial devices are enforced on the storage immediately.
    pub fn attach_fault(&mut self, model: FaultModel, spares: usize, pe0: usize) {
        self.fault = Some(Box::new(SlabFaultState::new(
            model, pe0, spares, self.pes, self.rows, self.cols,
        )));
        for col in 0..self.cols {
            self.enforce_stuck_col_range(col, 0, self.pes);
        }
    }

    /// The fault bookkeeping, if a model is attached.
    pub fn fault(&self) -> Option<&SlabFaultState> {
        self.fault.as_deref()
    }

    /// Start a new run epoch across every PE (re-derives the transient
    /// search-miss sets). No-op without an attached fault model.
    pub fn advance_epoch(&mut self) {
        if let Some(f) = &mut self.fault {
            f.advance_epoch();
        }
    }

    /// End-of-run endurance service for every PE of the slab, slots in
    /// ascending order and columns in ascending order within a slot — the
    /// same global order [`TcamArray::service_endurance`] produces when
    /// driven per PE. Retirement resets the column's wear and enforces the
    /// spare device's stuck bits on the copied data.
    ///
    /// # Errors
    ///
    /// [`FaultError::SparesExhausted`] at the first column that cannot be
    /// retired (global PE index); the failure is latched for fail-fast.
    pub fn service_endurance(&mut self) -> Result<(), FaultError> {
        let Some(limit) = self.fault.as_ref().and_then(|f| f.model.endurance_limit) else {
            return Ok(());
        };
        for pe in 0..self.pes {
            for col in 0..self.cols {
                let w = self.wear[col * self.pes + pe];
                if w >= limit {
                    self.fault
                        .as_mut()
                        .expect("fault state present")
                        .retire(pe, col, w)?;
                    self.wear[col * self.pes + pe] = 0;
                    self.enforce_stuck_col_range(col, pe, pe + 1);
                }
            }
        }
        Ok(())
    }

    /// The `[pe][block]` mask searches initialize from: the row mask,
    /// minus this epoch's transient misses when a fault model is attached.
    fn search_base(&self) -> &[u64] {
        match &self.fault {
            Some(f) => &f.search_mask,
            None => &self.row_mask,
        }
    }

    /// Force column `col`'s storage over PEs `lo..hi` to agree with the
    /// backing devices' stuck bits. Idempotent; no-op without faults.
    fn enforce_stuck_col_range(&mut self, col: usize, lo: usize, hi: usize) {
        if let Some(f) = &self.fault {
            let (s0, s1) = f.stuck_range(col, lo, hi);
            let a = (col * self.pes + lo) * self.bpp;
            let b = (col * self.pes + hi) * self.bpp;
            sweep::enforce_stuck(&mut self.zeros[a..b], &mut self.ones[a..b], s0, s1);
        }
    }

    /// Number of PEs in the slab.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Rows per PE.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns per PE.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// 64-row blocks per PE.
    pub fn blocks_per_pe(&self) -> usize {
        self.bpp
    }

    /// Arena offset of `(col, pe)`'s first block.
    fn at(&self, col: usize, pe: usize) -> usize {
        (col * self.pes + pe) * self.bpp
    }

    /// Read one cell of one PE.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell(&self, pe: usize, row: usize, col: usize) -> TernaryBit {
        assert!(
            pe < self.pes && row < self.rows && col < self.cols,
            "cell out of range"
        );
        let (b, m) = (self.at(col, pe) + row / 64, 1u64 << (row % 64));
        if self.zeros[b] & m != 0 {
            TernaryBit::Zero
        } else if self.ones[b] & m != 0 {
            TernaryBit::One
        } else {
            TernaryBit::X
        }
    }

    /// Write one cell directly (host data-load path; no wear).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set_cell(&mut self, pe: usize, row: usize, col: usize, value: TernaryBit) {
        assert!(
            pe < self.pes && row < self.rows && col < self.cols,
            "cell out of range"
        );
        let (b, m) = (self.at(col, pe) + row / 64, 1u64 << (row % 64));
        self.zeros[b] &= !m;
        self.ones[b] &= !m;
        match value {
            TernaryBit::Zero => self.zeros[b] |= m,
            TernaryBit::One => self.ones[b] |= m,
            TernaryBit::X => {}
        }
        if let Some(f) = &self.fault {
            let (s0, s1) = f.stuck_range(col, pe, pe + 1);
            let (i, m) = (row / 64, 1u64 << (row % 64));
            if s0[i] & m != 0 {
                self.zeros[b] |= m;
                self.ones[b] &= !m;
            } else if s1[i] & m != 0 {
                self.ones[b] |= m;
                self.zeros[b] &= !m;
            }
        }
    }

    /// Fused search over PEs `lo..hi`: apply a precompiled `(column, bit)`
    /// plan to every PE of the range in one pass per column, narrowing
    /// `out` (layout `[pe][block]`, e.g. a [`TagSlab::range_mut`] slice).
    /// `out` is fully overwritten. Masked or out-of-range plan entries are
    /// skipped — identical semantics to [`TcamArray::search_plan_into`]
    /// per PE.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the range's block count.
    pub fn search_plan_multi_into(
        &self,
        plan: &[(usize, KeyBit)],
        lo: usize,
        hi: usize,
        out: &mut [u64],
    ) {
        let (a, b) = (lo * self.bpp, hi * self.bpp);
        assert_eq!(out.len(), b - a, "output/range block count mismatch");
        out.copy_from_slice(&self.search_base()[a..b]);
        for &(col, bit) in plan {
            if col >= self.cols || bit == KeyBit::Masked {
                continue;
            }
            let base = col * self.pes * self.bpp;
            let zero = &self.zeros[base + a..base + b];
            let one = &self.ones[base + a..base + b];
            match bit {
                KeyBit::Zero => {
                    for (acc, o) in out.iter_mut().zip(one) {
                        *acc &= !o;
                    }
                }
                KeyBit::One => {
                    for (acc, z) in out.iter_mut().zip(zero) {
                        *acc &= !z;
                    }
                }
                KeyBit::Z => {
                    for ((acc, z), o) in out.iter_mut().zip(zero).zip(one) {
                        *acc &= !(z | o);
                    }
                }
                KeyBit::Masked => unreachable!("masked bits are filtered above"),
            }
        }
    }

    /// Fused associative write over PEs `lo..hi`: program `value` into
    /// column `col` of every tagged row of every PE in the range, in one
    /// linear sweep. `tags` has layout `[pe][block]` for the range. Each
    /// PE's column takes one wear pulse (the column driver fires per PE per
    /// write, whatever the tags say — identical to
    /// [`TcamArray::write_column`]).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range or `tags` has the wrong length.
    pub fn write_column_multi(
        &mut self,
        col: usize,
        value: TernaryBit,
        tags: &[u64],
        lo: usize,
        hi: usize,
    ) {
        assert!(col < self.cols, "column out of range");
        let (a, b) = (lo * self.bpp, hi * self.bpp);
        assert_eq!(tags.len(), b - a, "tag/range block count mismatch");
        for w in &mut self.wear[col * self.pes + lo..col * self.pes + hi] {
            *w += 1;
        }
        let base = col * self.pes * self.bpp;
        let zeros = &mut self.zeros[base + a..base + b];
        let ones = &mut self.ones[base + a..base + b];
        match value {
            TernaryBit::Zero => {
                for ((z, o), t) in zeros.iter_mut().zip(ones).zip(tags) {
                    *z |= t;
                    *o &= !t;
                }
            }
            TernaryBit::One => {
                for ((z, o), t) in zeros.iter_mut().zip(ones).zip(tags) {
                    *o |= t;
                    *z &= !t;
                }
            }
            TernaryBit::X => {
                for ((z, o), t) in zeros.iter_mut().zip(ones).zip(tags) {
                    *z &= !t;
                    *o &= !t;
                }
            }
        }
        self.enforce_stuck_col_range(col, lo, hi);
    }

    /// Fused column copy over PEs `lo..hi`: duplicate column `src` into
    /// column `dst` for every row of every PE in the range (two
    /// `copy_within` calls on the arenas; no wear, like
    /// [`TcamArray::copy_column`]).
    ///
    /// # Panics
    ///
    /// Panics if either column is out of range.
    pub fn copy_column_multi(&mut self, src: usize, dst: usize, lo: usize, hi: usize) {
        assert!(src < self.cols && dst < self.cols, "column out of range");
        if src == dst {
            return;
        }
        let (a, b) = (lo * self.bpp, hi * self.bpp);
        let cs = self.pes * self.bpp;
        self.zeros
            .copy_within(src * cs + a..src * cs + b, dst * cs + a);
        self.ones
            .copy_within(src * cs + a..src * cs + b, dst * cs + a);
        self.enforce_stuck_col_range(dst, lo, hi);
    }

    /// Fused encoded write over PEs `lo..hi`: for **every** row of every PE
    /// in the range, program the two cells at `col`, `col + 1` with the
    /// two-bit encoding of the pair `(latch bit, tag bit)` — the Fig 7
    /// encoder path of [`crate::encoding::encode_pair`], evaluated 64 rows
    /// at a time:
    ///
    /// the first cell is `0`/`1` when the latch bit is set (value = tag
    /// bit) and `X` otherwise; the second cell mirrors it for a clear latch
    /// bit. `latch` and `tags` have layout `[pe][block]` for the range.
    /// Both columns take one wear pulse per PE.
    ///
    /// # Panics
    ///
    /// Panics if `col + 1` is out of range or the inputs have the wrong
    /// length.
    pub fn write_encoded_multi(
        &mut self,
        col: usize,
        latch: &[u64],
        tags: &[u64],
        lo: usize,
        hi: usize,
    ) {
        assert!(col + 1 < self.cols, "encoded write needs two columns");
        let (a, b) = (lo * self.bpp, hi * self.bpp);
        assert_eq!(latch.len(), b - a, "latch/range block count mismatch");
        assert_eq!(tags.len(), b - a, "tag/range block count mismatch");
        let cs = self.pes * self.bpp;
        let mask = &self.row_mask[a..b];
        // First column: stored value is the tag bit where the latch bit is
        // set, X elsewhere (00->X., 01->X., 10->0., 11->1.).
        {
            let zeros = &mut self.zeros[col * cs + a..col * cs + b];
            let ones = &mut self.ones[col * cs + a..col * cs + b];
            for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                let (h, t, m) = (latch[i], tags[i], mask[i]);
                *z = h & !t & m;
                *o = h & t & m;
            }
        }
        // Second column: the complementary half (00->.0, 01->.1, 10->.X,
        // 11->.X).
        {
            let c1 = col + 1;
            let zeros = &mut self.zeros[c1 * cs + a..c1 * cs + b];
            let ones = &mut self.ones[c1 * cs + a..c1 * cs + b];
            for (i, (z, o)) in zeros.iter_mut().zip(ones.iter_mut()).enumerate() {
                let (h, t, m) = (latch[i], tags[i], mask[i]);
                *z = !h & !t & m;
                *o = !h & t & m;
            }
        }
        for c in [col, col + 1] {
            for w in &mut self.wear[c * self.pes + lo..c * self.pes + hi] {
                *w += 1;
            }
            self.enforce_stuck_col_range(c, lo, hi);
        }
    }

    /// Fused search chain plus conditional writes over PEs `lo..hi` in
    /// **one linear pass** over the arena — the slab kernel behind the
    /// trace engine's `SearchWrite`/`SearchWriteMulti` micro-ops.
    ///
    /// Per block: `t = (acc ? tags : 0) | match(plans[0]) | …` (each match
    /// starting from the row mask and narrowing per plan entry), store `t`
    /// back into `tags`, then program every `(column, value)` of `writes`
    /// in order under `t`. No intermediate tag vector is materialized.
    /// Reads happen before writes within each block and blocks are
    /// independent, so the result is bit-identical to the unfused kernel
    /// sequence even when a write column appears in a plan. Each write
    /// column takes one wear pulse per PE of the range, exactly like
    /// [`write_column_multi`](Self::write_column_multi).
    ///
    /// `tags` has layout `[pe][block]` for the range (e.g. a
    /// [`TagSlab::range_mut`] slice). Masked or out-of-range plan entries
    /// are skipped.
    ///
    /// # Panics
    ///
    /// Panics if a write column is out of range or `tags` has the wrong
    /// length.
    pub fn search_write_multi(
        &mut self,
        plans: &[&[(usize, KeyBit)]],
        acc: bool,
        writes: &[(usize, TernaryBit)],
        tags: &mut [u64],
        lo: usize,
        hi: usize,
    ) {
        let (a, b) = (lo * self.bpp, hi * self.bpp);
        assert_eq!(tags.len(), b - a, "tag/range block count mismatch");
        for &(col, _) in writes {
            assert!(col < self.cols, "column out of range");
            for w in &mut self.wear[col * self.pes + lo..col * self.pes + hi] {
                *w += 1;
            }
        }
        let cs = self.pes * self.bpp;
        // Tile the block range so the whole chain — plan narrows, the
        // OR-accumulate, and all the writes — runs over a stack-resident
        // window. Plan entries are consumed two per pass with the `match`
        // on the bit kinds hoisted out of the word loop, a non-accumulating
        // chain evaluates its first plan directly in the tags window, and
        // the OR-accumulate folds into the final narrowing pass of each
        // later plan — a two-entry plan is one sweep end to end. When every
        // row is live (`rows % 64 == 0`) the row-mask AND disappears
        // entirely. Tiles are independent because a tile's searches read
        // only its own offsets, so writes landing in earlier tiles never
        // alias a later tile's reads. 256 blocks (2 KiB of tags plus a
        // 2 KiB scratch tile) keeps per-tile loop overhead negligible
        // while every per-pass slice still fits in L1.
        let full = self.rows.is_multiple_of(64);
        const TILE: usize = 256;
        let mut s = [0u64; TILE];
        let mut base = 0;
        while base < b - a {
            let n = TILE.min(b - a - base);
            let at0 = a + base;
            let t = &mut tags[base..base + n];
            let mask = match &self.fault {
                // Under faults the effective mask also excludes this
                // epoch's transient misses, so it applies even when the row
                // count fills every block.
                Some(f) => Some(&f.search_mask[at0..at0 + n]),
                None => (!full).then(|| &self.row_mask[at0..at0 + n]),
            };
            if !acc && plans.is_empty() {
                t.fill(0);
            }
            let (zeros, ones) = (&self.zeros, &self.ones);
            let col = |c: usize| {
                let off = c * cs + at0;
                (&zeros[off..off + n], &ones[off..off + n])
            };
            for (pi, plan) in plans.iter().enumerate() {
                if pi == 0 && !acc {
                    sweep::plan_and_into(t, plan, self.cols, &col, mask);
                } else {
                    sweep::plan_or_into(t, &mut s[..n], plan, self.cols, &col, mask);
                }
            }
            for &(col, value) in writes {
                let off = col * cs + at0;
                let zero = &mut self.zeros[off..off + n];
                let one = &mut self.ones[off..off + n];
                match value {
                    TernaryBit::Zero => {
                        for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(t.iter()) {
                            *z |= tw;
                            *o &= !tw;
                        }
                    }
                    TernaryBit::One => {
                        for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(t.iter()) {
                            *o |= tw;
                            *z &= !tw;
                        }
                    }
                    TernaryBit::X => {
                        for ((z, o), tw) in zero.iter_mut().zip(one.iter_mut()).zip(t.iter()) {
                            *z &= !tw;
                            *o &= !tw;
                        }
                    }
                }
            }
            base += n;
        }
        if self.fault.is_some() {
            // Stuck enforcement is idempotent and tiles touch disjoint row
            // blocks with reads preceding writes, so enforcing once per
            // written column at kernel end equals enforcing after every
            // store — the invariant the unfused engines maintain.
            for &(col, _) in writes {
                self.enforce_stuck_col_range(col, lo, hi);
            }
        }
    }

    /// Incremental search over PEs `lo..hi`: narrow `out`'s existing
    /// contents by `plan` without the row-mask re-initialization of
    /// [`search_plan_multi_into`](Self::search_plan_multi_into) — the slab
    /// kernel behind the trace engine's `SearchDelta` micro-op, sound when
    /// `out` already holds the match of a still-valid plan prefix.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the range's block count.
    pub fn search_narrow_multi(
        &self,
        plan: &[(usize, KeyBit)],
        lo: usize,
        hi: usize,
        out: &mut [u64],
    ) {
        let (a, b) = (lo * self.bpp, hi * self.bpp);
        assert_eq!(out.len(), b - a, "output/range block count mismatch");
        for &(col, bit) in plan {
            if col >= self.cols || bit == KeyBit::Masked {
                continue;
            }
            let base = col * self.pes * self.bpp;
            let zero = &self.zeros[base + a..base + b];
            let one = &self.ones[base + a..base + b];
            match bit {
                KeyBit::Zero => {
                    for (acc, o) in out.iter_mut().zip(one) {
                        *acc &= !o;
                    }
                }
                KeyBit::One => {
                    for (acc, z) in out.iter_mut().zip(zero) {
                        *acc &= !z;
                    }
                }
                KeyBit::Z => {
                    for ((acc, z), o) in out.iter_mut().zip(zero).zip(one) {
                        *acc &= !(z | o);
                    }
                }
                KeyBit::Masked => unreachable!("masked bits are filtered above"),
            }
        }
    }

    /// One PE's associative-write pulse counts, gathered per column (the
    /// endurance profile [`TcamArray::column_wear`] reports).
    pub fn pe_wear(&self, pe: usize) -> Vec<u64> {
        (0..self.cols)
            .map(|c| self.wear[c * self.pes + pe])
            .collect()
    }

    /// Build a slab from per-PE arrays (wear included).
    ///
    /// Arrays may have heterogeneous column counts: the slab is as wide as
    /// the widest array, each array's cells **and wear** are copied over
    /// its own width (not the narrowest), and a narrow PE's absent columns
    /// hold the all-`0`, zero-wear state of a fresh [`TcamArray`] — so
    /// [`to_array`](Self::to_array) widens narrow PEs accordingly.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is empty, row counts differ, or only some arrays
    /// carry fault state (fault state also requires uniform widths, since
    /// the remap tables are per-column).
    pub fn from_arrays(arrays: &[TcamArray]) -> Self {
        let first = arrays.first().expect("at least one array");
        let rows = first.rows();
        assert!(
            arrays.iter().all(|a| a.rows() == rows),
            "array geometry mismatch"
        );
        let cols = arrays
            .iter()
            .map(TcamArray::cols)
            .max()
            .expect("at least one array");
        let mut slab = TcamSlab::new(arrays.len(), rows, cols);
        for col in 0..cols {
            for (pe, array) in arrays.iter().enumerate() {
                // Copy bounds follow each array's own width; columns beyond
                // it keep the fresh all-zero cells and zero wear.
                if col >= array.cols() {
                    continue;
                }
                let (zeros, ones) = array.column_bits(col);
                let at = slab.at(col, pe);
                slab.zeros[at..at + slab.bpp].copy_from_slice(zeros);
                slab.ones[at..at + slab.bpp].copy_from_slice(ones);
                slab.wear[col * slab.pes + pe] = array.column_wear()[col];
            }
        }
        let faulted = arrays.iter().filter(|a| a.fault().is_some()).count();
        if faulted > 0 {
            assert_eq!(
                faulted,
                arrays.len(),
                "fault state must be attached to all arrays or none"
            );
            assert!(
                arrays.iter().all(|a| a.cols() == cols),
                "fault state requires uniform column counts"
            );
            let states: Vec<&FaultState> = arrays
                .iter()
                .map(|a| a.fault().expect("checked above"))
                .collect();
            slab.fault = Some(Box::new(SlabFaultState::from_arrays(&states)));
        }
        slab
    }

    /// Extract one PE as a standalone [`TcamArray`] (wear included).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is out of range.
    pub fn to_array(&self, pe: usize) -> TcamArray {
        assert!(pe < self.pes, "PE out of range");
        let mut array = TcamArray::new(self.rows, self.cols);
        for col in 0..self.cols {
            let at = self.at(col, pe);
            array.set_column_bits(
                col,
                &self.zeros[at..at + self.bpp],
                &self.ones[at..at + self.bpp],
            );
        }
        for (col, w) in array.wear_mut().iter_mut().enumerate() {
            *w = self.wear[col * self.pes + pe];
        }
        if let Some(f) = &self.fault {
            array.set_fault(Some(Box::new(f.to_array(pe))));
        }
        array
    }

    /// Extract every PE as standalone arrays — the inverse of
    /// [`from_arrays`](Self::from_arrays).
    pub fn to_arrays(&self) -> Vec<TcamArray> {
        (0..self.pes).map(|pe| self.to_array(pe)).collect()
    }

    /// Serialize to the versioned byte image (header + `zeros`, `ones`,
    /// `wear` arenas as big-endian words). The offline `serde` shim cannot
    /// produce real bytes, so snapshots go through the `bytes` buffer
    /// directly, like the ISA's instruction encoding.
    ///
    /// A fault-free slab emits [`FORMAT_VERSION`](Self::FORMAT_VERSION)
    /// (byte-identical to the original format); with fault state attached
    /// the image is [`FORMAT_VERSION_FAULT`](Self::FORMAT_VERSION_FAULT)
    /// and appends the fault *bookkeeping* (model, remap tables, counters —
    /// stuck and search masks are recomputed on decode, since they are pure
    /// functions of the bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if a dimension exceeds `u16::MAX` (the paper-scale geometry
    /// is 256×256 with small chunks).
    pub fn to_bytes(&self) -> Vec<u8> {
        for dim in [self.pes, self.rows, self.cols] {
            assert!(dim <= u16::MAX as usize, "dimension exceeds image format");
        }
        let words = self.zeros.len() + self.ones.len() + self.wear.len();
        let mut buf = BytesMut::with_capacity(7 + words * 8);
        buf.put_u8(match self.fault {
            Some(_) => Self::FORMAT_VERSION_FAULT,
            None => Self::FORMAT_VERSION,
        });
        buf.put_u16(self.pes as u16);
        buf.put_u16(self.rows as u16);
        buf.put_u16(self.cols as u16);
        for arena in [&self.zeros, &self.ones, &self.wear] {
            for w in arena {
                buf.put_slice(&w.to_be_bytes());
            }
        }
        if let Some(f) = &self.fault {
            assert!(
                f.spares <= u16::MAX as usize,
                "spare count exceeds image format"
            );
            buf.put_u64(f.model.seed);
            buf.put_u32(f.model.stuck_per_million);
            buf.put_u32(f.model.miss_per_million);
            match f.model.endurance_limit {
                Some(limit) => {
                    buf.put_u8(1);
                    buf.put_u64(limit);
                }
                None => buf.put_u8(0),
            }
            buf.put_u64(f.pe0 as u64);
            buf.put_u16(f.spares as u16);
            buf.put_u64(f.epoch);
            for pe in 0..self.pes {
                buf.put_u16(f.next_spare[pe]);
                match f.failed[pe] {
                    Some((col, wear)) => {
                        buf.put_u8(1);
                        buf.put_u16(col);
                        buf.put_u64(wear);
                    }
                    None => buf.put_u8(0),
                }
                for &r in &f.remap[pe * self.cols..(pe + 1) * self.cols] {
                    buf.put_u16(r);
                }
                buf.put_u16(f.retired[pe].len() as u16);
                for &(col, phys) in &f.retired[pe] {
                    buf.put_u16(col);
                    buf.put_u16(phys);
                }
            }
        }
        buf.to_vec()
    }

    /// Deserialize a [`to_bytes`](Self::to_bytes) image.
    ///
    /// # Errors
    ///
    /// Returns a [`SlabDecodeError`] on truncation, version or geometry
    /// problems, or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SlabDecodeError> {
        let mut buf = bytes;
        if buf.remaining() < 7 {
            return Err(SlabDecodeError::Truncated);
        }
        let version = buf.get_u8();
        if version != Self::FORMAT_VERSION && version != Self::FORMAT_VERSION_FAULT {
            return Err(SlabDecodeError::BadVersion(version));
        }
        let pes = buf.get_u16() as usize;
        let rows = buf.get_u16() as usize;
        let cols = buf.get_u16() as usize;
        if pes == 0 || rows == 0 || cols == 0 {
            return Err(SlabDecodeError::BadGeometry);
        }
        let bpp = rows.div_ceil(64);
        let arena = cols * pes * bpp;
        let words = 2 * arena + cols * pes;
        if buf.remaining() < words * 8 {
            return Err(SlabDecodeError::Truncated);
        }
        let mut read_words = |n: usize| {
            let mut v = Vec::with_capacity(n);
            let mut word = [0u8; 8];
            for _ in 0..n {
                buf.copy_to_slice(&mut word);
                v.push(u64::from_be_bytes(word));
            }
            v
        };
        let zeros = read_words(arena);
        let ones = read_words(arena);
        let wear = read_words(cols * pes);
        let fault = if version == Self::FORMAT_VERSION_FAULT {
            // Fixed part: seed + rates + limit flag + pe0 + spares + epoch.
            if buf.remaining() < 8 + 4 + 4 + 1 {
                return Err(SlabDecodeError::Truncated);
            }
            let seed = buf.get_u64();
            let stuck_per_million = buf.get_u32();
            let miss_per_million = buf.get_u32();
            let endurance_limit = match buf.get_u8() {
                0 => None,
                _ => {
                    if buf.remaining() < 8 {
                        return Err(SlabDecodeError::Truncated);
                    }
                    Some(buf.get_u64())
                }
            };
            if buf.remaining() < 8 + 2 + 8 {
                return Err(SlabDecodeError::Truncated);
            }
            let pe0 = buf.get_u64() as usize;
            let spares = buf.get_u16() as usize;
            let epoch = buf.get_u64();
            let mut next_spare = Vec::with_capacity(pes);
            let mut failed = Vec::with_capacity(pes);
            let mut remap = Vec::with_capacity(pes * cols);
            let mut retired = Vec::with_capacity(pes);
            for _ in 0..pes {
                if buf.remaining() < 2 + 1 {
                    return Err(SlabDecodeError::Truncated);
                }
                next_spare.push(buf.get_u16());
                failed.push(match buf.get_u8() {
                    0 => None,
                    _ => {
                        if buf.remaining() < 2 + 8 {
                            return Err(SlabDecodeError::Truncated);
                        }
                        Some((buf.get_u16(), buf.get_u64()))
                    }
                });
                if buf.remaining() < cols * 2 + 2 {
                    return Err(SlabDecodeError::Truncated);
                }
                for _ in 0..cols {
                    remap.push(buf.get_u16());
                }
                let n = buf.get_u16() as usize;
                if buf.remaining() < n * 4 {
                    return Err(SlabDecodeError::Truncated);
                }
                let mut log = Vec::with_capacity(n);
                for _ in 0..n {
                    let col = buf.get_u16();
                    let phys = buf.get_u16();
                    log.push((col, phys));
                }
                retired.push(log);
            }
            let model = FaultModel {
                seed,
                stuck_per_million,
                miss_per_million,
                endurance_limit,
            };
            Some(Box::new(SlabFaultState::restore(
                model, pe0, spares, pes, rows, cols, epoch, next_spare, remap, retired, failed,
            )))
        } else {
            None
        };
        if buf.has_remaining() {
            return Err(SlabDecodeError::TrailingBytes(buf.remaining()));
        }
        let mut slab = TcamSlab::new(pes, rows, cols);
        slab.zeros = zeros;
        slab.ones = ones;
        slab.wear = wear;
        slab.fault = fault;
        Ok(slab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::SearchKey;

    /// A small slab + the equivalent per-PE arrays, with a mixed cell
    /// pattern loaded into both.
    fn seeded(pes: usize, rows: usize, cols: usize) -> (TcamSlab, Vec<TcamArray>) {
        let mut arrays: Vec<TcamArray> = (0..pes).map(|_| TcamArray::new(rows, cols)).collect();
        for (pe, array) in arrays.iter_mut().enumerate() {
            for row in 0..rows {
                for col in 0..cols {
                    let v = match (pe + 3 * row + 7 * col) % 3 {
                        0 => TernaryBit::Zero,
                        1 => TernaryBit::One,
                        _ => TernaryBit::X,
                    };
                    array.set_cell(row, col, v);
                }
            }
        }
        (TcamSlab::from_arrays(&arrays), arrays)
    }

    fn tag_pattern(slab: &TcamSlab, salt: usize) -> TagSlab {
        let mut t = TagSlab::zeros(slab.pes(), slab.rows());
        for pe in 0..slab.pes() {
            let tv =
                TagVector::from_bools((0..slab.rows()).map(|r| (r + pe + salt).is_multiple_of(3)));
            t.set_pe(pe, &tv);
        }
        t
    }

    #[test]
    fn new_slab_is_all_zero() {
        let s = TcamSlab::new(3, 70, 5);
        for pe in 0..3 {
            for row in 0..70 {
                for col in 0..5 {
                    assert_eq!(s.cell(pe, row, col), TernaryBit::Zero);
                }
            }
        }
        assert_eq!(
            s,
            TcamSlab::from_arrays(&[
                TcamArray::new(70, 5),
                TcamArray::new(70, 5),
                TcamArray::new(70, 5)
            ])
        );
    }

    #[test]
    fn set_cell_round_trips_and_matches_array() {
        let mut s = TcamSlab::new(2, 66, 3);
        s.set_cell(1, 65, 2, TernaryBit::X);
        s.set_cell(0, 0, 0, TernaryBit::One);
        assert_eq!(s.cell(1, 65, 2), TernaryBit::X);
        assert_eq!(s.cell(0, 0, 0), TernaryBit::One);
        assert_eq!(s.cell(1, 64, 2), TernaryBit::Zero, "neighbor untouched");
        let arrays = s.to_arrays();
        assert_eq!(arrays[1].cell(65, 2), TernaryBit::X);
        assert_eq!(arrays[0].cell(0, 0), TernaryBit::One);
    }

    #[test]
    fn search_plan_multi_matches_per_array_search() {
        let (slab, arrays) = seeded(4, 70, 9);
        for key in ["10-1Z----", "---------", "ZZZZZZZZZ", "001-1-0Z1"] {
            let key = SearchKey::parse(key).unwrap();
            let plan = key.compile_plan();
            let mut out = TagSlab::zeros(4, 70);
            slab.search_plan_multi_into(&plan, 0, 4, out.range_mut(0, 4));
            for (pe, array) in arrays.iter().enumerate() {
                assert_eq!(
                    out.to_tagvector(pe),
                    array.search(&key),
                    "pe {pe} key {key}"
                );
            }
        }
    }

    #[test]
    fn search_plan_multi_respects_pe_subranges() {
        let (slab, arrays) = seeded(5, 33, 6);
        let key = SearchKey::parse("1-0Z--").unwrap();
        let plan = key.compile_plan();
        let mut out = TagSlab::zeros(5, 33);
        slab.search_plan_multi_into(&plan, 1, 4, out.range_mut(1, 4));
        for (pe, array) in arrays.iter().enumerate().take(4).skip(1) {
            assert_eq!(out.to_tagvector(pe), array.search(&key));
        }
        assert_eq!(out.count(0), 0, "PE 0 outside the range stays clear");
        assert_eq!(out.count(4), 0, "PE 4 outside the range stays clear");
    }

    #[test]
    fn search_plan_multi_skips_masked_and_out_of_range_entries() {
        let (slab, _) = seeded(2, 16, 4);
        let mut out = TagSlab::zeros(2, 16);
        slab.search_plan_multi_into(
            &[(9, KeyBit::One), (0, KeyBit::Masked)],
            0,
            2,
            out.range_mut(0, 2),
        );
        assert_eq!(out.count(0) + out.count(1), 32, "no-op plan matches all");
    }

    #[test]
    fn write_column_multi_matches_per_array_write() {
        for value in [TernaryBit::Zero, TernaryBit::One, TernaryBit::X] {
            let (mut slab, mut arrays) = seeded(4, 70, 5);
            let tags = tag_pattern(&slab, 1);
            slab.write_column_multi(3, value, tags.range(1, 4), 1, 4);
            for (pe, array) in arrays.iter_mut().enumerate().skip(1) {
                array.write_column(3, value, &tags.to_tagvector(pe));
            }
            assert_eq!(slab.to_arrays(), arrays, "value {value:?}");
            assert_eq!(slab.pe_wear(0)[3], 0, "PE outside the range unworn");
            assert_eq!(slab.pe_wear(2)[3], 1);
        }
    }

    #[test]
    fn write_column_multi_wears_even_with_empty_tags() {
        let (mut slab, _) = seeded(2, 16, 4);
        let empty = TagSlab::zeros(2, 16);
        slab.write_column_multi(1, TernaryBit::One, empty.range(0, 2), 0, 2);
        assert_eq!(slab.pe_wear(0)[1], 1);
        assert_eq!(slab.pe_wear(1)[1], 1);
    }

    #[test]
    fn copy_column_multi_matches_per_array_copy() {
        let (mut slab, mut arrays) = seeded(3, 66, 7);
        slab.copy_column_multi(2, 5, 0, 3);
        for array in &mut arrays {
            array.copy_column(2, 5);
        }
        assert_eq!(slab.to_arrays(), arrays);
        slab.copy_column_multi(4, 4, 0, 3); // src == dst: no-op
        assert_eq!(slab.to_arrays(), arrays);
    }

    #[test]
    fn copy_column_multi_respects_pe_subranges() {
        let (mut slab, arrays) = seeded(3, 20, 4);
        slab.copy_column_multi(0, 3, 1, 2);
        for row in 0..20 {
            assert_eq!(slab.cell(1, row, 3), arrays[1].cell(row, 0));
            assert_eq!(
                slab.cell(0, row, 3),
                arrays[0].cell(row, 3),
                "PE 0 untouched"
            );
            assert_eq!(
                slab.cell(2, row, 3),
                arrays[2].cell(row, 3),
                "PE 2 untouched"
            );
        }
    }

    #[test]
    fn write_encoded_multi_matches_cell_by_cell_encoder() {
        let (mut slab, arrays) = seeded(3, 70, 6);
        let latch = tag_pattern(&slab, 0);
        let tags = tag_pattern(&slab, 5);
        slab.write_encoded_multi(2, latch.range(0, 3), tags.range(0, 3), 0, 3);
        // Reference: the per-row encoder of HyperPe::write_encoded.
        for (pe, array) in arrays.iter().enumerate() {
            let mut expect = array.clone();
            for row in 0..70 {
                let cells = crate::encoding::encode_pair(
                    latch.to_tagvector(pe).get(row),
                    tags.to_tagvector(pe).get(row),
                );
                expect.set_cell(row, 2, cells[0]);
                expect.set_cell(row, 3, cells[1]);
            }
            expect.note_write(2);
            expect.note_write(3);
            assert_eq!(slab.to_array(pe), expect, "pe {pe}");
        }
    }

    #[test]
    fn conversion_round_trips_with_wear() {
        let (mut slab, _) = seeded(4, 33, 5);
        let tags = tag_pattern(&slab, 2);
        slab.write_column_multi(0, TernaryBit::One, tags.range(0, 4), 0, 4);
        slab.write_column_multi(0, TernaryBit::X, tags.range(2, 3), 2, 3);
        let arrays = slab.to_arrays();
        assert_eq!(arrays[0].column_wear()[0], 1);
        assert_eq!(arrays[2].column_wear()[0], 2);
        assert_eq!(TcamSlab::from_arrays(&arrays), slab);
    }

    #[test]
    fn bytes_round_trip() {
        let (mut slab, _) = seeded(3, 70, 4);
        let tags = tag_pattern(&slab, 3);
        slab.write_column_multi(1, TernaryBit::Zero, tags.range(0, 3), 0, 3);
        let bytes = slab.to_bytes();
        assert_eq!(TcamSlab::from_bytes(&bytes), Ok(slab));
    }

    #[test]
    fn from_bytes_rejects_malformed_images() {
        let slab = TcamSlab::new(2, 16, 3);
        let bytes = slab.to_bytes();
        assert_eq!(
            TcamSlab::from_bytes(&bytes[..3]),
            Err(SlabDecodeError::Truncated)
        );
        assert_eq!(
            TcamSlab::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SlabDecodeError::Truncated)
        );
        let mut versioned = bytes.clone();
        versioned[0] = 9;
        assert_eq!(
            TcamSlab::from_bytes(&versioned),
            Err(SlabDecodeError::BadVersion(9))
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            TcamSlab::from_bytes(&trailing),
            Err(SlabDecodeError::TrailingBytes(1))
        );
        let mut zeroed = bytes;
        zeroed[1] = 0;
        zeroed[2] = 0;
        assert_eq!(
            TcamSlab::from_bytes(&zeroed),
            Err(SlabDecodeError::BadGeometry)
        );
    }

    /// The single-sweep fused kernel must equal the unfused composition:
    /// searches (first overwriting, rest accumulating), then per-column
    /// writes — state, tags, and wear.
    #[test]
    fn search_write_multi_matches_unfused_kernel_sequence() {
        for acc in [false, true] {
            let (mut fused, _) = seeded(4, 70, 9);
            let mut unfused = fused.clone();
            let k1 = SearchKey::parse("10-1Z----").unwrap().compile_plan();
            let k2 = SearchKey::parse("-----01--").unwrap().compile_plan();
            let writes = [(2usize, TernaryBit::One), (7usize, TernaryBit::X)];
            let mut tags = tag_pattern(&fused, 1);
            let mut expect_tags = tags.clone();

            fused.search_write_multi(&[&k1, &k2], acc, &writes, tags.range_mut(1, 4), 1, 4);

            let mut scratch = TagSlab::zeros(4, 70);
            unfused.search_plan_multi_into(&k1, 1, 4, scratch.range_mut(1, 4));
            if acc {
                expect_tags.accumulate_range_from(&scratch, 1, 4);
            } else {
                expect_tags.copy_range_from(&scratch, 1, 4);
            }
            unfused.search_plan_multi_into(&k2, 1, 4, scratch.range_mut(1, 4));
            expect_tags.accumulate_range_from(&scratch, 1, 4);
            for (col, value) in writes {
                unfused.write_column_multi(col, value, expect_tags.range(1, 4), 1, 4);
            }
            assert_eq!(tags, expect_tags, "acc {acc}");
            assert_eq!(fused, unfused, "acc {acc}");
            assert_eq!(fused.pe_wear(2)[2], 1);
            assert_eq!(fused.pe_wear(0)[2], 0, "outside the PE range");
        }
    }

    /// A write column that also appears in a plan must behave like the
    /// unfused sequence (search completes before the store).
    #[test]
    fn search_write_multi_handles_write_column_in_plan() {
        let (mut fused, _) = seeded(3, 33, 5);
        let mut unfused = fused.clone();
        let plan = vec![(1usize, KeyBit::Zero), (3usize, KeyBit::One)];
        let mut tags = TagSlab::zeros(3, 33);
        fused.search_write_multi(
            &[&plan],
            false,
            &[(1, TernaryBit::One)],
            tags.range_mut(0, 3),
            0,
            3,
        );
        let mut expect = TagSlab::zeros(3, 33);
        unfused.search_plan_multi_into(&plan, 0, 3, expect.range_mut(0, 3));
        unfused.write_column_multi(1, TernaryBit::One, expect.range(0, 3), 0, 3);
        assert_eq!(tags, expect);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn search_narrow_multi_equals_init_free_plan_search() {
        let (slab, _) = seeded(3, 70, 6);
        let full = SearchKey::parse("1-0Z--").unwrap().compile_plan();
        let (prefix, rest) = full.split_at(1);
        let mut whole = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(&full, 0, 3, whole.range_mut(0, 3));
        let mut narrowed = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(prefix, 0, 3, narrowed.range_mut(0, 3));
        slab.search_narrow_multi(rest, 0, 3, narrowed.range_mut(0, 3));
        assert_eq!(narrowed, whole);
    }

    #[test]
    fn tag_slab_bytes_round_trip() {
        let slab = TcamSlab::new(3, 70, 2);
        let tags = tag_pattern(&slab, 6);
        assert_eq!(TagSlab::from_bytes(&tags.to_bytes()), Ok(tags));
    }

    #[test]
    fn tag_slab_from_bytes_rejects_malformed_images() {
        let slab = TcamSlab::new(2, 70, 2);
        let tags = tag_pattern(&slab, 0);
        let bytes = tags.to_bytes();
        assert_eq!(
            TagSlab::from_bytes(&bytes[..2]),
            Err(SlabDecodeError::Truncated)
        );
        assert_eq!(
            TagSlab::from_bytes(&bytes[..bytes.len() - 1]),
            Err(SlabDecodeError::Truncated)
        );
        let mut versioned = bytes.clone();
        versioned[0] = 7;
        assert_eq!(
            TagSlab::from_bytes(&versioned),
            Err(SlabDecodeError::BadVersion(7))
        );
        let mut trailing = bytes.clone();
        trailing.push(1);
        assert_eq!(
            TagSlab::from_bytes(&trailing),
            Err(SlabDecodeError::TrailingBytes(1))
        );
        let mut zeroed = bytes.clone();
        zeroed[1] = 0;
        zeroed[2] = 0;
        assert_eq!(
            TagSlab::from_bytes(&zeroed),
            Err(SlabDecodeError::BadGeometry)
        );
        // 70 rows → the last 58 bits of each PE's second block are padding
        // and must decode as zero.
        let mut padded = bytes;
        let last = padded.len() - 1;
        padded[last] |= 0x80;
        assert_eq!(
            TagSlab::from_bytes(&padded),
            Err(SlabDecodeError::BadGeometry)
        );
    }

    #[test]
    fn tag_slab_reductions_match_tagvector() {
        let slab = TcamSlab::new(3, 70, 2);
        let tags = tag_pattern(&slab, 4);
        for pe in 0..3 {
            let tv = tags.to_tagvector(pe);
            assert_eq!(tags.count(pe), tv.count());
            assert_eq!(tags.first_index(pe), tv.first_index());
        }
        let empty = TagSlab::zeros(3, 70);
        assert_eq!(empty.first_index(1), None);
    }

    #[test]
    fn tag_slab_accumulate_and_copy_ranges() {
        let slab = TcamSlab::new(4, 40, 2);
        let a0 = tag_pattern(&slab, 0);
        let b = tag_pattern(&slab, 1);
        let mut acc = a0.clone();
        acc.accumulate_range_from(&b, 1, 3);
        for pe in [1, 2] {
            let mut expect = a0.to_tagvector(pe);
            expect.accumulate(&b.to_tagvector(pe));
            assert_eq!(acc.to_tagvector(pe), expect);
        }
        assert_eq!(acc.to_tagvector(0), a0.to_tagvector(0), "outside range");
        assert_eq!(acc.to_tagvector(3), a0.to_tagvector(3), "outside range");
        let mut copy = a0.clone();
        copy.copy_range_from(&b, 0, 2);
        assert_eq!(copy.to_tagvector(0), b.to_tagvector(0));
        assert_eq!(copy.to_tagvector(2), a0.to_tagvector(2));
    }

    #[test]
    #[should_panic(expected = "block count mismatch")]
    fn search_output_size_mismatch_panics() {
        let slab = TcamSlab::new(2, 16, 2);
        let mut out = vec![0u64; 1];
        slab.search_plan_multi_into(&[], 0, 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn from_arrays_rejects_mixed_rows() {
        TcamSlab::from_arrays(&[TcamArray::new(4, 4), TcamArray::new(5, 4)]);
    }

    /// Regression: converting heterogeneous-width arrays into a slab used
    /// to clamp every PE's wear copy to the narrowest width, silently
    /// dropping wear (and cells) beyond it on the wider PEs.
    #[test]
    fn from_arrays_keeps_wear_beyond_the_narrowest_pe() {
        let mut narrow = TcamArray::new(40, 4);
        let mut wide = TcamArray::new(40, 6);
        narrow.set_cell(3, 3, TernaryBit::One);
        wide.set_cell(7, 5, TernaryBit::X);
        narrow.note_write(3);
        for _ in 0..5 {
            wide.note_write(5);
        }
        let slab = TcamSlab::from_arrays(&[narrow.clone(), wide.clone()]);
        assert_eq!(slab.cols(), 6, "slab width is the widest PE");
        assert_eq!(slab.pe_wear(0)[3], 1);
        assert_eq!(slab.pe_wear(1)[5], 5, "wear beyond the narrow PE survives");
        assert_eq!(slab.cell(1, 7, 5), TernaryBit::X);
        let back = slab.to_arrays();
        assert_eq!(back[1], wide);
        // The narrow PE comes back widened; its original columns are intact
        // and the padding columns are fresh.
        assert_eq!(back[0].cols(), 6);
        assert_eq!(back[0].cell(3, 3), TernaryBit::One);
        assert_eq!(back[0].column_wear()[3], 1);
        assert_eq!(back[0].column_wear()[4], 0);
        assert_eq!(back[0].cell(0, 5), TernaryBit::Zero);
        assert_eq!(TcamSlab::from_arrays(&back), slab, "round trip is stable");
    }

    /// A faulty model attached at matching PE offsets must leave the slab
    /// kernels bit-identical to the per-array kernels: same cells, same
    /// tags, same wear, same remap bookkeeping after endurance service.
    #[test]
    fn fault_kernels_match_per_array_fault_kernels() {
        let model = FaultModel {
            seed: 0xFA111,
            stuck_per_million: 40_000,
            miss_per_million: 30_000,
            endurance_limit: Some(2),
        };
        let (mut slab, mut arrays) = seeded(3, 70, 6);
        slab.attach_fault(model, 2, 0);
        for (pe, array) in arrays.iter_mut().enumerate() {
            array.attach_fault(model, 2, pe);
        }
        assert_eq!(slab.to_arrays(), arrays, "attachment alone is identical");

        let key = SearchKey::parse("10-1Z-").unwrap();
        let plan = key.compile_plan();
        let mut tags = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(&plan, 0, 3, tags.range_mut(0, 3));
        for (pe, array) in arrays.iter().enumerate() {
            assert_eq!(tags.to_tagvector(pe), array.search(&key), "pe {pe}");
        }

        slab.write_column_multi(2, TernaryBit::One, tags.range(0, 3), 0, 3);
        slab.search_write_multi(
            &[&plan],
            false,
            &[(4, TernaryBit::Zero)],
            tags.range_mut(0, 3),
            0,
            3,
        );
        for (pe, array) in arrays.iter_mut().enumerate() {
            let tv = tags.to_tagvector(pe);
            let mut search = array.search(&key);
            array.write_column(2, TernaryBit::One, &search);
            array.search_write_multi(&[&plan], false, &[(4, TernaryBit::Zero)], &mut search);
            assert_eq!(tv, search, "pe {pe} fused tags");
        }
        assert_eq!(slab.to_arrays(), arrays, "after fault-gated kernels");

        // New epoch re-derives the transient miss set on both backends.
        slab.advance_epoch();
        for array in &mut arrays {
            array.advance_epoch();
        }
        let mut tags2 = TagSlab::zeros(3, 70);
        slab.search_plan_multi_into(&plan, 0, 3, tags2.range_mut(0, 3));
        for (pe, array) in arrays.iter().enumerate() {
            assert_eq!(
                tags2.to_tagvector(pe),
                array.search(&key),
                "pe {pe} epoch 1"
            );
        }

        // Endurance service retires worn columns identically.
        let slab_res = slab.service_endurance();
        let mut array_res = Ok(());
        for array in &mut arrays {
            if let Err(e) = array.service_endurance() {
                array_res = Err(e);
                break;
            }
        }
        assert_eq!(slab_res, array_res);
        assert_eq!(slab.to_arrays(), arrays, "after endurance service");
    }

    #[test]
    fn fault_bytes_round_trip_uses_version_two() {
        let (mut slab, _) = seeded(2, 70, 4);
        assert_eq!(slab.to_bytes()[0], TcamSlab::FORMAT_VERSION);
        slab.attach_fault(
            FaultModel {
                seed: 99,
                stuck_per_million: 25_000,
                miss_per_million: 10_000,
                endurance_limit: Some(1),
            },
            1,
            5,
        );
        let tags = tag_pattern(&slab, 2);
        slab.write_column_multi(1, TernaryBit::One, tags.range(0, 2), 0, 2);
        slab.service_endurance().expect("one spare per PE");
        assert!(
            slab.fault().unwrap().retired.iter().any(|r| !r.is_empty()),
            "the write plus limit 1 must retire a column"
        );
        let bytes = slab.to_bytes();
        assert_eq!(bytes[0], TcamSlab::FORMAT_VERSION_FAULT);
        assert_eq!(TcamSlab::from_bytes(&bytes), Ok(slab));
        // A truncated fault payload is rejected, not misread.
        assert_eq!(
            TcamSlab::from_bytes(&bytes[..bytes.len() - 3]),
            Err(SlabDecodeError::Truncated)
        );
    }
}
