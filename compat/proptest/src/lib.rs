//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses — the
//! [`Strategy`] trait with `prop_map`/`boxed`, `any`, `Just`, integer-range
//! and tuple strategies, `prop::collection::vec`, `prop_oneof!`, and the
//! `proptest!` test macro — on top of a deterministic per-test SplitMix64
//! stream. No shrinking: a failing case panics with the generated inputs
//! visible in the assertion message, and re-running reproduces it exactly
//! because the RNG seed is derived from the test name.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a), so each test gets a stable,
    /// independent stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty draw bound");
        self.next_u64() % bound
    }
}

/// A value generator. The shim's strategies generate directly (no value
/// trees, no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase, for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from already-boxed arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniformly arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span)) as $t
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bound for [`vec()`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        /// Exclusive.
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n as u64,
                hi: n as u64 + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start as u64,
                hi: r.end as u64,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start() as u64,
                hi: *r.end() as u64 + 1,
            }
        }
    }

    /// Vectors of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; the shim trades a little coverage
        // for suite latency. Override per test with `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// The `prop::` module alias used by `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Choose uniformly between strategy arms (all arms must generate the same
/// type). Weighted arms are not supported by the shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert inside a property (panics with the message; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$attr:meta])* fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Define property tests: each `fn name(input in strategy, ...) { ... }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, w in 0u8..4) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w < 4);
        }

        #[test]
        fn vec_sizes_respect_bounds(v in prop::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn exact_size_vec(v in prop::collection::vec(any::<bool>(), 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn map_applies(x in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_respected(_x in 0u8..2) {
            // Runs without error under a custom case count.
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
