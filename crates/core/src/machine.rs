//! The two abstract machines: traditional AP (Fig 1a) and Hyper-AP (Fig 4a).

use hyperap_model::timing::OpCounts;
use hyperap_tcam::array::TcamArray;
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::encoding::encode_pair;
use hyperap_tcam::fault::{FaultError, FaultModel, FaultState};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::tags::TagVector;
use serde::{Deserialize, Serialize};

/// The Hyper-AP abstract machine (Fig 4a): TCAM array + ternary key +
/// accumulation unit + encoder latch + reduction tree, with Table-I-faithful
/// operation accounting.
///
/// One instance models one PE (§IV-B); the default geometry is the paper's
/// 256 words × 256 bits, but tests may use smaller arrays (operation counts
/// are row-count independent).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HyperPe {
    array: TcamArray,
    tags: TagVector,
    /// Encoder DFF stage (Fig 7): the latched previous search result used by
    /// encoded writes.
    latch: TagVector,
    /// Sense-amplifier scratch: holds the raw search result while the
    /// accumulation unit ORs it into the tags. Not architectural state —
    /// excluded from [`PartialEq`].
    scratch: TagVector,
    ops: OpCounts,
}

/// Equality over architectural state only (array, tags, latch, op counts);
/// the sense-amplifier scratch buffer is a simulation artifact.
impl PartialEq for HyperPe {
    fn eq(&self, other: &Self) -> bool {
        self.array == other.array
            && self.tags == other.tags
            && self.latch == other.latch
            && self.ops == other.ops
    }
}

impl HyperPe {
    /// New PE with the given geometry; all cells store `0`, all tags clear.
    pub fn new(rows: usize, cols: usize) -> Self {
        HyperPe {
            array: TcamArray::new(rows, cols),
            tags: TagVector::zeros(rows),
            latch: TagVector::zeros(rows),
            scratch: TagVector::zeros(rows),
            ops: OpCounts::default(),
        }
    }

    /// The paper's PE geometry: 256 × 256.
    pub fn pe_sized() -> Self {
        Self::new(256, 256)
    }

    /// Reassemble a PE from externally held architectural state (the slab
    /// engine's snapshot path). The sense-amplifier scratch starts clear —
    /// it is a simulation artifact excluded from equality.
    ///
    /// # Panics
    ///
    /// Panics if the tag or latch length differs from the array's row count.
    pub fn from_parts(array: TcamArray, tags: TagVector, latch: TagVector, ops: OpCounts) -> Self {
        let rows = array.rows();
        assert_eq!(tags.len(), rows, "tag length mismatch");
        assert_eq!(latch.len(), rows, "latch length mismatch");
        HyperPe {
            array,
            tags,
            latch,
            scratch: TagVector::zeros(rows),
            ops,
        }
    }

    /// Number of word rows (SIMD slots).
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Number of bit columns.
    pub fn cols(&self) -> usize {
        self.array.cols()
    }

    /// The underlying TCAM array (read-only).
    pub fn array(&self) -> &TcamArray {
        &self.array
    }

    /// Endurance profile: associative-write pulses per column (encoded
    /// writes count once per touched column).
    pub fn column_wear(&self) -> &[u64] {
        self.array.column_wear()
    }

    /// Attach a fault model to this PE's array (see
    /// [`TcamArray::attach_fault`]); `pe` is the PE's global index, which
    /// seeds its fault derivations.
    pub fn attach_fault(&mut self, model: FaultModel, spares: usize, pe: usize) {
        self.array.attach_fault(model, spares, pe);
    }

    /// Fault bookkeeping, if a model is attached.
    pub fn fault(&self) -> Option<&FaultState> {
        self.array.fault()
    }

    /// Start a new run epoch (re-derives the transient search-miss set).
    pub fn advance_epoch(&mut self) {
        self.array.advance_epoch();
    }

    /// Retire columns whose wear crossed the endurance limit onto spares;
    /// errors when a column fails with no spares left.
    pub fn service_endurance(&mut self) -> Result<(), FaultError> {
        self.array.service_endurance()
    }

    /// Current tag register contents.
    pub fn tags(&self) -> &TagVector {
        &self.tags
    }

    /// Encoder DFF stage contents (the latched previous search result).
    pub fn latch(&self) -> &TagVector {
        &self.latch
    }

    /// Accumulated operation counts since construction or the last
    /// [`reset_ops`](Self::reset_ops).
    pub fn op_counts(&self) -> OpCounts {
        self.ops
    }

    /// Clear the operation counters.
    pub fn reset_ops(&mut self) {
        self.ops = OpCounts::default();
    }

    /// `Search` instruction: compare `key` against all words in parallel.
    ///
    /// With `accumulate` (the `<acc>` field), the result is OR-ed into the
    /// tags through the accumulation unit (Fig 4c); otherwise the tags are
    /// overwritten. Counts one search plus one `SetKey`.
    pub fn search(&mut self, key: &SearchKey, accumulate: bool) {
        if accumulate {
            self.array.search_into(key, &mut self.scratch);
            self.tags.accumulate(&self.scratch);
        } else {
            self.array.search_into(key, &mut self.tags);
        }
        self.ops.searches += 1;
        self.ops.set_keys += 1;
    }

    /// [`search`](Self::search) with a precompiled `(column, bit)` plan —
    /// the engine hot path, where the group's key is scanned once per
    /// `SetKey` instead of once per PE per search. Counts one search plus
    /// one `SetKey`, exactly like [`search`](Self::search).
    pub fn search_planned(&mut self, plan: &[(usize, KeyBit)], accumulate: bool) {
        if accumulate {
            self.array.search_plan_into(plan, &mut self.scratch);
            self.tags.accumulate(&self.scratch);
        } else {
            self.array.search_plan_into(plan, &mut self.tags);
        }
        self.ops.searches += 1;
        self.ops.set_keys += 1;
    }

    /// Latch the current tags into the encoder DFF stage (Fig 7's SA→DFF
    /// chain feeding the two-bit encoder). Free: happens as part of sensing.
    pub fn latch_tags(&mut self) {
        self.latch.copy_from(&self.tags);
    }

    /// Fused search chain plus conditional writes (the trace engine's
    /// `SearchWrite`/`SearchWriteMulti` micro-ops): computes
    /// `tags = (acc ? tags : 0) | match(plans[0]) | …`, optionally latches
    /// the result, then programs each `(column, value)` under the final
    /// tags — all in one pass over the array
    /// ([`TcamArray::search_write_multi`]).
    ///
    /// Bit-identical to the unfused sequence of [`search_planned`]
    /// (first with `accumulate = acc`, the rest accumulating),
    /// [`latch_tags`] and [`write`] calls, and counted exactly like it:
    /// one search + one `SetKey` per plan, one single-column write per
    /// entry of `writes`.
    ///
    /// [`search_planned`]: Self::search_planned
    /// [`latch_tags`]: Self::latch_tags
    /// [`write`]: Self::write
    ///
    /// # Panics
    ///
    /// Panics if a write column is out of range.
    pub fn search_write_multi(
        &mut self,
        plans: &[&[(usize, KeyBit)]],
        acc: bool,
        encode: bool,
        writes: &[(usize, TernaryBit)],
    ) {
        for &(col, _) in writes {
            assert!(col < self.cols(), "write column {col} out of range");
        }
        self.array
            .search_write_multi(plans, acc, writes, &mut self.tags);
        if encode {
            self.latch_tags();
        }
        self.ops.searches += plans.len() as u64;
        self.ops.set_keys += plans.len() as u64;
        self.ops.writes_single += writes.len() as u64;
    }

    /// Batched single-column writes under the current tags (the trace
    /// engine's `WriteMulti` micro-op): values are already resolved to
    /// stores, applied in order. Counts one single-column write each.
    ///
    /// # Panics
    ///
    /// Panics if a write column is out of range.
    pub fn write_multi(&mut self, writes: &[(usize, TernaryBit)]) {
        for &(col, value) in writes {
            assert!(col < self.cols(), "write column {col} out of range");
            self.array.write_column(col, value, &self.tags);
        }
        self.ops.writes_single += writes.len() as u64;
    }

    /// Incremental search (the trace engine's `SearchDelta` micro-op):
    /// narrow the current tags by the plan's extra `(column, bit)` entries
    /// without re-initializing from the row mask — sound when the tags
    /// already hold the match of a still-valid plan prefix. Architecturally
    /// a full search: counts one search plus one `SetKey`.
    pub fn search_narrow(&mut self, plan: &[(usize, KeyBit)]) {
        self.array.search_plan_narrow(plan, &mut self.tags);
        self.ops.searches += 1;
        self.ops.set_keys += 1;
    }

    /// Bill architectural operations this PE logically performed but the
    /// engine skipped (peephole-elided dead/redundant searches), keeping
    /// `OpCounts` identical to the unfused instruction stream.
    pub fn add_ops(&mut self, delta: &OpCounts) {
        self.ops.add(delta);
    }

    /// `Write` instruction (`<encode>` = 0): program `value` into column
    /// `col` of every tagged word. 12 cycles on RRAM (Table I).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn write(&mut self, col: usize, value: KeyBit) {
        assert!(col < self.cols(), "write column {col} out of range");
        if let Some(v) = value.write_value() {
            self.array.write_column(col, v, &self.tags);
        }
        self.ops.writes_single += 1;
    }

    /// `Write` instruction (`<encode>` = 1): for **every** word, program the
    /// two cells at `col`, `col + 1` with the two-bit-encoded value of the
    /// pair `(latched result, current tag)` (Fig 7's two-bit encoder path).
    /// 23 cycles on RRAM (Table I).
    ///
    /// This is how computed bit pairs are stored in encoded form so later
    /// searches can use multi-pattern keys on them.
    ///
    /// # Panics
    ///
    /// Panics if `col + 1` is out of range.
    pub fn write_encoded(&mut self, col: usize) {
        assert!(col + 1 < self.cols(), "encoded write needs two columns");
        for row in 0..self.rows() {
            let cells = encode_pair(self.latch.get(row), self.tags.get(row));
            self.array.set_cell(row, col, cells[0]);
            self.array.set_cell(row, col + 1, cells[1]);
        }
        self.array.note_write(col);
        self.array.note_write(col + 1);
        self.ops.writes_encoded += 1;
    }

    /// `Count` instruction: population count of the tags (reduction tree).
    pub fn count(&mut self) -> usize {
        self.ops.counts += 1;
        self.tags.count()
    }

    /// `Index` instruction: priority-encoded index of the first tagged word.
    pub fn index(&mut self) -> Option<usize> {
        self.ops.indexes += 1;
        self.tags.first_index()
    }

    /// Replace the tag register contents (the `SetTag` data-register path;
    /// not counted here — callers account for the instruction).
    ///
    /// # Panics
    ///
    /// Panics if `tags.len()` differs from the row count.
    pub fn set_tags(&mut self, tags: TagVector) {
        assert_eq!(tags.len(), self.rows(), "tag length mismatch");
        self.tags = tags;
    }

    /// Borrowing variant of [`set_tags`](Self::set_tags): copies into the
    /// existing tag storage without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `tags.len()` differs from the row count.
    pub fn set_tags_from(&mut self, tags: &TagVector) {
        self.tags.copy_from(tags);
    }

    /// Set all tags (models `WriteR` of ones + `SetTag`; counted as one tag
    /// register operation).
    pub fn tag_all(&mut self) {
        self.tags = TagVector::ones(self.rows());
        self.ops.tag_ops += 1;
    }

    /// Clear all tags (same cost class as [`tag_all`](Self::tag_all)).
    pub fn tag_none(&mut self) {
        self.tags.clear();
        self.ops.tag_ops += 1;
    }

    // ----- host data-load path (not associative operations; free) -----

    /// Host load: store a plain bit.
    pub fn load_bit(&mut self, row: usize, col: usize, value: bool) {
        self.array.set_cell(row, col, TernaryBit::from_bool(value));
    }

    /// Host load: store a logical bit pair `(hi, lo)` in two-bit-encoded form
    /// at columns `col`, `col + 1`.
    pub fn load_encoded_pair(&mut self, row: usize, col: usize, hi: bool, lo: bool) {
        let cells = encode_pair(hi, lo);
        self.array.set_cell(row, col, cells[0]);
        self.array.set_cell(row, col + 1, cells[1]);
    }

    /// Host read: a plain bit (`None` if the cell stores `X`).
    pub fn read_bit(&self, row: usize, col: usize) -> Option<bool> {
        self.array.cell(row, col).to_bool()
    }

    /// Host read: decode the encoded pair at columns `col`, `col + 1` into
    /// `(hi, lo)`.
    ///
    /// # Panics
    ///
    /// Panics if the cells do not hold a valid two-bit code.
    pub fn read_encoded_pair(&self, row: usize, col: usize) -> (bool, bool) {
        self.try_read_encoded_pair(row, col)
            .expect("valid two-bit code")
    }

    /// Like [`read_encoded_pair`](Self::read_encoded_pair) but returns `None`
    /// when the cells do not hold a valid code (e.g. untouched all-zero
    /// columns before the first encoded store).
    pub fn try_read_encoded_pair(&self, row: usize, col: usize) -> Option<(bool, bool)> {
        let v = hyperap_tcam::encoding::decode_pair([
            self.array.cell(row, col),
            self.array.cell(row, col + 1),
        ])?;
        Some((v & 0b10 != 0, v & 0b01 != 0))
    }
}

/// The traditional AP abstract machine (Fig 1a): binary CAM, key + mask,
/// overwrite-only tags, reduction tree.
///
/// Differences from [`HyperPe`] (§II-D): no stored `X` state, no `Z` input,
/// and **no accumulation unit** — every search overwrites the tags, so a
/// write must follow each search (Single-Search-Single-Write).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraditionalPe {
    array: TcamArray,
    tags: TagVector,
    ops: OpCounts,
}

impl TraditionalPe {
    /// New PE with all cells `0` and tags clear.
    pub fn new(rows: usize, cols: usize) -> Self {
        TraditionalPe {
            array: TcamArray::new(rows, cols),
            tags: TagVector::zeros(rows),
            ops: OpCounts::default(),
        }
    }

    /// Number of word rows.
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Number of bit columns.
    pub fn cols(&self) -> usize {
        self.array.cols()
    }

    /// Current tags.
    pub fn tags(&self) -> &TagVector {
        &self.tags
    }

    /// Accumulated operation counts.
    pub fn op_counts(&self) -> OpCounts {
        self.ops
    }

    /// Clear the operation counters.
    pub fn reset_ops(&mut self) {
        self.ops = OpCounts::default();
    }

    /// Search: overwrites the tags (no accumulation unit).
    ///
    /// # Panics
    ///
    /// Panics if the key contains a `Z` bit — the traditional key register
    /// only stores 0/1/masked.
    pub fn search(&mut self, key: &SearchKey) {
        assert!(
            key.bits().iter().all(|b| *b != KeyBit::Z),
            "traditional AP key register has no Z state"
        );
        let (array, tags) = (&self.array, &mut self.tags);
        array.search_into(key, tags);
        self.ops.searches += 1;
        self.ops.set_keys += 1;
    }

    /// Write `value` into column `col` of every tagged word.
    ///
    /// # Panics
    ///
    /// Panics if `value` is `Z` (no ternary storage) or `col` out of range.
    pub fn write(&mut self, col: usize, value: KeyBit) {
        assert!(value != KeyBit::Z, "traditional AP cannot store X");
        assert!(col < self.cols(), "write column {col} out of range");
        if let Some(v) = value.write_value() {
            self.array.write_column(col, v, &self.tags);
        }
        self.ops.writes_single += 1;
    }

    /// Population count of the tags.
    pub fn count(&mut self) -> usize {
        self.ops.counts += 1;
        self.tags.count()
    }

    /// Priority-encoded first tagged index.
    pub fn index(&mut self) -> Option<usize> {
        self.ops.indexes += 1;
        self.tags.first_index()
    }

    /// Set all tags.
    pub fn tag_all(&mut self) {
        self.tags = TagVector::ones(self.rows());
        self.ops.tag_ops += 1;
    }

    /// Host load of a plain bit.
    pub fn load_bit(&mut self, row: usize, col: usize, value: bool) {
        self.array.set_cell(row, col, TernaryBit::from_bool(value));
    }

    /// Host read of a plain bit (`None` if `X`, which traditional AP never
    /// writes but a test may have loaded).
    pub fn read_bit(&self, row: usize, col: usize) -> Option<bool> {
        self.array.cell(row, col).to_bool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hyper_search_accumulates_when_enabled() {
        let mut pe = HyperPe::new(4, 4);
        for row in 0..4 {
            pe.load_bit(row, 0, row % 2 == 0); // col0: 1,0,1,0
            pe.load_bit(row, 1, row >= 2); // col1: 0,0,1,1
        }
        let k0 = SearchKey::parse("1---").unwrap();
        let k1 = SearchKey::parse("-1--").unwrap();
        pe.search(&k0, false);
        assert_eq!(pe.tags().iter_set().collect::<Vec<_>>(), vec![0, 2]);
        pe.search(&k1, true); // OR in rows 2,3
        assert_eq!(pe.tags().iter_set().collect::<Vec<_>>(), vec![0, 2, 3]);
        pe.search(&k1, false); // overwrite
        assert_eq!(pe.tags().iter_set().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn hyper_write_touches_only_tagged_rows() {
        let mut pe = HyperPe::new(3, 2);
        pe.load_bit(1, 0, true);
        pe.search(&SearchKey::parse("1-").unwrap(), false);
        pe.write(1, KeyBit::One);
        assert_eq!(pe.read_bit(0, 1), Some(false));
        assert_eq!(pe.read_bit(1, 1), Some(true));
        assert_eq!(pe.read_bit(2, 1), Some(false));
    }

    #[test]
    fn encoded_write_stores_latch_tag_pair() {
        let mut pe = HyperPe::new(2, 4);
        pe.load_bit(0, 0, true); // row0 hi=1
        pe.load_bit(1, 1, true); // row1 lo=1
        pe.search(&SearchKey::parse("1---").unwrap(), false); // tags = row0
        pe.latch_tags();
        pe.search(&SearchKey::parse("-1--").unwrap(), false); // tags = row1
        pe.write_encoded(2);
        assert_eq!(pe.read_encoded_pair(0, 2), (true, false));
        assert_eq!(pe.read_encoded_pair(1, 2), (false, true));
        assert_eq!(pe.op_counts().writes_encoded, 1);
    }

    #[test]
    fn op_counting_matches_actions() {
        let mut pe = HyperPe::new(2, 4);
        pe.search(&SearchKey::masked(4), false);
        pe.search(&SearchKey::masked(4), true);
        pe.tag_all();
        pe.write(0, KeyBit::One);
        pe.count();
        pe.index();
        let ops = pe.op_counts();
        assert_eq!(ops.searches, 2);
        assert_eq!(ops.set_keys, 2);
        assert_eq!(ops.writes_single, 1);
        assert_eq!(ops.counts, 1);
        assert_eq!(ops.indexes, 1);
        assert_eq!(ops.tag_ops, 1);
        pe.reset_ops();
        assert_eq!(pe.op_counts(), OpCounts::default());
    }

    #[test]
    fn count_and_index_reduce_tags() {
        let mut pe = HyperPe::new(8, 2);
        for row in [1, 4, 6] {
            pe.load_bit(row, 0, true);
        }
        pe.search(&SearchKey::parse("1-").unwrap(), false);
        assert_eq!(pe.count(), 3);
        assert_eq!(pe.index(), Some(1));
    }

    #[test]
    #[should_panic(expected = "no Z state")]
    fn traditional_rejects_z_key() {
        let mut pe = TraditionalPe::new(2, 2);
        pe.search(&SearchKey::parse("Z-").unwrap());
    }

    #[test]
    #[should_panic(expected = "cannot store X")]
    fn traditional_rejects_x_write() {
        let mut pe = TraditionalPe::new(2, 2);
        pe.tag_all();
        pe.write(0, KeyBit::Z);
    }

    #[test]
    fn traditional_search_always_overwrites() {
        let mut pe = TraditionalPe::new(2, 2);
        pe.load_bit(0, 0, true);
        pe.load_bit(1, 1, true);
        pe.search(&SearchKey::parse("1-").unwrap());
        assert!(pe.tags().get(0) && !pe.tags().get(1));
        pe.search(&SearchKey::parse("-1").unwrap());
        assert!(!pe.tags().get(0) && pe.tags().get(1));
    }

    #[test]
    fn load_and_read_encoded_pair_round_trip() {
        let mut pe = HyperPe::new(1, 2);
        for (hi, lo) in [(false, false), (false, true), (true, false), (true, true)] {
            pe.load_encoded_pair(0, 0, hi, lo);
            assert_eq!(pe.read_encoded_pair(0, 0), (hi, lo));
        }
    }
}
