//! Optimizer golden counts: the compiler-built add32/mul16 kernels' op
//! mixes and Table-I cycle totals are frozen *per opt level*, so optimizer
//! regressions are caught the same way engine regressions are (see
//! `kernel_goldens.rs` for the microcode-built streams). A drift here is
//! fine only when intentional — update the constants alongside the
//! EXPERIMENTS.md figures they feed.
//!
//! The headline acceptance bar is also enforced: both kernels must emit
//! ≥15% fewer counted micro-ops at the maximum opt level than at level 0.

use hyperap_compiler::{compile, opt, CompileOptions, CompiledKernel, OPT_LEVEL_MAX};
use hyperap_model::TechParams;

const ADD32: &str =
    "unsigned int (32) main(unsigned int (32) a, unsigned int (32) b) { return a + b; }";
const MUL16: &str =
    "unsigned int (16) main(unsigned int (16) a, unsigned int (16) b) { return a * b; }";

fn at_level(src: &str, level: u8) -> CompiledKernel {
    let opts = CompileOptions {
        opt_level: level,
        ..CompileOptions::default()
    };
    compile(src, &opts).unwrap()
}

/// `(counted ops, searches, writes_single, writes_encoded, tag_ops, rram, cmos)`
fn mix(k: &CompiledKernel) -> (u64, u64, u64, u64, u64, u64, u64) {
    let c = k.op_counts();
    (
        opt::counted_ops(k.program()),
        c.searches,
        c.writes_single,
        c.writes_encoded,
        c.tag_ops,
        c.cycles(&TechParams::rram()),
        c.cycles(&TechParams::cmos()),
    )
}

#[test]
fn add32_per_level_op_mix_and_cycles_are_frozen() {
    // Level 0 is the seed compiler's oracle output.
    assert_eq!(mix(&at_level(ADD32, 0)), (249, 170, 79, 0, 0, 1288, 577));
    // Level 1: 32 inverter LUTs absorbed into carry-chain truth tables,
    // 16 adjacent sum-bit writes fused into encoded pairs.
    assert_eq!(mix(&at_level(ADD32, 1)), (169, 138, 15, 16, 0, 824, 401));
    // Level 2 adds the self-paired multiplier layout — a no-op for add.
    assert_eq!(mix(&at_level(ADD32, 2)), (169, 138, 15, 16, 0, 824, 401));
}

#[test]
fn mul16_per_level_op_mix_and_cycles_are_frozen() {
    assert_eq!(
        mix(&at_level(MUL16, 0)),
        (2967, 2512, 133, 272, 50, 12926, 6833)
    );
    // Stream SCCP deletes the impossible radix-4 digit searches the plain
    // multiplier layout produces; liveness then kills their write chains.
    assert_eq!(mix(&at_level(MUL16, 1)), (929, 773, 61, 72, 23, 3957, 2112));
    assert_eq!(mix(&at_level(MUL16, 2)), (929, 773, 61, 72, 23, 3957, 2112));
}

#[test]
fn max_level_saves_at_least_fifteen_percent() {
    for (name, src) in [("add32", ADD32), ("mul16", MUL16)] {
        let base = opt::counted_ops(at_level(src, 0).program());
        let best = opt::counted_ops(at_level(src, OPT_LEVEL_MAX).program());
        assert!(
            (best as f64) <= 0.85 * base as f64,
            "{name}: {best} ops at max level vs {base} at level 0 — \
             less than the 15% acceptance bar"
        );
    }
}

#[test]
fn higher_levels_never_emit_more_ops() {
    for src in [ADD32, MUL16] {
        let mut prev = u64::MAX;
        for level in (0..=OPT_LEVEL_MAX).rev() {
            let ops = opt::counted_ops(at_level(src, level).program());
            assert!(
                ops >= prev || prev == u64::MAX,
                "level {level} emits fewer ops than level {}",
                level + 1
            );
            prev = ops;
        }
    }
}
