//! Synthetic arithmetic benchmarks (Figs 15-17).
//!
//! Each operation is built by the expert microcode on a single PE and
//! measured as the per-slot operation stream; the chip-level metrics come
//! from [`crate::perf`]. `validate` executes the stream on the functional
//! machine and checks every row against host arithmetic.

use hyperap_baselines::reference::OpKind;
use hyperap_core::field::Field;
use hyperap_core::machine::HyperPe;
use hyperap_core::microcode::Microcode;
use hyperap_model::timing::OpCounts;

/// The synthetic operations, mirroring [`OpKind`].
pub type SyntheticOp = OpKind;

/// A built synthetic benchmark: the program plus its I/O layout.
pub struct SyntheticBench {
    /// Operation.
    pub op: SyntheticOp,
    /// Operand width in bits.
    pub width: usize,
    mc: Microcode,
    inputs: Vec<Field>,
    output: Field,
    /// Host-side reference semantics.
    reference: fn(&[u64], usize) -> u64,
    /// Number of elementary operations one pass performs (3 for
    /// `Multi_Add`, 1 otherwise) — the Fig 17 throughput convention.
    pub ops_per_pass: u64,
}

/// The immediate operand used by the `*_i` variants (an arbitrary
/// mixed-bit constant).
pub const IMMEDIATE: u64 = 0x5A5A_5A5A_5A5A_5A5A;

fn imm(width: usize) -> u64 {
    IMMEDIATE & ((1u128 << width) - 1) as u64
}

/// Build a synthetic benchmark at the given operand width.
///
/// # Panics
///
/// Panics if the operation does not fit the PE's 256 columns at this width
/// (all Fig 15-17 configurations fit).
pub fn build(op: SyntheticOp, width: usize) -> SyntheticBench {
    let mut mc = Microcode::new(256);
    let w = width;
    type RefFn = fn(&[u64], usize) -> u64;
    let (inputs, output, reference, ops_per_pass): (Vec<Field>, Field, RefFn, u64) = match op {
        OpKind::Add => {
            let (a, b) = mc.alloc_paired_inputs("a", "b", w);
            let out = mc.add(&a, &b);
            fn r(x: &[u64], _w: usize) -> u64 {
                x[0] + x[1]
            }
            (vec![a, b], out, r, 1)
        }
        OpKind::Mul => {
            let a = mc.alloc_plain_input("a", w);
            let b = mc.alloc_self_paired_input("b", w);
            let out = mc.mul_radix4_wrapping(&a, &b);
            fn r(x: &[u64], w: usize) -> u64 {
                ((x[0] as u128 * x[1] as u128) & ((1u128 << w) - 1)) as u64
            }
            (vec![a, b], out, r, 1)
        }
        OpKind::Div => {
            let a = mc.alloc_plain_input("a", w);
            let b = mc.alloc_plain_input("b", w);
            let (out, _rem) = mc.div_rem_fused(&a, &b);
            fn r(x: &[u64], w: usize) -> u64 {
                x[0].checked_div(x[1]).unwrap_or(((1u128 << w) - 1) as u64)
            }
            (vec![a, b], out, r, 1)
        }
        OpKind::Sqrt => {
            let a = mc.alloc_plain_input("a", w);
            let out = mc.isqrt(&a);
            fn r(x: &[u64], _w: usize) -> u64 {
                (x[0] as f64).sqrt().floor() as u64
            }
            (vec![a], out, r, 1)
        }
        OpKind::Exp => {
            // Qw/2 fixed point, like the paper's fixed-point conversion.
            let a = mc.alloc_plain_input("a", w);
            let out = mc.exp_fixed(&a, (w / 2) as u32);
            fn r(x: &[u64], w: usize) -> u64 {
                let f = (w / 2) as u32;
                let xv = x[0] as f64 / (1u64 << f) as f64;
                let y = (xv.exp() * (1u64 << f) as f64) as u128;
                (y & ((1u128 << w) - 1)) as u64
            }
            (vec![a], out, r, 1)
        }
        OpKind::MultiAdd => {
            // Three consecutive additions (Fig 17): s = a + b + c + d,
            // wrapping at width.
            let (a, b) = mc.alloc_paired_inputs("a", "b", w);
            let (c, d) = mc.alloc_paired_inputs("c", "d", w);
            let s1 = mc.add(&a, &b);
            let s2 = mc.add(&c, &d);
            let s3 = mc.add(&s1, &s2);
            let out = s3.bits(0..w);
            mc.free(&s1);
            mc.free(&s2);
            fn r(x: &[u64], w: usize) -> u64 {
                (x[0] + x[1] + x[2] + x[3]) & (((1u128 << w) - 1) as u64)
            }
            (vec![a, b, c, d], out, r, 3)
        }
        OpKind::AddImm => {
            let a = mc.alloc_plain_input("a", w);
            let out = mc.add_imm(&a, imm(w));
            fn r(x: &[u64], w: usize) -> u64 {
                x[0] + (IMMEDIATE & ((1u128 << w) - 1) as u64)
            }
            (vec![a], out, r, 1)
        }
        OpKind::MulImm => {
            // Immediate multiplication: the CSA multiplier with the
            // constant embedded — only popcount(imm) partial-product
            // rows survive (operand embedding, §V-B4c).
            let a = mc.alloc_plain_input("a", w);
            let out = mc.mul_imm_wrapping(&a, imm(w));
            fn r(x: &[u64], w: usize) -> u64 {
                let k = IMMEDIATE & ((1u128 << w) - 1) as u64;
                ((x[0] as u128 * k as u128) & ((1u128 << w) - 1)) as u64
            }
            (vec![a], out, r, 1)
        }
        OpKind::DivImm => {
            let a = mc.alloc_plain_input("a", w);
            let (out, _rem) = mc.div_rem_imm(&a, imm(w) >> (w / 2));
            fn r(x: &[u64], w: usize) -> u64 {
                let k = (IMMEDIATE & ((1u128 << w) - 1) as u64) >> (w / 2);
                x[0].checked_div(k).unwrap_or(((1u128 << w) - 1) as u64)
            }
            (vec![a], out, r, 1)
        }
    };
    SyntheticBench {
        op,
        width,
        mc,
        inputs,
        output,
        reference,
        ops_per_pass,
    }
}

impl SyntheticBench {
    /// Per-pass operation counts.
    pub fn op_counts(&self) -> OpCounts {
        self.mc.program().op_counts()
    }

    /// The associative-operation program one pass executes.
    pub fn program(&self) -> &hyperap_core::program::Program {
        self.mc.program()
    }

    /// Execute on the functional machine and compare every row against the
    /// host reference.
    ///
    /// # Panics
    ///
    /// Panics on any mismatch (with the offending inputs).
    pub fn validate(&self, rows: &[Vec<u64>]) {
        let mut pe = HyperPe::new(rows.len().max(1), 256);
        for (row, tuple) in rows.iter().enumerate() {
            for (f, &v) in self.inputs.iter().zip(tuple) {
                f.store(&mut pe, row, v);
            }
        }
        self.mc.program().run(&mut pe);
        let out_mask = ((1u128 << self.output.width().min(64)) - 1) as u64;
        for (row, tuple) in rows.iter().enumerate() {
            let got = self.output.read(&pe, row);
            let expect = (self.reference)(tuple, self.width) & out_mask;
            assert_eq!(got, expect, "{} w={} inputs {tuple:?}", self.op, self.width);
        }
    }

    /// Number of scalar inputs.
    pub fn arity(&self) -> usize {
        self.inputs.len()
    }

    /// The benchmark lowered to its Table-I instruction stream (the form
    /// the architectural engines execute) — one pass over all rows.
    pub fn stream(&self) -> Vec<hyperap_isa::Instruction> {
        hyperap_isa::lower(self.mc.program())
    }

    /// Store one input tuple into `pe` at `row` using the benchmark's own
    /// column layout.
    ///
    /// # Panics
    ///
    /// Panics if `tuple` is shorter than [`Self::arity`].
    pub fn store_inputs(&self, pe: &mut HyperPe, row: usize, tuple: &[u64]) {
        for (f, &v) in self.inputs.iter().zip(tuple) {
            f.store(pe, row, v);
        }
    }

    /// Read the output field of `row` back from `pe`.
    pub fn read_output(&self, pe: &HyperPe, row: usize) -> u64 {
        self.output.read(pe, row)
    }
}

/// Measure per-pass operation counts for an op at a width (the harness
/// entry point).
pub fn measure_op(op: SyntheticOp, width: usize) -> OpCounts {
    build(op, width).op_counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rows(arity: usize, width: usize, n: usize, seed: u64) -> Vec<Vec<u64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = ((1u128 << width) - 1) as u64;
        (0..n)
            .map(|_| (0..arity).map(|_| rng.random::<u64>() & mask).collect())
            .collect()
    }

    fn check(op: SyntheticOp, width: usize) {
        let b = build(op, width);
        let mut rows = random_rows(b.arity(), width, 6, 42 + width as u64);
        // Avoid div-by-zero rows for Div.
        if matches!(op, OpKind::Div) {
            for r in &mut rows {
                if r[1] == 0 {
                    r[1] = 1;
                }
            }
        }
        // Exp domain: keep x small enough that e^x fits.
        if matches!(op, OpKind::Exp) {
            let limit =
                ((width / 2) as f64 * std::f64::consts::LN_2 * 0.9 * (1u64 << (width / 2)) as f64)
                    as u64;
            for r in &mut rows {
                r[0] = r[0].min(limit);
            }
        }
        b.validate(&rows);
    }

    #[test]
    fn add_16_and_32_validate() {
        check(OpKind::Add, 16);
        check(OpKind::Add, 32);
    }

    #[test]
    fn mul_validates() {
        check(OpKind::Mul, 16);
    }

    #[test]
    fn div_validates() {
        check(OpKind::Div, 16);
    }

    #[test]
    fn sqrt_validates() {
        check(OpKind::Sqrt, 16);
        check(OpKind::Sqrt, 32);
    }

    #[test]
    fn exp_validates_approximately() {
        // exp is fixed point: compare with 2% relative tolerance instead of
        // exact equality.
        let b = build(OpKind::Exp, 16);
        let mut pe = HyperPe::new(3, 256);
        let xs = [0u64, 128, 512]; // Q8: 0, 0.5, 2.0
        for (row, &x) in xs.iter().enumerate() {
            b.inputs[0].store(&mut pe, row, x);
        }
        b.mc.program().run(&mut pe);
        for (row, &x) in xs.iter().enumerate() {
            let got = b.output.read(&pe, row) as f64 / 256.0;
            let expect = (x as f64 / 256.0).exp();
            assert!(
                (got - expect).abs() / expect < 0.02,
                "exp({x}) = {got} vs {expect}"
            );
        }
    }

    #[test]
    fn multi_add_and_imm_variants_validate() {
        check(OpKind::MultiAdd, 16);
        check(OpKind::AddImm, 16);
        check(OpKind::MulImm, 8);
        check(OpKind::DivImm, 8);
    }

    #[test]
    fn narrower_precision_is_cheaper() {
        // §VI-C: add scales linearly, complex ops quadratically.
        let rram = hyperap_model::TechParams::rram();
        let add32 = measure_op(OpKind::Add, 32).cycles(&rram) as f64;
        let add16 = measure_op(OpKind::Add, 16).cycles(&rram) as f64;
        assert!(
            add32 / add16 > 1.7 && add32 / add16 < 2.3,
            "{}",
            add32 / add16
        );
        let mul32 = measure_op(OpKind::Mul, 32).cycles(&rram) as f64;
        let mul16 = measure_op(OpKind::Mul, 16).cycles(&rram) as f64;
        assert!(mul32 / mul16 > 3.0, "{}", mul32 / mul16);
    }

    #[test]
    fn immediate_variants_are_cheaper_than_general() {
        let rram = hyperap_model::TechParams::rram();
        assert!(
            measure_op(OpKind::AddImm, 32).cycles(&rram)
                < measure_op(OpKind::Add, 32).cycles(&rram)
        );
        assert!(
            measure_op(OpKind::MulImm, 32).cycles(&rram)
                < measure_op(OpKind::Mul, 32).cycles(&rram)
        );
        assert!(
            measure_op(OpKind::DivImm, 16).cycles(&rram)
                < measure_op(OpKind::Div, 16).cycles(&rram)
        );
    }
}
