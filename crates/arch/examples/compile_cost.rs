//! Ad-hoc timing probe for `compile_streams` (not part of the benchmark
//! suite; run with `cargo run --release -p hyperap-arch --example
//! compile_cost`).

use hyperap_arch::trace::MicroOp;
use hyperap_arch::{trace, ArchConfig};
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use std::hint::black_box;
use std::time::Instant;

fn main() {
    let mut mc = Microcode::new(256);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    let stream = lower(&mc.into_program());
    let streams: Vec<_> = (0..16).map(|_| stream.clone()).collect();
    let mut cfg = ArchConfig::paper_scaled(256);
    cfg.groups = 16;
    for label in ["fused", "unfused"] {
        let mut best = f64::INFINITY;
        for _ in 0..20 {
            let t = Instant::now();
            let tr = if label == "fused" {
                trace::compile_streams(&streams, &cfg)
            } else {
                trace::compile_streams_unfused(&streams, &cfg)
            };
            black_box(&tr);
            best = best.min(t.elapsed().as_secs_f64());
        }
        println!("{label}: {best:.6}s for 16 groups");
    }
    let mut best_one = f64::INFINITY;
    for _ in 0..20 {
        let t = Instant::now();
        black_box(trace::compile_streams(std::slice::from_ref(&stream), &cfg));
        best_one = best_one.min(t.elapsed().as_secs_f64());
    }
    println!("single compile: {best_one:.6}s");
    let one = trace::compile_streams(std::slice::from_ref(&stream), &cfg);
    let mut best_clone = f64::INFINITY;
    for _ in 0..20 {
        let t = Instant::now();
        black_box(one[0].clone());
        best_clone = best_clone.min(t.elapsed().as_secs_f64());
    }
    println!("single clone: {best_clone:.6}s");

    // Fused op mix of the add32 trace.
    let mut counts = std::collections::BTreeMap::new();
    let mut chain_lens = Vec::new();
    let mut write_lens = Vec::new();
    for seg in &one[0].segments {
        for op in &seg.ops {
            let name = match op {
                MicroOp::Search { .. } => "Search",
                MicroOp::Write { .. } => "Write",
                MicroOp::WriteEntry { .. } => "WriteEntry",
                MicroOp::WriteEncoded { .. } => "WriteEncoded",
                MicroOp::SetTag => "SetTag",
                MicroOp::ReadTag => "ReadTag",
                MicroOp::SearchWrite { .. } => "SearchWrite",
                MicroOp::SearchWriteMulti { plans, writes, .. } => {
                    chain_lens.push(plans.len());
                    write_lens.push(writes.len());
                    "SearchWriteMulti"
                }
                MicroOp::WriteMulti { .. } => "WriteMulti",
                MicroOp::SearchDelta { .. } => "SearchDelta",
            };
            *counts.entry(name).or_insert(0usize) += 1;
        }
    }
    println!("fused op mix: {counts:?}");
    println!("chain lens: {chain_lens:?}");
    println!("write lens: {write_lens:?}");
    let mut plan_lens = std::collections::BTreeMap::new();
    let mut plan_bits = std::collections::BTreeMap::new();
    for plan in &one[0].plans {
        *plan_lens.entry(plan.len()).or_insert(0usize) += 1;
        for &(_, bit) in plan {
            *plan_bits.entry(format!("{bit:?}")).or_insert(0usize) += 1;
        }
    }
    println!("plan lens: {plan_lens:?}");
    println!("plan bits: {plan_bits:?}");
    let unf = trace::compile_streams_unfused(std::slice::from_ref(&stream), &cfg);
    println!(
        "ops: unfused {} -> fused {}",
        unf[0].segments.iter().map(|s| s.ops.len()).sum::<usize>(),
        one[0].segments.iter().map(|s| s.ops.len()).sum::<usize>()
    );
}
