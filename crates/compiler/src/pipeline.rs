//! End-to-end compilation pipeline (Fig 9) and its options.

use crate::codegen::{self, CompiledKernel};
use crate::parse;
use crate::sema;

/// Compiler options, including the ablation switches used by the Fig 12/19
/// studies.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Eq. 2's α = Twrite/Tsearch (10 for RRAM, 1 for CMOS).
    pub alpha: f64,
    /// Maximum LUT inputs (§V-B4 limits this to 12; smaller values map
    /// faster and are plenty for the bundled workloads).
    pub max_lut_inputs: usize,
    /// Operation merging (§V-B4b): map LUTs across DFG node boundaries.
    pub enable_merging: bool,
    /// Operand embedding (§V-B4c): fold constants into lookup tables.
    pub enable_embedding: bool,
    /// Pair operand inputs for two-bit encoding (§V-B4a).
    pub pair_inputs: bool,
    /// Columns per PE (256 in the paper's geometry).
    pub pe_columns: usize,
    /// Optimization level.
    ///
    /// * `0` — the seed compiler's byte-identical output (the oracle the
    ///   equivalence suites compare against).
    /// * `1` — DFG constant folding/pruning ([`crate::opt::sccp::fold_dfg`]),
    ///   inverted-literal absorption into LUT truth tables, and the
    ///   post-codegen stream passes ([`crate::opt`]): stream SCCP, dead-write
    ///   elimination, loop summarization.
    /// * `2` (max, see [`OPT_LEVEL_MAX`]) — level 1 plus microcode-aware
    ///   input layout: operands consumed exclusively as the multiplier's
    ///   second argument are stored self-paired so the radix-4 digit
    ///   searches use real two-bit keys instead of degenerate plain-column
    ///   patterns.
    pub opt_level: u8,
}

/// Highest meaningful [`CompileOptions::opt_level`].
pub const OPT_LEVEL_MAX: u8 = 2;

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            alpha: 10.0,
            max_lut_inputs: 6,
            enable_merging: true,
            enable_embedding: true,
            pair_inputs: true,
            pe_columns: 256,
            opt_level: 0,
        }
    }
}

impl CompileOptions {
    /// Options tuned for a CMOS target (α = 1).
    pub fn cmos() -> Self {
        CompileOptions {
            alpha: 1.0,
            ..Self::default()
        }
    }

    /// Default options at the maximum optimization level.
    pub fn optimized() -> Self {
        CompileOptions {
            opt_level: OPT_LEVEL_MAX,
            ..Self::default()
        }
    }
}

/// Any error in the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical/syntactic error.
    Parse(String),
    /// Semantic error.
    Sema(String),
    /// A construct the AP target cannot express.
    Unsupported(String),
    /// Kernel execution error.
    Run(String),
    /// Internal invariant violation (a compiler bug).
    Internal(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Parse(m) => write!(f, "parse error: {m}"),
            CompileError::Sema(m) => write!(f, "semantic error: {m}"),
            CompileError::Unsupported(m) => write!(f, "unsupported: {m}"),
            CompileError::Run(m) => write!(f, "run error: {m}"),
            CompileError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compile C-like source to a Hyper-AP kernel.
///
/// # Errors
///
/// Returns [`CompileError`] for syntax/semantic errors and for constructs
/// the target cannot express (data-dependent shifts, signed division,
/// column overflow).
///
/// # Example
/// ```
/// use hyperap_compiler::{compile, CompileOptions};
/// let k = compile(
///     "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) { return a + b; }",
///     &CompileOptions::default(),
/// ).unwrap();
/// assert_eq!(k.run_rows(&[&[200, 100]]).unwrap(), vec![300]);
/// ```
pub fn compile(src: &str, opts: &CompileOptions) -> Result<CompiledKernel, CompileError> {
    let ast = parse::parse(src).map_err(|e| CompileError::Parse(e.to_string()))?;
    let lowered = sema::lower(&ast).map_err(|e| CompileError::Sema(e.to_string()))?;
    let dfg = if opts.opt_level >= 1 {
        crate::opt::sccp::fold_dfg(&lowered.dfg).0
    } else {
        lowered.dfg
    };
    // Resource exhaustion (e.g. a program that does not fit one PE's
    // columns) surfaces as a panic deep in the allocator; report it as a
    // compile error rather than unwinding through the public API.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        codegen::generate(dfg, lowered.input_names, lowered.output_names, opts)
    }));
    match result {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "code generation failed".to_string());
            Err(CompileError::Unsupported(format!(
                "program does not fit the target PE: {msg}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run1(src: &str, rows: &[&[u64]]) -> Vec<u64> {
        compile(src, &CompileOptions::default())
            .unwrap()
            .run_rows(rows)
            .unwrap()
    }

    #[test]
    fn fig8_five_bit_addition() {
        let src = "unsigned int (6) main(unsigned int (5) a, unsigned int (5) b) {
            unsigned int (6) c;
            c = a + b;
            return c;
        }";
        assert_eq!(run1(src, &[&[7, 21], &[31, 31], &[0, 0]]), vec![28, 62, 0]);
    }

    #[test]
    fn kernel_validates_against_dfg_reference() {
        let src = "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {
            unsigned int (8) t;
            t = (a ^ b) + (a & b);
            if (t > 100) { t = t - 100; } else { t = t + 3; }
            return t;
        }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        for (a, b) in [(0u64, 0u64), (255, 1), (77, 200), (100, 50)] {
            let got = k.run_rows(&[&[a, b]]).unwrap()[0];
            let expect = k.dfg.eval(&[a, b])[0];
            assert_eq!(got, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn opt_levels_match_level_zero_and_never_emit_more_ops() {
        // Mixed arithmetic with a constant subexpression so every pass has
        // something to chew on: DFG folding, absorption, stream SCCP,
        // liveness, summarization.
        let src = "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {
            unsigned int (8) t;
            t = (a + b) ^ (a & 15);
            t = t + (b * 0);
            return t - b;
        }";
        let reference = compile(src, &CompileOptions::default()).unwrap();
        let base = crate::opt::counted_ops(reference.program());
        let rows: Vec<[u64; 2]> = (0..32).map(|i| [i * 37 % 256, i * 101 % 256]).collect();
        let row_refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
        let want = reference.run_rows(&row_refs).unwrap();
        for level in 1..=OPT_LEVEL_MAX {
            let opts = CompileOptions {
                opt_level: level,
                ..CompileOptions::default()
            };
            let k = compile(src, &opts).unwrap();
            let ops = crate::opt::counted_ops(k.program());
            assert!(
                ops <= base,
                "level {level} emitted {ops} > level 0's {base}"
            );
            assert_eq!(k.run_rows(&row_refs).unwrap(), want, "level {level}");
        }
    }

    #[test]
    fn optimized_multiplication_validates_against_dfg() {
        // Exercises the level-2 self-paired multiplier operand layout.
        let src = "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {
            return a * b;
        }";
        let k = compile(src, &CompileOptions::optimized()).unwrap();
        assert!(k.opt_report().deleted() > 0, "optimizer found nothing");
        for (a, b) in [(0u64, 0u64), (255, 255), (13, 21), (200, 3), (1, 254)] {
            let got = k.run_rows(&[&[a, b]]).unwrap()[0];
            assert_eq!(got, k.dfg.eval(&[a, b])[0], "a={a} b={b}");
        }
    }

    #[test]
    fn level_zero_output_is_untouched_by_the_optimizer() {
        let src = "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) {
            return a + b;
        }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        assert_eq!(*k.opt_report(), crate::opt::OptReport::default());
    }

    #[test]
    fn merging_reduces_writes() {
        // Fig 12a: chained additions with and without operation merging.
        let src = "unsigned int (3) main(
            unsigned int (1) a, unsigned int (1) b,
            unsigned int (1) c, unsigned int (1) d
        ) {
            unsigned int (2) e;
            unsigned int (2) f;
            unsigned int (3) g;
            e = a + b;
            f = c + d;
            g = e + f;
            return g;
        }";
        let merged = compile(src, &CompileOptions::default()).unwrap();
        let unmerged = compile(
            src,
            &CompileOptions {
                enable_merging: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let (mc, uc) = (merged.op_counts(), unmerged.op_counts());
        assert!(
            mc.writes() < uc.writes(),
            "merged {mc:?} vs unmerged {uc:?}"
        );
        // Both still correct.
        for (inputs, want) in [
            ([1u64, 1, 1, 1], 4u64),
            ([1, 0, 0, 1], 2),
            ([0, 0, 0, 0], 0),
        ] {
            assert_eq!(merged.run_rows(&[&inputs]).unwrap(), vec![want]);
            assert_eq!(unmerged.run_rows(&[&inputs]).unwrap(), vec![want]);
        }
    }

    #[test]
    fn embedding_reduces_searches() {
        // Fig 12b: immediate operand embedded vs materialized.
        let src = "unsigned int (3) main(unsigned int (2) a) {
            unsigned int (2) b;
            unsigned int (3) c;
            b = 2;
            c = a + b;
            return c;
        }";
        let embedded = compile(src, &CompileOptions::default()).unwrap();
        let materialized = compile(
            src,
            &CompileOptions {
                enable_embedding: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let (e, m) = (embedded.op_counts(), materialized.op_counts());
        assert!(e.searches < m.searches, "embedded {e:?} vs {m:?}");
        for a in 0..4u64 {
            assert_eq!(embedded.run_rows(&[&[a]]).unwrap(), vec![a + 2]);
            assert_eq!(materialized.run_rows(&[&[a]]).unwrap(), vec![a + 2]);
        }
    }

    #[test]
    fn multiplication_dispatches_to_microcode() {
        let src = "unsigned int (8) main(unsigned int (4) a, unsigned int (4) b) {
            return a * b;
        }";
        let rows: Vec<Vec<u64>> = (0..16).map(|a| vec![a, (a * 3 + 1) % 16]).collect();
        let refs: Vec<&[u64]> = rows.iter().map(|v| v.as_slice()).collect();
        let k = compile(src, &CompileOptions::default()).unwrap();
        let out = k.run_rows(&refs).unwrap();
        for (row, o) in rows.iter().zip(&out) {
            assert_eq!(*o, row[0] * row[1]);
        }
        assert!(k.op_counts().writes_encoded > 0, "CSA multiplier used");
    }

    #[test]
    fn division_and_sqrt() {
        let src = "unsigned int (8) main(unsigned int (8) a, unsigned int (8) b) {
            return a / b + sqrt(a);
        }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        for (a, b) in [(100u64, 7u64), (255, 16), (9, 3)] {
            let got = k.run_rows(&[&[a, b]]).unwrap()[0];
            let expect = (a / b + (a as f64).sqrt().floor() as u64) & 0xFF;
            assert_eq!(got, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn conditional_statement_fig13b() {
        let src =
            "unsigned int (1) main(unsigned int (1) a, unsigned int (4) x, unsigned int (4) y) {
            unsigned int (1) b;
            if (a == 1) { b = x > y; } else { b = x < y; }
            return b;
        }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        assert_eq!(k.run_rows(&[&[1, 9, 3]]).unwrap(), vec![1]);
        assert_eq!(k.run_rows(&[&[0, 9, 3]]).unwrap(), vec![0]);
        assert_eq!(k.run_rows(&[&[0, 2, 3]]).unwrap(), vec![1]);
    }

    #[test]
    fn struct_kernel_round_trips() {
        let src = "
            struct acc { unsigned int (8) sum; unsigned int (8) cnt; };
            struct acc main(struct acc s, unsigned int (8) v) {
                struct acc r;
                r.sum = s.sum + v;
                r.cnt = s.cnt + 1;
                return r;
            }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        let out = k.run_rows_multi(&[&[10, 2, 5]]).unwrap();
        assert_eq!(out, vec![vec![15, 3]]);
    }

    #[test]
    fn loops_unroll_into_straightline_code() {
        let src = "unsigned int (8) main(unsigned int (4) a) {
            unsigned int (8) s;
            s = 0;
            for (i = 0; i < 4; i += 1) { s = s + (a << i); }
            return s;
        }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        assert_eq!(k.run_rows(&[&[5]]).unwrap(), vec![75]); // 5 * 15
    }

    #[test]
    fn word_parallel_execution_across_rows() {
        let src = "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) { return a + b; }";
        let k = compile(src, &CompileOptions::default()).unwrap();
        let rows: Vec<Vec<u64>> = (0..32).map(|i| vec![i * 7 % 256, i * 13 % 256]).collect();
        let refs: Vec<&[u64]> = rows.iter().map(|v| v.as_slice()).collect();
        let out = k.run_rows(&refs).unwrap();
        for (row, o) in rows.iter().zip(&out) {
            assert_eq!(*o, row[0] + row[1]);
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            compile("int main() { return 0; }", &CompileOptions::default()),
            Err(CompileError::Parse(_))
        ));
        assert!(matches!(
            compile(
                "unsigned int (4) main(unsigned int (4) a) { return b; }",
                &CompileOptions::default()
            ),
            Err(CompileError::Sema(_))
        ));
        assert!(matches!(
            compile(
                "int (8) main(int (8) a, int (8) b) { return a / b; }",
                &CompileOptions::default()
            ),
            Err(CompileError::Unsupported(_))
        ));
    }
}
