//! Eq. 2 ablation: how α = Twrite/Tsearch retargets LUT generation between
//! RRAM (α = 10) and CMOS (α = 1), and what each compiler optimization
//! contributes (DESIGN.md's design-choice ablations).

use hyperap_bench::header;
use hyperap_compiler::{compile, CompileOptions};
use hyperap_model::TechParams;

fn main() {
    let src = "unsigned int (10) main(unsigned int (8) a, unsigned int (8) b) {
        unsigned int (9) t;
        t = (a & b) + (a | b);
        return t + (a ^ b) + 37;
    }";
    header("Eq. 2 cost-function ablation (merged logic + adds, 8-bit)");
    for (name, alpha) in [("RRAM  (alpha = 10)", 10.0), ("CMOS  (alpha = 1)", 1.0)] {
        let kernel = compile(
            src,
            &CompileOptions {
                alpha,
                ..Default::default()
            },
        )
        .unwrap();
        let c = kernel.op_counts();
        let tech = if alpha > 1.0 {
            TechParams::rram()
        } else {
            TechParams::cmos()
        };
        println!(
            "  {name}: {:>4} searches {:>3} writes -> {:>5} cycles on its target",
            c.searches,
            c.writes(),
            c.cycles(&tech)
        );
    }

    header("Per-optimization ablation (same program)");
    let variants: [(&str, CompileOptions); 4] = [
        ("all optimizations", CompileOptions::default()),
        (
            "no operation merging",
            CompileOptions {
                enable_merging: false,
                ..Default::default()
            },
        ),
        (
            "no operand embedding",
            CompileOptions {
                enable_embedding: false,
                ..Default::default()
            },
        ),
        (
            "no input pairing",
            CompileOptions {
                pair_inputs: false,
                ..Default::default()
            },
        ),
    ];
    let rram = TechParams::rram();
    let base = compile(src, &variants[0].1)
        .unwrap()
        .op_counts()
        .cycles(&rram);
    for (name, opts) in variants {
        let c = compile(src, &opts).unwrap().op_counts();
        let cycles = c.cycles(&rram);
        println!(
            "  {name:<22}: {:>4} searches {:>3} writes {:>6} cycles ({:+.0}% vs full)",
            c.searches,
            c.writes(),
            cycles,
            (cycles as f64 / base as f64 - 1.0) * 100.0
        );
    }
}
