//! Nvidia Titan XP reference model (Table II).
//!
//! The paper obtains GPU results from \[21\] and \[4\]; its reported GPU
//! latency "contains the off-chip memory access time and the latency of
//! arithmetic operations" (Fig 15 caption). These figures are
//! *reconstructed* from device characteristics (3840 CUDA cores at
//! 1.58 GHz, 250 W, 471 mm², GDDR5X latency) — they provide the GPU series
//! shape for the regenerated figures, not paper-exact values.

use crate::imp::KernelOps;
use crate::reference::{OpKind, OpRecord};
use hyperap_model::config::GPU_TITAN_XP;
use serde::{Deserialize, Serialize};

/// GPU model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Off-chip memory round-trip latency in ns (GDDR5X).
    pub memory_latency_ns: f64,
    /// Effective memory bandwidth in GB/s.
    pub bandwidth_gb_s: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            memory_latency_ns: 400.0,
            bandwidth_gb_s: 547.0,
        }
    }
}

impl GpuModel {
    /// Instruction issue cycles per operation (SM-level throughput cost;
    /// int32 add ≈ 1, mul ≈ 1, div/sqrt/exp via multi-instruction
    /// sequences, cf. \[4\]).
    fn op_cycles(op: OpKind) -> f64 {
        match op {
            OpKind::Add | OpKind::AddImm => 1.0,
            OpKind::MultiAdd => 3.0,
            OpKind::Mul | OpKind::MulImm => 1.0,
            OpKind::Div | OpKind::DivImm => 20.0,
            OpKind::Sqrt => 8.0,
            OpKind::Exp => 12.0,
        }
    }

    /// Peak throughput for an operation in GOPS (compute-bound; the
    /// streaming benchmarks are usually bandwidth-bound, see
    /// [`streaming_throughput_gops`](Self::streaming_throughput_gops)).
    pub fn compute_throughput_gops(&self, op: OpKind) -> f64 {
        GPU_TITAN_XP.simd_slots as f64 * GPU_TITAN_XP.frequency_ghz / Self::op_cycles(op)
    }

    /// Memory-bound throughput for one 32-bit-in/32-bit-out streaming
    /// operation (two operands read, one result written = 12 bytes/op).
    pub fn streaming_throughput_gops(&self, op: OpKind) -> f64 {
        let bytes_per_op = 12.0;
        let mem = self.bandwidth_gb_s / bytes_per_op; // G-ops/s
        mem.min(self.compute_throughput_gops(op))
    }

    /// A full [`OpRecord`] for the figure tables.
    pub fn record(&self, op: OpKind) -> OpRecord {
        let throughput = self.streaming_throughput_gops(op);
        OpRecord {
            op,
            latency_ns: self.memory_latency_ns + Self::op_cycles(op) / GPU_TITAN_XP.frequency_ghz,
            throughput_gops: throughput,
            power_eff: throughput / GPU_TITAN_XP.tdp_w,
            area_eff: throughput / GPU_TITAN_XP.area_mm2,
        }
    }

    /// Kernel time for `n` elements (seconds): max of compute and memory
    /// time (roofline).
    pub fn kernel_time_s(&self, ops: &KernelOps, n: u64) -> f64 {
        let cycles = ops.adds * Self::op_cycles(OpKind::Add)
            + ops.muls * Self::op_cycles(OpKind::Mul)
            + ops.divs * Self::op_cycles(OpKind::Div)
            + ops.sqrts * Self::op_cycles(OpKind::Sqrt)
            + ops.exps * Self::op_cycles(OpKind::Exp);
        let compute_s =
            cycles * n as f64 / (GPU_TITAN_XP.simd_slots as f64 * GPU_TITAN_XP.frequency_ghz * 1e9);
        // Each element streams in/out once plus neighbour traffic.
        let bytes = (12.0 + 4.0 * ops.transfers) * n as f64;
        let memory_s = bytes / (self.bandwidth_gb_s * 1e9);
        compute_s.max(memory_s)
    }

    /// Kernel energy for `n` elements (joules): TDP × time (the GPU runs at
    /// high utilization for these data-parallel kernels).
    pub fn kernel_energy_j(&self, ops: &KernelOps, n: u64) -> f64 {
        GPU_TITAN_XP.tdp_w * self.kernel_time_s(ops, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_bandwidth_bound() {
        let g = GpuModel::default();
        assert!(g.streaming_throughput_gops(OpKind::Add) < g.compute_throughput_gops(OpKind::Add));
    }

    #[test]
    fn div_is_slower_than_add() {
        let g = GpuModel::default();
        assert!(g.compute_throughput_gops(OpKind::Div) < g.compute_throughput_gops(OpKind::Add));
        assert!(g.record(OpKind::Div).latency_ns > g.record(OpKind::Add).latency_ns);
    }

    #[test]
    fn latency_dominated_by_memory() {
        // Fig 15 caption: GPU latency contains the off-chip access time.
        let g = GpuModel::default();
        let r = g.record(OpKind::Add);
        assert!(r.latency_ns >= g.memory_latency_ns);
    }

    #[test]
    fn kernel_roofline_behaviour() {
        let g = GpuModel::default();
        // A div-heavy kernel is compute-bound; a copy-like kernel is
        // bandwidth-bound.
        let divs = KernelOps {
            divs: 50.0,
            ..KernelOps::default()
        };
        let adds = KernelOps {
            adds: 1.0,
            ..KernelOps::default()
        };
        let n = 10_000_000;
        assert!(g.kernel_time_s(&divs, n) > g.kernel_time_s(&adds, n));
    }
}
