//! Engine benchmark: measures the cycle simulator's execution engine and
//! emits machine-readable `BENCH_SIM.json`.
//!
//! Five comparisons:
//!
//! 1. **Kernel**: `TcamArray::search` (allocates a fresh `TagVector` per
//!    call) vs `TcamArray::search_into` (reuses the caller's buffer) — the
//!    steady-state engine path.
//! 2. **Engine**: the instruction-at-a-time interpreter
//!    (`ApMachine::run_interpreted`) vs the trace-compiled engine
//!    (`ApMachine::run`, compile included, plus `run_compiled` with the
//!    compile hoisted out) — bit-identical results, wall-clock only.
//! 3. **Engine threading**: the trace engine under `ExecMode::Sequential`
//!    vs `ExecMode::Parallel` vs `ExecMode::Auto`. On a single-CPU host the
//!    threaded run cannot win — the host core count is recorded in the JSON
//!    so readers can interpret the ratio.
//! 4. **Storage layout**: the trace engine over per-PE `TcamArray` objects
//!    (`ApMachine`) vs the slab engine (`SlabMachine`) running the same
//!    compiled traces over contiguous multi-PE arenas with fused kernels —
//!    bit-identical results, wall-clock only.
//! 5. **Allocation hygiene**: the optimized engine vs a faithful emulation
//!    of the pre-optimization engine (fresh active-PE vector and cloned
//!    instruction/key per step, a fresh `TagVector` per search, a full-width
//!    single-bit `SearchKey` per write, cloned registers on every tag
//!    transfer). Identical compute, seed-era allocation behavior.
//! 6. **Peephole fusion**: both engines running precompiled *fused* traces
//!    (the default `compile_streams` pipeline, which collapses
//!    Search→SetTag→Write chains into single-sweep micro-ops) vs the same
//!    streams compiled with `compile_streams_unfused` — bit-identical
//!    results and identical architectural cycle counts, wall-clock only.
//! 7. **Similarity search**: the CAM-native Hamming top-k query on the
//!    word-parallel slab engine vs the scalar per-PE reference engine over
//!    identical stored codes (both Sequential, so the ratio isolates the
//!    bit-plane word kernels rather than host threading), the raw
//!    accumulate-kernel word throughput, and the binarized-HDC classifier's
//!    per-inference latency on both engines. All engine results are
//!    cross-checked against the pure-host references before timing.
//!
//! The `run`-based columns include trace compilation; both machines keep a
//! content-addressed trace cache, so steady-state reps pay one stream
//! comparison instead of a recompile (the first, uncached call is warmup).
//!
//! Workload: the lowered 32-bit adder stream on every PE of a
//! 16-group x 64-PE machine (1024 PEs of 256x256), the paper's bread-and-
//! butter arithmetic kernel (§V).
//!
//! The emitted JSON carries a `meta` block stamping the measurement with
//! the producing git revision and an FNV-1a hash of the machine geometry,
//! so a checked-in baseline can be traced to the commit and geometry that
//! produced it.

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode, SlabMachine};
use hyperap_compiler::{compile, opt, CompileOptions, OPT_LEVEL_MAX};
use hyperap_core::machine::HyperPe;
use hyperap_core::microcode::Microcode;
use hyperap_isa::lower::lower;
use hyperap_isa::Instruction;
use hyperap_tcam::array::TcamArray;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::tags::TagVector;
use hyperap_workloads::similarity as wsim;
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 256;
const COLS: usize = 256;
const GROUPS: usize = 16;

/// Short git revision of the working tree producing this measurement, or
/// `"unknown"` outside a git checkout.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// FNV-1a over little-endian words — stamps the geometry so a baseline
/// can't be silently compared across machine shapes.
fn fnv1a(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Median ns/call of `f`, batch-calibrated to ~50 ms samples.
fn ns_per_call<F: FnMut()>(mut f: F) -> f64 {
    let calib = Instant::now();
    let mut warm = 0u64;
    while calib.elapsed().as_secs_f64() < 0.05 {
        f();
        warm += 1;
    }
    let batch = warm.max(1);
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// One group of the pre-optimization engine, reproduced through the same
/// public PE APIs: compute is identical to the optimized engine (so final
/// machine state matches), but every per-step allocation of the seed —
/// fresh active-PE vector, cloned instruction and key, a fresh `TagVector`
/// per search, a full-width key per write, cloned registers on tag
/// transfers — is paid.
struct SeedStyleGroup {
    pes: Vec<HyperPe>,
    data_regs: Vec<TagVector>,
    key: SearchKey,
    bank_mask: u8,
    pes_per_bank: usize,
}

impl SeedStyleGroup {
    fn new(pes: usize, pes_per_bank: usize) -> Self {
        SeedStyleGroup {
            pes: (0..pes).map(|_| HyperPe::new(ROWS, COLS)).collect(),
            data_regs: vec![TagVector::zeros(ROWS); pes],
            key: SearchKey::masked(COLS),
            bank_mask: 0xFF,
            pes_per_bank,
        }
    }

    fn active(&self) -> Vec<usize> {
        (0..self.pes.len())
            .filter(|&pe| {
                let bank = pe / self.pes_per_bank;
                bank >= 8 || self.bank_mask >> bank & 1 == 1
            })
            .collect()
    }

    fn execute(&mut self, inst: &Instruction) {
        let inst = inst.clone(); // the seed run loop cloned each step
        match &inst {
            Instruction::SetKey { key } => self.key = key.clone(),
            Instruction::Search { acc, encode } => {
                let key = self.key.clone();
                for pe in self.active() {
                    black_box(TagVector::zeros(ROWS)); // seed: fresh result buffer
                    self.pes[pe].search(&key, *acc);
                    if *encode {
                        black_box(self.pes[pe].tags().clone()); // seed: latch clone
                        self.pes[pe].latch_tags();
                    }
                }
            }
            Instruction::Write { col, encode } => {
                let key = self.key.clone();
                let col = *col as usize;
                for pe in self.active() {
                    if *encode {
                        self.pes[pe].write_encoded(col);
                    } else {
                        let value = key.bit(col);
                        if value.write_value().is_some() {
                            // seed: one full-width single-bit key per write,
                            // scanned column by column by the write driver
                            let k = SearchKey::masked(COLS).with_bit(col, value);
                            black_box(k.active_count());
                            self.pes[pe].write(col, value);
                        }
                    }
                }
            }
            Instruction::Count => {
                let mut results = Vec::new();
                for pe in self.active() {
                    results.push((pe, self.pes[pe].count()));
                }
                black_box(results);
            }
            Instruction::Index => {
                let mut results = Vec::new();
                for pe in self.active() {
                    results.push((pe, self.pes[pe].index()));
                }
                black_box(results);
            }
            Instruction::WriteR { addr, imm } => {
                let value = reg_from_bytes(imm);
                if *addr == BROADCAST_ADDR {
                    for pe in self.active() {
                        self.data_regs[pe] = value.clone();
                    }
                } else {
                    let pe = (*addr as usize).min(self.pes.len() - 1);
                    self.data_regs[pe] = value;
                }
            }
            Instruction::SetTag => {
                for pe in self.active() {
                    let reg = self.data_regs[pe].clone();
                    self.pes[pe].set_tags(reg);
                }
            }
            Instruction::ReadTag => {
                for pe in self.active() {
                    self.data_regs[pe] = self.pes[pe].tags().clone();
                }
            }
            Instruction::Broadcast { group_mask } => self.bank_mask = *group_mask,
            Instruction::MovR { .. } | Instruction::ReadR { .. } | Instruction::Wait { .. } => {}
        }
    }
}

fn reg_from_bytes(bytes: &[u8]) -> TagVector {
    let mut t = TagVector::zeros(ROWS);
    for row in 0..ROWS {
        if bytes.get(row / 8).copied().unwrap_or(0) >> (row % 8) & 1 == 1 {
            t.set(row, true);
        }
    }
    t
}

/// Per-opt-level static cost of a compiler-built kernel:
/// `(counted micro-ops, Table-I RRAM cycles)` for levels `0..=OPT_LEVEL_MAX`.
fn compiler_columns(src: &str) -> Vec<(u64, u64)> {
    (0..=OPT_LEVEL_MAX)
        .map(|level| {
            let opts = CompileOptions {
                opt_level: level,
                ..CompileOptions::default()
            };
            let k = compile(src, &opts).expect("bench kernel compiles");
            (
                opt::counted_ops(k.program()),
                k.op_counts().cycles(&hyperap_model::TechParams::rram()),
            )
        })
        .collect()
}

fn add32_stream() -> Vec<Instruction> {
    let mut mc = Microcode::new(COLS);
    let (x, y) = mc.alloc_paired_inputs("a", "b", 32);
    let _ = mc.add(&x, &y);
    lower(&mc.into_program())
}

fn engine_config(exec: ExecMode) -> ArchConfig {
    let mut cfg = ArchConfig::paper_scaled(ROWS);
    cfg.groups = GROUPS;
    cfg.exec = exec;
    cfg
}

fn seed_machine(m: &mut ApMachine) {
    for pe in 0..m.config().total_pes() {
        for row in 0..8 {
            m.pe_mut(pe)
                .load_encoded_pair(row, 0, row & 1 == 1, pe & 1 == 1);
        }
    }
}

fn seed_slab(m: &mut SlabMachine) {
    for pe in 0..m.config().total_pes() {
        for row in 0..8 {
            m.load_encoded_pair(pe, row, 0, row & 1 == 1, pe & 1 == 1);
        }
    }
}

fn main() {
    let reps: usize = std::env::var("HYPERAP_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    // Host shape for interpreting every threaded number downstream: logical
    // CPUs, physical cores (SMT folded out), and whether the fork-join
    // engine considers threading profitable here at all — the same
    // predicate `ExecMode::Auto` and the serving layer's scaling floors
    // key off.
    let host_cpus = hyperap_arch::par::logical_cpus();
    let physical_cores = hyperap_arch::par::physical_cores();
    let parallel_pays = hyperap_arch::par::parallel_pays();

    // 1. Kernel: allocating vs buffer-reusing search. The two loops must
    // differ only in where the result lands, so the key is laundered
    // through `black_box` once (outside the timed loops — an in-loop
    // `black_box(&key)` forces a reload of the key through a clobbered
    // pointer on every call and can dominate the measurement), and both
    // consume the result the same way.
    let mut array = TcamArray::pe_sized();
    for row in 0..ROWS {
        array.store_field(row, 0, 64, row as u64 * 0x9E37_79B9);
    }
    let mut key = SearchKey::masked(COLS);
    key.set_field(0, 12, 0xABC);
    let key = black_box(key);
    let ns_search = ns_per_call(|| {
        let tags = array.search(&key);
        black_box(&tags);
    });
    let mut tags = TagVector::zeros(ROWS);
    let ns_search_into = ns_per_call(|| {
        array.search_into(&key, &mut tags);
        black_box(&tags);
    });

    // Bit-plane word-kernel throughput: one plan entry over a 1024-PE slab
    // is a straight sweep of rows × pe_words ANDs — report how many 64-PE
    // plane words one nanosecond buys (each word is one ALU op covering
    // 64 PEs).
    let (slab_pes, slab_cols) = (1024usize, 16usize);
    let mut wslab = hyperap_tcam::slab::TcamSlab::new(slab_pes, ROWS, slab_cols);
    for pe in 0..slab_pes {
        for row in 0..ROWS {
            for col in 0..slab_cols {
                let v = match (pe + 3 * row + 7 * col) % 3 {
                    0 => hyperap_tcam::bit::TernaryBit::Zero,
                    1 => hyperap_tcam::bit::TernaryBit::One,
                    _ => hyperap_tcam::bit::TernaryBit::X,
                };
                wslab.set_cell(pe, row, col, v);
            }
        }
    }
    let plan = black_box([
        (0usize, hyperap_tcam::KeyBit::One),
        (3, hyperap_tcam::KeyBit::Zero),
    ]);
    let mut plan_out = vec![0u64; wslab.plane_words()];
    let ns_word_search = ns_per_call(|| {
        wslab.search_plan_multi_into(&plan, None, &mut plan_out);
        black_box(&plan_out);
    });
    let words_per_ns = (plan.len() * wslab.plane_words()) as f64 / ns_word_search;

    // 2 & 3. Engine runs: same streams everywhere.
    let stream = add32_stream();
    let streams: Vec<Vec<Instruction>> = (0..GROUPS).map(|_| stream.clone()).collect();
    let total_instructions = (GROUPS * stream.len()) as f64;

    let run_mode = |mode: ExecMode, interpreted: bool| {
        let mut m = ApMachine::new(engine_config(mode));
        seed_machine(&mut m);
        best_secs(reps, || {
            if interpreted {
                black_box(m.run_interpreted(&streams));
            } else {
                black_box(m.run(&streams));
            }
        })
    };
    let interp_seq_s = run_mode(ExecMode::Sequential, true);
    let interp_par_s = run_mode(ExecMode::Parallel, true);
    let seq_s = run_mode(ExecMode::Sequential, false);
    let par_s = run_mode(ExecMode::Parallel, false);
    let auto_s = run_mode(ExecMode::Auto, false);
    // Trace reuse: compile once, run the compiled traces repeatedly (the
    // steady state of a workload that executes the same kernel many times).
    // 6 (measured here). Peephole fusion: precompiled fused vs unfused
    // traces, run on the *same* machine instance — the per-PE machine is
    // half a million small allocations, so two separately allocated
    // machines can land in different heap layouts and skew the ratio.
    let unfused_traces = {
        let cfg = engine_config(ExecMode::Sequential);
        hyperap_arch::trace::compile_streams_unfused(&streams, &cfg)
    };
    let (precompiled_s, precompiled_unfused_s) = {
        let mut m = ApMachine::new(engine_config(ExecMode::Sequential));
        seed_machine(&mut m);
        let traces = hyperap_arch::trace::compile_streams(&streams, m.config());
        let fused = best_secs(reps, || {
            black_box(m.run_compiled(&traces));
        });
        let unfused = best_secs(reps, || {
            black_box(m.run_compiled(&unfused_traces));
        });
        (fused, unfused)
    };

    // 4. Slab engine: same compiled traces over contiguous multi-PE arenas.
    let run_slab = |mode: ExecMode| {
        let mut m = SlabMachine::new(engine_config(mode));
        seed_slab(&mut m);
        best_secs(reps, || {
            black_box(m.run(&streams));
        })
    };
    let slab_seq_s = run_slab(ExecMode::Sequential);
    let slab_par_s = run_slab(ExecMode::Parallel);
    let slab_auto_s = run_slab(ExecMode::Auto);
    let (slab_precompiled_s, slab_precompiled_unfused_s) = {
        let mut m = SlabMachine::new(engine_config(ExecMode::Sequential));
        seed_slab(&mut m);
        let traces = hyperap_arch::trace::compile_streams(&streams, m.config());
        let fused = best_secs(reps, || {
            black_box(m.run_compiled(&traces));
        });
        let unfused = best_secs(reps, || {
            black_box(m.run_compiled(&unfused_traces));
        });
        (fused, unfused)
    };

    let cfg = engine_config(ExecMode::Sequential);
    let per_group = cfg.pes_per_group();
    let mut seed_groups: Vec<SeedStyleGroup> = (0..GROUPS)
        .map(|_| SeedStyleGroup::new(per_group, cfg.pes_per_bank()))
        .collect();
    let seed_style_s = best_secs(reps, || {
        for (g, stream) in streams.iter().enumerate() {
            for inst in stream {
                seed_groups[g].execute(inst);
            }
        }
    });

    // 7. Similarity search: Hamming top-k on the word-parallel slab engine
    // vs the scalar per-PE reference engine over identical stored codes.
    // Both run Sequential so the speedup isolates the bit-plane word
    // kernels (64 PEs per ALU op), not host threading.
    let sim_rows = 64usize;
    let sim_k = 16usize;
    let codes = wsim::CodeSet::generate(0x51AB, cfg.total_pes(), sim_rows, COLS);
    let query = codes.random_query(7);
    let query_key = codes.query_key(&query, COLS);
    let mut sim_ap = ApMachine::new(engine_config(ExecMode::Sequential));
    codes.load_ap(&mut sim_ap);
    let mut sim_slab = SlabMachine::new(engine_config(ExecMode::Sequential));
    codes.load_slab(&mut sim_slab);
    let host_hits = codes.host_topk(&query, sim_k);
    let ap_out = sim_ap.hamming_topk(&query_key, sim_rows, sim_k);
    let slab_out = sim_slab.hamming_topk(&query_key, sim_rows, sim_k);
    assert_eq!(ap_out.hits, host_hits, "scalar engine != host reference");
    assert_eq!(slab_out.hits, host_hits, "slab engine != host reference");
    assert_eq!(
        ap_out.stats, slab_out.stats,
        "engines disagree on priced stats"
    );
    let sim_scalar_query_ns = ns_per_call(|| {
        black_box(sim_ap.hamming_topk(&query_key, sim_rows, sim_k));
    });
    let sim_slab_query_ns = ns_per_call(|| {
        black_box(sim_slab.hamming_topk(&query_key, sim_rows, sim_k));
    });

    // Raw accumulate-kernel throughput on one contiguous arena: how many
    // 64-PE plane words per nanosecond the per-plane miss accumulation
    // sweeps (each word is one ALU op covering 64 PEs).
    let mut sim_arena = hyperap_tcam::slab::TcamSlab::new(cfg.total_pes(), sim_rows, COLS);
    for pe in 0..cfg.total_pes() {
        for row in 0..sim_rows {
            for (col, &b) in codes.codes[pe * sim_rows + row].iter().enumerate() {
                sim_arena.set_cell(
                    pe,
                    row,
                    col,
                    if b {
                        hyperap_tcam::bit::TernaryBit::One
                    } else {
                        hyperap_tcam::bit::TernaryBit::Zero
                    },
                );
            }
        }
    }
    let sim_plan = query_key.compile_plan();
    let sim_accumulated = sim_arena.hamming_accumulated_cols(&sim_plan, sim_rows);
    let mut dist_buf = vec![0u32; cfg.total_pes() * sim_rows];
    let sim_accum_ns = ns_per_call(|| {
        sim_arena.hamming_into(&sim_plan, sim_rows, &mut dist_buf);
        black_box(&dist_buf);
    });
    let sim_words_per_ns =
        (sim_accumulated * sim_arena.hamming_words_per_col(sim_rows)) as f64 / sim_accum_ns;

    // Binarized-HDC classification: class hypervectors in CAM rows,
    // inference = one nearest-neighbor query per sample.
    let hdc_cfg = wsim::HdcConfig {
        dim: COLS,
        classes: 64,
        train_per_class: 8,
        test_per_class: 2,
        noise_per_million: 60_000,
        seed: 0x51AB_D0C5,
    };
    let hdc = wsim::HdcDataset::generate(hdc_cfg);
    let model = wsim::HdcModel::train(&hdc);
    let hdc_rows = model.rows_needed(cfg.total_pes()).max(1);
    let mut hdc_ap = ApMachine::new(engine_config(ExecMode::Sequential));
    model.load_ap(&mut hdc_ap, hdc_rows);
    let mut hdc_slab = SlabMachine::new(engine_config(ExecMode::Sequential));
    model.load_slab(&mut hdc_slab, hdc_rows);
    let sample = &hdc.test[0].1;
    let host_class = model.classify_host(sample, cfg.total_pes(), hdc_rows);
    assert_eq!(model.classify_ap(&hdc_ap, sample, hdc_rows), host_class);
    assert_eq!(model.classify_slab(&hdc_slab, sample, hdc_rows), host_class);
    let hdc_scalar_ns = ns_per_call(|| {
        black_box(model.classify_ap(&hdc_ap, sample, hdc_rows));
    });
    let hdc_slab_ns = ns_per_call(|| {
        black_box(model.classify_slab(&hdc_slab, sample, hdc_rows));
    });
    let hdc_accuracy = model.accuracy_host(&hdc.test, cfg.total_pes(), hdc_rows);

    // 8. Checkpoint cost: full and incremental snapshots of the 1024-PE
    // slab machine (post-add32 state) into an in-memory sink, plus restore
    // latency. The incremental column re-dirties only group 0 between
    // snapshots, so with the default one-group chunking 15/16 of the
    // chunks are clean — the dirty-chunk hit rate the delta path must
    // sustain for checkpointing to stay off the critical path.
    let (
        ckpt_payload_bytes,
        ckpt_full_ms,
        ckpt_full_mbps,
        ckpt_incr_bytes,
        ckpt_incr_ms,
        ckpt_incr_mbps,
        ckpt_dirty_hit_rate,
        ckpt_restore_ms,
    ) = {
        use hyperap_ckpt::{Checkpointer, MemSink};
        let mut m = SlabMachine::new(engine_config(ExecMode::Sequential));
        seed_slab(&mut m);
        black_box(m.run(&streams));
        // Full snapshot: a fresh checkpointer sees every chunk dirty.
        let full_stats = Checkpointer::new(MemSink::new()).checkpoint(&m).unwrap();
        let full_s = best_secs(reps, || {
            let mut ck = Checkpointer::new(MemSink::new());
            black_box(ck.checkpoint(&m).unwrap());
        });
        // Incremental snapshot: dirty group 0 only, then delta-checkpoint
        // against the committed epoch. Timed over the checkpoint call alone.
        let g0 = vec![streams[0].clone()];
        let mut ck = Checkpointer::new(MemSink::new());
        ck.checkpoint(&m).unwrap();
        black_box(m.run(&g0));
        let incr_stats = ck.checkpoint(&m).unwrap();
        let hit_rate = incr_stats.chunks_clean as f64 / incr_stats.chunks_total as f64;
        let mut incr_best = f64::INFINITY;
        for _ in 0..reps {
            black_box(m.run(&g0));
            let t = Instant::now();
            black_box(ck.checkpoint(&m).unwrap());
            incr_best = incr_best.min(t.elapsed().as_secs_f64());
        }
        // Restore latency into a fresh machine of the same geometry.
        let restore_s = best_secs(reps, || {
            let mut fresh = SlabMachine::new(engine_config(ExecMode::Sequential));
            black_box(ck.resume(&mut fresh).unwrap());
        });
        (
            full_stats.payload_bytes,
            full_s * 1e3,
            full_stats.payload_bytes as f64 / 1e6 / full_s,
            incr_stats.bytes_written,
            incr_best * 1e3,
            incr_stats.bytes_written as f64 / 1e6 / incr_best,
            hit_rate,
            restore_s * 1e3,
        )
    };

    // Compiler optimizer columns: static op/cycle costs per opt level for
    // the two acceptance kernels. Deterministic — no timing involved.
    let add32_cols = compiler_columns(
        "unsigned int (32) main(unsigned int (32) a, unsigned int (32) b) { return a + b; }",
    );
    let mul16_cols = compiler_columns(
        "unsigned int (16) main(unsigned int (16) a, unsigned int (16) b) { return a * b; }",
    );

    let parallel_threads = ExecMode::Parallel.threads();
    let git_revision = git_revision();
    let geometry_hash = format!(
        "{:016x}",
        fnv1a(&[
            GROUPS as u64,
            cfg.total_pes() as u64,
            ROWS as u64,
            COLS as u64,
        ])
    );
    let json = format!(
        r#"{{
  "meta": {{
    "git_revision": "{git_revision}",
    "geometry_hash": "{geometry_hash}"
  }},
  "host": {{
    "cpus": {host_cpus},
    "physical_cores": {physical_cores},
    "parallel_threads": {parallel_threads},
    "parallel_pays": {parallel_pays}
  }},
  "geometry": {{
    "groups": {GROUPS},
    "total_pes": {total_pes},
    "rows": {ROWS},
    "cols": {COLS}
  }},
  "workload": {{
    "kernel": "add32",
    "stream_instructions": {stream_len},
    "total_instructions": {total_instructions}
  }},
  "compiler": {{
    "add32_compiled_ops_level0": {add32_ops_0},
    "add32_compiled_ops_level1": {add32_ops_1},
    "add32_compiled_ops_level2": {add32_ops_2},
    "add32_model_cycles_level0": {add32_cyc_0},
    "add32_model_cycles_level1": {add32_cyc_1},
    "add32_model_cycles_level2": {add32_cyc_2},
    "mul16_compiled_ops_level0": {mul16_ops_0},
    "mul16_compiled_ops_level1": {mul16_ops_1},
    "mul16_compiled_ops_level2": {mul16_ops_2},
    "mul16_model_cycles_level0": {mul16_cyc_0},
    "mul16_model_cycles_level1": {mul16_cyc_1},
    "mul16_model_cycles_level2": {mul16_cyc_2}
  }},
  "kernel": {{
    "ns_per_search_alloc": {ns_search:.1},
    "ns_per_search_into": {ns_search_into:.1},
    "speedup_search_into": {kernel_speedup:.2},
    "ns_per_word_search_1024pe": {ns_word_search:.1},
    "words_per_ns": {words_per_ns:.2}
  }},
  "similarity": {{
    "sim_pes": {total_pes},
    "sim_rows": {sim_rows},
    "sim_code_bits": {COLS},
    "sim_topk_k": {sim_k},
    "sim_scalar_query_ns": {sim_scalar_query_ns:.0},
    "sim_slab_query_ns": {sim_slab_query_ns:.0},
    "speedup_sim_slab_vs_scalar": {sp_sim:.2},
    "sim_queries_per_sec_slab": {sim_qps:.0},
    "sim_words_per_ns": {sim_words_per_ns:.2},
    "hdc_dim": {hdc_dim},
    "hdc_classes": {hdc_classes},
    "hdc_rows": {hdc_rows},
    "hdc_classify_scalar_ns": {hdc_scalar_ns:.0},
    "hdc_classify_slab_ns": {hdc_slab_ns:.0},
    "speedup_hdc_slab_vs_scalar": {sp_hdc:.2},
    "hdc_host_accuracy": {hdc_accuracy:.4}
  }},
  "checkpoint": {{
    "ckpt_payload_bytes": {ckpt_payload_bytes},
    "ckpt_full_snapshot_ms": {ckpt_full_ms:.3},
    "ckpt_full_mb_per_s": {ckpt_full_mbps:.1},
    "ckpt_incremental_bytes": {ckpt_incr_bytes},
    "ckpt_incremental_ms": {ckpt_incr_ms:.3},
    "ckpt_incremental_mb_per_s": {ckpt_incr_mbps:.1},
    "checkpoint_dirty_hit_rate": {ckpt_dirty_hit_rate:.4},
    "ckpt_restore_ms": {ckpt_restore_ms:.3}
  }},
  "engine": {{
    "interpreter": {{
      "sequential_s": {interp_seq_s:.4},
      "parallel_s": {interp_par_s:.4}
    }},
    "trace": {{
      "sequential_s": {seq_s:.4},
      "parallel_s": {par_s:.4},
      "auto_s": {auto_s:.4},
      "precompiled_sequential_s": {precompiled_s:.4},
      "precompiled_unfused_s": {precompiled_unfused_s:.4}
    }},
    "slab": {{
      "sequential_s": {slab_seq_s:.4},
      "parallel_s": {slab_par_s:.4},
      "auto_s": {slab_auto_s:.4},
      "precompiled_sequential_s": {slab_precompiled_s:.4},
      "precompiled_unfused_s": {slab_precompiled_unfused_s:.4}
    }},
    "seed_style_s": {seed_style_s:.4},
    "instructions_per_sec_sequential": {ips_seq:.0},
    "instructions_per_sec_parallel": {ips_par:.0},
    "instructions_per_sec_slab_sequential": {ips_slab_seq:.0},
    "instructions_per_sec_slab_parallel": {ips_slab_par:.0},
    "speedup_trace_vs_interpreter_sequential": {sp_trace:.2},
    "speedup_parallel_vs_sequential": {sp_par:.2},
    "speedup_auto_vs_sequential": {sp_auto:.2},
    "speedup_slab_vs_trace_sequential": {sp_slab:.2},
    "speedup_slab_parallel_vs_sequential": {sp_slab_par:.2},
    "speedup_slab_auto_vs_sequential": {sp_slab_auto:.2},
    "speedup_trace_fused_vs_unfused": {sp_trace_fused:.2},
    "speedup_slab_fused_vs_unfused": {sp_slab_fused:.2},
    "speedup_optimized_vs_seed_style": {sp_seed:.2}
  }}
}}
"#,
        total_pes = cfg.total_pes(),
        stream_len = stream.len(),
        add32_ops_0 = add32_cols[0].0,
        add32_ops_1 = add32_cols[1].0,
        add32_ops_2 = add32_cols[2].0,
        add32_cyc_0 = add32_cols[0].1,
        add32_cyc_1 = add32_cols[1].1,
        add32_cyc_2 = add32_cols[2].1,
        mul16_ops_0 = mul16_cols[0].0,
        mul16_ops_1 = mul16_cols[1].0,
        mul16_ops_2 = mul16_cols[2].0,
        mul16_cyc_0 = mul16_cols[0].1,
        mul16_cyc_1 = mul16_cols[1].1,
        mul16_cyc_2 = mul16_cols[2].1,
        kernel_speedup = ns_search / ns_search_into,
        sp_sim = sim_scalar_query_ns / sim_slab_query_ns,
        sim_qps = 1e9 / sim_slab_query_ns,
        hdc_dim = hdc_cfg.dim,
        hdc_classes = hdc_cfg.classes,
        sp_hdc = hdc_scalar_ns / hdc_slab_ns,
        ips_seq = total_instructions / seq_s,
        ips_par = total_instructions / par_s,
        ips_slab_seq = total_instructions / slab_seq_s,
        ips_slab_par = total_instructions / slab_par_s,
        sp_trace = interp_seq_s / seq_s,
        sp_par = seq_s / par_s,
        sp_auto = seq_s / auto_s,
        sp_slab = seq_s / slab_seq_s,
        sp_slab_par = slab_seq_s / slab_par_s,
        sp_slab_auto = slab_seq_s / slab_auto_s,
        sp_trace_fused = precompiled_unfused_s / precompiled_s,
        sp_slab_fused = slab_precompiled_unfused_s / slab_precompiled_s,
        sp_seed = seed_style_s / seq_s,
    );
    std::fs::write("BENCH_SIM.json", &json).expect("write BENCH_SIM.json");
    print!("{json}");
}
