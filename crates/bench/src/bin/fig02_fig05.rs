//! Fig 2 / Fig 5d: the 1-bit addition under both execution models.
//!
//! Traditional AP needs 14 operations (7 searches + 7 writes, Fig 2c);
//! Hyper-AP needs 6 (4 searches + 2 writes, Fig 5d).

use hyperap_bench::header;
use hyperap_core::lut::{full_adder_lut, ExecutionModel};

fn main() {
    header("Fig 2 / Fig 5d: 1-bit addition with carry");
    let lut = full_adder_lut();
    let t = lut.op_counts(ExecutionModel::Traditional);
    let h = lut.op_counts(ExecutionModel::Hyper);
    println!(
        "  traditional AP : {} searches + {} writes = {} operations (paper: 14)",
        t.searches,
        t.writes(),
        t.search_write_ops()
    );
    println!(
        "  Hyper-AP       : {} searches + {} writes = {} operations (paper: 6)",
        h.searches,
        h.writes(),
        h.search_write_ops()
    );
    println!(
        "  search reduction {:.2}x (paper 1.8x), write reduction {:.2}x (paper 3.5x)",
        t.searches as f64 / h.searches as f64,
        t.writes() as f64 / h.writes() as f64
    );

    // §III: larger reductions for wider additions.
    for w in [8usize, 16, 32] {
        let tw = hyperap_baselines::traditional::add_cost(
            hyperap_baselines::ApVariant::Traditional,
            w,
            hyperap_model::tech::Technology::Rram,
        );
        let hw = hyperap_baselines::traditional::add_cost(
            hyperap_baselines::ApVariant::HyperAp,
            w,
            hyperap_model::tech::Technology::Rram,
        );
        println!("  {w:>2}-bit add: searches {}->{} ({:.1}x), writes {}->{} ({:.1}x)  [paper @32: 5.3x / 25.5x]",
                 tw.ops.searches, hw.ops.searches,
                 tw.ops.searches as f64 / hw.ops.searches as f64,
                 tw.ops.writes(), hw.ops.writes(),
                 tw.ops.writes() as f64 / hw.ops.writes() as f64);
    }
}
