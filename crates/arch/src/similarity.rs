//! Batch similarity-search API shared by both engines.
//!
//! [`ApMachine`](crate::ApMachine) (scalar, per-PE) and
//! [`SlabMachine`](crate::SlabMachine) (word-parallel bit-plane kernels)
//! both expose `hamming_topk` / `nearest` with **identical results and
//! identical [`RunStats`] accounting** — the types and the engine-shared
//! accounting rule live here, the per-engine kernels next to the engines
//! they belong to.
//!
//! # Architectural model
//!
//! A similarity query is a read-only batch operation, not an instruction
//! stream: the controller broadcasts the query once, every group drives
//! its PEs through the same column sequence, and the progressive top-k
//! rounds synchronize on a global population count. The priced operations
//! (per group, mirroring how every group executes the full query):
//!
//! * one `sim_accums` per in-range unmasked query bit — a match-line
//!   evaluation plus a ripple-carry update of the per-row counter latches;
//! * one `sim_rounds` per threshold round of the engine-shared widening
//!   schedule ([`hyperap_tcam::similarity::topk_schedule`]) — a
//!   counter-threshold search plus a global count reduction.
//!
//! Host-side plane pruning ([`PlaneSummary`-based column skipping in the
//! slab kernel](hyperap_tcam::TcamSlab::hamming_topk)) is a *simulator*
//! optimization: real hardware still drives every column, so pruning never
//! changes the priced counts — which is exactly what keeps the two
//! engines' stats bit-identical.
//!
//! # Faults
//!
//! Distances are a function of stored state, where stuck-at bits are
//! already enforced — so a seeded fault model perturbs every engine's
//! distances identically. Transient search misses model a tag-register
//! search failing for one epoch; the counter accumulation reads match-line
//! charge, not tags, and stays ideal (see `DESIGN.md` §11). Queries
//! advance no epoch and cause no wear.

use crate::config::ArchConfig;
use crate::stats::{RunGeometry, RunStats};
use hyperap_model::timing::OpCounts;

/// One similarity winner: a stored word identified by machine-global PE
/// and row, with its distance to the query.
///
/// The derived ordering is ascending `(distance, pe, row)` — the
/// deterministic tie-break every engine sorts winners by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SimilarityHit {
    /// Ternary Hamming distance to the query (number of unmasked query
    /// bits the stored word misses).
    pub distance: u32,
    /// Machine-global PE index.
    pub pe: u32,
    /// Row within the PE.
    pub row: u32,
}

/// Result of a batch similarity query: the winners plus the priced run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityOutcome {
    /// Top-k winners, ascending `(distance, pe, row)`; fewer than `k`
    /// only when the machine holds fewer candidates.
    pub hits: Vec<SimilarityHit>,
    /// Per-group operation/cycle accounting of the query.
    pub stats: RunStats,
}

impl SimilarityOutcome {
    /// The single best match, if any candidate exists.
    pub fn best(&self) -> Option<&SimilarityHit> {
        self.hits.first()
    }
}

/// The engine-shared [`RunStats`] of one similarity query: every group
/// runs `active` column accumulations and `rounds` threshold rounds, and
/// the group clock is exactly the priced cycle count (the batch query is
/// the only thing running).
pub(crate) fn query_stats(
    config: &ArchConfig,
    active: u32,
    rounds: usize,
    geometry: Option<RunGeometry>,
) -> RunStats {
    let ops = OpCounts {
        sim_accums: active as u64,
        sim_rounds: rounds as u64,
        ..OpCounts::default()
    };
    let cycles = ops.cycles(&config.tech);
    RunStats {
        group_cycles: vec![cycles; config.groups],
        group_ops: vec![ops; config.groups],
        count_results: vec![Vec::new(); config.groups],
        index_results: vec![Vec::new(); config.groups],
        pe_health: Vec::new(),
        geometry,
    }
}
