//! Baselines for the Hyper-AP evaluation (§VI-A2):
//!
//! * [`traditional`] — the traditional AP execution model (§II-D) on both
//!   RRAM and CMOS, including the intermediate ablation variants used by
//!   Fig 19b (accumulation unit only, dual-crossbar array only, full
//!   Hyper-AP).
//! * [`imp`] — the IMP baseline \[21\]: Table II configuration plus the
//!   paper-reported per-operation performance (Fig 15-17), and an
//!   analytical kernel-time model for the Fig 18 comparison.
//! * [`gpu`] — Nvidia Titan XP reference data (Table II; per-operation
//!   figures reconstructed from device characteristics, since the paper
//!   takes them from \[21\]/\[4\]).
//! * [`reference`](mod@reference) — the paper-reported Hyper-AP series
//!   themselves, used by the benchmark harness to print paper-vs-measured
//!   tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpu;
pub mod imp;
pub mod reference;
pub mod traditional;

pub use imp::ImpModel;
pub use reference::{OpKind, OpRecord};
pub use traditional::{ApVariant, VariantCost};
