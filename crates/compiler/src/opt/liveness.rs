//! Backward live-variable analysis over the emitted op stream.
//!
//! This deliberately runs on the *post-LUT* program rather than the DFG:
//! the codegen's unrolled bit-serial expansion manufactures its dead code
//! at the column level (scratch columns recycled late, carry chains whose
//! high bits nobody reads, whole LUT series feeding writes that constant
//! propagation already proved unreachable), none of which exists in the
//! DFG.
//!
//! The liveness state is the set of live *columns* (seeded from the output
//! fields), plus two flags for the architectural registers: whether the
//! current tag vector is still observed, and whether the encoder latch is.
//! Walking backwards:
//!
//! - a `Write` whose column is dead is deleted; a live one marks the tags
//!   live (it is a *weak* def — untagged rows keep the old value, so the
//!   column stays live above it);
//! - a `WriteEncoded` is a *strong* def of both its columns (every row is
//!   rewritten), so it kills them and makes tags and latch live;
//! - a `Search` whose tags nobody observes is deleted; a live overwrite
//!   search kills tag-liveness upward (it defines the whole vector), while
//!   an accumulate keeps it (it reads the old tags); its active key
//!   columns become live;
//! - `Latch` propagates latch-liveness into tag-liveness; `TagAll`/
//!   `TagNone` are strong tag defs; `Count`/`Index` observe the tags and
//!   are always kept (they feed the machine-visible `Outcome`).

use std::collections::HashSet;

use hyperap_core::field::Field;
use hyperap_core::program::{ApOp, Program};

/// One backward liveness sweep; deletes dead ops in place and returns how
/// many were removed.
pub fn run(program: &mut Program, outputs: &[Field]) -> usize {
    let mut live: HashSet<usize> = outputs
        .iter()
        .flat_map(|f| f.slots.iter())
        .flat_map(|s| s.columns())
        .collect();
    let ops = program.ops();
    let mut delete = vec![false; ops.len()];
    let mut tags_live = false;
    let mut latch_live = false;

    for (i, op) in ops.iter().enumerate().rev() {
        match op {
            ApOp::Search { key, accumulate } => {
                if !tags_live {
                    delete[i] = true;
                    continue;
                }
                for (c, _) in key.active_bits() {
                    live.insert(c);
                }
                // An overwrite search defines the tags from scratch; an
                // accumulate reads the previous vector.
                tags_live = *accumulate;
            }
            ApOp::Latch => {
                if !latch_live {
                    delete[i] = true;
                } else {
                    latch_live = false;
                    tags_live = true;
                }
            }
            ApOp::Write { col, .. } => {
                if !live.contains(col) {
                    delete[i] = true;
                } else {
                    // Weak def: `col` stays live (untagged rows show the
                    // old value through the write).
                    tags_live = true;
                }
            }
            ApOp::WriteEncoded { col } => {
                if !live.contains(col) && !live.contains(&(col + 1)) {
                    delete[i] = true;
                } else {
                    // Strong def of both columns.
                    live.remove(col);
                    live.remove(&(col + 1));
                    tags_live = true;
                    latch_live = true;
                }
            }
            ApOp::TagAll | ApOp::TagNone => {
                if !tags_live {
                    delete[i] = true;
                } else {
                    tags_live = false;
                }
            }
            ApOp::Count | ApOp::Index => tags_live = true,
        }
    }

    let deleted = delete.iter().filter(|&&d| d).count();
    if deleted > 0 {
        let mut out = Program::new();
        for (i, op) in program.ops().iter().enumerate() {
            if !delete[i] {
                out.push(op.clone());
            }
        }
        *program = out;
    }
    deleted
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_core::field::Slot;
    use hyperap_tcam::bit::KeyBit;
    use hyperap_tcam::key::SearchKey;

    fn single(col: usize) -> Field {
        Field::new(format!("c{col}"), vec![Slot::Single { col }])
    }

    #[test]
    fn kills_writes_to_unread_columns_and_their_searches() {
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.write(1, KeyBit::One); // dead: col 1 never read, not an output
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::Zero), false);
        p.write(2, KeyBit::One);
        assert_eq!(run(&mut p, &[single(2)]), 2);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn write_is_a_weak_def() {
        // The first write to the output column is observable in untagged
        // rows of the second — both must survive.
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.write(2, KeyBit::One);
        p.search(SearchKey::masked(4).with_bit(1, KeyBit::One), false);
        p.write(2, KeyBit::Zero);
        assert_eq!(run(&mut p, &[single(2)]), 0);
    }

    #[test]
    fn write_encoded_is_a_strong_def() {
        // An encoded write rewrites every row of cols 2,3: the earlier
        // plain write to col 2 (and its search) is dead.
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.write(2, KeyBit::One);
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::Zero), false);
        p.push(ApOp::Latch);
        p.search(SearchKey::masked(4).with_bit(1, KeyBit::One), false);
        p.push(ApOp::WriteEncoded { col: 2 });
        assert_eq!(run(&mut p, &[single(2), single(3)]), 2);
        assert!(matches!(p.ops()[0], ApOp::Search { .. }));
        assert!(matches!(p.ops()[1], ApOp::Latch));
    }

    #[test]
    fn counts_keep_their_search_series_alive() {
        let mut p = Program::new();
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.push(ApOp::Count);
        assert_eq!(run(&mut p, &[]), 0);
    }

    #[test]
    fn orphan_latch_and_tag_ops_die() {
        let mut p = Program::new();
        p.push(ApOp::TagAll);
        p.push(ApOp::Latch);
        p.search(SearchKey::masked(4).with_bit(0, KeyBit::One), false);
        p.write(1, KeyBit::One);
        assert_eq!(run(&mut p, &[single(1)]), 2);
        assert_eq!(p.len(), 2);
    }
}
