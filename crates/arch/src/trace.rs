//! Trace compilation: precompiled per-PE segment traces.
//!
//! The interpreter ([`crate::ApMachine::run_interpreted`]) re-decodes every
//! [`Instruction`] per group per step and — in threaded modes — forks and
//! joins worker threads once *per instruction*. Hyper-AP programs are
//! bit-serial loops (the lowered 32-bit adder is 380 stream instructions of
//! repeating `SetKey`/`Search`/`Write` shapes), so almost all of that work
//! can be hoisted out of the hot loop and paid once per stream instead of
//! once per instruction per PE.
//!
//! [`CompiledTrace::compile`] turns an `&[Instruction]` stream into:
//!
//! * **Resolved micro-ops** ([`MicroOp`]): every `SetKey` is folded into a
//!   precompiled `(column, bit)` search plan (shared by all PEs of the
//!   group), every `Write` is resolved to its store value at compile time,
//!   and the per-instruction bookkeeping (`OpCounts` deltas, Table-I
//!   cycles) is pre-aggregated per segment.
//! * **Segments** split at cross-PE synchronization points (`Count`,
//!   `Index`, `MovR`, `ReadR`/`WriteR` host transfers, `Broadcast`; see
//!   [`SyncClass`]). Within a segment every PE is independent, so execution
//!   inverts the loop: each worker runs its PE chunk through the *entire
//!   segment* before joining — one fork-join per segment instead of one per
//!   instruction, and each PE's columns stay cache-resident across the
//!   whole segment.
//!
//! # Equivalence guarantee
//!
//! Trace execution is bit-identical to the interpreter (property-tested in
//! `tests/engine_equivalence.rs`, including `RunStats`, per-PE `OpCounts`
//! and wear accounting) because:
//!
//! * Segment-internal micro-ops touch only PE-private state (TCAM cells,
//!   tags, latch) — no other group can observe them, so executing a whole
//!   segment as one block commutes with every other group's work.
//! * `SetTag`/`ReadTag` touch the group's data registers, which *are*
//!   remotely writable (`MovR`/`ReadR`/`WriteR`). They stay segment-internal
//!   only when no **other** stream contains a remote-register instruction
//!   ([`Instruction::touches_remote_regs`]); otherwise the compiler demotes
//!   them to synchronization points, restoring instruction-granular order.
//! * Synchronization points execute through the interpreter's own
//!   instruction path, and the event loop schedules *steps* by the same
//!   `(issue cycle, group)` key the interpreter uses for instructions — all
//!   cycle costs are static (Table I), so sync points from different groups
//!   retire in exactly the interpreter's order.

use crate::config::ArchConfig;
use hyperap_isa::{Instruction, SyncClass};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::KeyBit;
use hyperap_tcam::key::SearchKey;

/// Which precompiled search plan a micro-op uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanRef {
    /// The key register's contents when the trace run starts (a stream may
    /// `Search` before its first `SetKey`, inheriting machine state).
    Entry,
    /// The plan compiled from the n-th `SetKey` of the stream.
    Compiled(usize),
}

/// One resolved per-PE operation of a segment. Everything a micro-op needs
/// beyond PE state is precomputed: plans are indices into the trace's plan
/// table, write values are resolved `KeyBit`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// `Search`: apply a precompiled plan; optionally latch into the
    /// encoder DFF stage.
    Search {
        /// The plan to apply.
        plan: PlanRef,
        /// OR into the tags through the accumulation unit.
        acc: bool,
        /// Latch the result for a later encoded write.
        encode: bool,
    },
    /// Single-column `Write` whose store value was resolved at compile time
    /// (emitted only when the key bit actually stores — a masked bit is a
    /// no-op on PE state and folds into the segment's `OpCounts` delta).
    Write {
        /// Target column.
        col: u8,
        /// Resolved key-register value (never `Masked`).
        value: KeyBit,
    },
    /// Single-column `Write` issued before the stream's first `SetKey`: the
    /// value comes from the entry key register at run time.
    WriteEntry {
        /// Target column.
        col: u8,
    },
    /// Encoded two-column `Write` through the two-bit encoder.
    WriteEncoded {
        /// First of the two target columns.
        col: u8,
    },
    /// Copy the PE's data register into its tags.
    SetTag,
    /// Copy the PE's tags into its data register.
    ReadTag,
}

/// A maximal run of instructions between synchronization points: per-PE
/// micro-ops plus the pre-aggregated group-level bookkeeping of every
/// instruction folded into it (including ops with no PE-state effect, e.g.
/// `SetKey` and `Wait`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Segment {
    /// Per-PE operations, in program order.
    pub ops: Vec<MicroOp>,
    /// Group-level `RunStats` delta for the folded instructions.
    pub ops_delta: OpCounts,
    /// Number of stream instructions folded into this segment.
    pub instructions: usize,
}

impl Segment {
    /// The `OpCounts` delta one *active PE* accrues executing this segment —
    /// what the per-PE engine adds per micro-op, pre-aggregated so a slab
    /// engine can account a whole segment with one `add` per active PE.
    ///
    /// `entry` is the group's entry-key snapshot; it decides whether a
    /// `WriteEntry` actually stores (a masked entry bit is a no-op the
    /// per-PE path never reaches [`hyperap_core::machine::HyperPe::write`]
    /// for).
    ///
    /// # Panics
    ///
    /// Panics if the segment contains a `WriteEntry` and `entry` is `None`.
    pub fn pe_ops_delta(&self, entry: Option<&SearchKey>) -> OpCounts {
        let mut d = OpCounts::default();
        for op in &self.ops {
            match op {
                // search_planned counts one search plus one SetKey.
                MicroOp::Search { .. } => {
                    d.searches += 1;
                    d.set_keys += 1;
                }
                MicroOp::Write { .. } => d.writes_single += 1,
                MicroOp::WriteEntry { col } => {
                    let value = entry.expect("entry key snapshotted").bit(*col as usize);
                    if value.write_value().is_some() {
                        d.writes_single += 1;
                    }
                }
                MicroOp::WriteEncoded { .. } => d.writes_encoded += 1,
                // Tag transfers are counted at group level only.
                MicroOp::SetTag | MicroOp::ReadTag => {}
            }
        }
        d
    }
}

/// One schedulable step of a compiled trace.
#[derive(Debug, Clone, PartialEq)]
pub enum StepKind {
    /// Run a whole segment (index into [`CompiledTrace::segments`]) with a
    /// single fork-join.
    Segment(usize),
    /// Execute one synchronization-point instruction through the
    /// interpreter path.
    Sync(Instruction),
}

/// A step plus its total Table-I cycle cost (a segment's cost is the sum of
/// its folded instructions'), so the cross-group event loop can schedule
/// steps by the same `(issue cycle, group)` key the interpreter uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Cycle cost of the whole step.
    pub cycles: u64,
    /// What the step does.
    pub kind: StepKind,
}

/// A stream precompiled for segment execution. Compile once, run on any
/// machine with the geometry it was compiled for ([`crate::ApMachine::run_compiled`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompiledTrace {
    /// Scheduling steps in program order.
    pub steps: Vec<Step>,
    /// Segment bodies referenced by [`StepKind::Segment`].
    pub segments: Vec<Segment>,
    /// Precompiled search plans, one per `SetKey` in stream order.
    pub plans: Vec<Vec<(usize, KeyBit)>>,
    /// The last `SetKey`'s key — restored into the group's key register
    /// when the trace finishes, so a later run sees the same machine state
    /// the interpreter would leave.
    pub final_key: Option<SearchKey>,
    /// True if any micro-op reads the entry key/plan (the machine snapshots
    /// the group's key state at run start only when needed).
    pub uses_entry_key: bool,
}

impl CompiledTrace {
    /// Compile one stream. `reg_sync` demotes `SetTag`/`ReadTag` to
    /// synchronization points — required when another group's stream can
    /// touch this group's data registers (see [`compile_streams`], which
    /// derives the flag; pass `false` for a single-stream machine).
    pub fn compile(stream: &[Instruction], config: &ArchConfig, reg_sync: bool) -> Self {
        let mut trace = CompiledTrace::default();
        let mut seg = Segment::default();
        let mut seg_cycles = 0u64;
        // The current key as a compile-time value: `None` until the first
        // SetKey (searches/writes before it resolve against the entry key).
        let mut cur_key: Option<&SearchKey> = None;
        let mut cur_plan = PlanRef::Entry;
        let flush = |trace: &mut CompiledTrace, seg: &mut Segment, seg_cycles: &mut u64| {
            if seg.instructions > 0 {
                trace.steps.push(Step {
                    cycles: *seg_cycles,
                    kind: StepKind::Segment(trace.segments.len()),
                });
                trace.segments.push(std::mem::take(seg));
            }
            *seg_cycles = 0;
        };
        for inst in stream {
            let sync = match inst.sync_class() {
                SyncClass::PeLocal => false,
                SyncClass::DataReg => reg_sync,
                SyncClass::SyncPoint => true,
            };
            if sync {
                flush(&mut trace, &mut seg, &mut seg_cycles);
                trace.steps.push(Step {
                    cycles: inst.cycles(&config.tech),
                    kind: StepKind::Sync(inst.clone()),
                });
                continue;
            }
            seg_cycles += inst.cycles(&config.tech);
            seg.instructions += 1;
            let delta = &mut seg.ops_delta;
            match inst {
                Instruction::SetKey { key } => {
                    trace.plans.push(key.compile_plan());
                    cur_plan = PlanRef::Compiled(trace.plans.len() - 1);
                    cur_key = Some(key);
                    delta.set_keys += 1;
                }
                Instruction::Search { acc, encode } => {
                    seg.ops.push(MicroOp::Search {
                        plan: cur_plan,
                        acc: *acc,
                        encode: *encode,
                    });
                    trace.uses_entry_key |= cur_plan == PlanRef::Entry;
                    delta.searches += 1;
                }
                Instruction::Write { col, encode } => {
                    if *encode {
                        seg.ops.push(MicroOp::WriteEncoded { col: *col });
                        delta.writes_encoded += 1;
                    } else {
                        delta.writes_single += 1;
                        match cur_key {
                            Some(key) => {
                                let value = key.bit(*col as usize);
                                if value.write_value().is_some() {
                                    seg.ops.push(MicroOp::Write { col: *col, value });
                                }
                                // A masked value stores nothing: no micro-op.
                            }
                            None => {
                                seg.ops.push(MicroOp::WriteEntry { col: *col });
                                trace.uses_entry_key = true;
                            }
                        }
                    }
                }
                Instruction::SetTag => {
                    seg.ops.push(MicroOp::SetTag);
                    delta.tag_ops += 1;
                }
                Instruction::ReadTag => {
                    seg.ops.push(MicroOp::ReadTag);
                    delta.tag_ops += 1;
                }
                Instruction::Wait { cycles } => {
                    delta.wait_cycles += *cycles as u64;
                }
                // SyncPoint instructions never reach this arm.
                _ => unreachable!("sync points are flushed above"),
            }
        }
        flush(&mut trace, &mut seg, &mut seg_cycles);
        trace.final_key = cur_key.cloned();
        trace
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of synchronization-point steps.
    pub fn sync_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s.kind, StepKind::Sync(_)))
            .count()
    }

    /// Total stream instructions represented (segments + sync points).
    pub fn instruction_count(&self) -> usize {
        self.segments.iter().map(|s| s.instructions).sum::<usize>() + self.sync_count()
    }
}

/// The cross-group event loop shared by every trace-executing engine
/// ([`crate::ApMachine::run_compiled`], [`crate::SlabMachine::run_compiled`]):
/// repeatedly pick the group whose local clock is earliest (ties broken by
/// group index — the interpreter's `(issue cycle, group)` key), advance its
/// clock by the step's cycle cost, and hand the step to `f`. Returns the
/// final per-group clocks (groups beyond `traces.len()` idle at zero).
pub(crate) fn drive_steps<F>(traces: &[CompiledTrace], groups: usize, mut f: F) -> Vec<u64>
where
    F: FnMut(usize, &Step),
{
    let n = groups.min(traces.len());
    let mut steps = vec![0usize; n];
    let mut clocks = vec![0u64; groups];
    loop {
        let next = (0..n)
            .filter(|&g| steps[g] < traces[g].steps.len())
            .min_by_key(|&g| (clocks[g], g));
        let Some(g) = next else { break };
        let step = &traces[g].steps[steps[g]];
        steps[g] += 1;
        clocks[g] += step.cycles;
        f(g, step);
    }
    clocks
}

/// Compile every stream of a multi-group program, deriving each stream's
/// `reg_sync` flag: a stream's `SetTag`/`ReadTag` stay segment-internal
/// only if no *other* stream contains an instruction that can touch remote
/// data registers ([`Instruction::touches_remote_regs`]).
pub fn compile_streams(streams: &[Vec<Instruction>], config: &ArchConfig) -> Vec<CompiledTrace> {
    let remote: Vec<bool> = streams
        .iter()
        .map(|s| s.iter().any(Instruction::touches_remote_regs))
        .collect();
    streams
        .iter()
        .enumerate()
        .map(|(g, stream)| {
            let reg_sync = remote
                .iter()
                .enumerate()
                .any(|(other, &touches)| other != g && touches);
            CompiledTrace::compile(stream, config, reg_sync)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_isa::Direction;

    fn cfg() -> ArchConfig {
        ArchConfig::tiny()
    }

    fn setkey(s: &str) -> Instruction {
        Instruction::SetKey {
            key: SearchKey::parse(s).unwrap(),
        }
    }

    const SEARCH: Instruction = Instruction::Search {
        acc: false,
        encode: false,
    };

    #[test]
    fn local_run_compiles_to_one_segment() {
        let stream = vec![
            setkey("1-"),
            SEARCH,
            setkey("-1"),
            Instruction::Write {
                col: 1,
                encode: false,
            },
            Instruction::Wait { cycles: 7 },
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(t.segment_count(), 1);
        assert_eq!(t.sync_count(), 0);
        assert_eq!(t.instruction_count(), 5);
        let seg = &t.segments[0];
        // SetKey and Wait fold into bookkeeping; Search and Write remain.
        assert_eq!(seg.ops.len(), 2);
        assert_eq!(seg.ops_delta.set_keys, 2);
        assert_eq!(seg.ops_delta.searches, 1);
        assert_eq!(seg.ops_delta.writes_single, 1);
        assert_eq!(seg.ops_delta.wait_cycles, 7);
        // Cycles: 1 + 1 + 1 + 12 + 7.
        assert_eq!(t.steps[0].cycles, 22);
        assert_eq!(t.final_key, Some(SearchKey::parse("-1").unwrap()));
    }

    #[test]
    fn sync_points_split_segments() {
        let stream = vec![
            setkey("1-"),
            SEARCH,
            Instruction::Count,
            SEARCH,
            Instruction::Index,
            Instruction::MovR {
                dir: Direction::Right,
            },
            SEARCH,
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(t.segment_count(), 3);
        assert_eq!(t.sync_count(), 3);
        assert_eq!(t.steps.len(), 6);
        assert!(matches!(
            t.steps[1].kind,
            StepKind::Sync(Instruction::Count)
        ));
        // The searches after Count/MovR reuse the same compiled plan.
        assert_eq!(t.plans.len(), 1);
        for seg in &t.segments[1..] {
            assert_eq!(
                seg.ops,
                vec![MicroOp::Search {
                    plan: PlanRef::Compiled(0),
                    acc: false,
                    encode: false
                }]
            );
        }
    }

    #[test]
    fn write_values_resolve_at_compile_time() {
        let stream = vec![
            setkey("1Z"),
            Instruction::Write {
                col: 0,
                encode: false,
            },
            Instruction::Write {
                col: 1,
                encode: false,
            },
            Instruction::Write {
                col: 3, // masked in the key: no store, delta only
                encode: false,
            },
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        let seg = &t.segments[0];
        assert_eq!(
            seg.ops,
            vec![
                MicroOp::Write {
                    col: 0,
                    value: KeyBit::One
                },
                MicroOp::Write {
                    col: 1,
                    value: KeyBit::Z
                },
            ]
        );
        assert_eq!(seg.ops_delta.writes_single, 3, "masked write still counts");
    }

    #[test]
    fn pre_setkey_ops_reference_entry_state() {
        let stream = vec![
            SEARCH,
            Instruction::Write {
                col: 2,
                encode: false,
            },
            setkey("1"),
            SEARCH,
        ];
        let t = CompiledTrace::compile(&stream, &cfg(), false);
        assert!(t.uses_entry_key);
        let seg = &t.segments[0];
        assert_eq!(
            seg.ops[0],
            MicroOp::Search {
                plan: PlanRef::Entry,
                acc: false,
                encode: false
            }
        );
        assert_eq!(seg.ops[1], MicroOp::WriteEntry { col: 2 });
        // SetKey folds into the plan table without emitting a micro-op, so
        // the post-SetKey search is the third op.
        assert_eq!(
            seg.ops[2],
            MicroOp::Search {
                plan: PlanRef::Compiled(0),
                acc: false,
                encode: false
            }
        );
    }

    #[test]
    fn reg_sync_demotes_tag_transfers() {
        let stream = vec![SEARCH, Instruction::ReadTag, Instruction::SetTag, SEARCH];
        let local = CompiledTrace::compile(&stream, &cfg(), false);
        assert_eq!(local.segment_count(), 1);
        assert_eq!(local.sync_count(), 0);
        let synced = CompiledTrace::compile(&stream, &cfg(), true);
        assert_eq!(synced.segment_count(), 2);
        assert_eq!(synced.sync_count(), 2);
        assert_eq!(synced.instruction_count(), local.instruction_count());
    }

    #[test]
    fn compile_streams_derives_reg_sync_from_other_streams() {
        let tags = vec![Instruction::ReadTag, Instruction::SetTag];
        let mover = vec![Instruction::MovR {
            dir: Direction::Left,
        }];
        // Alone: tag transfers stay inside the segment.
        let solo = compile_streams(std::slice::from_ref(&tags), &cfg());
        assert_eq!(solo[0].sync_count(), 0);
        // Next to a stream that can push into our data registers: demoted.
        let multi = compile_streams(&[tags.clone(), mover.clone()], &cfg());
        assert_eq!(multi[0].sync_count(), 2);
        // The mover itself is unaffected by its own remote ops.
        assert_eq!(multi[1].sync_count(), 1);
        // Two tag-only streams: neither forces the other to sync.
        let quiet = compile_streams(&[tags.clone(), tags], &cfg());
        assert_eq!(quiet[0].sync_count(), 0);
        assert_eq!(quiet[1].sync_count(), 0);
    }

    #[test]
    fn empty_stream_compiles_to_nothing() {
        let t = CompiledTrace::compile(&[], &cfg(), false);
        assert!(t.steps.is_empty());
        assert_eq!(t.instruction_count(), 0);
        assert_eq!(t.final_key, None);
        assert!(!t.uses_entry_key);
    }
}
