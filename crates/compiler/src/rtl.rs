//! The RTL library (§V-B3): expert-written gate-level implementations of
//! the language operators, materialized as AIG netlists.
//!
//! [`Overload::resolve`] provides the function-overloading capability: the
//! same operator dispatches to a different implementation based on operand
//! widths and signedness, like C++ overloads. Complex operators (`*`, `/`,
//! `%`, `sqrt`, `exp`) have *iterative* expert implementations in
//! [`hyperap_core::microcode`] and are not built as combinational netlists
//! (the paper uses "simple iterative methods \[51\] \[46\] \[26\]" for them).

use crate::aig::{lit_not, Aig, Lit, FALSE};
use crate::dfg::DfgOp;

/// Bit-vector of AIG literals, LSB first.
pub type Bits = Vec<Lit>;

/// Zero-extend or truncate to `w`.
pub fn zext(bits: &Bits, w: usize) -> Bits {
    let mut out = bits.clone();
    out.resize(w, FALSE);
    out.truncate(w);
    out
}

/// Sign-extend or truncate to `w`.
pub fn sext(bits: &Bits, w: usize) -> Bits {
    let mut out = bits.clone();
    let sign = out.last().copied().unwrap_or(FALSE);
    out.resize(w, sign);
    out.truncate(w);
    out
}

/// Constant bits for `value` at width `w`.
pub fn constant(g: &Aig, value: u64, w: usize) -> Bits {
    (0..w).map(|i| g.constant(value >> i & 1 == 1)).collect()
}

/// Ripple-carry adder: returns `w`-bit sum (callers size `w` for carry-out).
pub fn add(g: &mut Aig, a: &Bits, b: &Bits, w: usize) -> Bits {
    let a = zext(a, w);
    let b = zext(b, w);
    let mut out = Vec::with_capacity(w);
    let mut carry = FALSE;
    for i in 0..w {
        let x = g.xor(a[i], b[i]);
        out.push(g.xor(x, carry));
        carry = g.maj(a[i], b[i], carry);
    }
    out
}

/// Ripple-borrow subtractor (wrapping at `w` bits).
pub fn sub(g: &mut Aig, a: &Bits, b: &Bits, w: usize, signed: bool) -> Bits {
    let a = if signed { sext(a, w) } else { zext(a, w) };
    let b = if signed { sext(b, w) } else { zext(b, w) };
    // a - b = a + ~b + 1.
    let nb: Bits = b.iter().map(|&l| lit_not(l)).collect();
    let mut out = Vec::with_capacity(w);
    let mut carry = g.constant(true);
    for i in 0..w {
        let x = g.xor(a[i], nb[i]);
        out.push(g.xor(x, carry));
        carry = g.maj(a[i], nb[i], carry);
    }
    out
}

/// Two's-complement negation.
pub fn neg(g: &mut Aig, a: &Bits, w: usize) -> Bits {
    let zero = constant(g, 0, w);
    sub(g, &zero, a, w, false)
}

/// Bitwise ops.
pub fn bitwise(g: &mut Aig, op: DfgOp, a: &Bits, b: &Bits, w: usize) -> Bits {
    let a = zext(a, w);
    let b = zext(b, w);
    (0..w)
        .map(|i| match op {
            DfgOp::And => g.and(a[i], b[i]),
            DfgOp::Or => g.or(a[i], b[i]),
            DfgOp::Xor => g.xor(a[i], b[i]),
            _ => unreachable!("bitwise op"),
        })
        .collect()
}

/// Bitwise complement.
pub fn not(a: &Bits) -> Bits {
    a.iter().map(|&l| lit_not(l)).collect()
}

/// Equality (1 bit).
pub fn eq(g: &mut Aig, a: &Bits, b: &Bits) -> Lit {
    let w = a.len().max(b.len());
    let a = zext(a, w);
    let b = zext(b, w);
    let mut acc = g.constant(true);
    for i in 0..w {
        let x = g.xnor(a[i], b[i]);
        acc = g.and(acc, x);
    }
    acc
}

/// Unsigned/signed less-than (1 bit).
pub fn lt(g: &mut Aig, a: &Bits, b: &Bits, signed: bool) -> Lit {
    let w = a.len().max(b.len()).max(1);
    let (a, b) = if signed {
        (sext(a, w), sext(b, w))
    } else {
        (zext(a, w), zext(b, w))
    };
    // Ripple from LSB: lt_i = (¬a_i & b_i) | (a_i == b_i) & lt_{i-1},
    // with the sign bits swapped for signed compare.
    let mut lt_acc = FALSE;
    for i in 0..w {
        let (x, y) = if signed && i == w - 1 {
            (b[i], a[i]) // sign bit: 1 means smaller
        } else {
            (a[i], b[i])
        };
        let strict = g.and(lit_not(x), y);
        let equal = g.xnor(x, y);
        let keep = g.and(equal, lt_acc);
        lt_acc = g.or(strict, keep);
    }
    lt_acc
}

/// 2:1 mux over bit-vectors.
pub fn select(g: &mut Aig, pred: Lit, t: &Bits, f: &Bits, w: usize) -> Bits {
    let t = zext(t, w);
    let f = zext(f, w);
    (0..w).map(|i| g.mux(pred, t[i], f[i])).collect()
}

/// Shift left by a constant (wiring only).
pub fn shl(a: &Bits, amount: usize, w: usize) -> Bits {
    let mut out = vec![FALSE; amount.min(w)];
    for &l in a {
        if out.len() >= w {
            break;
        }
        out.push(l);
    }
    out.resize(w, FALSE);
    out
}

/// Shift right by a constant (wiring; arithmetic when `signed`).
pub fn shr(a: &Bits, amount: usize, w: usize, signed: bool) -> Bits {
    let fill = if signed {
        a.last().copied().unwrap_or(FALSE)
    } else {
        FALSE
    };
    let mut out: Bits = a.iter().skip(amount).copied().collect();
    out.resize(w, fill);
    out.truncate(w);
    out
}

/// Description of an overload target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Overload {
    /// Combinational netlist from this library.
    Netlist,
    /// Iterative expert microcode ([`hyperap_core::microcode`]).
    Microcode,
}

impl Overload {
    /// Resolve the implementation for a DFG operation on operands of the
    /// given widths — the function-overloading step of §V-B3.
    pub fn resolve(op: DfgOp, _widths: &[usize]) -> Overload {
        if op.is_microcode() {
            Overload::Microcode
        } else {
            Overload::Netlist
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_bits(g: &Aig, bits: &Bits, inputs: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .map(|(i, &l)| (g.eval(l, inputs) as u64) << i)
            .sum()
    }

    fn input_bits(g: &mut Aig, w: usize) -> Bits {
        (0..w).map(|_| g.input()).collect()
    }

    fn to_bools(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    #[test]
    fn adder_is_correct() {
        let mut g = Aig::new();
        let a = input_bits(&mut g, 5);
        let b = input_bits(&mut g, 5);
        let s = add(&mut g, &a, &b, 6);
        for (va, vb) in [(0u64, 0u64), (31, 31), (17, 5), (1, 30)] {
            let mut ins = to_bools(va, 5);
            ins.extend(to_bools(vb, 5));
            assert_eq!(eval_bits(&g, &s, &ins), va + vb, "{va}+{vb}");
        }
    }

    #[test]
    fn subtractor_wraps() {
        let mut g = Aig::new();
        let a = input_bits(&mut g, 4);
        let b = input_bits(&mut g, 4);
        let d = sub(&mut g, &a, &b, 4, false);
        for (va, vb) in [(9u64, 3u64), (3, 9), (0, 1), (15, 15)] {
            let mut ins = to_bools(va, 4);
            ins.extend(to_bools(vb, 4));
            assert_eq!(eval_bits(&g, &d, &ins), va.wrapping_sub(vb) & 0xF);
        }
    }

    #[test]
    fn comparators() {
        let mut g = Aig::new();
        let a = input_bits(&mut g, 4);
        let b = input_bits(&mut g, 4);
        let e = eq(&mut g, &a, &b);
        let l = lt(&mut g, &a, &b, false);
        let ls = lt(&mut g, &a, &b, true);
        for va in 0..16u64 {
            for vb in 0..16u64 {
                let mut ins = to_bools(va, 4);
                ins.extend(to_bools(vb, 4));
                assert_eq!(g.eval(e, &ins), va == vb);
                assert_eq!(g.eval(l, &ins), va < vb, "{va} < {vb}");
                let sa = (va as i64) << 60 >> 60;
                let sb = (vb as i64) << 60 >> 60;
                assert_eq!(g.eval(ls, &ins), sa < sb, "signed {sa} < {sb}");
            }
        }
    }

    #[test]
    fn neg_and_not() {
        let mut g = Aig::new();
        let a = input_bits(&mut g, 4);
        let n = neg(&mut g, &a, 4);
        let c = not(&a);
        for va in 0..16u64 {
            let ins = to_bools(va, 4);
            assert_eq!(eval_bits(&g, &n, &ins), va.wrapping_neg() & 0xF);
            assert_eq!(eval_bits(&g, &c, &ins), !va & 0xF);
        }
    }

    #[test]
    fn shifts_are_wiring() {
        let mut g = Aig::new();
        let a = input_bits(&mut g, 6);
        let before = g.and_count();
        let l = shl(&a, 2, 8);
        let r = shr(&a, 3, 6, false);
        assert_eq!(g.and_count(), before, "no gates for shifts");
        let ins = to_bools(0b110101, 6);
        assert_eq!(eval_bits(&g, &l, &ins), (0b110101 << 2) & 0xFF);
        assert_eq!(eval_bits(&g, &r, &ins), 0b110101 >> 3);
    }

    #[test]
    fn constant_operand_erases_logic() {
        // Operand embedding: add with a constant folds most gates away.
        let mut g1 = Aig::new();
        let a1 = input_bits(&mut g1, 8);
        let b1 = input_bits(&mut g1, 8);
        add(&mut g1, &a1, &b1, 9);
        let full = g1.and_count();

        let mut g2 = Aig::new();
        let a2 = input_bits(&mut g2, 8);
        let c = constant(&g2, 2, 8);
        add(&mut g2, &a2, &c, 9);
        let embedded = g2.and_count();
        assert!(
            embedded * 2 < full,
            "embedded {embedded} vs full {full} gates"
        );
    }

    #[test]
    fn overload_resolution() {
        assert_eq!(Overload::resolve(DfgOp::Add, &[8, 8]), Overload::Netlist);
        assert_eq!(Overload::resolve(DfgOp::Mul, &[8, 8]), Overload::Microcode);
        assert_eq!(Overload::resolve(DfgOp::Sqrt, &[16]), Overload::Microcode);
    }
}
