//! Quickstart: compile the paper's Fig 8 program and run it word-parallel.
//!
//! ```sh
//! cargo run -p hyper-ap --example quickstart
//! ```

use hyper_ap::compiler::{compile, CompileOptions};
use hyper_ap::model::TechParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Fig 8): add two 5-bit vectors.
    let source = "
        // A program that adds two 5-bit variables
        unsigned int (6) main (unsigned int (5) a, unsigned int (5) b) {
            unsigned int (6) c;
            c = a + b;
            return c;
        }";
    let kernel = compile(source, &CompileOptions::default())?;

    // One SIMD slot per element: every row computes in parallel.
    let rows: Vec<Vec<u64>> = (0..16u64).map(|i| vec![i * 2 % 32, i * 3 % 32]).collect();
    let refs: Vec<&[u64]> = rows.iter().map(|r| r.as_slice()).collect();
    let results = kernel.run_rows(&refs)?;
    for (inputs, out) in rows.iter().zip(&results) {
        println!("{:>2} + {:>2} = {:>2}", inputs[0], inputs[1], out);
        assert_eq!(*out, inputs[0] + inputs[1]);
    }

    // The paper evaluates performance analytically from the compiled
    // operation stream (§VI-A3).
    let ops = kernel.op_counts();
    let rram = TechParams::rram();
    println!(
        "\ncompiled to {} searches + {} writes = {} cycles ({} ns/pass on RRAM)",
        ops.searches,
        ops.writes(),
        ops.cycles(&rram),
        ops.latency_ns(&rram),
    );
    println!("one pass computes every occupied SIMD slot simultaneously — 33.5M at chip scale");
    Ok(())
}
