//! Analytical model of IMP (Fujiki et al., ASPLOS 2018 \[21\]), the paper's
//! primary baseline: a general-purpose PIM built on the dot-product
//! capability of RRAM crossbars, computing in the analog domain with
//! ADC/DAC.
//!
//! Key modeling facts from the paper: 2,097,152 SIMD slots (one slot spans
//! 16 rows), 20 MHz, 494 mm², 416 W TDP, 32-bit integers only (no flexible
//! precision), operation merging possible but at higher ADC resolution
//! (more energy), and a router-based inter-slot network with higher
//! synchronization cost than Hyper-AP's neighbor interface (§VI-D).

use crate::reference::{record, OpKind, FIG15_IMP, FIG17_IMP};
use hyperap_model::config::IMP_SYSTEM;
use serde::{Deserialize, Serialize};

/// Per-element operation tallies of a kernel (architecture-neutral).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelOps {
    /// Additions/subtractions/comparisons per element.
    pub adds: f64,
    /// Multiplications per element.
    pub muls: f64,
    /// Divisions per element.
    pub divs: f64,
    /// Square roots per element.
    pub sqrts: f64,
    /// Exponentials per element.
    pub exps: f64,
    /// Inter-slot word transfers per element.
    pub transfers: f64,
}

/// The IMP analytical performance model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpModel {
    /// Router-network latency per inter-slot word transfer, in ns (the
    /// "relatively higher synchronization cost" of §VI-D; several hops at
    /// 20 MHz).
    pub transfer_ns: f64,
}

impl Default for ImpModel {
    fn default() -> Self {
        // A handful of 20 MHz router cycles per hop, a few hops.
        ImpModel { transfer_ns: 400.0 }
    }
}

impl ImpModel {
    /// Per-operation latency (32-bit; IMP has no narrower precision).
    pub fn op_latency_ns(&self, op: OpKind) -> f64 {
        record(&FIG15_IMP, op)
            .or_else(|| record(&FIG17_IMP, op))
            .map(|r| r.latency_ns)
            .expect("known op")
    }

    /// Per-operation energy in joules per element.
    pub fn op_energy_j(&self, op: OpKind) -> f64 {
        let r = record(&FIG15_IMP, op)
            .or_else(|| record(&FIG17_IMP, op))
            .expect("known op");
        // power_eff = GOPS/W ⇒ energy per op = 1e-9 / power_eff.
        1e-9 / r.power_eff
    }

    /// Kernel execution time for `n` elements (seconds).
    pub fn kernel_time_s(&self, ops: &KernelOps, n: u64) -> f64 {
        let passes = (n as f64 / IMP_SYSTEM.simd_slots as f64).ceil();
        let per_pass_ns = ops.adds * self.op_latency_ns(OpKind::Add)
            + ops.muls * self.op_latency_ns(OpKind::Mul)
            + ops.divs * self.op_latency_ns(OpKind::Div)
            + ops.sqrts * self.op_latency_ns(OpKind::Sqrt)
            + ops.exps * self.op_latency_ns(OpKind::Exp)
            + ops.transfers * self.transfer_ns;
        passes * per_pass_ns * 1e-9
    }

    /// Kernel energy for `n` elements (joules).
    pub fn kernel_energy_j(&self, ops: &KernelOps, n: u64) -> f64 {
        let per_elem = ops.adds * self.op_energy_j(OpKind::Add)
            + ops.muls * self.op_energy_j(OpKind::Mul)
            + ops.divs * self.op_energy_j(OpKind::Div)
            + ops.sqrts * self.op_energy_j(OpKind::Sqrt)
            + ops.exps * self.op_energy_j(OpKind::Exp)
            // Router transfer energy: a few nJ per word at 32 bits.
            + ops.transfers * 2e-9;
        per_elem * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_latencies_match_fig15_derivation() {
        let m = ImpModel::default();
        assert_eq!(m.op_latency_ns(OpKind::Add), 2_309.0);
        assert_eq!(m.op_latency_ns(OpKind::Mul), 57_568.0);
    }

    #[test]
    fn kernel_time_scales_with_passes() {
        let m = ImpModel::default();
        let ops = KernelOps {
            adds: 2.0,
            muls: 1.0,
            ..KernelOps::default()
        };
        let one_pass = m.kernel_time_s(&ops, 1_000_000);
        let two_pass = m.kernel_time_s(&ops, 3_000_000);
        assert!((two_pass / one_pass - 2.0).abs() < 1e-9);
    }

    #[test]
    fn energy_accumulates_per_element() {
        let m = ImpModel::default();
        let ops = KernelOps {
            muls: 1.0,
            ..KernelOps::default()
        };
        let e1 = m.kernel_energy_j(&ops, 1000);
        let e2 = m.kernel_energy_j(&ops, 2000);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(e1 > 0.0);
    }

    #[test]
    fn division_energy_reflects_lut_method() {
        // IMP's LUT-based division is power-hungry: energy/op for Div is
        // far above Add (the 54× power-efficiency gap of Fig 15).
        let m = ImpModel::default();
        assert!(m.op_energy_j(OpKind::Div) > 50.0 * m.op_energy_j(OpKind::Add));
    }
}
