//! Memory-technology parameters (RRAM vs CMOS).
//!
//! All latencies are in controller clock cycles at [`TechParams::clock_ghz`]
//! (1 GHz for both technologies in the paper, §IV-A2 and §VI). The headline
//! asymmetry the paper builds on is `Twrite/Tsearch = 10` for RRAM versus `1`
//! for CMOS (§I contribution 5, §VI-E).

use serde::{Deserialize, Serialize};

/// The memory technology an associative processor is built from.
///
/// The paper's execution-model improvements are generic, but benefit RRAM more
/// because of its asymmetric write/search latency (§VI-E, Fig 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technology {
    /// RRAM 2D2R TCAM (1D1R cells: one bidirectional diode + one RRAM element).
    Rram,
    /// CMOS TCAM (16T SRAM-style ternary cell).
    Cmos,
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technology::Rram => write!(f, "RRAM"),
            Technology::Cmos => write!(f, "CMOS"),
        }
    }
}

/// Device/array-level timing and energy parameters for one technology.
///
/// Energy constants are per-PE per-operation (a PE is 256 words × 256 bits,
/// Fig 7) and were calibrated so the chip-level numbers derived for the
/// paper's Table II configuration reproduce the published 32-bit-add operating
/// point (≈56.7 TOPS at ≈233 GOPS/W for RRAM Hyper-AP, Fig 15); see
/// `DESIGN.md` §2.1 for the substitution rationale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Which technology these parameters describe.
    pub technology: Technology,
    /// Controller clock frequency in GHz (1 GHz in the paper).
    pub clock_ghz: f64,
    /// Latency of one search operation, in cycles (1 for both technologies).
    pub t_search_cycles: u64,
    /// Latency of programming one RRAM cell / one CMOS cell, in cycles.
    ///
    /// RRAM: 10 cycles (10 ns SET/RESET pulse, §VI-A3). CMOS: 1 cycle.
    pub t_cell_write_cycles: u64,
    /// Whether the two cells of one TCAM bit can be written in parallel.
    ///
    /// `true` for Hyper-AP's logical-unified-physical-separated dual-crossbar
    /// design (§IV-B); `false` for the monolithic array of prior work
    /// (\[56\]\[39\]), which must write the two cells sequentially.
    pub parallel_bit_write: bool,
    /// Energy of one search operation over a full PE, in picojoules.
    pub e_search_pj: f64,
    /// Energy of one associative column write over a full PE, in picojoules
    /// (per written TCAM cell column; an encoded write costs two of these).
    pub e_write_pj: f64,
    /// Energy of one key/mask register update, in picojoules.
    pub e_setkey_pj: f64,
    /// Energy of one reduction-tree operation (Count/Index), in picojoules.
    pub e_reduce_pj: f64,
    /// Energy of one inter-PE register move (MovR), in picojoules.
    pub e_movr_pj: f64,
    /// Static (leakage) power per PE, in milliwatts.
    pub p_static_mw: f64,
}

impl TechParams {
    /// Parameters for the RRAM-based implementation (the paper's primary one).
    ///
    /// # Example
    /// ```
    /// let p = hyperap_model::TechParams::rram();
    /// assert_eq!(p.write_search_ratio(), 10.0);
    /// ```
    pub fn rram() -> Self {
        TechParams {
            technology: Technology::Rram,
            clock_ghz: 1.0,
            t_search_cycles: 1,
            t_cell_write_cycles: 10,
            parallel_bit_write: true,
            e_search_pj: 3.0,
            e_write_pj: 19.0,
            e_setkey_pj: 0.4,
            e_reduce_pj: 1.2,
            e_movr_pj: 8.0,
            p_static_mw: 0.05,
        }
    }

    /// Parameters for a CMOS TCAM implementation.
    ///
    /// Search and write both complete in a single cycle
    /// (`Twrite/Tsearch = 1`, §VI-E). CMOS writes are cheap in energy but the
    /// 16T cell has far lower storage density (see [`crate::area`]).
    pub fn cmos() -> Self {
        TechParams {
            technology: Technology::Cmos,
            clock_ghz: 1.0,
            t_search_cycles: 1,
            t_cell_write_cycles: 1,
            parallel_bit_write: true,
            e_search_pj: 2.2,
            e_write_pj: 1.1,
            e_setkey_pj: 0.4,
            e_reduce_pj: 1.2,
            e_movr_pj: 5.0,
            p_static_mw: 0.12,
        }
    }

    /// RRAM parameters for the *monolithic* single-crossbar TCAM of prior
    /// work (\[56\]\[39\]): the two 1D1R cells of one TCAM bit share a write
    /// circuit and must be written sequentially, doubling write latency
    /// (§IV-B). Used by the Fig 19b ablation.
    pub fn rram_monolithic() -> Self {
        TechParams {
            parallel_bit_write: false,
            ..Self::rram()
        }
    }

    /// Latency in cycles of one associative write of a single TCAM bit
    /// column (both 1D1R cells), excluding instruction decode overhead.
    pub fn t_bit_write_cycles(&self) -> u64 {
        if self.parallel_bit_write {
            self.t_cell_write_cycles
        } else {
            2 * self.t_cell_write_cycles
        }
    }

    /// The α ratio between write and search latency used by the compiler's
    /// LUT-generation cost function (Eq. 2): `Twrite/Tsearch`.
    pub fn write_search_ratio(&self) -> f64 {
        self.t_bit_write_cycles() as f64 / self.t_search_cycles as f64
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }
}

/// Paper-reported RRAM device characteristics (§VI-A3), kept for the
/// device-level TCAM model and documentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RramDevice {
    /// Low-resistance (SET) state, in ohms: 20 kΩ.
    pub r_on_ohm: f64,
    /// High-resistance (RESET) state, in ohms: 300 kΩ.
    pub r_off_ohm: f64,
    /// SET pulse: 1.9 V @ 10 ns.
    pub v_set: f64,
    /// RESET pulse: 1.6 V @ 10 ns.
    pub v_reset: f64,
    /// Write pulse width in nanoseconds.
    pub t_pulse_ns: f64,
    /// Diode turn-on voltage: 0.4 V.
    pub v_diode_on: f64,
}

impl Default for RramDevice {
    fn default() -> Self {
        RramDevice {
            r_on_ohm: 20_000.0,
            r_off_ohm: 300_000.0,
            v_set: 1.9,
            v_reset: 1.6,
            t_pulse_ns: 10.0,
            v_diode_on: 0.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rram_write_search_ratio_is_ten() {
        assert_eq!(TechParams::rram().write_search_ratio(), 10.0);
    }

    #[test]
    fn cmos_write_search_ratio_is_one() {
        assert_eq!(TechParams::cmos().write_search_ratio(), 1.0);
    }

    #[test]
    fn monolithic_array_doubles_write_latency() {
        let dual = TechParams::rram();
        let mono = TechParams::rram_monolithic();
        assert_eq!(mono.t_bit_write_cycles(), 2 * dual.t_bit_write_cycles());
    }

    #[test]
    fn clock_is_one_ghz() {
        assert_eq!(TechParams::rram().clock_period_ns(), 1.0);
        assert_eq!(TechParams::cmos().clock_period_ns(), 1.0);
    }

    #[test]
    fn rram_device_defaults_match_paper() {
        let d = RramDevice::default();
        assert_eq!(d.r_on_ohm, 20e3);
        assert_eq!(d.r_off_ohm, 300e3);
        assert_eq!(d.v_set, 1.9);
        assert_eq!(d.v_reset, 1.6);
        assert_eq!(d.t_pulse_ns, 10.0);
        assert_eq!(d.v_diode_on, 0.4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Technology::Rram.to_string(), "RRAM");
        assert_eq!(Technology::Cmos.to_string(), "CMOS");
    }
}
