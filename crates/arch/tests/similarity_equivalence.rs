//! Property tests for the CAM-native similarity API: random stored state
//! (host loads plus a short architectural write prologue that plants `X`
//! cells), random ternary queries, and random `(rows, k)` shapes must
//! produce bit-identical top-k hits *and* `RunStats` from the scalar
//! per-PE reference engine ([`ApMachine`]) and the word-parallel slab
//! engine ([`SlabMachine`]) — under every [`ExecMode`], over chunk widths
//! that exercise single-PE chunks, short tail chunks, and whole-group
//! chunks, and under a seeded fault model (stuck-at cells must perturb
//! distances identically; transient search misses must not perturb them
//! at all).

use hyperap_arch::{ApMachine, ArchConfig, ExecMode, FaultConfig, FaultModel, SlabMachine};
use hyperap_isa::Instruction;
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::similarity as sim;
use hyperap_tcam::KeyBit;
use proptest::prelude::*;

/// Geometry under test: `tiny()` is 2 groups × 4 PEs of 16×64.
const PES: usize = 8;
const ROWS: usize = 16;
const COLS: usize = 64;

/// Chunk widths under test: single-PE chunks, a short tail chunk (4 PEs
/// per group in chunks of 3), and one chunk covering the whole group.
const CHUNK_WIDTHS: [usize; 3] = [1, 3, 4];

/// A seeded fault model dense enough that stuck cells actually land in
/// the 8×16×64 fixture, with live transient misses to prove distance
/// queries ignore them.
fn fault_model() -> FaultConfig {
    FaultConfig {
        model: FaultModel {
            seed: 0x51AB_u64 ^ 0xFA17,
            stuck_per_million: 60_000,
            miss_per_million: 40_000,
            endurance_limit: None,
        },
        spare_cols: 2,
    }
}

fn keybit(b: u8) -> KeyBit {
    match b {
        0 => KeyBit::Zero,
        1 => KeyBit::One,
        2 => KeyBit::Z,
        _ => KeyBit::Masked,
    }
}

type Load = (usize, usize, usize, bool);

fn loads_strategy() -> impl Strategy<Value = Vec<Load>> {
    prop::collection::vec(
        (0usize..PES, 0usize..ROWS, 0usize..COLS, any::<bool>()),
        0..96,
    )
}

/// A short SetKey/Search/Write prologue: architectural writes are the only
/// way stored `X` cells appear in a machine, so queries see all three
/// stored states.
fn prologue_strategy() -> impl Strategy<Value = Vec<Instruction>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0u8..4, COLS).prop_map(|bits| Instruction::SetKey {
                key: bits.iter().map(|&b| keybit(b)).collect(),
            }),
            (any::<bool>(), any::<bool>())
                .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
            (0u8..(COLS as u8 - 1), any::<bool>())
                .prop_map(|(col, encode)| Instruction::Write { col, encode }),
        ],
        0..12,
    )
}

fn query_strategy() -> impl Strategy<Value = SearchKey> {
    prop::collection::vec(0u8..4, COLS)
        .prop_map(|bits| bits.iter().map(|&b| keybit(b)).collect::<SearchKey>())
}

fn config(mode: ExecMode, faulty: bool) -> ArchConfig {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    cfg.faults = if faulty {
        fault_model()
    } else {
        FaultConfig::default()
    };
    cfg
}

fn build_ap(loads: &[Load], prologue: &[Instruction], faulty: bool) -> ApMachine {
    let mut m = ApMachine::new(config(ExecMode::Sequential, faulty));
    for &(pe, row, col, v) in loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    if !prologue.is_empty() {
        let streams = vec![prologue.to_vec(), prologue.to_vec()];
        m.run(&streams);
    }
    m
}

fn build_slab(
    mode: ExecMode,
    chunk_pes: usize,
    loads: &[Load],
    prologue: &[Instruction],
    faulty: bool,
) -> SlabMachine {
    let mut m = SlabMachine::with_chunk_pes(config(mode, faulty), chunk_pes);
    for &(pe, row, col, v) in loads {
        m.load_bit(pe, row, col, v);
    }
    if !prologue.is_empty() {
        let streams = vec![prologue.to_vec(), prologue.to_vec()];
        m.run(&streams);
    }
    m
}

/// The from-first-principles oracle: scalar distances per PE array plus
/// the shared schedule, computed without either engine's top-k machinery.
fn oracle_topk(
    reference: &ApMachine,
    query: &SearchKey,
    rows: usize,
    k: usize,
) -> Vec<(u32, u32, u32)> {
    let plan = query.compile_plan();
    let mut all: Vec<(u32, u32, u32)> = Vec::new();
    for pe in 0..PES {
        for (row, d) in sim::scalar_distances(reference.pe(pe).array(), &plan, rows)
            .into_iter()
            .enumerate()
        {
            all.push((d, pe as u32, row as u32));
        }
    }
    all.sort_unstable();
    all.truncate(k);
    all
}

proptest! {
    /// Slab word-parallel top-k equals the scalar per-PE engine — hits and
    /// stats — under every mode × chunk width, fault-free and under seeded
    /// stuck/miss faults, and both equal the from-first-principles oracle.
    #[test]
    fn similarity_query_is_engine_invariant(
        loads in loads_strategy(),
        prologue in prologue_strategy(),
        query in query_strategy(),
        rows in 1usize..=ROWS,
        k in (0usize..5).prop_map(|i| [1usize, 2, 5, 40, 200][i]),
        faulty in any::<bool>(),
    ) {
        let reference = build_ap(&loads, &prologue, faulty);
        let want = reference.hamming_topk(&query, rows, k);
        let oracle = oracle_topk(&reference, &query, rows, k);
        let got: Vec<(u32, u32, u32)> =
            want.hits.iter().map(|h| (h.distance, h.pe, h.row)).collect();
        prop_assert_eq!(got, oracle, "scalar engine diverged from oracle");
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::Auto] {
            for chunk_pes in CHUNK_WIDTHS {
                let slab = build_slab(mode, chunk_pes, &loads, &prologue, faulty);
                let got = slab.hamming_topk(&query, rows, k);
                prop_assert_eq!(
                    &want.hits, &got.hits,
                    "hits diverged under {:?} with {}-PE chunks (faulty={})",
                    mode, chunk_pes, faulty
                );
                prop_assert_eq!(
                    &want.stats, &got.stats,
                    "stats diverged under {:?} with {}-PE chunks (faulty={})",
                    mode, chunk_pes, faulty
                );
            }
        }
    }

    /// `nearest` is `hamming_topk` with `k = 1` on both engines, and a
    /// zero-distance winner exists exactly when a plain architectural
    /// search of the same key would tag a row (fault-free machines).
    #[test]
    fn nearest_matches_topk1_and_search(
        loads in loads_strategy(),
        query in query_strategy(),
    ) {
        let reference = build_ap(&loads, &[], false);
        let near = reference.nearest(&query, ROWS);
        prop_assert_eq!(&near, &reference.hamming_topk(&query, ROWS, 1));
        let slab = build_slab(ExecMode::Sequential, 3, &loads, &[], false);
        prop_assert_eq!(&near, &slab.nearest(&query, ROWS));
        // Cross-check the zero-distance criterion against the search
        // algebra: distance 0 ⇔ every unmasked key bit matches.
        if let Some(best) = near.best() {
            let plan = query.compile_plan();
            let d = sim::scalar_distances(
                reference.pe(best.pe as usize).array(), &plan, ROWS,
            )[best.row as usize];
            prop_assert_eq!(best.distance, d);
            let matches = plan.iter().all(|&(col, bit)| {
                col >= COLS
                    || bit == KeyBit::Masked
                    || bit.matches(reference.pe(best.pe as usize).array().cell(best.row as usize, col))
            });
            prop_assert_eq!(best.distance == 0, matches);
        }
    }
}

/// Transient search misses change architectural searches but must leave
/// similarity distances untouched: the same stored state queried with and
/// without a miss-only fault model gives identical outcomes.
#[test]
fn transient_misses_do_not_perturb_distances() {
    let miss_only = FaultConfig {
        model: FaultModel {
            seed: 0xB1A5,
            stuck_per_million: 0,
            miss_per_million: 300_000,
            endurance_limit: None,
        },
        spare_cols: 0,
    };
    let loads: Vec<Load> = (0..PES)
        .flat_map(|pe| (0..ROWS).map(move |row| (pe, row, (pe * 7 + row) % COLS, true)))
        .collect();
    let mut ideal = ApMachine::new(config(ExecMode::Sequential, false));
    let mut cfg = config(ExecMode::Sequential, false);
    cfg.faults = miss_only;
    let mut missy = ApMachine::new(cfg.clone());
    let mut missy_slab = SlabMachine::with_chunk_pes(cfg, 3);
    for &(pe, row, col, v) in &loads {
        ideal.pe_mut(pe).load_bit(row, col, v);
        missy.pe_mut(pe).load_bit(row, col, v);
        missy_slab.load_bit(pe, row, col, v);
    }
    let query = SearchKey::parse(&"1-0".repeat(COLS / 3)).unwrap();
    let want = ideal.hamming_topk(&query, ROWS, 5);
    assert_eq!(want, missy.hamming_topk(&query, ROWS, 5));
    assert_eq!(want.hits, missy_slab.hamming_topk(&query, ROWS, 5).hits);
}
