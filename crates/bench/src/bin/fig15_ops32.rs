//! Fig 15: 32-bit arithmetic operations — latency, throughput, power
//! efficiency, area efficiency vs IMP (and the reconstructed GPU series).

use hyperap_baselines::gpu::GpuModel;
use hyperap_baselines::reference::{record, OpKind, FIG15_HYPER_AP, FIG15_IMP};
use hyperap_bench::{header, metric_block};
use hyperap_workloads::perf::synthetic_metrics;

fn main() {
    header("Fig 15: representative arithmetic operations, 32-bit unsigned");
    let gpu = GpuModel::default();
    for op in [
        OpKind::Add,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Sqrt,
        OpKind::Exp,
    ] {
        let m = synthetic_metrics(op, 32);
        let paper = record(&FIG15_HYPER_AP, op).unwrap();
        metric_block(&op.to_string(), &m, &paper);
        let imp = record(&FIG15_IMP, op).unwrap();
        let g = gpu.record(op);
        println!(
            "     vs IMP: latency {:.1}x better (paper {:.1}x) | throughput {:.1}x (paper {:.1}x) | power eff {:.1}x (paper {:.1}x)",
            imp.latency_ns / m.latency_ns,
            imp.latency_ns / paper.latency_ns,
            m.throughput_gops / imp.throughput_gops,
            paper.throughput_gops / imp.throughput_gops,
            m.power_eff_gops_w / imp.power_eff,
            paper.power_eff / imp.power_eff,
        );
        println!(
            "     GPU (reconstructed): {:.0} ns, {:.0} GOPS, {:.2} GOPS/W",
            g.latency_ns, g.throughput_gops, g.power_eff
        );
    }
}
