//! The event-stepped machine executing per-group instruction streams.
//!
//! # Execution engine
//!
//! The default [`ApMachine::run`] path **trace-compiles** each stream
//! ([`crate::trace`]): instructions are decoded once into resolved
//! micro-ops and split into segments at cross-PE synchronization points.
//! Each segment executes with a single fork-join — every worker runs its
//! PE chunk through the *entire* segment before joining — so decode,
//! search-plan construction, and thread fan-out are amortized over whole
//! traces and each PE's columns stay cache-resident across a segment.
//! [`ApMachine::run_interpreted`] keeps the instruction-at-a-time engine
//! as the bit-identical reference (property-tested in
//! `tests/engine_equivalence.rs`).
//!
//! In both engines the fan-out is data-parallel — every PE's work is
//! independent — and runs on scoped threads ([`crate::par`]) when
//! [`ExecMode`] and the dispatch size warrant it. The steady-state path
//! performs no heap allocation: active-PE sets are cached per group and
//! invalidated only by `Broadcast`, searches reuse each PE's tag storage,
//! reductions land in a preallocated scratch slice, and `MovR` snapshots
//! into reusable register buffers.

use crate::config::{ArchConfig, ExecMode};
use crate::par;
use crate::similarity::{SimilarityHit, SimilarityOutcome};
use crate::stats::{PeHealth, RunStats};
use crate::trace::{self, CompiledTrace, MicroOp, PlanRef, Segment, StepKind};
use hyperap_core::machine::HyperPe;
use hyperap_isa::{Direction, Instruction};
use hyperap_model::timing::OpCounts;
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::similarity as tcam_similarity;
use hyperap_tcam::tags::TagVector;
use hyperap_tcam::FaultError;

/// Broadcast PE address (re-exported from the ISA): `ReadR`/`WriteR` with
/// the all-ones 17-bit address target every PE of the issuing group.
pub use hyperap_isa::lower::BROADCAST_ADDR;

/// A group's key-register state snapshotted at trace-run entry: the key
/// plus its precompiled active-column plan (consumed by `PlanRef::Entry`
/// micro-ops).
pub(crate) type KeySnapshot = (SearchKey, Vec<(usize, KeyBit)>);

/// A group's cached active-PE set (the bank-mask filter evaluated once, not
/// once per instruction). Only `Broadcast` rewrites the bank mask, so only
/// `Broadcast` invalidates. Shared with the slab engine ([`crate::slab`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct ActiveSet {
    /// One flag per PE of the group, indexed relative to the group base.
    pub(crate) mask: Vec<bool>,
    /// Number of set flags.
    pub(crate) count: usize,
    /// False until (re)computed; cleared by `Broadcast`.
    pub(crate) valid: bool,
}

impl ActiveSet {
    /// Recompute the flags for one group if a `Broadcast` invalidated them.
    pub(crate) fn refresh(&mut self, config: &ArchConfig, group: usize, bank_mask: u8) {
        if self.valid {
            return;
        }
        let per = config.pes_per_group();
        let base = group * per;
        self.mask.clear();
        self.mask.resize(per, false);
        self.count = 0;
        for i in 0..per {
            let bank = config.bank_of(base + i);
            let on = bank >= 8 || bank_mask >> bank & 1 == 1;
            self.mask[i] = on;
            self.count += usize::from(on);
        }
        self.valid = true;
    }
}

/// Borrowed view of one group's execution state, with the fan-out width
/// already resolved for the current dispatch.
struct GroupCtx<'a> {
    /// Absolute PE id of the group's first PE.
    base: usize,
    /// The group's PEs.
    pes: &'a mut [HyperPe],
    /// The group's data registers (same indexing as `pes`).
    regs: &'a mut [TagVector],
    /// Per-PE reduction scratch (same indexing as `pes`).
    scratch: &'a mut [u64],
    /// Active flags (same indexing as `pes`).
    mask: &'a [bool],
    /// The group's key register.
    key: &'a SearchKey,
    /// The key's precompiled active-column plan (rebuilt on `SetKey`).
    plan: &'a [(usize, KeyBit)],
    /// Worker threads for this dispatch (1 = inline).
    threads: usize,
}

/// A simulated Hyper-AP machine.
#[derive(Debug, Clone)]
pub struct ApMachine {
    config: ArchConfig,
    /// Resolved host fan-out width for `config.exec`.
    threads: usize,
    pes: Vec<HyperPe>,
    data_regs: Vec<TagVector>,
    /// Per-group controller state: current key and bank-enable mask.
    keys: Vec<SearchKey>,
    /// Per-group precompiled key plans: the key's unmasked `(column, bit)`
    /// pairs, scanned once per `SetKey` instead of per PE per search.
    key_plans: Vec<Vec<(usize, KeyBit)>>,
    bank_masks: Vec<u8>,
    /// Controller data buffer (last `ReadR` result per group).
    pub data_buffers: Vec<TagVector>,
    /// Per-group cached active-PE sets.
    active: Vec<ActiveSet>,
    /// `Count`/`Index` fan-out results (one slot per PE of a group).
    reduce_scratch: Vec<u64>,
    /// `MovR` snapshot registers (lazily sized to one group).
    mov_scratch: Vec<TagVector>,
    /// Decoded `WriteR` immediate.
    imm_scratch: TagVector,
    /// Content-addressed trace cache: the last compiled stream set and its
    /// traces. [`run`](Self::run) recompiles only when the incoming streams
    /// differ, so steady-state reruns of the same kernel pay one stream
    /// comparison instead of a full compile.
    trace_cache: Option<(Vec<Vec<Instruction>>, Vec<CompiledTrace>)>,
}

impl ApMachine {
    /// Build a machine with the given geometry; all cells zero. When
    /// [`ArchConfig::faults`] is active, every PE gets the shared fault
    /// model attached under its global id (so each PE derives its own
    /// stuck cells / misses) plus the configured spare-column budget.
    pub fn new(config: ArchConfig) -> Self {
        let n = config.total_pes();
        let mut pes: Vec<HyperPe> = (0..n)
            .map(|_| HyperPe::new(config.rows, config.cols))
            .collect();
        if config.faults.is_active() {
            for (i, pe) in pes.iter_mut().enumerate() {
                pe.attach_fault(config.faults.model, config.faults.spare_cols, i);
            }
        }
        ApMachine {
            threads: config.exec.threads(),
            pes,
            data_regs: vec![TagVector::zeros(config.rows); n],
            keys: vec![SearchKey::masked(config.cols); config.groups],
            key_plans: vec![Vec::new(); config.groups],
            bank_masks: vec![0xFF; config.groups],
            data_buffers: vec![TagVector::zeros(config.rows); config.groups],
            active: vec![ActiveSet::default(); config.groups],
            reduce_scratch: vec![0; config.pes_per_group()],
            mov_scratch: Vec::new(),
            imm_scratch: TagVector::zeros(config.rows),
            trace_cache: None,
            config,
        }
    }

    /// The machine geometry.
    pub fn config(&self) -> &ArchConfig {
        &self.config
    }

    /// Switch the engine's threading policy in place (results are identical
    /// under every mode; see [`ExecMode`]).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.config.exec = mode;
        self.threads = mode.threads();
    }

    /// Read access to a PE.
    pub fn pe(&self, id: usize) -> &HyperPe {
        &self.pes[id]
    }

    /// Mutable access to a PE (host data-load path).
    pub fn pe_mut(&mut self, id: usize) -> &mut HyperPe {
        &mut self.pes[id]
    }

    /// A PE's data register.
    pub fn data_reg(&self, id: usize) -> &TagVector {
        &self.data_regs[id]
    }

    /// CAM-native batch similarity query: the top-`k` stored words across
    /// every PE by ternary Hamming distance to `query`, searched over the
    /// first `rows` rows of each PE.
    ///
    /// This is the scalar per-PE reference engine — it walks every cell —
    /// and is bit-identical in hits *and* [`RunStats`] to
    /// [`SlabMachine::hamming_topk`](crate::SlabMachine::hamming_topk);
    /// see [`crate::similarity`] for the shared semantics and the
    /// accounting model. Winners are sorted ascending
    /// `(distance, pe, row)`. Read-only: no wear, no epoch advance.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `rows` exceeds the machine's rows.
    pub fn hamming_topk(&self, query: &SearchKey, rows: usize, k: usize) -> SimilarityOutcome {
        assert!(rows <= self.config.rows, "row limit exceeds machine");
        assert!(k > 0, "top-k requires k >= 1");
        let plan = query.compile_plan();
        let active = tcam_similarity::active_entries(&plan, self.config.cols);
        let total = self.config.total_pes();
        let mut distances = Vec::with_capacity(total * rows);
        for pe in 0..total {
            distances.extend(tcam_similarity::scalar_distances(
                self.pes[pe].array(),
                &plan,
                rows,
            ));
        }
        let sched = tcam_similarity::topk_schedule(&distances, active, k);
        let mut hits: Vec<SimilarityHit> = distances
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d <= sched.tau)
            .map(|(i, &d)| SimilarityHit {
                distance: d,
                pe: (i / rows) as u32,
                row: (i % rows) as u32,
            })
            .collect();
        hits.sort_unstable();
        hits.truncate(k);
        SimilarityOutcome {
            hits,
            stats: crate::similarity::query_stats(&self.config, active, sched.rounds, None),
        }
    }

    /// The single nearest stored word to `query` —
    /// [`hamming_topk`](Self::hamming_topk) with `k = 1`.
    pub fn nearest(&self, query: &SearchKey, rows: usize) -> SimilarityOutcome {
        self.hamming_topk(query, rows, 1)
    }

    /// Recompute the group's active-PE set if a `Broadcast` invalidated it.
    fn refresh_active(&mut self, group: usize) {
        self.active[group].refresh(&self.config, group, self.bank_masks[group]);
    }

    /// Borrow the group's execution state, active set refreshed and fan-out
    /// width resolved for a dispatch of `ops` per-PE micro-ops (1 for the
    /// interpreter's per-instruction dispatches, the segment length for
    /// trace execution) under the configured mode.
    fn group_ctx(&mut self, group: usize, ops: usize) -> GroupCtx<'_> {
        self.refresh_active(group);
        let per = self.config.pes_per_group();
        let base = group * per;
        let cache = &self.active[group];
        let threads = if cache.count < 2 {
            1
        } else {
            self.config.exec.dispatch_threads(
                self.threads,
                (cache.count * self.config.rows) as u64,
                ops as u64,
            )
        };
        GroupCtx {
            base,
            pes: &mut self.pes[base..base + per],
            regs: &mut self.data_regs[base..base + per],
            scratch: &mut self.reduce_scratch[..per],
            mask: &cache.mask,
            key: &self.keys[group],
            plan: &self.key_plans[group],
            threads,
        }
    }

    /// Run one instruction stream per group to completion (streams beyond
    /// [`ArchConfig::groups`] are ignored; missing streams idle).
    ///
    /// Returns cycle counts, SIMD-level operation counts, and reduction
    /// results. Timing is event-stepped: each group issues its next
    /// instruction when its previous one retires; `Wait` stalls implement
    /// compile-time synchronization (§IV-A12). The result is bit-identical
    /// under every [`ExecMode`]: the event order is fixed by the clocks, and
    /// within a dispatch each PE's work is independent with reduction
    /// results collected in ascending PE order.
    ///
    /// This is the trace-compiled engine: streams are precompiled into
    /// per-PE segment traces ([`crate::trace`]) and executed with one
    /// fork-join per segment. It is bit-identical to
    /// [`run_interpreted`](Self::run_interpreted) — including `RunStats`,
    /// per-PE operation counts, and wear accounting (property-tested in
    /// `tests/engine_equivalence.rs`).
    ///
    /// Compiled traces are cached by stream content: rerunning the same
    /// streams (the steady state of a kernel executed many times) skips
    /// recompilation entirely. Caching is invisible in the results —
    /// identical streams compile to identical traces.
    pub fn run(&mut self, streams: &[Vec<Instruction>]) -> RunStats {
        self.try_run(streams)
            .unwrap_or_else(|e| panic!("fault degradation: {e}"))
    }

    /// [`run`](Self::run) surfacing fault degradation as a typed error
    /// instead of a panic: a PE exhausting its spare columns aborts with
    /// [`FaultError::SparesExhausted`], and every later run fails fast on
    /// the latched failure. Identical to [`run`](Self::run) when no fault
    /// model is configured (it cannot fail then).
    pub fn try_run(&mut self, streams: &[Vec<Instruction>]) -> Result<RunStats, FaultError> {
        let cached = self
            .trace_cache
            .take()
            .filter(|(s, _)| s.as_slice() == streams);
        let (key, traces) = match cached {
            Some(hit) => hit,
            None => (
                streams.to_vec(),
                trace::compile_streams(streams, &self.config),
            ),
        };
        let stats = self.try_run_compiled(&traces);
        self.trace_cache = Some((key, traces));
        stats
    }

    /// Fail fast on a latched spare-exhaustion failure, then open a new
    /// run epoch (re-deriving every PE's transient search-miss set).
    /// No-op without an active fault model.
    fn begin_run(&mut self) -> Result<(), FaultError> {
        if !self.config.faults.is_active() {
            return Ok(());
        }
        for pe in &self.pes {
            if let Some(f) = pe.fault() {
                if let Some((col, wear)) = f.failed {
                    return Err(FaultError::SparesExhausted {
                        pe: f.pe,
                        col,
                        wear,
                    });
                }
            }
        }
        for pe in &mut self.pes {
            pe.advance_epoch();
        }
        Ok(())
    }

    /// End-of-run endurance service: retire worn columns onto spares in
    /// global ascending PE order (columns ascending within a PE), stopping
    /// at the first exhaustion, then report per-PE degradation in
    /// [`RunStats::pe_health`]. No-op without an active fault model.
    fn finish_run(&mut self, stats: &mut RunStats) -> Result<(), FaultError> {
        if !self.config.faults.is_active() {
            return Ok(());
        }
        for pe in &mut self.pes {
            pe.service_endurance()?;
        }
        stats.pe_health = self
            .pes
            .iter()
            .filter_map(|pe| {
                let f = pe.fault()?;
                (!f.retired.is_empty()).then(|| PeHealth {
                    pe: f.pe,
                    retired: f.retired.clone(),
                    spares_left: f.spares_left(),
                })
            })
            .collect();
        Ok(())
    }

    /// The instruction-at-a-time reference engine: identical semantics to
    /// [`run`](Self::run), dispatching every instruction per group per step
    /// with no trace compilation.
    pub fn run_interpreted(&mut self, streams: &[Vec<Instruction>]) -> RunStats {
        self.try_run_interpreted(streams)
            .unwrap_or_else(|e| panic!("fault degradation: {e}"))
    }

    /// [`run_interpreted`](Self::run_interpreted) surfacing fault
    /// degradation as a typed error (see [`try_run`](Self::try_run)).
    pub fn try_run_interpreted(
        &mut self,
        streams: &[Vec<Instruction>],
    ) -> Result<RunStats, FaultError> {
        self.begin_run()?;
        let groups = self.config.groups;
        let mut stats = RunStats {
            group_cycles: vec![0; groups],
            group_ops: vec![OpCounts::default(); groups],
            count_results: vec![Vec::new(); groups],
            index_results: vec![Vec::new(); groups],
            pe_health: Vec::new(),
            geometry: None,
        };
        // Event-driven: always step the group whose local clock is
        // earliest, so `Wait`-based synchronization orders cross-group
        // interactions (MovR handoffs) exactly as the compile-time schedule
        // intends (§IV-A12).
        let mut pcs = vec![0usize; groups];
        let mut clocks = vec![0u64; groups];
        loop {
            let next = (0..groups)
                .filter(|&g| streams.get(g).is_some_and(|s| pcs[g] < s.len()))
                .min_by_key(|&g| (clocks[g], g));
            let Some(g) = next else { break };
            let inst = &streams[g][pcs[g]];
            pcs[g] += 1;
            clocks[g] += inst.cycles(&self.config.tech);
            self.execute(g, inst, &mut stats);
        }
        stats.group_cycles = clocks;
        self.finish_run(&mut stats)?;
        Ok(stats)
    }

    /// Run precompiled traces ([`trace::compile_streams`]) — the hot path
    /// behind [`run`](Self::run), reusable when the same streams execute
    /// many times.
    ///
    /// The event loop schedules whole *steps* (segments or single
    /// synchronization points) by the interpreter's `(issue cycle, group)`
    /// key. Segment-internal micro-ops touch only group-private state, so
    /// running a segment as one block commutes with every other group's
    /// work; synchronization points retire in exactly the interpreter's
    /// order because all cycle costs are static.
    pub fn run_compiled(&mut self, traces: &[CompiledTrace]) -> RunStats {
        self.try_run_compiled(traces)
            .unwrap_or_else(|e| panic!("fault degradation: {e}"))
    }

    /// [`run_compiled`](Self::run_compiled) surfacing fault degradation as
    /// a typed error (see [`try_run`](Self::try_run)).
    pub fn try_run_compiled(&mut self, traces: &[CompiledTrace]) -> Result<RunStats, FaultError> {
        self.begin_run()?;
        let groups = self.config.groups;
        let mut stats = RunStats {
            group_cycles: vec![0; groups],
            group_ops: vec![OpCounts::default(); groups],
            count_results: vec![Vec::new(); groups],
            index_results: vec![Vec::new(); groups],
            pe_health: Vec::new(),
            geometry: None,
        };
        let n = groups.min(traces.len());
        // Snapshot each group's entry key state where the trace needs it (a
        // stream that searches or writes before its first SetKey inherits
        // whatever the key register held when the run started).
        let entries: Vec<Option<KeySnapshot>> = (0..n)
            .map(|g| {
                traces[g]
                    .uses_entry_key
                    .then(|| (self.keys[g].clone(), self.key_plans[g].clone()))
            })
            .collect();
        let clocks = trace::drive_steps(traces, groups, |g, step| match &step.kind {
            StepKind::Segment(si) => {
                let seg = &traces[g].segments[*si];
                self.exec_segment(g, seg, &traces[g].plans, entries[g].as_ref());
                stats.group_ops[g].add(&seg.ops_delta);
            }
            StepKind::Sync(inst) => self.execute(g, inst, &mut stats),
        });
        // Leave the controller key registers exactly as the interpreter
        // would: the last SetKey of each stream wins.
        for (g, t) in traces.iter().enumerate().take(n) {
            if let Some(key) = &t.final_key {
                self.keys[g].copy_from(key);
                let fp = t.final_plan.expect("a final key implies a plan");
                self.key_plans[g].clear();
                self.key_plans[g].extend_from_slice(&t.plans[fp]);
            }
        }
        stats.group_cycles = clocks;
        self.finish_run(&mut stats)?;
        Ok(stats)
    }

    /// Execute one segment: a single fan-out where each worker runs its PE
    /// chunk through the entire micro-op list (the loop inversion that
    /// keeps a PE's columns cache-resident and pays one fork-join per
    /// segment).
    fn exec_segment(
        &mut self,
        group: usize,
        seg: &Segment,
        plans: &[Vec<(usize, KeyBit)>],
        entry: Option<&KeySnapshot>,
    ) {
        let bill_elided = seg.elided != OpCounts::default();
        if seg.ops.is_empty() && !bill_elided {
            return; // bookkeeping-only segment (SetKey/Wait runs)
        }
        let GroupCtx {
            pes,
            regs,
            mask,
            threads,
            ..
        } = self.group_ctx(group, seg.ops.len());
        let resolve = |plan: &PlanRef| -> &[(usize, KeyBit)] {
            match plan {
                PlanRef::Entry => entry.expect("entry key snapshotted").1.as_slice(),
                PlanRef::Compiled(p) => plans[*p].as_slice(),
            }
        };
        let store = |value: KeyBit| -> TernaryBit {
            value.write_value().expect("compiler emits storing writes")
        };
        // Fused ops carry their plan chain and write list by reference /
        // key bit; the resolved slice pointers and store values are
        // PE-invariant, so build them once per segment instead of per PE.
        type Chain<'a> = (
            [&'a [(usize, KeyBit)]; trace::MAX_FUSED],
            usize,
            [(usize, TernaryBit); trace::MAX_FUSED],
            usize,
        );
        let resolved: Vec<Option<Chain>> = seg
            .ops
            .iter()
            .map(|op| {
                let mut pbuf: [&[(usize, KeyBit)]; trace::MAX_FUSED] = [&[]; trace::MAX_FUSED];
                let mut wbuf = [(0usize, TernaryBit::X); trace::MAX_FUSED];
                match op {
                    MicroOp::SearchWrite {
                        plan, col, value, ..
                    } => {
                        pbuf[0] = resolve(plan);
                        wbuf[0] = (*col as usize, store(*value));
                        Some((pbuf, 1, wbuf, 1))
                    }
                    MicroOp::SearchWriteMulti {
                        plans: chain,
                        writes,
                        ..
                    } => {
                        for (k, p) in chain.iter().enumerate() {
                            pbuf[k] = resolve(p);
                        }
                        for (k, &(col, value)) in writes.iter().enumerate() {
                            wbuf[k] = (col as usize, store(value));
                        }
                        Some((pbuf, chain.len(), wbuf, writes.len()))
                    }
                    MicroOp::WriteMulti { writes } => {
                        for (k, &(col, value)) in writes.iter().enumerate() {
                            wbuf[k] = (col as usize, store(value));
                        }
                        Some((pbuf, 0, wbuf, writes.len()))
                    }
                    _ => None,
                }
            })
            .collect();
        par::for_each_chunk_zip(threads, pes, regs, |off, pes, regs| {
            for (i, pe) in pes.iter_mut().enumerate() {
                if !mask[off + i] {
                    continue;
                }
                let reg = &mut regs[i];
                for (oi, op) in seg.ops.iter().enumerate() {
                    match op {
                        MicroOp::Search { plan, acc, encode } => {
                            pe.search_planned(resolve(plan), *acc);
                            if *encode {
                                pe.latch_tags();
                            }
                        }
                        MicroOp::Write { col, value } => pe.write(*col as usize, *value),
                        MicroOp::WriteEntry { col } => {
                            let value = entry.expect("entry key snapshotted").0.bit(*col as usize);
                            if value.write_value().is_some() {
                                pe.write(*col as usize, value);
                            }
                        }
                        MicroOp::WriteEncoded { col } => pe.write_encoded(*col as usize),
                        MicroOp::SetTag => pe.set_tags_from(reg),
                        MicroOp::ReadTag => reg.copy_from(pe.tags()),
                        MicroOp::SearchWrite { acc, encode, .. }
                        | MicroOp::SearchWriteMulti { acc, encode, .. } => {
                            let (pbuf, np, wbuf, nw) =
                                resolved[oi].as_ref().expect("fused op resolved");
                            pe.search_write_multi(&pbuf[..*np], *acc, *encode, &wbuf[..*nw]);
                        }
                        MicroOp::WriteMulti { .. } => {
                            let (_, _, wbuf, nw) =
                                resolved[oi].as_ref().expect("fused op resolved");
                            pe.write_multi(&wbuf[..*nw]);
                        }
                        MicroOp::SearchDelta { plan, encode } => {
                            pe.search_narrow(&plans[*plan]);
                            if *encode {
                                pe.latch_tags();
                            }
                        }
                    }
                }
                if bill_elided {
                    pe.add_ops(&seg.elided);
                }
            }
        });
    }

    fn execute(&mut self, group: usize, inst: &Instruction, stats: &mut RunStats) {
        let ops = &mut stats.group_ops[group];
        match inst {
            Instruction::SetKey { key } => {
                self.keys[group].copy_from(key);
                key.plan_into(&mut self.key_plans[group]);
                ops.set_keys += 1;
            }
            Instruction::Search { acc, encode } => {
                let (acc, encode) = (*acc, *encode);
                let GroupCtx {
                    pes,
                    mask,
                    plan,
                    threads,
                    ..
                } = self.group_ctx(group, 1);
                par::for_each_chunk(threads, pes, |off, pes| {
                    for (i, pe) in pes.iter_mut().enumerate() {
                        if mask[off + i] {
                            pe.search_planned(plan, acc);
                            if encode {
                                pe.latch_tags();
                            }
                        }
                    }
                });
                ops.searches += 1;
            }
            Instruction::Write { col, encode } => {
                let (col, encode) = (*col as usize, *encode);
                let GroupCtx {
                    pes,
                    mask,
                    key,
                    threads,
                    ..
                } = self.group_ctx(group, 1);
                let value = key.bit(col);
                let store = value.write_value().is_some();
                par::for_each_chunk(threads, pes, |off, pes| {
                    for (i, pe) in pes.iter_mut().enumerate() {
                        if mask[off + i] {
                            if encode {
                                pe.write_encoded(col);
                            } else if store {
                                pe.write(col, value);
                            }
                        }
                    }
                });
                if encode {
                    ops.writes_encoded += 1;
                } else {
                    ops.writes_single += 1;
                }
            }
            Instruction::Count => {
                let GroupCtx {
                    base,
                    pes,
                    scratch,
                    mask,
                    threads,
                    ..
                } = self.group_ctx(group, 1);
                par::for_each_chunk_zip(threads, pes, &mut *scratch, |off, pes, out| {
                    for (i, pe) in pes.iter_mut().enumerate() {
                        if mask[off + i] {
                            out[i] = pe.count() as u64;
                        }
                    }
                });
                let results = &mut stats.count_results[group];
                for (i, &on) in mask.iter().enumerate() {
                    if on {
                        results.push((base + i, scratch[i] as usize));
                    }
                }
                stats.group_ops[group].counts += 1;
            }
            Instruction::Index => {
                let GroupCtx {
                    base,
                    pes,
                    scratch,
                    mask,
                    threads,
                    ..
                } = self.group_ctx(group, 1);
                // Option<usize> packed as value + 1 (0 = None) so the
                // scratch slice stays plain u64.
                par::for_each_chunk_zip(threads, pes, &mut *scratch, |off, pes, out| {
                    for (i, pe) in pes.iter_mut().enumerate() {
                        if mask[off + i] {
                            out[i] = pe.index().map_or(0, |v| v as u64 + 1);
                        }
                    }
                });
                let results = &mut stats.index_results[group];
                for (i, &on) in mask.iter().enumerate() {
                    if on {
                        let idx = scratch[i];
                        results.push((base + i, (idx > 0).then(|| idx as usize - 1)));
                    }
                }
                stats.group_ops[group].indexes += 1;
            }
            Instruction::MovR { dir } => {
                self.mov_r(group, *dir);
                ops.mov_rs += 1;
            }
            Instruction::ReadR { addr } => {
                let pe = (*addr as usize).min(self.pes.len() - 1);
                self.data_buffers[group].copy_from(&self.data_regs[pe]);
            }
            Instruction::WriteR { addr, imm } => {
                Self::decode_reg(imm, &mut self.imm_scratch);
                if *addr == BROADCAST_ADDR {
                    self.refresh_active(group);
                    let per = self.config.pes_per_group();
                    let base = group * per;
                    let mask = &self.active[group].mask;
                    let imm = &self.imm_scratch;
                    for (i, reg) in self.data_regs[base..base + per].iter_mut().enumerate() {
                        if mask[i] {
                            reg.copy_from(imm);
                        }
                    }
                } else {
                    let pe = (*addr as usize).min(self.pes.len() - 1);
                    self.data_regs[pe].copy_from(&self.imm_scratch);
                }
            }
            Instruction::SetTag => {
                let GroupCtx {
                    pes,
                    regs,
                    mask,
                    threads,
                    ..
                } = self.group_ctx(group, 1);
                par::for_each_chunk_zip(threads, pes, regs, |off, pes, regs| {
                    for (i, pe) in pes.iter_mut().enumerate() {
                        if mask[off + i] {
                            pe.set_tags_from(&regs[i]);
                        }
                    }
                });
                ops.tag_ops += 1;
            }
            Instruction::ReadTag => {
                let GroupCtx {
                    pes,
                    regs,
                    mask,
                    threads,
                    ..
                } = self.group_ctx(group, 1);
                par::for_each_chunk_zip(threads, pes, regs, |off, pes, regs| {
                    for (i, pe) in pes.iter_mut().enumerate() {
                        if mask[off + i] {
                            regs[i].copy_from(pe.tags());
                        }
                    }
                });
                ops.tag_ops += 1;
            }
            Instruction::Broadcast { group_mask } => {
                self.bank_masks[group] = *group_mask;
                self.active[group].valid = false;
                ops.broadcasts += 1;
            }
            Instruction::Wait { cycles } => {
                ops.wait_cycles += *cycles as u64;
            }
        }
    }

    /// MovR: every active PE *pushes* its data register to the mesh
    /// neighbor in `dir` (the paper: "reads the value in the data register
    /// of one PE and stores it into the data register of its adjacent PE" —
    /// the destination may belong to another group, which is how
    /// cross-group handoffs work under Wait synchronization). Active PEs
    /// whose upstream neighbor is not pushing shift zeros in, like a
    /// hardware shift chain; snapshot semantics throughout.
    fn mov_r(&mut self, group: usize, dir: Direction) {
        let (h, w) = self.config.mesh_dims();
        let per = self.config.pes_per_group();
        let base = group * per;
        self.refresh_active(group);
        if self.mov_scratch.len() < per {
            let rows = self.config.rows;
            self.mov_scratch.resize_with(per, || TagVector::zeros(rows));
        }
        let mask = &self.active[group].mask;
        // Snapshot the pushing registers into the reusable buffer.
        for (i, &on) in mask.iter().enumerate() {
            if on {
                self.mov_scratch[i].copy_from(&self.data_regs[base + i]);
            }
        }
        // Active PEs with no pushing upstream receive zeros…
        for i in 0..per {
            if !mask[i] {
                continue;
            }
            let pe = base + i;
            let (r, c) = (pe / w, pe % w);
            let upstream = match dir {
                Direction::Up => (r + 1 < h).then(|| pe + w),
                Direction::Down => (r > 0).then(|| pe - w),
                Direction::Left => (c + 1 < w).then(|| pe + 1),
                Direction::Right => (c > 0).then(|| pe - 1),
            };
            let pushing = upstream.is_some_and(|u| u >= base && u < base + per && mask[u - base]);
            if !pushing {
                self.data_regs[pe].clear();
            }
        }
        // …then pushes land (possibly into other groups' PEs).
        for (i, &on) in mask.iter().enumerate() {
            if !on {
                continue;
            }
            let pe = base + i;
            let (r, c) = (pe / w, pe % w);
            let dest = match dir {
                Direction::Up => (r > 0).then(|| pe - w),
                Direction::Down => (r + 1 < h).then(|| pe + w),
                Direction::Left => (c > 0).then(|| pe - 1),
                Direction::Right => (c + 1 < w).then(|| pe + 1),
            };
            if let Some(d) = dest {
                if d < self.data_regs.len() {
                    self.data_regs[d].copy_from(&self.mov_scratch[i]);
                }
            }
        }
    }

    /// Decode a `WriteR` immediate (little-endian byte image) into `out`;
    /// rows beyond the image read as zero. Shared with the slab engine.
    pub(crate) fn decode_reg(bytes: &[u8], out: &mut TagVector) {
        out.clear();
        for row in 0..out.len() {
            let byte = bytes.get(row / 8).copied().unwrap_or(0);
            if byte >> (row % 8) & 1 == 1 {
                out.set(row, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperap_tcam::bit::KeyBit;

    fn search_key(s: &str) -> Instruction {
        Instruction::SetKey {
            key: SearchKey::parse(s).unwrap(),
        }
    }

    #[test]
    fn simd_search_applies_to_all_pes_in_group() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        // Group 0 owns PEs 0..4; load bit 0 of row 2 in PEs 0 and 2.
        m.pe_mut(0).load_bit(2, 0, true);
        m.pe_mut(2).load_bit(2, 0, true);
        let stats = m.run(&[vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Count,
        ]]);
        let counts: Vec<usize> = stats.count_results[0].iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, vec![1, 0, 1, 0]);
    }

    #[test]
    fn groups_run_independent_streams() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(0, 0, true); // group 0
        m.pe_mut(4).load_bit(0, 1, true); // group 1
        let g0 = vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Count,
        ];
        let g1 = vec![
            search_key("-1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Count,
            Instruction::Wait { cycles: 50 },
        ];
        let stats = m.run(&[g0, g1]);
        assert_eq!(stats.count_results[0][0], (0, 1));
        assert_eq!(stats.count_results[1][0], (4, 1));
        // Wait extends group 1's makespan.
        assert!(stats.group_cycles[1] > stats.group_cycles[0]);
        assert_eq!(stats.makespan(), stats.group_cycles[1]);
    }

    #[test]
    fn write_uses_key_register_value() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(1).load_bit(5, 0, true);
        m.run(&[vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::SetKey {
                key: SearchKey::masked(64).with_bit(3, KeyBit::One),
            },
            Instruction::Write {
                col: 3,
                encode: false,
            },
        ]]);
        assert_eq!(m.pe(1).read_bit(5, 3), Some(true));
        assert_eq!(m.pe(1).read_bit(4, 3), Some(false));
        assert_eq!(m.pe(0).read_bit(5, 3), Some(false));
    }

    #[test]
    fn broadcast_gates_banks() {
        // tiny() has 1 bank per group, so disable it and verify no effect.
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(0, 0, true);
        let stats = m.run(&[vec![
            Instruction::Broadcast { group_mask: 0 }, // all banks off
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Count,
        ]]);
        assert!(stats.count_results[0].is_empty(), "no active PEs");
    }

    #[test]
    fn broadcast_invalidates_cached_active_set() {
        // Regression: the active-PE cache must be recomputed after each
        // Broadcast, in both directions (on -> off -> on).
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(0, 0, true);
        let stats = m.run(&[vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::Count, // bank on: 4 results
            Instruction::Broadcast { group_mask: 0 },
            Instruction::Count, // bank off: no results
            Instruction::Broadcast { group_mask: 0xFF },
            Instruction::Count, // bank back on: 4 more results
        ]]);
        assert_eq!(stats.count_results[0].len(), 8);
        assert_eq!(stats.count_results[0][0], (0, 1));
        assert_eq!(stats.count_results[0][4], (0, 1));
        assert_eq!(stats.group_ops[0].counts, 3);
    }

    #[test]
    fn exec_modes_agree_bitwise() {
        let stream = vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::ReadTag,
            Instruction::MovR {
                dir: Direction::Right,
            },
            Instruction::SetTag,
            Instruction::Count,
            Instruction::Index,
        ];
        let run = |mode: ExecMode| {
            let mut cfg = ArchConfig::tiny();
            cfg.exec = mode;
            let mut m = ApMachine::new(cfg);
            m.pe_mut(0).load_bit(3, 0, true);
            m.pe_mut(2).load_bit(7, 0, true);
            let stats = m.run(std::slice::from_ref(&stream));
            (stats, m)
        };
        let (seq_stats, seq_m) = run(ExecMode::Sequential);
        let (par_stats, par_m) = run(ExecMode::Parallel);
        assert_eq!(seq_stats, par_stats);
        for pe in 0..seq_m.config().total_pes() {
            assert_eq!(seq_m.pe(pe), par_m.pe(pe), "PE {pe} state diverged");
            assert_eq!(seq_m.data_reg(pe), par_m.data_reg(pe));
        }
    }

    #[test]
    fn movr_shifts_data_registers_right() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        // Put a pattern in PE 0's data register via WriteR, then MovR right.
        let stats = m.run(&[vec![
            Instruction::WriteR {
                addr: 0,
                imm: vec![0b101],
            },
            Instruction::MovR {
                dir: Direction::Right,
            },
        ]]);
        assert_eq!(stats.group_ops[0].mov_rs, 1);
        assert!(m.data_reg(1).get(0));
        assert!(!m.data_reg(1).get(1));
        assert!(m.data_reg(1).get(2));
    }

    #[test]
    fn readtag_movr_settag_transfers_tags_between_pes() {
        // The §IV-B local-communication idiom: column -> tags -> data reg ->
        // neighbor -> tags.
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.pe_mut(0).load_bit(7, 0, true);
        m.run(&[vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::ReadTag,
            Instruction::MovR {
                dir: Direction::Right,
            },
            Instruction::SetTag,
            Instruction::SetKey {
                key: SearchKey::masked(64).with_bit(1, KeyBit::One),
            },
            Instruction::Write {
                col: 1,
                encode: false,
            },
        ]]);
        assert_eq!(m.pe(1).read_bit(7, 1), Some(true), "transferred to PE 1");
        assert_eq!(m.pe(1).read_bit(6, 1), Some(false));
    }

    #[test]
    fn broadcast_writer_loads_all_data_registers() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        m.run(&[vec![
            Instruction::WriteR {
                addr: BROADCAST_ADDR,
                imm: vec![0xFF; 64],
            },
            Instruction::SetTag,
            Instruction::Count,
        ]]);
        // All group-0 PEs count all rows tagged.
        let mut mm = ApMachine::new(ArchConfig::tiny());
        let stats = mm.run(&[vec![
            Instruction::WriteR {
                addr: BROADCAST_ADDR,
                imm: vec![0xFF; 64],
            },
            Instruction::SetTag,
            Instruction::Count,
        ]]);
        for &(_, c) in &stats.count_results[0] {
            assert_eq!(c, 16);
        }
    }

    #[test]
    fn cycle_accounting_is_deterministic() {
        let mut m = ApMachine::new(ArchConfig::tiny());
        let stream = vec![
            search_key("1"),
            Instruction::Search {
                acc: false,
                encode: false,
            },
            Instruction::SetKey {
                key: SearchKey::masked(64).with_bit(2, KeyBit::One),
            },
            Instruction::Write {
                col: 2,
                encode: false,
            },
        ];
        let stats = m.run(&[stream]);
        // 1 + 1 + 1 + 12 = 15 cycles.
        assert_eq!(stats.group_cycles[0], 15);
    }
}
