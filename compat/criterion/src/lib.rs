//! Offline shim for the `criterion` crate.
//!
//! Implements `Criterion::bench_function` / `Bencher::iter` with a simple
//! warmup-then-sample wall-clock harness: each benchmark is calibrated to a
//! target sample duration, several samples are taken, and the median
//! ns/iteration is printed in a `cargo bench`-like format. Good enough to
//! track relative perf between commits on one machine; not a statistics
//! engine.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers compile.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark id as passed to [`Criterion::bench_function`].
    pub id: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
}

/// Benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
    /// Results of every bench run through this driver, in order.
    pub results: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(60),
            sample_target: Duration::from_millis(60),
            samples: 7,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Shrink warmup/sample budgets (used by smoke tests).
    pub fn quick() -> Self {
        Criterion {
            warmup: Duration::from_millis(2),
            sample_target: Duration::from_millis(2),
            samples: 3,
            results: Vec::new(),
        }
    }

    /// Run one benchmark; prints `id  time: <median> ns/iter`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            sample_target: self.sample_target,
            samples: self.samples,
            median_ns: 0.0,
        };
        f(&mut b);
        println!("{id:<40} time: {:>12.1} ns/iter", b.median_ns);
        self.results.push(Sample {
            id: id.to_string(),
            median_ns: b.median_ns,
        });
        self
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
    median_ns: f64,
}

impl Bencher {
    /// Measure `routine`, called repeatedly; the return value is black-boxed
    /// so the optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count whose batch lands
        // near the sample target.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch =
            ((self.sample_target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let total = start.elapsed().as_secs_f64() * 1e9;
            samples_ns.push(total / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
    }

    /// Median nanoseconds per iteration from the last [`iter`](Self::iter).
    pub fn median_ns(&self) -> f64 {
        self.median_ns
    }
}

/// Group benchmark functions into a runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the shim
            // has no CLI, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_positive_median() {
        let mut c = Criterion::quick();
        c.bench_function("noop_add", |b| b.iter(|| std::hint::black_box(1u64 + 2)));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns >= 0.0);
        assert_eq!(c.results[0].id, "noop_add");
    }
}
