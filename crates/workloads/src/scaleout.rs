//! Scale-out execution: run a compiled kernel over many elements spread
//! across the PE hierarchy, including MovR-based neighbor exchange for
//! stencil kernels (the §IV-B / §VI-D communication story).
//!
//! One element occupies one SIMD slot; elements are laid out row-major
//! across (PE, row). Stencil kernels receive their left/right neighbors
//! through the data-register mesh: the halo columns are filled by the
//! [`hyperap_arch::transfer::column_transfer`] idiom before the compute
//! stream runs, and the whole machine is driven by Table-I instructions
//! only.

use hyperap_arch::transfer::column_transfer;
use hyperap_arch::{ApMachine, ArchConfig};
use hyperap_compiler::CompiledKernel;
use hyperap_isa::{lower, Direction, Instruction};
use hyperap_model::timing::OpCounts;

/// Result of a scale-out run.
#[derive(Debug, Clone)]
pub struct ScaleOutRun {
    /// Outputs per element (first output field), element order.
    pub outputs: Vec<u64>,
    /// Machine cycles (makespan across groups).
    pub cycles: u64,
    /// SIMD-level operation counts of group 0.
    pub ops: OpCounts,
}

/// Execute `kernel` for `elements` (tuples of scalar inputs) spread across
/// the machine; all PEs run the same stream (one group).
///
/// # Panics
///
/// Panics if the machine is too small for the element count.
pub fn run_elementwise(
    kernel: &CompiledKernel,
    config: ArchConfig,
    elements: &[Vec<u64>],
) -> ScaleOutRun {
    let rows = config.rows;
    let slots = config.total_pes() * rows;
    assert!(
        elements.len() <= slots,
        "{} elements > {slots} slots",
        elements.len()
    );
    let mut machine = ApMachine::new(config);
    for (e, tuple) in elements.iter().enumerate() {
        let (pe, row) = (e / rows, e % rows);
        for (field, &v) in kernel.input_fields().iter().zip(tuple) {
            field.store(machine.pe_mut(pe), row, v);
        }
    }
    let stream = lower(kernel.program());
    let stats = machine.run(&[stream]);
    let out_field = &kernel.output_fields()[0];
    let outputs = (0..elements.len())
        .map(|e| out_field.read(machine.pe(e / rows), e % rows))
        .collect();
    ScaleOutRun {
        outputs,
        cycles: stats.makespan(),
        ops: stats.group_ops[0],
    }
}

/// A 1-D three-point stencil over `values`, computed fully in-memory:
/// `out[i] = (left + 2·center + right) >> 2` with zero boundaries.
///
/// The per-element kernel gets its `left` input via a MovR column transfer
/// between *rows of adjacent PEs is not needed* — within one PE the
/// neighbor lives one row over, which the data-register path reaches with
/// ReadTag/SetTag shifted loads; across PE boundaries the halo moves over
/// the mesh. For clarity and full Table-I fidelity this implementation
/// keeps one element per PE (the halo is exactly one `column_transfer` per
/// direction) — the geometry the paper's local-interface numbers describe.
pub fn stencil_1d(values: &[u64], width: u8) -> ScaleOutRun {
    // One element per PE, all PEs in one group.
    let n = values.len();
    let config = ArchConfig {
        groups: 1,
        banks_per_group: 1,
        subarrays_per_bank: 1,
        pes_per_subarray: n,
        rows: 1,
        cols: 64,
        tech: hyperap_model::TechParams::rram(),
        mesh: Some((1, n)), // a 1-D chain of PEs
        exec: Default::default(),
        faults: Default::default(),
    };
    let mut machine = ApMachine::new(config);
    let w = width as usize;
    // Layout: center at columns [0, w); left halo at [w, 2w); right halo at
    // [2w, 3w); output at [3w, 4w + 2).
    for (pe, &v) in values.iter().enumerate() {
        for b in 0..w {
            machine.pe_mut(pe).load_bit(0, b, v >> b & 1 == 1);
        }
    }
    // Halo exchange: each center column moves to the right neighbor's
    // left-halo column and the left neighbor's right-halo column.
    let mut stream: Vec<Instruction> = Vec::new();
    let (_, mesh_w) = machine.config().mesh_dims();
    assert!(mesh_w >= n, "1-D stencil expects a single mesh row");
    for b in 0..w {
        stream.extend(column_transfer(
            b as u8,
            (w + b) as u8,
            Direction::Right,
            64,
        ));
        stream.extend(column_transfer(
            b as u8,
            (2 * w + b) as u8,
            Direction::Left,
            64,
        ));
    }
    // Compute stream: out = (left + 2*center + right) >> 2, built by the
    // microcode on a matching layout.
    let mut mc = hyperap_core::microcode::Microcode::new(64);
    let center = mc.alloc_plain_input("center", w);
    let left = mc.alloc_plain_input("left", w);
    let right = mc.alloc_plain_input("right", w);
    // The allocator hands out columns in order, matching the layout above.
    assert_eq!(center.slot(0).base_col(), 0);
    assert_eq!(left.slot(0).base_col(), w);
    assert_eq!(right.slot(0).base_col(), 2 * w);
    let center2 = mc.shl(&center, 1, w + 1);
    let s1 = mc.add(&left, &center2);
    let s2 = mc.add(&s1, &right);
    let out = mc.shr(&s2, 2);
    let prog = mc.into_program();
    stream.extend(lower(&prog));
    let stats = machine.run(&[stream]);
    let outputs = (0..n).map(|pe| out.read(machine.pe(pe), 0)).collect();
    ScaleOutRun {
        outputs,
        cycles: stats.makespan(),
        ops: stats.group_ops[0],
    }
}

/// Scalar reference for [`stencil_1d`].
pub fn stencil_1d_reference(values: &[u64]) -> Vec<u64> {
    (0..values.len())
        .map(|i| {
            let left = if i > 0 { values[i - 1] } else { 0 };
            let right = if i + 1 < values.len() {
                values[i + 1]
            } else {
                0
            };
            (left + 2 * values[i] + right) >> 2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::all_kernels;
    use hyperap_compiler::{compile, CompileOptions};

    #[test]
    fn elementwise_scaleout_matches_per_row_execution() {
        let kernel = compile(
            "unsigned int (9) main(unsigned int (8) a, unsigned int (8) b) { return a + b; }",
            &CompileOptions::default(),
        )
        .unwrap();
        let elements: Vec<Vec<u64>> = (0..48u64).map(|i| vec![i * 5 % 256, i * 9 % 256]).collect();
        let run = run_elementwise(&kernel, ArchConfig::tiny(), &elements[..32]);
        for (tuple, out) in elements[..32].iter().zip(&run.outputs) {
            assert_eq!(*out, tuple[0] + tuple[1]);
        }
        assert!(run.cycles > 0);
    }

    #[test]
    fn gaussian_kernel_scales_across_pes() {
        let kernels = all_kernels();
        let g = kernels.iter().find(|k| k.name == "gaussian").unwrap();
        let compiled = g.compile();
        let inputs = g.generate_inputs(&compiled, 24, 5);
        let run = run_elementwise(
            &compiled,
            ArchConfig {
                rows: 8,
                cols: 256,
                ..ArchConfig::tiny()
            },
            &inputs,
        );
        for (tuple, out) in inputs.iter().zip(&run.outputs) {
            assert_eq!(*out, (g.reference)(tuple)[0], "inputs {tuple:?}");
        }
    }

    #[test]
    fn stencil_halo_exchange_over_the_mesh() {
        let values: Vec<u64> = vec![0, 4, 8, 16, 32, 12, 6, 2];
        let run = stencil_1d(&values, 8);
        assert_eq!(run.outputs, stencil_1d_reference(&values));
        // Communication really happened over MovR.
        assert!(run.ops.mov_rs >= 16, "mov_rs = {}", run.ops.mov_rs);
    }

    #[test]
    fn stencil_communication_cost_is_small_vs_compute() {
        // §VI-D: the local interface makes synchronization cheap relative
        // to computation.
        let values: Vec<u64> = (0..6).map(|i| i * 31 % 256).collect();
        let run = stencil_1d(&values, 8);
        let transfer_cycles =
            16 * hyperap_arch::transfer::column_transfer_cycles(&hyperap_model::TechParams::rram());
        assert!(
            transfer_cycles < run.cycles / 2,
            "transfers {} of {} total",
            transfer_cycles,
            run.cycles
        );
    }
}
