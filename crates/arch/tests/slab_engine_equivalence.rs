//! Property tests for the slab engine's equivalence guarantee: random
//! instruction streams produce bit-identical PE state (cells, tags, latch,
//! per-PE operation counts, per-column wear), data registers, controller
//! buffers, `RunStats`, and cross-run key-register state whether execution
//! goes through the per-PE reference engine ([`ApMachine`]) or the
//! slab-backed engine ([`SlabMachine`]) — under every [`ExecMode`] and over
//! chunk widths that exercise single-PE chunks, short tail chunks, and
//! one-chunk-per-group layouts.

use hyperap_arch::machine::BROADCAST_ADDR;
use hyperap_arch::{ApMachine, ArchConfig, ExecMode, SlabMachine};
use hyperap_isa::{Direction, Instruction};
use hyperap_tcam::KeyBit;
use proptest::prelude::*;

/// Geometry under test: `tiny()` is 2 groups x 4 PEs of 16x64.
const PES: usize = 8;
const ROWS: usize = 16;
const COLS: usize = 64;

/// Chunk widths under test: single-PE chunks, a short tail chunk (4 PEs per
/// group in chunks of 3), and one chunk covering the whole group.
const CHUNK_WIDTHS: [usize; 3] = [1, 3, 4];

fn inst_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        prop::collection::vec(0u8..4, COLS).prop_map(|bits| Instruction::SetKey {
            key: bits
                .iter()
                .map(|b| match b {
                    0 => KeyBit::Zero,
                    1 => KeyBit::One,
                    2 => KeyBit::Z,
                    _ => KeyBit::Masked,
                })
                .collect(),
        }),
        (any::<bool>(), any::<bool>())
            .prop_map(|(acc, encode)| Instruction::Search { acc, encode }),
        // `encode` needs two adjacent columns, so stop one short.
        (0u8..(COLS as u8 - 1), any::<bool>())
            .prop_map(|(col, encode)| Instruction::Write { col, encode }),
        Just(Instruction::Count),
        Just(Instruction::Index),
        (0u8..4).prop_map(|d| Instruction::MovR {
            dir: match d {
                0 => Direction::Up,
                1 => Direction::Down,
                2 => Direction::Left,
                _ => Direction::Right,
            },
        }),
        (0u32..PES as u32).prop_map(|addr| Instruction::ReadR { addr }),
        (0u32..=PES as u32, prop::collection::vec(any::<u8>(), 0..4)).prop_map(|(a, imm)| {
            Instruction::WriteR {
                addr: if a == PES as u32 { BROADCAST_ADDR } else { a },
                imm,
            }
        }),
        Just(Instruction::SetTag),
        Just(Instruction::ReadTag),
        any::<u8>().prop_map(|m| Instruction::Broadcast { group_mask: m }),
        (0u8..10).prop_map(|cycles| Instruction::Wait { cycles }),
    ]
}

type Load = (usize, usize, usize, bool);

fn loads_strategy() -> impl Strategy<Value = Vec<Load>> {
    prop::collection::vec(
        (0usize..PES, 0usize..ROWS, 0usize..COLS, any::<bool>()),
        0..64,
    )
}

fn build_reference(loads: &[Load]) -> ApMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = ExecMode::Sequential;
    let mut m = ApMachine::new(cfg);
    for &(pe, row, col, v) in loads {
        m.pe_mut(pe).load_bit(row, col, v);
    }
    m
}

fn build_slab(mode: ExecMode, chunk_pes: usize, loads: &[Load]) -> SlabMachine {
    let mut cfg = ArchConfig::tiny();
    cfg.exec = mode;
    let mut m = SlabMachine::with_chunk_pes(cfg, chunk_pes);
    for &(pe, row, col, v) in loads {
        m.load_bit(pe, row, col, v);
    }
    m
}

fn assert_machines_identical(reference: &ApMachine, slab: &SlabMachine) {
    for pe in 0..PES {
        let snapshot = slab.pe_snapshot(pe);
        assert_eq!(reference.pe(pe), &snapshot, "PE {pe} state diverged");
        // PE equality already covers wear (part of `TcamArray`'s `Eq`), but
        // assert it separately so a wear divergence names itself.
        assert_eq!(
            reference.pe(pe).column_wear(),
            snapshot.column_wear(),
            "PE {pe} wear accounting diverged"
        );
        assert_eq!(
            reference.data_reg(pe),
            &slab.data_reg(pe),
            "PE {pe} data register diverged"
        );
    }
    assert_eq!(
        reference.data_buffers, slab.data_buffers,
        "controller data buffers diverged"
    );
}

/// Ragged bank gating at word scale: a 96-PE group (6 banks × 16 PEs)
/// where Broadcast masks carve the group into active runs that start and
/// end mid-word, driven through chunk widths that are a whole group (96),
/// exactly one PE word (64), and a deliberately 64-misaligned width (40).
/// Seeded faults keep the stuck-mask and search-miss planes live so the
/// masked fault paths see partial words too.
#[test]
fn ragged_bank_broadcast_agrees_at_word_scale() {
    use hyperap_tcam::FaultModel;

    let mut cfg = ArchConfig::tiny();
    cfg.groups = 2;
    cfg.banks_per_group = 6;
    cfg.subarrays_per_bank = 4;
    cfg.pes_per_subarray = 4; // 96 PEs per group, 16 per bank
    cfg.exec = ExecMode::Sequential;
    cfg.faults = hyperap_arch::FaultConfig {
        model: FaultModel {
            seed: 0x96BA_2C57,
            stuck_per_million: 40_000,
            miss_per_million: 25_000,
            endurance_limit: Some(4),
        },
        spare_cols: 2,
    };
    let pes = cfg.total_pes();

    // `Z` would only match unprogrammed cells and every fixture cell is
    // loaded 0/1, so the key sticks to 0/1/masked bits.
    let key = "10-1"
        .chars()
        .map(|c| match c {
            '0' => KeyBit::Zero,
            '1' => KeyBit::One,
            'Z' => KeyBit::Z,
            _ => KeyBit::Masked,
        })
        .chain(std::iter::repeat(KeyBit::Masked))
        .take(COLS)
        .collect();
    let mut stream = vec![Instruction::SetKey { key }];
    // Masks chosen so active PE runs start/end mid-word: bank 16-PE
    // granularity means 0b010110 activates PEs 16..32, 64..80 — word 0
    // upper quarter plus word 1 lower quarter.
    for (i, mask) in [0b010110u8, 0b101001, 0b000111, 0b111000, 0b111111, 0b100000]
        .into_iter()
        .enumerate()
    {
        stream.push(Instruction::Broadcast { group_mask: mask });
        stream.push(Instruction::Search {
            acc: i % 2 == 0,
            encode: i == 2,
        });
        stream.push(Instruction::Write {
            col: 3 + i as u8,
            encode: i == 2,
        });
        stream.push(Instruction::SetTag);
        stream.push(Instruction::WriteR {
            addr: BROADCAST_ADDR,
            imm: vec![0xA5u8.wrapping_add(i as u8), i as u8],
        });
        stream.push(Instruction::Count);
        stream.push(Instruction::Index);
        stream.push(Instruction::ReadTag);
    }
    stream.push(Instruction::Broadcast {
        group_mask: 0b111111,
    });
    stream.push(Instruction::Search {
        acc: false,
        encode: false,
    });
    stream.push(Instruction::Count);
    let streams = vec![stream.clone(), stream];

    let mut reference = ApMachine::new(cfg.clone());
    for pe in 0..pes {
        for row in 0..ROWS {
            for col in 0..8 {
                reference
                    .pe_mut(pe)
                    .load_bit(row, col, (pe + 3 * row + 7 * col) % 3 == 0);
            }
        }
    }
    let ref_stats = reference.run(&streams);
    assert!(
        ref_stats
            .count_results
            .iter()
            .flatten()
            .any(|&(_, c)| c > 0),
        "degenerate fixture: no PE ever matched"
    );

    for chunk_pes in [96usize, 64, 40] {
        let mut slab = SlabMachine::with_chunk_pes(cfg.clone(), chunk_pes);
        for pe in 0..pes {
            for row in 0..ROWS {
                for col in 0..8 {
                    slab.load_bit(pe, row, col, (pe + 3 * row + 7 * col) % 3 == 0);
                }
            }
        }
        let slab_stats = slab.run(&streams);
        assert_eq!(
            ref_stats, slab_stats,
            "stats diverged with {chunk_pes}-PE chunks"
        );
        for pe in 0..pes {
            let snapshot = slab.pe_snapshot(pe);
            assert_eq!(
                reference.pe(pe),
                &snapshot,
                "PE {pe} diverged with {chunk_pes}-PE chunks"
            );
            assert_eq!(
                reference.data_reg(pe),
                &slab.data_reg(pe),
                "PE {pe} data register diverged with {chunk_pes}-PE chunks"
            );
        }
        assert_eq!(reference.data_buffers, slab.data_buffers);
    }
}

proptest! {
    /// The per-PE engine is the reference; the slab engine must match it
    /// bit-for-bit under every threading mode and chunk width — machine
    /// state, wear, per-PE op counts, and stats (Count/Index reductions
    /// included).
    #[test]
    fn slab_engine_equals_per_pe_reference(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..40),
        s1 in prop::collection::vec(inst_strategy(), 0..40),
    ) {
        let streams = vec![s0, s1];
        let mut reference = build_reference(&loads);
        let ref_stats = reference.run(&streams);
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::Auto] {
            for chunk_pes in CHUNK_WIDTHS {
                let mut slab = build_slab(mode, chunk_pes, &loads);
                let slab_stats = slab.run(&streams);
                prop_assert_eq!(
                    &ref_stats, &slab_stats,
                    "stats diverged under {:?} with {}-PE chunks", mode, chunk_pes
                );
                assert_machines_identical(&reference, &slab);
            }
        }
    }

    /// The fused slab engine against the unfused oracle: the
    /// instruction-at-a-time interpreter (no traces, no fusion) must match
    /// the slab engine bit-for-bit whether the slab executes
    /// peephole-fused or unfused traces — across every threading mode and
    /// chunk width. Covers cells, tags, latch, wear, data registers,
    /// per-PE op counts, cycles, and Count/Index reductions.
    #[test]
    fn fused_slab_engine_matches_unfused_interpreter(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..30),
        s1 in prop::collection::vec(inst_strategy(), 0..30),
    ) {
        let streams = vec![s0, s1];
        let cfg = ArchConfig::tiny();
        let mut oracle = build_reference(&loads);
        let oracle_stats = oracle.run_interpreted(&streams);
        let fused = hyperap_arch::trace::compile_streams(&streams, &cfg);
        let unfused = hyperap_arch::trace::compile_streams_unfused(&streams, &cfg);
        for mode in [ExecMode::Sequential, ExecMode::Parallel, ExecMode::Auto] {
            for chunk_pes in CHUNK_WIDTHS {
                for (kind, traces) in [("fused", &fused), ("unfused", &unfused)] {
                    let mut slab = build_slab(mode, chunk_pes, &loads);
                    let slab_stats = slab.run_compiled(traces);
                    prop_assert_eq!(
                        &oracle_stats, &slab_stats,
                        "{} stats diverged from interpreter under {:?} with {}-PE chunks",
                        kind, mode, chunk_pes
                    );
                    assert_machines_identical(&oracle, &slab);
                }
            }
        }
    }

    /// Key-register state must carry across runs identically: a stream that
    /// searches before its first SetKey picks up whatever key the previous
    /// run left behind (entry-key snapshot and final-key restore paths).
    #[test]
    fn engines_agree_across_consecutive_runs(
        loads in loads_strategy(),
        first in prop::collection::vec(inst_strategy(), 0..25),
        second in prop::collection::vec(inst_strategy(), 0..25),
    ) {
        let mut reference = build_reference(&loads);
        let mut slab = build_slab(ExecMode::Sequential, 3, &loads);
        let a0 = reference.run(std::slice::from_ref(&first));
        let b0 = slab.run(std::slice::from_ref(&first));
        prop_assert_eq!(&a0, &b0);
        let a1 = reference.run(std::slice::from_ref(&second));
        let b1 = slab.run(std::slice::from_ref(&second));
        prop_assert_eq!(&a1, &b1, "second run diverged: key state not carried");
        // Rerunning the first stream exercises both engines' trace caches:
        // `second` evicted `first`'s traces, so stale reuse here would
        // surface as a divergence between the engines or from the
        // interpreter-checked state.
        let a2 = reference.run(std::slice::from_ref(&first));
        let b2 = slab.run(std::slice::from_ref(&first));
        prop_assert_eq!(&a2, &b2, "rerun diverged: stale trace cache");
        assert_machines_identical(&reference, &slab);
    }

    /// Precompiled traces reused across both engines give the same results
    /// as engine-local compilation (the `run_compiled` entry point the
    /// benchmarks use).
    #[test]
    fn precompiled_traces_agree(
        loads in loads_strategy(),
        s0 in prop::collection::vec(inst_strategy(), 0..30),
    ) {
        let streams = vec![s0];
        let cfg = ArchConfig::tiny();
        let traces = hyperap_arch::trace::compile_streams(&streams, &cfg);
        let mut reference = build_reference(&loads);
        let mut slab = build_slab(ExecMode::Sequential, 4, &loads);
        let a = reference.run_compiled(&traces);
        let b = slab.run_compiled(&traces);
        prop_assert_eq!(&a, &b);
        assert_machines_identical(&reference, &slab);
    }

    /// Bank gating: the slab engine's active-run computation must track
    /// every Broadcast mask change exactly like the reference's cached
    /// active sets.
    #[test]
    fn broadcast_gating_matches_reference(
        masks in prop::collection::vec(any::<u8>(), 1..8),
        loads in loads_strategy(),
    ) {
        let mut stream = Vec::new();
        for m in &masks {
            stream.push(Instruction::Broadcast { group_mask: *m });
            stream.push(Instruction::Search { acc: false, encode: false });
            stream.push(Instruction::Count);
        }
        let streams = vec![stream];
        let mut reference = build_reference(&loads);
        let mut slab = build_slab(ExecMode::Sequential, 3, &loads);
        let a = reference.run(&streams);
        let b = slab.run(&streams);
        prop_assert_eq!(&a, &b);
        assert_machines_identical(&reference, &slab);
    }
}
