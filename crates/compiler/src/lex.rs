//! Tokenizer for the C-like source language (§V-A).

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (decimal, `0x`, or `0b`).
    Int(u64),
    /// Punctuation or operator.
    Punct(&'static str),
}

/// A token plus its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "(", ")", "{", "}", ";", ",", "=", "+", "-", "*", "/", "%", "&", "|", "^",
    "~", "!", "<", ">", ".",
];

/// Tokenize source text.
///
/// # Errors
///
/// Returns [`LexError`] on unrecognized characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if src[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if src[i..].starts_with("/*") {
            let start_line = line;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        line: start_line,
                        message: "unterminated block comment".into(),
                    });
                }
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if &src[i..i + 2] == "*/" {
                    i += 2;
                    continue 'outer;
                }
                i += 1;
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric()
                || i < bytes.len() && bytes[i] == b'_'
            {
                i += 1;
            }
            out.push(Spanned {
                token: Token::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let radix = if src[i..].starts_with("0x") || src[i..].starts_with("0X") {
                i += 2;
                16
            } else if src[i..].starts_with("0b") || src[i..].starts_with("0B") {
                i += 2;
                2
            } else {
                10
            };
            let digit_start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                i += 1;
            }
            let digits = if radix == 10 {
                &src[start..i]
            } else {
                &src[digit_start..i]
            };
            let value = u64::from_str_radix(digits, radix).map_err(|e| LexError {
                line,
                message: format!("bad integer literal `{}`: {e}", &src[start..i]),
            })?;
            out.push(Spanned {
                token: Token::Int(value),
                line,
            });
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push(Spanned {
                    token: Token::Punct(p),
                    line,
                });
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            line,
            message: format!("unrecognized character `{c}`"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            toks("unsigned int (5) a;"),
            vec![
                Token::Ident("unsigned".into()),
                Token::Ident("int".into()),
                Token::Punct("("),
                Token::Int(5),
                Token::Punct(")"),
                Token::Ident("a".into()),
                Token::Punct(";"),
            ]
        );
    }

    #[test]
    fn lexes_operators_longest_first() {
        assert_eq!(
            toks("a <<= b << c <= d"),
            vec![
                Token::Ident("a".into()),
                Token::Punct("<<="),
                Token::Ident("b".into()),
                Token::Punct("<<"),
                Token::Ident("c".into()),
                Token::Punct("<="),
                Token::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn lexes_hex_and_binary() {
        assert_eq!(
            toks("0xFF 0b101 42"),
            vec![Token::Int(255), Token::Int(5), Token::Int(42)]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let spanned = lex("a // comment\n/* multi\nline */ b").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 3);
    }

    #[test]
    fn rejects_bad_characters() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.to_string().contains("unrecognized"));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_malformed_hex() {
        assert!(lex("0xGG").is_err());
    }
}
