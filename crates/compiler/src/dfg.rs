//! The dataflow graph produced by semantic analysis (§V-B1).

use serde::{Deserialize, Serialize};

/// Node identifier.
pub type NodeId = usize;

/// DFG operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DfgOp {
    /// Kernel scalar input (parameter or flattened struct field).
    Input {
        /// Input index.
        index: usize,
    },
    /// Compile-time constant.
    Const {
        /// Value.
        value: u64,
    },
    /// Addition.
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Multiplication (dispatched to expert microcode).
    Mul,
    /// Unsigned division (microcode).
    Div,
    /// Unsigned remainder (microcode).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Two's-complement negation.
    Neg,
    /// Left shift by a constant.
    Shl {
        /// Shift amount.
        amount: usize,
    },
    /// Right shift by a constant (logical for unsigned, arithmetic for
    /// signed).
    Shr {
        /// Shift amount.
        amount: usize,
    },
    /// Equality (1-bit result).
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// `pred ? a : b` (inputs: pred, a, b) — the Fig 13b conditional
    /// flattening.
    Select,
    /// Width change (zero- or sign-extension / truncation).
    Resize,
    /// Integer square root (microcode).
    Sqrt,
    /// Fixed-point exponential (microcode).
    Exp {
        /// Fraction bits of the Q format.
        frac_bits: u32,
    },
}

impl DfgOp {
    /// Ops dispatched to the hand-optimized iterative microcode rather than
    /// the AIG/LUT-mapping path.
    pub fn is_microcode(self) -> bool {
        matches!(
            self,
            DfgOp::Mul | DfgOp::Div | DfgOp::Rem | DfgOp::Sqrt | DfgOp::Exp { .. }
        )
    }
}

/// One DFG node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DfgNode {
    /// Operation.
    pub op: DfgOp,
    /// Operand node ids.
    pub inputs: Vec<NodeId>,
    /// Result bit width.
    pub width: usize,
    /// Two's-complement signedness of the result.
    pub signed: bool,
}

/// A dataflow graph: nodes in creation (= topological) order plus the
/// output node list.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dfg {
    /// Nodes; `inputs` ids always precede the node (DAG in topo order).
    pub nodes: Vec<DfgNode>,
    /// Output node ids (`main`'s return value; structs flatten to several).
    pub outputs: Vec<NodeId>,
    /// Widths of the kernel scalar inputs, in input-index order.
    pub input_widths: Vec<usize>,
}

/// All-ones mask of the low `w` bits.
pub(crate) fn width_mask(w: usize) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extend the `w`-bit value `v`.
pub(crate) fn sign_extend(v: u64, w: usize) -> i64 {
    if w >= 64 || w == 0 {
        v as i64
    } else if v >> (w - 1) & 1 == 1 {
        (v | !width_mask(w)) as i64
    } else {
        v as i64
    }
}

impl Dfg {
    /// Add a node; returns its id.
    pub fn push(&mut self, node: DfgNode) -> NodeId {
        for &i in &node.inputs {
            assert!(i < self.nodes.len(), "DFG input out of order");
        }
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &DfgNode {
        &self.nodes[id]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluate the DFG on concrete inputs (the reference interpreter used
    /// to validate compiled kernels).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn eval(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.input_widths.len(), "input count");
        let mut values: Vec<u64> = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let v = match node.op {
                DfgOp::Input { index } => {
                    inputs[index] & width_mask(self.input_widths[index]) & width_mask(node.width)
                }
                _ => {
                    let args: Vec<u64> = node.inputs.iter().map(|&i| values[i]).collect();
                    self.eval_op(id, &args)
                }
            };
            values.push(v);
        }
        self.outputs.iter().map(|&o| values[o]).collect()
    }

    /// Evaluate node `id`'s operation on concrete operand values (each
    /// already masked to its producer's width), returning the result masked
    /// to the node's width. This is the single source of truth for node
    /// semantics, shared by [`eval`](Self::eval) and the constant-folding
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics on `Input` nodes — those take their value from the kernel
    /// arguments, not operands.
    pub fn eval_op(&self, id: NodeId, args: &[u64]) -> u64 {
        let mask = width_mask;
        let sext = sign_extend;
        let node = &self.nodes[id];
        let a = |i: usize| args[i];
        let in_node = |i: usize| &self.nodes[node.inputs[i]];
        let v = match node.op {
            DfgOp::Input { .. } => panic!("Input nodes have no operands"),
            DfgOp::Const { value } => value,
            DfgOp::Add => a(0).wrapping_add(a(1)),
            DfgOp::Sub => a(0).wrapping_sub(a(1)),
            DfgOp::Mul => a(0).wrapping_mul(a(1)),
            DfgOp::Div => {
                if a(1) == 0 {
                    mask(node.width)
                } else {
                    a(0) / a(1)
                }
            }
            DfgOp::Rem => {
                if a(1) == 0 {
                    a(0)
                } else {
                    a(0) % a(1)
                }
            }
            DfgOp::And => a(0) & a(1),
            DfgOp::Or => a(0) | a(1),
            DfgOp::Xor => a(0) ^ a(1),
            DfgOp::Not => !a(0),
            DfgOp::Neg => a(0).wrapping_neg(),
            DfgOp::Shl { amount } => a(0) << amount.min(63),
            DfgOp::Shr { amount } => {
                let w = in_node(0).width;
                if in_node(0).signed {
                    (sext(a(0), w) >> amount.min(63)) as u64
                } else {
                    a(0) >> amount.min(63)
                }
            }
            DfgOp::Eq => (a(0) == a(1)) as u64,
            DfgOp::Ne => (a(0) != a(1)) as u64,
            DfgOp::Lt | DfgOp::Le | DfgOp::Gt | DfgOp::Ge => {
                let (x, y) = (a(0), a(1));
                let signed = in_node(0).signed || in_node(1).signed;
                let cmp = if signed {
                    sext(x, in_node(0).width).cmp(&sext(y, in_node(1).width))
                } else {
                    x.cmp(&y)
                };
                let r = match node.op {
                    DfgOp::Lt => cmp.is_lt(),
                    DfgOp::Le => cmp.is_le(),
                    DfgOp::Gt => cmp.is_gt(),
                    _ => cmp.is_ge(),
                };
                r as u64
            }
            DfgOp::Select => {
                if a(0) & 1 == 1 {
                    a(1)
                } else {
                    a(2)
                }
            }
            DfgOp::Resize => {
                let src = in_node(0);
                if src.signed && node.width > src.width {
                    (sext(a(0), src.width) as u64) & mask(node.width)
                } else {
                    a(0)
                }
            }
            DfgOp::Sqrt => (a(0) as f64).sqrt().floor() as u64,
            DfgOp::Exp { frac_bits } => {
                let x = a(0) as f64 / (1u64 << frac_bits) as f64;
                (x.exp() * (1u64 << frac_bits) as f64) as u64
            }
        };
        v & mask(node.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_graph() -> Dfg {
        let mut g = Dfg {
            input_widths: vec![5, 5],
            ..Dfg::default()
        };
        let a = g.push(DfgNode {
            op: DfgOp::Input { index: 0 },
            inputs: vec![],
            width: 5,
            signed: false,
        });
        let b = g.push(DfgNode {
            op: DfgOp::Input { index: 1 },
            inputs: vec![],
            width: 5,
            signed: false,
        });
        let c = g.push(DfgNode {
            op: DfgOp::Add,
            inputs: vec![a, b],
            width: 6,
            signed: false,
        });
        g.outputs = vec![c];
        g
    }

    #[test]
    fn eval_add() {
        assert_eq!(add_graph().eval(&[30, 31]), vec![61]);
    }

    #[test]
    fn eval_masks_to_width() {
        // 5-bit inputs mask; 6-bit output wraps.
        assert_eq!(add_graph().eval(&[63, 0]), vec![31]);
    }

    #[test]
    #[should_panic(expected = "DFG input out of order")]
    fn rejects_forward_references() {
        let mut g = Dfg::default();
        g.push(DfgNode {
            op: DfgOp::Add,
            inputs: vec![5],
            width: 4,
            signed: false,
        });
    }

    #[test]
    fn microcode_classification() {
        assert!(DfgOp::Mul.is_microcode());
        assert!(DfgOp::Exp { frac_bits: 8 }.is_microcode());
        assert!(!DfgOp::Add.is_microcode());
    }
}
