//! Property-based tests: the slab arena with its fused multi-PE kernels is
//! observationally equivalent to a `Vec` of per-PE [`TcamArray`]s driven one
//! at a time, and the conversion / byte-image paths round-trip losslessly.

use hyperap_tcam::array::TcamArray;
use hyperap_tcam::bit::{KeyBit, TernaryBit};
use hyperap_tcam::key::SearchKey;
use hyperap_tcam::slab::{TagSlab, TcamSlab};
use hyperap_tcam::tags::TagVector;
use proptest::prelude::*;

const PES: usize = 5;
const ROWS: usize = 70; // spans a partial tail block
const COLS: usize = 8;

fn ternary_bit() -> impl Strategy<Value = TernaryBit> {
    prop_oneof![
        Just(TernaryBit::Zero),
        Just(TernaryBit::One),
        Just(TernaryBit::X)
    ]
}

fn key_bit() -> impl Strategy<Value = KeyBit> {
    prop_oneof![
        Just(KeyBit::Zero),
        Just(KeyBit::One),
        Just(KeyBit::Z),
        Just(KeyBit::Masked)
    ]
}

/// One random kernel invocation against the slab.
#[derive(Debug, Clone)]
enum SlabOp {
    Search {
        bits: Vec<KeyBit>,
        lo: usize,
        hi: usize,
    },
    Write {
        col: usize,
        value: TernaryBit,
        tags: Vec<bool>,
        lo: usize,
        hi: usize,
    },
    Copy {
        src: usize,
        dst: usize,
        lo: usize,
        hi: usize,
    },
    Encoded {
        col: usize,
        latch: Vec<bool>,
        tags: Vec<bool>,
        lo: usize,
        hi: usize,
    },
    SetCell {
        pe: usize,
        row: usize,
        col: usize,
        value: TernaryBit,
    },
    /// Single-sweep fused search chain + conditional writes
    /// (`search_write_multi`), checked against the unfused per-array
    /// sequence: searches, OR-accumulation, then column writes.
    Fused {
        keys: Vec<Vec<KeyBit>>,
        acc: bool,
        writes: Vec<(usize, TernaryBit)>,
        tags: Vec<bool>,
        lo: usize,
        hi: usize,
    },
}

fn pe_range() -> impl Strategy<Value = (usize, usize)> {
    (0..PES, 0..PES).prop_map(|(a, b)| (a.min(b), a.max(b) + 1))
}

fn slab_op() -> impl Strategy<Value = SlabOp> {
    prop_oneof![
        (prop::collection::vec(key_bit(), COLS), pe_range())
            .prop_map(|(bits, (lo, hi))| SlabOp::Search { bits, lo, hi }),
        (
            0..COLS,
            ternary_bit(),
            prop::collection::vec(any::<bool>(), ROWS),
            pe_range()
        )
            .prop_map(|(col, value, tags, (lo, hi))| SlabOp::Write {
                col,
                value,
                tags,
                lo,
                hi
            }),
        (0..COLS, 0..COLS, pe_range()).prop_map(|(src, dst, (lo, hi))| SlabOp::Copy {
            src,
            dst,
            lo,
            hi
        }),
        (
            0..COLS - 1,
            prop::collection::vec(any::<bool>(), ROWS),
            prop::collection::vec(any::<bool>(), ROWS),
            pe_range()
        )
            .prop_map(|(col, latch, tags, (lo, hi))| SlabOp::Encoded {
                col,
                latch,
                tags,
                lo,
                hi
            }),
        (0..PES, 0..ROWS, 0..COLS, ternary_bit()).prop_map(|(pe, row, col, value)| {
            SlabOp::SetCell {
                pe,
                row,
                col,
                value,
            }
        }),
        (
            prop::collection::vec(prop::collection::vec(key_bit(), COLS), 0..3),
            any::<bool>(),
            prop::collection::vec((0..COLS, ternary_bit()), 0..3),
            prop::collection::vec(any::<bool>(), ROWS),
            pe_range()
        )
            .prop_map(|(keys, acc, writes, tags, (lo, hi))| SlabOp::Fused {
                keys,
                acc,
                writes,
                tags,
                lo,
                hi
            }),
    ]
}

fn tag_slab_from(bools: &[bool], lo: usize, hi: usize) -> TagSlab {
    let mut t = TagSlab::zeros(PES, ROWS);
    for pe in lo..hi {
        let tv = bools
            .iter()
            .enumerate()
            .map(|(r, &b)| b ^ (pe % 2 == 0 && r % 5 == 0))
            .collect();
        t.set_pe(pe, &tv);
    }
    t
}

proptest! {
    /// Replay a random kernel stream against both the slab and a vector of
    /// per-PE reference arrays; state (cells and wear) must stay identical
    /// and every search must produce the per-array result for each PE.
    #[test]
    fn slab_kernels_equal_per_array_ops(
        ops in prop::collection::vec(slab_op(), 1..25),
    ) {
        let mut slab = TcamSlab::new(PES, ROWS, COLS);
        let mut arrays: Vec<TcamArray> = (0..PES).map(|_| TcamArray::new(ROWS, COLS)).collect();
        for op in &ops {
            match op {
                SlabOp::Search { bits, lo, hi } => {
                    let key = SearchKey::from_bits(bits.clone());
                    let plan = key.compile_plan();
                    let mut out = TagSlab::zeros(PES, ROWS);
                    slab.search_plan_multi_into(&plan, *lo, *hi, out.range_mut(*lo, *hi));
                    for (pe, array) in arrays.iter().enumerate().take(*hi).skip(*lo) {
                        prop_assert_eq!(out.to_tagvector(pe), array.search(&key), "pe {}", pe);
                    }
                }
                SlabOp::Write { col, value, tags, lo, hi } => {
                    let t = tag_slab_from(tags, *lo, *hi);
                    slab.write_column_multi(*col, *value, t.range(*lo, *hi), *lo, *hi);
                    for (pe, array) in arrays.iter_mut().enumerate().take(*hi).skip(*lo) {
                        array.write_column(*col, *value, &t.to_tagvector(pe));
                    }
                }
                SlabOp::Copy { src, dst, lo, hi } => {
                    slab.copy_column_multi(*src, *dst, *lo, *hi);
                    for array in arrays.iter_mut().take(*hi).skip(*lo) {
                        array.copy_column(*src, *dst);
                    }
                }
                SlabOp::Encoded { col, latch, tags, lo, hi } => {
                    let h = tag_slab_from(latch, *lo, *hi);
                    let t = tag_slab_from(tags, *lo, *hi);
                    slab.write_encoded_multi(*col, h.range(*lo, *hi), t.range(*lo, *hi), *lo, *hi);
                    for (pe, array) in arrays.iter_mut().enumerate().take(*hi).skip(*lo) {
                        let (hv, tv) = (h.to_tagvector(pe), t.to_tagvector(pe));
                        for row in 0..ROWS {
                            let cells =
                                hyperap_tcam::encoding::encode_pair(hv.get(row), tv.get(row));
                            array.set_cell(row, *col, cells[0]);
                            array.set_cell(row, *col + 1, cells[1]);
                        }
                        array.note_write(*col);
                        array.note_write(*col + 1);
                    }
                }
                SlabOp::SetCell { pe, row, col, value } => {
                    slab.set_cell(*pe, *row, *col, *value);
                    arrays[*pe].set_cell(*row, *col, *value);
                }
                SlabOp::Fused { keys, acc, writes, tags, lo, hi } => {
                    let plans: Vec<Vec<(usize, KeyBit)>> = keys
                        .iter()
                        .map(|bits| SearchKey::from_bits(bits.clone()).compile_plan())
                        .collect();
                    let refs: Vec<&[(usize, KeyBit)]> =
                        plans.iter().map(|p| p.as_slice()).collect();
                    let mut t = tag_slab_from(tags, *lo, *hi);
                    slab.search_write_multi(&refs, *acc, writes, t.range_mut(*lo, *hi), *lo, *hi);
                    let init = tag_slab_from(tags, *lo, *hi);
                    for (pe, array) in arrays.iter_mut().enumerate().take(*hi).skip(*lo) {
                        // Unfused reference: search every plan, OR into the
                        // (kept or cleared) tags, then write the columns.
                        let mut expected = if *acc {
                            init.to_tagvector(pe)
                        } else {
                            TagVector::zeros(ROWS)
                        };
                        for bits in keys {
                            let m = array.search(&SearchKey::from_bits(bits.clone()));
                            for (a, b) in expected.blocks_mut().iter_mut().zip(m.blocks()) {
                                *a |= b;
                            }
                        }
                        for &(col, value) in writes {
                            array.write_column(col, value, &expected);
                        }
                        prop_assert_eq!(t.to_tagvector(pe), expected, "fused tags, pe {}", pe);
                    }
                }
            }
        }
        prop_assert_eq!(slab.to_arrays(), arrays.clone());
        prop_assert_eq!(TcamSlab::from_arrays(&arrays), slab);
    }

    /// `from_arrays` ⇄ `to_arrays` is lossless for arbitrary cell contents
    /// and wear profiles.
    #[test]
    fn conversion_round_trips(
        cells in prop::collection::vec(
            prop::collection::vec(ternary_bit(), ROWS * COLS), PES),
        wear_writes in prop::collection::vec((0..COLS, any::<bool>()), 0..12),
    ) {
        let mut arrays: Vec<TcamArray> = (0..PES).map(|_| TcamArray::new(ROWS, COLS)).collect();
        for (pe, flat) in cells.iter().enumerate() {
            for (i, v) in flat.iter().enumerate() {
                arrays[pe].set_cell(i / COLS, i % COLS, *v);
            }
        }
        for (col, upper_half) in &wear_writes {
            let lo = if *upper_half { PES / 2 } else { 0 };
            for array in &mut arrays[lo..] {
                array.note_write(*col);
            }
        }
        let slab = TcamSlab::from_arrays(&arrays);
        prop_assert_eq!(slab.to_arrays(), arrays);
    }

    /// The versioned byte image round-trips, including wear state.
    #[test]
    fn byte_image_round_trips(
        cells in prop::collection::vec(ternary_bit(), PES * ROWS),
        worn_col in 0..COLS,
    ) {
        let mut slab = TcamSlab::new(PES, ROWS, COLS);
        for (i, v) in cells.iter().enumerate() {
            slab.set_cell(i / ROWS, i % ROWS, (i * 3) % COLS, *v);
        }
        let tags = TagSlab::zeros(PES, ROWS);
        slab.write_column_multi(worn_col, TernaryBit::X, tags.range(0, PES), 0, PES);
        prop_assert_eq!(TcamSlab::from_bytes(&slab.to_bytes()), Ok(slab));
    }

    /// The tag-register byte image round-trips for arbitrary contents.
    /// Tags, the encoder latch, and the data registers all share the
    /// `TagSlab` format, so one register file is exercised directly and a
    /// second through the engine's latch path (`copy_range_from`).
    #[test]
    fn tag_byte_image_round_trips(
        bits in prop::collection::vec(prop::collection::vec(any::<bool>(), ROWS), PES),
        salt in 0usize..7,
    ) {
        let mut tags = TagSlab::zeros(PES, ROWS);
        for (pe, bools) in bits.iter().enumerate() {
            let tv = bools
                .iter()
                .enumerate()
                .map(|(r, &b)| b ^ ((r + salt) % 3 == 0))
                .collect();
            tags.set_pe(pe, &tv);
        }
        let mut latch = TagSlab::zeros(PES, ROWS);
        latch.copy_range_from(&tags, 0, PES);
        prop_assert_eq!(TagSlab::from_bytes(&tags.to_bytes()), Ok(tags));
        prop_assert_eq!(TagSlab::from_bytes(&latch.to_bytes()), Ok(latch));
    }
}
