//! Execution statistics: cycles, energy, and reduction results.

use hyperap_model::tech::TechParams;
use hyperap_model::timing::OpCounts;
use serde::{Deserialize, Serialize};

/// Degradation report for one PE that has retired columns onto spares.
///
/// Emitted by the end-of-run endurance service (see
/// `ArchConfig::faults`); PEs with an empty retirement log are omitted
/// from [`RunStats::pe_health`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeHealth {
    /// Global PE id.
    pub pe: usize,
    /// Retirement log in order: `(logical column, spare device id)`.
    pub retired: Vec<(u16, u16)>,
    /// Spare columns this PE still has available.
    pub spares_left: u16,
}

/// The slab engine's resolved execution geometry for one run — a
/// diagnostic record of how the word-parallel kernels were shaped, logged
/// in [`RunStats::geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunGeometry {
    /// PEs per slab chunk (64-aligned by default so every chunk sweeps
    /// whole PE words).
    pub chunk_pes: usize,
    /// Chunks per group.
    pub chunks_per_group: usize,
    /// 64-bit PE words per chunk plane row (`chunk_pes.div_ceil(64)`).
    pub pe_words: usize,
    /// Resolved host fan-out width.
    pub threads: usize,
}

/// Results of one [`crate::ApMachine::run`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Cycle at which each group finished its stream.
    pub group_cycles: Vec<u64>,
    /// Per-group operation counts (aggregated over the group's PEs; one
    /// SIMD instruction counts once, as in the paper's analytical model).
    pub group_ops: Vec<OpCounts>,
    /// `Count` results per group: `(pe_id, count)` pairs in program order.
    pub count_results: Vec<Vec<(usize, usize)>>,
    /// `Index` results per group: `(pe_id, first_index)` pairs.
    pub index_results: Vec<Vec<(usize, Option<usize>)>>,
    /// Per-PE fault degradation, ascending by PE id; empty when no fault
    /// model is active or no PE has retired a column yet.
    pub pe_health: Vec<PeHealth>,
    /// Execution-geometry log (slab engine only; `None` from the per-PE
    /// engine). Diagnostic — excluded from `PartialEq`, so cross-engine
    /// result comparisons are unaffected.
    pub geometry: Option<RunGeometry>,
}

/// Architectural results only: `geometry` is an engine diagnostic, not a
/// result, so two engines that computed identical answers compare equal
/// regardless of how their kernels were chunked.
impl PartialEq for RunStats {
    fn eq(&self, other: &Self) -> bool {
        self.group_cycles == other.group_cycles
            && self.group_ops == other.group_ops
            && self.count_results == other.count_results
            && self.index_results == other.index_results
            && self.pe_health == other.pe_health
    }
}

impl RunStats {
    /// Machine makespan: the cycle at which the last group finished.
    pub fn makespan(&self) -> u64 {
        self.group_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Makespan in nanoseconds.
    pub fn makespan_ns(&self, tech: &TechParams) -> f64 {
        self.makespan() as f64 * tech.clock_period_ns()
    }

    /// Total dynamic energy in picojoules for `active_pes` PEs per group
    /// (every PE in a group executes each SIMD instruction).
    pub fn energy_pj(&self, tech: &TechParams, active_pes: usize) -> f64 {
        self.group_ops
            .iter()
            .map(|ops| ops.energy_pj_per_pe(tech) * active_pes as f64)
            .sum()
    }
}
