//! The extended two-bit encoding technique (Fig 5).
//!
//! The original technique of Li et al. \[39\] encodes a pair of data bits into
//! a pair of TCAM cells (Fig 5a) so that the four original values map to the
//! ternary codes `X0`, `X1`, `0X`, `1X`. Its search keys (Fig 5b) still match
//! exactly one original value per pair. The paper's extension (Fig 5c) adds
//! search keys — made possible by the ternary key register (`Z` and masked
//! bits) — such that one key over an encoded pair can match an *arbitrary
//! subset* of the four original values. [`PairSubset`] formalizes that
//! algebra; [`key_for_subset`] proves the completeness claim constructively
//! (all 15 non-empty subsets are reachable), which is the basis of
//! Single-Search-Multi-Pattern.

use crate::bit::{KeyBit, TernaryBit};
use serde::{Deserialize, Serialize};

/// Encode one original pair of data bits into its two-bit-encoded TCAM pair
/// (Fig 5a): `00 ↦ X0`, `01 ↦ X1`, `10 ↦ 0X`, `11 ↦ 1X`.
///
/// Bit order: `(b1, b0)` are the (MSB, LSB) of the original pair value; the
/// returned array is the two stored cells `[c1, c0]` in the same order used
/// by the figures (so the value `0b10` encodes to `0X`).
pub fn encode_pair(b1: bool, b0: bool) -> [TernaryBit; 2] {
    match (b1, b0) {
        (false, false) => [TernaryBit::X, TernaryBit::Zero], // 00 -> X0
        (false, true) => [TernaryBit::X, TernaryBit::One],   // 01 -> X1
        (true, false) => [TernaryBit::Zero, TernaryBit::X],  // 10 -> 0X
        (true, true) => [TernaryBit::One, TernaryBit::X],    // 11 -> 1X
    }
}

/// Decode an encoded TCAM pair back to the original pair value (0..=3),
/// or `None` if the cells do not hold a valid code.
pub fn decode_pair(cells: [TernaryBit; 2]) -> Option<u8> {
    use TernaryBit as T;
    match cells {
        [T::X, T::Zero] => Some(0b00),
        [T::X, T::One] => Some(0b01),
        [T::Zero, T::X] => Some(0b10),
        [T::One, T::X] => Some(0b11),
        _ => None,
    }
}

/// A subset of the four original pair values {00, 01, 10, 11}, stored as a
/// 4-bit mask (bit `v` set ⇔ value `v` in the subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PairSubset(pub u8);

impl PairSubset {
    /// The empty subset (matches nothing — not a useful search key).
    pub const EMPTY: PairSubset = PairSubset(0);
    /// The full subset (equivalent to masking the pair out entirely).
    pub const FULL: PairSubset = PairSubset(0b1111);

    /// A singleton subset containing `value` (0..=3).
    ///
    /// # Panics
    ///
    /// Panics if `value > 3`.
    pub fn singleton(value: u8) -> Self {
        assert!(value < 4, "pair value must be 0..=3");
        PairSubset(1 << value)
    }

    /// Does this subset contain `value`?
    pub fn contains(self, value: u8) -> bool {
        self.0 >> value & 1 == 1
    }

    /// Union.
    #[must_use]
    pub fn union(self, other: PairSubset) -> PairSubset {
        PairSubset(self.0 | other.0)
    }

    /// Is this a subset of `other`?
    pub fn is_subset_of(self, other: PairSubset) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of values in the subset.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// True if the subset is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterate over the contained values.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0u8..4).filter(move |v| self.contains(*v))
    }
}

impl std::fmt::Display for PairSubset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for v in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{v:02b}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// The set of original pair values matched by the encoded search-key pair
/// `[k1, k0]` (in the same `(MSB cell, LSB cell)` order as [`encode_pair`]).
///
/// Derivation (Fig 4 semantics applied to the Fig 5a codes):
/// * encoded `00 = X0`: matched iff `k0 ∈ {0, -}` (k1 always matches `X`)
/// * encoded `01 = X1`: matched iff `k0 ∈ {1, -}`
/// * encoded `10 = 0X`: matched iff `k1 ∈ {0, -}`
/// * encoded `11 = 1X`: matched iff `k1 ∈ {1, -}`
pub fn key_coverage(key: [KeyBit; 2]) -> PairSubset {
    let [k1, k0] = key;
    let mut s = PairSubset::EMPTY;
    for v in 0u8..4 {
        let enc = encode_pair(v & 0b10 != 0, v & 1 != 0);
        if k1.matches(enc[0]) && k0.matches(enc[1]) {
            s = s.union(PairSubset::singleton(v));
        }
    }
    s
}

/// The encoded search key that matches *exactly* the given subset of original
/// pair values, or `None` for the empty subset.
///
/// This is the constructive form of the paper's Fig 5b+5c tables: with the
/// `Z` input and per-bit masking, **every** non-empty subset of
/// {00, 01, 10, 11} has exactly one covering key (see
/// the `all_15_subsets_reachable` test). `FULL` maps to a fully masked pair.
pub fn key_for_subset(subset: PairSubset) -> Option<[KeyBit; 2]> {
    use KeyBit as K;
    // k1 controls {10, 11} membership and can forbid both via Z;
    // k0 controls {00, 01} membership and can forbid both via Z.
    let has00 = subset.contains(0b00);
    let has01 = subset.contains(0b01);
    let has10 = subset.contains(0b10);
    let has11 = subset.contains(0b11);
    if subset.is_empty() {
        return None;
    }
    let k1 = match (has10, has11) {
        (true, true) => K::Masked,
        (true, false) => K::Zero,
        (false, true) => K::One,
        (false, false) => K::Z,
    };
    let k0 = match (has00, has01) {
        (true, true) => K::Masked,
        (true, false) => K::Zero,
        (false, true) => K::One,
        (false, false) => K::Z,
    };
    // A Z in one slot excludes its two values but also *requires* the other
    // slot to admit the X-encoded values it matches — verify and fall back to
    // exhaustive search if the direct construction over- or under-matches.
    let candidate = [k1, k0];
    if key_coverage(candidate) == subset {
        return Some(candidate);
    }
    for a in KeyBit::ALL {
        for b in KeyBit::ALL {
            if key_coverage([a, b]) == subset {
                return Some([a, b]);
            }
        }
    }
    None
}

/// Coverage algebra for a *non-encoded* single bit (e.g. `Cin` in Fig 5d,
/// which "is stored without encoding"). Key `0` covers {0}, `1` covers {1},
/// masked covers {0, 1}; `Z` covers nothing (no `X` is ever stored in a
/// plain data bit).
pub fn single_bit_coverage(key: KeyBit) -> PairSubset {
    match key {
        KeyBit::Zero => PairSubset(0b01),
        KeyBit::One => PairSubset(0b10),
        KeyBit::Masked => PairSubset(0b11),
        KeyBit::Z => PairSubset::EMPTY,
    }
}

/// The key bit matching exactly the given subset of {0, 1} for a non-encoded
/// bit (mask bit 0 = value 0, bit 1 = value 1). `None` for the empty subset.
pub fn single_key_for_subset(subset: PairSubset) -> Option<KeyBit> {
    match subset.0 & 0b11 {
        0b01 => Some(KeyBit::Zero),
        0b10 => Some(KeyBit::One),
        0b11 => Some(KeyBit::Masked),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn encode_table_fig5a() {
        use TernaryBit as T;
        assert_eq!(encode_pair(false, false), [T::X, T::Zero]);
        assert_eq!(encode_pair(false, true), [T::X, T::One]);
        assert_eq!(encode_pair(true, false), [T::Zero, T::X]);
        assert_eq!(encode_pair(true, true), [T::One, T::X]);
    }

    #[test]
    fn decode_inverts_encode() {
        for v in 0u8..4 {
            let enc = encode_pair(v & 2 != 0, v & 1 != 0);
            assert_eq!(decode_pair(enc), Some(v));
        }
        assert_eq!(decode_pair([TernaryBit::Zero, TernaryBit::Zero]), None);
        assert_eq!(decode_pair([TernaryBit::X, TernaryBit::X]), None);
    }

    #[test]
    fn original_keys_fig5b_match_single_values() {
        use KeyBit as K;
        // Fig 5b: Z0 -> 00, Z1 -> 01, 0Z -> 10, 1Z -> 11.
        assert_eq!(key_coverage([K::Z, K::Zero]), PairSubset::singleton(0b00));
        assert_eq!(key_coverage([K::Z, K::One]), PairSubset::singleton(0b01));
        assert_eq!(key_coverage([K::Zero, K::Z]), PairSubset::singleton(0b10));
        assert_eq!(key_coverage([K::One, K::Z]), PairSubset::singleton(0b11));
    }

    #[test]
    fn additional_keys_fig5c_match_multiple_values() {
        use KeyBit as K;
        // Fig 5c (first half): 00 -> {00,10}, 01 -> {01,10},
        //                      10 -> {00,11}, 11 -> {01,11}.
        assert_eq!(key_coverage([K::Zero, K::Zero]), PairSubset(0b0101));
        assert_eq!(key_coverage([K::Zero, K::One]), PairSubset(0b0110));
        assert_eq!(key_coverage([K::One, K::Zero]), PairSubset(0b1001));
        assert_eq!(key_coverage([K::One, K::One]), PairSubset(0b1010));
        // Fig 5c (second half): masked-bit keys match three values.
        assert_eq!(key_coverage([K::Zero, K::Masked]), PairSubset(0b0111)); // 00,01,10
        assert_eq!(key_coverage([K::One, K::Masked]), PairSubset(0b1011)); // 00,01,11
        assert_eq!(key_coverage([K::Masked, K::Zero]), PairSubset(0b1101)); // 00,10,11
        assert_eq!(key_coverage([K::Masked, K::One]), PairSubset(0b1110)); // 01,10,11
    }

    #[test]
    fn all_15_subsets_reachable() {
        // The completeness result behind Single-Search-Multi-Pattern: every
        // non-empty subset of original pair values has a covering key.
        let mut reachable = HashSet::new();
        for a in KeyBit::ALL {
            for b in KeyBit::ALL {
                reachable.insert(key_coverage([a, b]).0);
            }
        }
        for mask in 1u8..16 {
            assert!(reachable.contains(&mask), "subset {mask:04b} unreachable");
        }
    }

    #[test]
    fn key_for_subset_is_exact_for_all_subsets() {
        for mask in 1u8..16 {
            let subset = PairSubset(mask);
            let key = key_for_subset(subset).expect("non-empty subset must have a key");
            assert_eq!(key_coverage(key), subset, "subset {mask:04b}");
        }
        assert_eq!(key_for_subset(PairSubset::EMPTY), None);
    }

    #[test]
    fn full_subset_uses_masked_pair() {
        use KeyBit as K;
        assert_eq!(
            key_for_subset(PairSubset::FULL),
            Some([K::Masked, K::Masked])
        );
    }

    #[test]
    fn fig5d_example_search_keys() {
        use KeyBit as K;
        // Fig 5d, Sum: "Search 010" = key AB=01 covers {A=0B=1, A=1B=0}.
        let ab_01 = key_coverage([K::Zero, K::One]);
        assert!(ab_01.contains(0b01) && ab_01.contains(0b10));
        assert_eq!(ab_01.len(), 2);
        // "Search 101" = key AB=10 covers {00, 11}.
        let ab_10 = key_coverage([K::One, K::Zero]);
        assert!(ab_10.contains(0b00) && ab_10.contains(0b11));
        // Fig 5d, Cout first search: AB="-1" covers {01,10,11}.
        let ab_m1 = key_coverage([K::Masked, K::One]);
        assert_eq!(ab_m1, PairSubset(0b1110));
    }

    #[test]
    fn single_bit_algebra() {
        assert_eq!(single_bit_coverage(KeyBit::Zero), PairSubset(0b01));
        assert_eq!(single_bit_coverage(KeyBit::One), PairSubset(0b10));
        assert_eq!(single_bit_coverage(KeyBit::Masked), PairSubset(0b11));
        assert!(single_bit_coverage(KeyBit::Z).is_empty());
        for mask in [0b01u8, 0b10, 0b11] {
            let k = single_key_for_subset(PairSubset(mask)).unwrap();
            assert_eq!(single_bit_coverage(k), PairSubset(mask));
        }
        assert_eq!(single_key_for_subset(PairSubset::EMPTY), None);
    }

    #[test]
    fn pair_subset_ops() {
        let s = PairSubset::singleton(2).union(PairSubset::singleton(0));
        assert_eq!(s.0, 0b0101);
        assert_eq!(s.len(), 2);
        assert!(s.is_subset_of(PairSubset::FULL));
        assert!(!PairSubset::FULL.is_subset_of(s));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(s.to_string(), "{00,10}");
    }
}
