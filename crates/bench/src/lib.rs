//! Benchmark harness for the Hyper-AP reproduction.
//!
//! One binary per paper table/figure (see `src/bin/`); each prints a
//! paper-vs-measured table. `EXPERIMENTS.md` is the checked-in snapshot of
//! their output. Criterion micro-benchmarks for the simulator and compiler
//! live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hyperap_model::metrics::Metrics;

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a ratio as `x.xx×`.
pub fn ratio(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "n/a".into();
    }
    format!("{:.2}x", measured / paper)
}

/// Print one metric row: name, measured, paper, ratio.
pub fn row(name: &str, measured: f64, paper: f64, unit: &str) {
    println!(
        "  {name:<22} measured {measured:>12.1} {unit:<9} paper {paper:>12.1} {unit:<9} ({})",
        ratio(measured, paper)
    );
}

/// Print the four-metric block of Figs 15-17 for one operation.
pub fn metric_block(op: &str, m: &Metrics, paper: &hyperap_baselines::OpRecord) {
    println!("  -- {op} --");
    row("latency", m.latency_ns, paper.latency_ns, "ns");
    row(
        "throughput",
        m.throughput_gops,
        paper.throughput_gops,
        "GOPS",
    );
    row("power eff", m.power_eff_gops_w, paper.power_eff, "GOPS/W");
    row("area eff", m.area_eff_gops_mm2, paper.area_eff, "GOPS/mm2");
}
