//! Ternary stored bits and quaternary key bits (Fig 4b/c).

use serde::{Deserialize, Serialize};

/// A stored TCAM bit: `0`, `1`, or the don't-care state `X`.
///
/// `X` matches both a `0` and a `1` search input (Fig 4b) and is the *only*
/// state matched by the `Z` input (Fig 4c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TernaryBit {
    /// Logic zero.
    #[default]
    Zero,
    /// Logic one.
    One,
    /// Don't-care: matches both `0` and `1` inputs.
    X,
}

impl TernaryBit {
    /// Construct from a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            TernaryBit::One
        } else {
            TernaryBit::Zero
        }
    }

    /// The boolean value, if this is not `X`.
    pub fn to_bool(self) -> Option<bool> {
        match self {
            TernaryBit::Zero => Some(false),
            TernaryBit::One => Some(true),
            TernaryBit::X => None,
        }
    }

    /// Display character: `0`, `1` or `X`.
    pub fn as_char(self) -> char {
        match self {
            TernaryBit::Zero => '0',
            TernaryBit::One => '1',
            TernaryBit::X => 'X',
        }
    }

    /// Parse from a character (`0`, `1`, `X`/`x`).
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(TernaryBit::Zero),
            '1' => Some(TernaryBit::One),
            'X' | 'x' => Some(TernaryBit::X),
            _ => None,
        }
    }
}

impl std::fmt::Display for TernaryBit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

impl From<bool> for TernaryBit {
    fn from(b: bool) -> Self {
        TernaryBit::from_bool(b)
    }
}

/// A search-key bit: `0`, `1`, the `Z` input, or masked-out (`-`).
///
/// Fig 4: `0` matches stored {0, X}; `1` matches stored {1, X}; `Z` matches
/// stored {X} only; a masked bit matches everything (the column does not
/// participate in the search). During a write, `0`/`1` program the stored bit
/// and `Z` programs the `X` state (Fig 4d); masked columns are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KeyBit {
    /// Search for / write a logic zero.
    Zero,
    /// Search for / write a logic one.
    One,
    /// The `Z` input: matches only stored `X`; writes `X`.
    Z,
    /// Masked: the column does not participate (mask register bit = 0).
    #[default]
    Masked,
}

impl KeyBit {
    /// Does this key bit match the given stored bit?
    ///
    /// Truth table (Fig 4b/c):
    ///
    /// | stored \ key | `0` | `1` | `Z` | `-` |
    /// |---|---|---|---|---|
    /// | `0` | ✓ |   |   | ✓ |
    /// | `1` |   | ✓ |   | ✓ |
    /// | `X` | ✓ | ✓ | ✓ | ✓ |
    pub fn matches(self, stored: TernaryBit) -> bool {
        matches!(
            (self, stored),
            (KeyBit::Masked, _)
                | (_, TernaryBit::X)
                | (KeyBit::Zero, TernaryBit::Zero)
                | (KeyBit::One, TernaryBit::One)
        )
    }

    /// The stored value this key bit writes, or `None` if masked.
    pub fn write_value(self) -> Option<TernaryBit> {
        match self {
            KeyBit::Zero => Some(TernaryBit::Zero),
            KeyBit::One => Some(TernaryBit::One),
            KeyBit::Z => Some(TernaryBit::X),
            KeyBit::Masked => None,
        }
    }

    /// Display character: `0`, `1`, `Z` or `-`.
    pub fn as_char(self) -> char {
        match self {
            KeyBit::Zero => '0',
            KeyBit::One => '1',
            KeyBit::Z => 'Z',
            KeyBit::Masked => '-',
        }
    }

    /// Parse from a character (`0`, `1`, `Z`/`z`, `-`).
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(KeyBit::Zero),
            '1' => Some(KeyBit::One),
            'Z' | 'z' => Some(KeyBit::Z),
            '-' => Some(KeyBit::Masked),
            _ => None,
        }
    }

    /// All four key-bit values, for exhaustive enumeration.
    pub const ALL: [KeyBit; 4] = [KeyBit::Zero, KeyBit::One, KeyBit::Z, KeyBit::Masked];
}

impl std::fmt::Display for KeyBit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

impl From<bool> for KeyBit {
    fn from(b: bool) -> Self {
        if b {
            KeyBit::One
        } else {
            KeyBit::Zero
        }
    }
}

/// Parse a word of ternary bits from a string of `0`/`1`/`X` characters.
/// Underscores are ignored as visual separators.
///
/// # Errors
///
/// Returns the offending character if any character is not `0`, `1`, `X`/`x`
/// or `_`.
pub fn word_from_str(s: &str) -> Result<Vec<TernaryBit>, char> {
    s.chars()
        .filter(|&c| c != '_')
        .map(|c| TernaryBit::from_char(c).ok_or(c))
        .collect()
}

/// Render a word of ternary bits as a `0`/`1`/`X` string.
pub fn word_to_string(word: &[TernaryBit]) -> String {
    word.iter().map(|b| b.as_char()).collect()
}

/// Pack the low `width` bits of `value` into a ternary word, LSB first.
///
/// Bit `i` of `value` lands at index `i`, matching the column-wise data
/// layout of Fig 2a where a vector element's LSB occupies the first of its
/// assigned bit columns.
pub fn word_from_u64(value: u64, width: usize) -> Vec<TernaryBit> {
    (0..width)
        .map(|i| TernaryBit::from_bool(value >> i & 1 == 1))
        .collect()
}

/// Reassemble a `u64` from a ternary word (LSB first).
///
/// Returns `None` if any bit is `X`.
pub fn word_to_u64(word: &[TernaryBit]) -> Option<u64> {
    let mut v = 0u64;
    for (i, b) in word.iter().enumerate() {
        match b.to_bool() {
            Some(true) => v |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_truth_table_fig4() {
        use KeyBit as K;
        use TernaryBit as T;
        // X matches both 0 and 1 input (Fig 4b).
        assert!(K::Zero.matches(T::X));
        assert!(K::One.matches(T::X));
        // Z only matches X (Fig 4c).
        assert!(K::Z.matches(T::X));
        assert!(!K::Z.matches(T::Zero));
        assert!(!K::Z.matches(T::One));
        // Exact matches.
        assert!(K::Zero.matches(T::Zero));
        assert!(!K::Zero.matches(T::One));
        assert!(K::One.matches(T::One));
        assert!(!K::One.matches(T::Zero));
        // Masked matches everything.
        for t in [T::Zero, T::One, T::X] {
            assert!(K::Masked.matches(t));
        }
    }

    #[test]
    fn z_writes_x_state() {
        // Fig 4d: input Z is used to write state X.
        assert_eq!(KeyBit::Z.write_value(), Some(TernaryBit::X));
        assert_eq!(KeyBit::Masked.write_value(), None);
        assert_eq!(KeyBit::Zero.write_value(), Some(TernaryBit::Zero));
        assert_eq!(KeyBit::One.write_value(), Some(TernaryBit::One));
    }

    #[test]
    fn word_round_trip_string() {
        let w = word_from_str("10X1_0").unwrap();
        assert_eq!(w.len(), 5);
        assert_eq!(word_to_string(&w), "10X10");
    }

    #[test]
    fn word_from_str_rejects_bad_chars() {
        assert_eq!(word_from_str("10Q"), Err('Q'));
    }

    #[test]
    fn word_u64_round_trip() {
        for v in [0u64, 1, 5, 0b1011, u16::MAX as u64] {
            assert_eq!(word_to_u64(&word_from_u64(v, 20)), Some(v));
        }
    }

    #[test]
    fn word_with_x_has_no_u64() {
        let mut w = word_from_u64(3, 4);
        w[2] = TernaryBit::X;
        assert_eq!(word_to_u64(&w), None);
    }

    #[test]
    fn lsb_first_layout() {
        let w = word_from_u64(0b01, 2);
        assert_eq!(w[0], TernaryBit::One);
        assert_eq!(w[1], TernaryBit::Zero);
    }

    #[test]
    fn char_round_trips() {
        for b in [TernaryBit::Zero, TernaryBit::One, TernaryBit::X] {
            assert_eq!(TernaryBit::from_char(b.as_char()), Some(b));
        }
        for k in KeyBit::ALL {
            assert_eq!(KeyBit::from_char(k.as_char()), Some(k));
        }
    }
}
